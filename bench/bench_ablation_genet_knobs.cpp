// Ablation (DESIGN.md S6, not a paper figure): sensitivity of Genet to its
// own knobs, on the LB task (cheapest simulator).
//   - promotion weight w in {0.1, 0.3, 0.5}  (paper default 0.3)
//   - BO trials per round in {5, 15}          (paper default 15)
//   - envs per gap estimate k in {3, 10}      (paper default 10)
// Plus the S4.2 "impact of forgetting" probe: reward on the ORIGINAL
// uniform distribution as curriculum rounds progress.

#include <cstdio>

#include "exp_common.hpp"
#include "genet/zoo.hpp"

namespace {

constexpr int kRounds = 9;
constexpr int kItersPerRound = 60;

double run_scheme(const genet::TaskAdapter& adapter,
                  std::unique_ptr<genet::CurriculumScheme> scheme, double w,
                  std::vector<double>* forgetting_curve = nullptr) {
  genet::CurriculumOptions options;
  options.rounds = kRounds;
  options.iters_per_round = kItersPerRound;
  options.promote_weight = w;
  options.seed = 5;
  genet::CurriculumTrainer trainer(adapter, std::move(scheme), options);
  netgym::ConfigDistribution target(adapter.space());
  for (int r = 0; r < kRounds; ++r) {
    trainer.run_round();
    if (forgetting_curve != nullptr) {
      trainer.policy().set_greedy(true);
      netgym::Rng rng(77);
      forgetting_curve->push_back(genet::test_on_distribution(
          adapter, trainer.policy(), target, 40, rng));
      trainer.policy().set_greedy(false);
    }
  }
  trainer.policy().set_greedy(true);
  netgym::Rng rng(77);
  return genet::test_on_distribution(adapter, trainer.policy(), target, 60,
                                     rng);
}

double run_variant(const genet::TaskAdapter& adapter, double w, int bo_trials,
                   int k, std::vector<double>* forgetting_curve = nullptr) {
  genet::SearchOptions search;
  search.bo_trials = bo_trials;
  search.envs_per_eval = k;
  return run_scheme(adapter,
                    std::make_unique<genet::GenetScheme>("llf", search), w,
                    forgetting_curve);
}

/// Results are cached in the model zoo (deterministic given the seed) so
/// re-running the harness is cheap.
double cached(genet::ModelZoo& zoo, const std::string& key,
              const std::function<double()>& compute) {
  return zoo.get_or_train(key, [&] {
    std::fprintf(stderr, "[train] %s ...\n", key.c_str());
    return std::vector<double>{compute()};
  })[0];
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation - Genet's own hyperparameters (LB task)",
      "design-choice sensitivity called out in DESIGN.md: promotion weight, "
      "BO budget, gap-estimate sample count, and the forgetting probe");

  // RL2 ranges: episodes cap at 1000 jobs, keeping the 7-variant sweep fast.
  auto adapter = bench::make_adapter("lb", 2);
  genet::ModelZoo zoo;

  std::printf("\npromotion weight w (BO trials 15, k 10):\n");
  for (double w : {0.1, 0.3, 0.5}) {
    const std::string label = std::to_string(w).substr(0, 3);
    bench::print_row("  w = " + label,
                     {cached(zoo, "lb-ablation-w" + label, [&] {
                        return run_variant(*adapter, w, 15, 10);
                      })});
  }

  std::printf("\nBO trials per round (w 0.3, k 10):\n");
  for (int trials : {5, 15}) {
    bench::print_row("  trials = " + std::to_string(trials),
                     {cached(zoo, "lb-ablation-t" + std::to_string(trials),
                             [&] { return run_variant(*adapter, 0.3, trials, 10); })});
  }

  std::printf("\nenvs per gap estimate k (w 0.3, trials 15):\n");
  for (int k : {3, 10}) {
    bench::print_row("  k = " + std::to_string(k),
                     {cached(zoo, "lb-ablation-k" + std::to_string(k),
                             [&] { return run_variant(*adapter, 0.3, 15, k); })});
  }

  std::printf("\ncurriculum-signal variants (w 0.3, trials 15, k 10):\n");
  {
    genet::SearchOptions search;
    bench::print_row("  gap-to-LLF (Genet)",
                     {cached(zoo, "lb-ablation-scheme-genet", [&] {
                        return run_scheme(
                            *adapter,
                            std::make_unique<genet::GenetScheme>("llf",
                                                                 search),
                            0.3);
                      })});
    bench::print_row("  ensemble of baselines",
                     {cached(zoo, "lb-ablation-scheme-ensemble", [&] {
                        return run_scheme(
                            *adapter,
                            std::make_unique<genet::EnsembleGenetScheme>(
                                std::vector<std::string>{"llf", "shortest",
                                                         "po2"},
                                search),
                            0.3);
                      })});
    bench::print_row("  self-play reference",
                     {cached(zoo, "lb-ablation-scheme-selfplay", [&] {
                        return run_scheme(
                            *adapter,
                            std::make_unique<genet::SelfPlayScheme>(search),
                            0.3);
                      })});
  }

  // Backend-transfer probe: the CC policy trained on the fluid simulator,
  // evaluated on the discrete-event per-packet simulator (same obs/action
  // contract). A small degradation is expected; a collapse would mean the
  // policy latched onto fluid-model artifacts.
  // Gap-closure probe: does training on a promoted configuration actually
  // close its gap-to-baseline? We run one Genet curriculum, then re-measure
  // the gap at every promoted configuration with the FINAL policy. Columns:
  // gap at selection time vs gap for the final model (selection-time gaps
  // are the BO's maxima; closed gaps should be much smaller).
  std::printf("\ngap closure at promoted configs (LB, gap-to-LLF):\n");
  {
    const std::vector<double> pairs =
        zoo.get_or_train("lb-ablation-gapclosure", [&] {
          std::fprintf(stderr, "[train] lb-ablation-gapclosure ...\n");
          genet::SearchOptions search;
          genet::CurriculumOptions options;
          options.rounds = kRounds;
          options.iters_per_round = kItersPerRound;
          options.seed = 5;
          genet::CurriculumTrainer trainer(
              *adapter, std::make_unique<genet::GenetScheme>("llf", search),
              options);
          const auto records = trainer.run();
          trainer.policy().set_greedy(true);
          netgym::Rng rng(4242);
          std::vector<double> flat;
          for (const auto& record : records) {
            netgym::Rng g = rng.fork();
            flat.push_back(record.selection_score);
            flat.push_back(genet::gap_to_baseline(*adapter, trainer.policy(),
                                                  "llf", record.promoted, 10,
                                                  g));
          }
          return flat;
        });
    std::printf("%-10s %14s %14s\n", "round", "gap@select", "gap@final");
    for (std::size_t r = 0; r * 2 + 1 < pairs.size(); ++r) {
      std::printf("%-10zu %14.3f %14.3f\n", r, pairs[2 * r],
                  pairs[2 * r + 1]);
    }
  }

  std::printf("\nCC backend transfer (RL3 policy, 50 envs each):\n");
  {
    auto fluid = bench::make_adapter("cc", 3);
    auto packet = std::make_unique<genet::CcAdapter>(
        3, genet::TraceMixOptions{}, /*use_packet_sim=*/true);
    const auto params = bench::traditional_params(
        zoo, *fluid, "cc", 3, 1, bench::traditional_iterations("cc"));
    auto policy = bench::make_policy(*fluid, params);
    netgym::ConfigDistribution dist(fluid->space());
    netgym::Rng r1(77), r2(77);
    bench::print_row("  fluid backend",
                     {genet::test_on_distribution(*fluid, *policy, dist, 50,
                                                  r1)});
    bench::print_row("  packet backend",
                     {genet::test_on_distribution(*packet, *policy, dist, 50,
                                                  r2)});
  }

  std::printf("\nforgetting probe: reward on the ORIGINAL uniform "
              "distribution per round (w 0.3)\n");
  const std::vector<double> curve =
      zoo.get_or_train("lb-ablation-forgetting", [&] {
        std::fprintf(stderr, "[train] lb-ablation-forgetting ...\n");
        std::vector<double> c;
        run_variant(*adapter, 0.3, 15, 10, &c);
        return c;
      });
  std::printf("%-10s", "round");
  for (int r = 1; r <= kRounds; ++r) std::printf(" %8d", r);
  std::printf("\n");
  bench::print_row("reward", curve, 8, 3);
  std::printf("(S4.2: the original distribution keeps 0.7^9 ~ 4%% of the "
              "mass, so mild forgetting is expected but not collapse)\n");
  return 0;
}
