// Figure 2: traditional RL over increasingly wide environment ranges.
// (a) the RL policy's mean improvement over the rule-based baseline, when
//     trained AND tested on the same RL1/RL2/RL3 range, shrinks as the
//     range widens;
// (b) the fraction of test environments where the RL policy is worse than
//     the baseline grows.

#include <cstdio>

#include "exp_common.hpp"
#include "netgym/stats.hpp"

namespace {

void run_task(const std::string& task, const std::string& baseline) {
  genet::ModelZoo zoo;
  std::printf("\n(%s vs %s)\n", task.c_str(), baseline.c_str());
  std::printf("%-8s %18s %14s %26s\n", "range", "mean RL - baseline",
              "relative", "frac envs RL < baseline");
  for (int space = 1; space <= 3; ++space) {
    auto adapter = bench::make_adapter(task, space);
    const auto params = bench::traditional_params(
        zoo, *adapter, task, space, /*seed=*/1,
        bench::traditional_iterations(task));
    auto policy = bench::make_policy(*adapter, params);

    // Paired evaluation: same configs and env randomness for both policies.
    netgym::Rng crng(515);
    std::vector<double> rl_rewards, rule_rewards;
    for (int i = 0; i < 100; ++i) {
      const netgym::Config config = adapter->space().sample(crng);
      netgym::Rng e1 = crng.fork();
      netgym::Rng e2 = e1;
      auto env_rl = adapter->make_env(config, e1);
      auto env_rule = adapter->make_env(config, e2);
      auto rule = adapter->make_baseline(baseline, *env_rule);
      netgym::Rng p1(1), p2(1);
      rl_rewards.push_back(
          netgym::run_episode(*env_rl, *policy, p1).mean_reward);
      rule_rewards.push_back(
          netgym::run_episode(*env_rule, *rule, p2).mean_reward);
    }
    const double rule_mean = netgym::mean(rule_rewards);
    const double gain = netgym::mean(rl_rewards) - rule_mean;
    // Relative improvement; reward scales differ hugely across ranges (the
    // RL3 CC range reaches 100 Mbps links), so the paper's "diminishing
    // gain" trend reads off this column.
    const double relative =
        std::abs(rule_mean) > 1e-9 ? gain / std::abs(rule_mean) : 0.0;
    const double frac_worse =
        1.0 - netgym::win_fraction(rl_rewards, rule_rewards);
    std::printf("RL%-7d %18.3f %13.1f%% %26.2f\n", space, gain,
                100.0 * relative, frac_worse);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2 - challenges of training over wide environment ranges",
      "RL's edge over rule-based baselines diminishes from RL1 to RL3, and "
      "RL loses on a substantial fraction of environments");
  run_task("cc", "bbr");
  run_task("abr", "mpc");
  run_task("lb", "llf");
  return 0;
}
