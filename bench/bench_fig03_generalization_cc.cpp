// Figure 3: generalization failures of traditionally trained RL-based CC.
// (a) An RL policy trained on the synthetic range of the original Aurora
//     paper beats BBR on fresh synthetic environments, but loses to BBR on
//     the Cellular and Ethernet trace sets.
// (b) A policy trained on Cellular traces degrades on Ethernet traces, and
//     vice versa, again relative to BBR.

#include <cstdio>

#include "cc/baselines.hpp"
#include "exp_common.hpp"
#include "netgym/stats.hpp"
#include "traces/tracesets.hpp"

namespace {

/// The synthetic training range of the original Aurora paper (Table 4's
/// "Original" column).
netgym::ConfigSpace aurora_original_space() {
  using P = netgym::ParamSpec;
  return netgym::ConfigSpace({P{"max_bw_mbps", 1.2, 6, false, true},
                              P{"min_rtt_ms", 100, 500, false, true},
                              P{"bw_change_interval_s", 0, 30},
                              P{"loss_rate", 0, 0.05},
                              P{"queue_packets", 2, 200, false, true}});
}

double mean_per_trace(const genet::TaskAdapter& adapter,
                      netgym::Policy& policy, traces::TraceSet set) {
  netgym::Rng rng(9);
  const auto corpus = traces::make_corpus(set, /*test=*/true);
  return netgym::mean(genet::test_per_trace(adapter, policy, corpus, rng));
}

/// Train a CC policy on trace-driven environments from one set.
std::vector<double> trace_trained_params(genet::ModelZoo& zoo,
                                         traces::TraceSet set,
                                         const std::string& name) {
  genet::TraceMixOptions mix;
  mix.corpus = traces::make_corpus(set, /*test=*/false);
  mix.trace_prob = 1.0;  // train on recorded traces only
  auto adapter = bench::make_adapter("cc", 3, std::move(mix));
  const std::string key = "cc-tracetrained-" + name + "-seed1";
  return zoo.get_or_train(key, [&] {
    std::fprintf(stderr, "[train] %s ...\n", key.c_str());
    auto trainer = genet::train_traditional(
        *adapter, bench::traditional_iterations("cc"), 1);
    return trainer->snapshot();
  });
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3 - generalization issues of RL-based CC",
      "synthetic-trained CC wins on synthetic tests but loses to BBR on "
      "real trace sets; cross-trace-set transfer degrades similarly");

  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter("cc", 3);
  cc::BbrPolicy bbr;

  // --- Panel (a): train on Aurora's original synthetic range. -------------
  const netgym::ConfigSpace original = aurora_original_space();
  const auto synth_params = zoo.get_or_train("cc-original-range-seed1", [&] {
    std::fprintf(stderr, "[train] cc-original-range-seed1 ...\n");
    netgym::ConfigDistribution dist(original);
    auto trainer = genet::train_traditional(
        *adapter, dist, bench::traditional_iterations("cc"), 1);
    return trainer->snapshot();
  });
  auto synth_policy = bench::make_policy(*adapter, synth_params);

  {
    netgym::ConfigDistribution dist(original);
    netgym::Rng r1(42), r2(42);
    const double rl = genet::test_on_distribution(*adapter, *synth_policy,
                                                  dist, 60, r1);
    const double rule =
        genet::test_on_distribution(*adapter, bbr, dist, 60, r2);
    std::printf("\n(a) synthetic-trained CC policy\n");
    std::printf("%-34s %10s %10s\n", "test set", "RL", "BBR");
    bench::print_row("synthetic (training range)", {rl, rule});
  }
  for (auto set : {traces::TraceSet::kEthernet, traces::TraceSet::kCellular}) {
    const double rl = mean_per_trace(*adapter, *synth_policy, set);
    const double rule = mean_per_trace(*adapter, bbr, set);
    bench::print_row("trace set " + traces::info(set).name, {rl, rule});
  }

  // --- Panel (b): cross-trace-set transfer. --------------------------------
  const auto cell_params =
      trace_trained_params(zoo, traces::TraceSet::kCellular, "cellular");
  const auto eth_params =
      trace_trained_params(zoo, traces::TraceSet::kEthernet, "ethernet");
  auto cell_policy = bench::make_policy(*adapter, cell_params);
  auto eth_policy = bench::make_policy(*adapter, eth_params);

  std::printf("\n(b) cross-trace-set transfer (mean reward per test trace)\n");
  std::printf("%-34s %10s %10s %10s\n", "test set", "cell-RL", "eth-RL",
              "BBR");
  for (auto set : {traces::TraceSet::kCellular, traces::TraceSet::kEthernet}) {
    bench::print_row("tested on " + traces::info(set).name,
                     {mean_per_trace(*adapter, *cell_policy, set),
                      mean_per_trace(*adapter, *eth_policy, set),
                      mean_per_trace(*adapter, bbr, set)});
  }
  return 0;
}
