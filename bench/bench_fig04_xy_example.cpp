// Figures 4 and 5 (+ Appendix A.3): adding trace set X vs trace set Y to
// training has very different effects. X: bandwidth 0-5 Mbps changing every
// 0-2 s (fast, small swings). Y: 0-10 Mbps changing every 4-15 s (slow,
// large swings). Starting from a pretrained ABR policy with poor rewards on
// both, continued training with X promoted improves X only marginally while
// hurting Y; promoting Y improves both. Fig. 5's trace statistics and the
// rule-vs-RL contrast are printed alongside.

#include <cstdio>

#include "abr/baselines.hpp"
#include "abr/env.hpp"
#include "exp_common.hpp"
#include "netgym/stats.hpp"

namespace {

abr::AbrEnvConfig config_x() {
  abr::AbrEnvConfig cfg;
  cfg.max_bw_mbps = 5.0;
  cfg.bw_min_ratio = 0.04;       // "0-5 Mbps"
  cfg.bw_change_interval_s = 2.0;  // fast fluctuation
  return cfg;
}

abr::AbrEnvConfig config_y() {
  abr::AbrEnvConfig cfg;
  cfg.max_bw_mbps = 10.0;
  cfg.bw_min_ratio = 0.02;        // "0-10 Mbps"
  cfg.bw_change_interval_s = 10.0;  // slow, large-magnitude changes
  return cfg;
}

double eval_on(netgym::Policy& policy, const abr::AbrEnvConfig& cfg) {
  netgym::Rng rng(777);
  double total = 0.0;
  constexpr int kTraces = 20;  // A.3: 20 traces per set
  for (int i = 0; i < kTraces; ++i) {
    auto env = abr::make_abr_env(cfg, rng);
    total += netgym::run_episode(*env, policy, rng).mean_reward;
  }
  return total / kTraces;
}

}  // namespace

int main() {
  bench::print_header(
      "Figures 4 & 5 - why sequencing environments is hard",
      "adding X (larger gap-to-optimum) barely improves X and hurts Y; "
      "adding Y improves both -- gap-to-optimum misleads");

  auto adapter = bench::make_adapter("abr", 3);
  genet::ModelZoo zoo;
  // A competent starting model: the paper pretrains until the policy is
  // reasonable but still poor on both X and Y.
  const auto snapshot =
      bench::traditional_params(zoo, *adapter, "abr", 3, /*seed=*/11, 2000);

  // Fig. 5: contrast the two trace families.
  {
    netgym::Rng rng(5);
    auto env_x = abr::make_abr_env(config_x(), rng);
    auto env_y = abr::make_abr_env(config_y(), rng);
    std::printf("\ntrace statistics (Fig. 5)\n");
    std::printf("%-6s %12s %14s %16s\n", "set", "mean BW", "BW variance",
                "non-smoothness");
    bench::print_row("X", {env_x->trace().mean_bandwidth(),
                           env_x->trace().bandwidth_variance(),
                           env_x->trace().non_smoothness()});
    bench::print_row("Y", {env_y->trace().mean_bandwidth(),
                           env_y->trace().bandwidth_variance(),
                           env_y->trace().non_smoothness()});
  }

  auto base_policy = bench::make_policy(*adapter, snapshot);
  const double x_before = eval_on(*base_policy, config_x());
  const double y_before = eval_on(*base_policy, config_y());

  // Gap-to-optimum on both sets for the pretrained model (Strawman 3 would
  // promote the larger one).
  netgym::Rng grng(31);
  const double gap_x = genet::gap_to_optimum(
      *adapter, *base_policy, abr::abr_point_from_config(config_x()), 6, grng);
  const double gap_y = genet::gap_to_optimum(
      *adapter, *base_policy, abr::abr_point_from_config(config_y()), 6, grng);
  std::printf("\npretrained model: reward X %.3f, Y %.3f; gap-to-optimum "
              "X %.3f, Y %.3f\n",
              x_before, y_before, gap_x, gap_y);

  // Continue training with one set promoted (w = 0.3, as Genet would).
  auto continue_with = [&](const abr::AbrEnvConfig& promoted) {
    auto trainer = adapter->make_trainer(11);
    trainer->restore(snapshot);
    netgym::ConfigDistribution dist(adapter->space());
    dist.promote(abr::abr_point_from_config(promoted), 0.3);
    const rl::EnvFactory factory = adapter->factory_for(dist);
    for (int i = 0; i < 600; ++i) trainer->train_iteration(factory);
    trainer->policy().set_greedy(true);
    return trainer;
  };

  {
    auto trainer = continue_with(config_x());
    std::printf("\nafter adding X to training:\n");
    bench::print_row("  reward on X (was " + std::to_string(x_before) + ")",
                     {eval_on(trainer->policy(), config_x())});
    bench::print_row("  reward on Y (was " + std::to_string(y_before) + ")",
                     {eval_on(trainer->policy(), config_y())});
  }
  {
    auto trainer = continue_with(config_y());
    std::printf("\nafter adding Y to training:\n");
    bench::print_row("  reward on X (was " + std::to_string(x_before) + ")",
                     {eval_on(trainer->policy(), config_x())});
    bench::print_row("  reward on Y (was " + std::to_string(y_before) + ")",
                     {eval_on(trainer->policy(), config_y())});
  }
  return 0;
}
