// Figure 6: the current model's gap-to-baseline in an environment predicts
// how much the model improves when trained there, and does so at least as
// well as the gap-to-optimum (Strawman 3). For dozens of random configs we
// measure both gaps for an intermediate model, then fine-tune a copy of the
// model on each config alone and record the reward improvement; the output
// is the two Pearson correlations per task.

#include <cstdio>

#include "exp_common.hpp"
#include "netgym/stats.hpp"

namespace {

/// The paper samples its Fig.-6 CC configurations from ranges comparable to
/// the original Aurora paper's (its plot axes span gaps of only ~0-250).
/// Sampling the full RL3 space instead lets a single dead-link outlier
/// (0.1 Mbps, deep queue) dominate the Pearson correlation with reward
/// magnitudes 100x larger than everything else.
netgym::ConfigSpace cc_fig6_space() {
  using P = netgym::ParamSpec;
  return netgym::ConfigSpace({P{"max_bw_mbps", 1.2, 6, false, true},
                              P{"min_rtt_ms", 100, 400, false, true},
                              P{"bw_change_interval_s", 0, 30},
                              P{"loss_rate", 0, 0.05},
                              P{"queue_packets", 2, 200, false, true}});
}

void run_panel(const std::string& task, const std::string& baseline,
               int pretrain_iters, int configs, int finetune_iters) {
  auto adapter = bench::make_adapter(task, 3);
  genet::ModelZoo zoo;
  const auto snapshot = bench::traditional_params(zoo, *adapter, task, 3,
                                                  /*seed=*/1, pretrain_iters);
  auto policy = bench::make_policy(*adapter, snapshot);

  const netgym::ConfigSpace sample_space =
      task == "cc" ? cc_fig6_space() : adapter->space();
  // Pre-sample the configurations serially, then fan the per-config work
  // (two gap estimates plus a fine-tuning run) across the thread pool; each
  // config writes only its own slots, so the output is identical at any
  // thread count.
  netgym::Rng rng(99);
  std::vector<netgym::Config> sampled;
  for (int c = 0; c < configs; ++c) sampled.push_back(sample_space.sample(rng));
  std::vector<double> gaps(configs), gaps_opt(configs), improvements(configs);
  bench::parallel_sweep(configs, /*seed=*/606, [&](int c, netgym::Rng& crng) {
    const netgym::Config& config = sampled[static_cast<std::size_t>(c)];
    // Workers need their own policy instance: MlpPolicy::act mutates the
    // net's forward cache.
    auto local_policy = bench::make_policy(*adapter, snapshot);
    netgym::Rng g1 = crng.fork();
    const double gap = genet::gap_to_baseline(*adapter, *local_policy,
                                              baseline, config, 10, g1);
    netgym::Rng g2 = crng.fork();
    const double gap_opt =
        genet::gap_to_optimum(*adapter, *local_policy, config, 5, g2);
    netgym::Rng e1(5050);
    const double before =
        genet::test_on_config(*adapter, *local_policy, config, 10, e1);

    auto trainer = adapter->make_trainer(1000 + c);
    trainer->restore(snapshot);
    const rl::EnvFactory factory = adapter->factory_for(config);
    for (int i = 0; i < finetune_iters; ++i) trainer->train_iteration(factory);
    trainer->policy().set_greedy(true);
    netgym::Rng e2(5050);
    const double after =
        genet::test_on_config(*adapter, trainer->policy(), config, 10, e2);

    gaps[static_cast<std::size_t>(c)] = gap;
    gaps_opt[static_cast<std::size_t>(c)] = gap_opt;
    improvements[static_cast<std::size_t>(c)] = after - before;
  });

  std::printf("\n(%s, %d configs, baseline %s)\n", task.c_str(), configs,
              baseline.c_str());
  std::printf("  Pearson(gap-to-baseline, training improvement) = %+.3f\n",
              netgym::pearson(gaps, improvements));
  std::printf("  Pearson(gap-to-optimum,  training improvement) = %+.3f  "
              "(Strawman 3)\n",
              netgym::pearson(gaps_opt, improvements));
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6 - gap-to-baseline predicts training improvement",
      "paper reports r=0.85 (ABR) and r=0.88 (CC) for gap-to-baseline vs "
      "r=0.49 for gap-to-optimum");
  run_panel("abr", "mpc", 800, 24, 60);
  run_panel("cc", "bbr", 250, 24, 40);
  return 0;
}
