// Figure 9: asymptotic performance on the full (RL3) target distribution.
// For each use case, train RL1/RL2/RL3 traditionally and Genet with the
// task's default rule-based baseline, then test all four policies (plus the
// rule-based baseline itself) on 200 fresh environments drawn from the RL3
// ranges.

#include <cstdio>

#include "exp_common.hpp"

namespace {

void run_task(const std::string& task, const std::string& baseline) {
  genet::ModelZoo zoo;
  auto target_adapter = bench::make_adapter(task, 3);
  netgym::ConfigDistribution target(target_adapter->space());
  constexpr std::uint64_t kSeeds[] = {1, 2};

  std::printf("\n(%s) mean test reward over 200 RL3-range environments, "
              "two seeds + mean\n",
              task.c_str());

  // Traditional RL trained on RL1 / RL2 / RL3 ranges.
  for (int space = 1; space <= 3; ++space) {
    auto adapter = bench::make_adapter(task, space);
    std::vector<double> rewards;
    for (std::uint64_t seed : kSeeds) {
      const auto params = bench::traditional_params(
          zoo, *adapter, task, space, seed,
          bench::traditional_iterations(task));
      auto policy = bench::make_policy(*target_adapter, params);
      netgym::Rng rng(77);
      rewards.push_back(genet::test_on_distribution(*target_adapter, *policy,
                                                    target, 200, rng));
    }
    rewards.push_back((rewards[0] + rewards[1]) / 2);
    bench::print_row("RL" + std::to_string(space), rewards);
  }

  // Genet over the full space, guided by the default baseline.
  {
    std::vector<double> rewards;
    for (std::uint64_t seed : kSeeds) {
      const auto params =
          bench::genet_params(zoo, *target_adapter, task, baseline, seed);
      auto policy = bench::make_policy(*target_adapter, params);
      netgym::Rng rng(77);
      rewards.push_back(genet::test_on_distribution(*target_adapter, *policy,
                                                    target, 200, rng));
    }
    rewards.push_back((rewards[0] + rewards[1]) / 2);
    bench::print_row("Genet (" + baseline + ")", rewards);
  }

  // The rule-based baseline as a reference point.
  {
    netgym::Rng rng(77);
    netgym::Rng env_rng(1);
    auto probe_env = target_adapter->make_env(target.space().midpoint(),
                                              env_rng);
    auto rule = target_adapter->make_baseline(baseline, *probe_env);
    const double reward = genet::test_on_distribution(*target_adapter, *rule,
                                                      target, 200, rng);
    bench::print_row("rule-based " + baseline, {reward});
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 9 - asymptotic performance on the full target distribution",
      "Genet outperforms traditionally trained RL1/RL2/RL3 by 8-25% (ABR), "
      "14-24% (CC), 15% (LB); no clear ranking among RL1/RL2/RL3");
  run_task("cc", "bbr");
  run_task("abr", "mpc");
  run_task("lb", "llf");
  return 0;
}
