// Figure 10: ABR test reward along individual environment parameters.
// One parameter varies per panel (the paper's six: chunk length, bandwidth
// change interval, link RTT, video length, buffer threshold, bandwidth
// min/max ratio) while the others stay at their Table-3 defaults. Policies:
// Genet(MPC) and traditionally trained RL1/RL2/RL3.

#include <cstdio>

#include "abr/env.hpp"
#include "exp_common.hpp"
#include "netgym/stats.hpp"

namespace {

struct Panel {
  const char* title;
  std::vector<double> values;
  void (*apply)(abr::AbrEnvConfig&, double);
};

double eval_config(netgym::Policy& policy, const abr::AbrEnvConfig& cfg,
                   int n) {
  netgym::Rng rng(99);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    auto env = abr::make_abr_env(cfg, rng);
    total += netgym::run_episode(*env, policy, rng).mean_reward;
  }
  return total / n;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 10 - ABR reward along individual environment parameters",
      "Genet-trained policies hold a consistent advantage across parameter "
      "values, not by trading some regions for others");

  const Panel panels[] = {
      {"video chunk length (s)", {0.5, 0.8, 2, 5}, [](abr::AbrEnvConfig& c, double v) { c.chunk_length_s = v; }},
      {"BW change interval (s)", {12, 20, 28, 36}, [](abr::AbrEnvConfig& c, double v) { c.bw_change_interval_s = v; }},
      {"link RTT (ms)", {20, 200, 400, 600}, [](abr::AbrEnvConfig& c, double v) { c.min_rtt_ms = v; }},
      {"video length (s)", {50, 90, 130, 170}, [](abr::AbrEnvConfig& c, double v) { c.video_length_s = v; }},
      {"buffer threshold (s)", {10, 60, 140, 220}, [](abr::AbrEnvConfig& c, double v) { c.max_buffer_s = v; }},
      {"BW min/max ratio", {0.3, 0.5, 0.7, 0.9}, [](abr::AbrEnvConfig& c, double v) { c.bw_min_ratio = v; }},
  };

  genet::ModelZoo zoo;
  auto adapter3 = bench::make_adapter("abr", 3);
  struct Entry {
    std::string name;
    std::unique_ptr<rl::MlpPolicy> policy;
  };
  std::vector<Entry> entries;
  entries.push_back({"Genet", bench::make_policy(
                                  *adapter3, bench::genet_params(
                                                 zoo, *adapter3, "abr", "mpc",
                                                 1))});
  for (int space = 1; space <= 3; ++space) {
    auto adapter = bench::make_adapter("abr", space);
    entries.push_back(
        {"RL" + std::to_string(space),
         bench::make_policy(*adapter3,
                            bench::traditional_params(
                                zoo, *adapter, "abr", space, 1,
                                bench::traditional_iterations("abr")))});
  }

  for (const Panel& panel : panels) {
    std::printf("\n%s:", panel.title);
    for (double v : panel.values) std::printf(" %10.3g", v);
    std::printf("\n");
    for (Entry& entry : entries) {
      std::vector<double> rewards;
      for (double v : panel.values) {
        abr::AbrEnvConfig cfg;  // Table-3 defaults
        panel.apply(cfg, v);
        rewards.push_back(eval_config(*entry.policy, cfg, 20));
      }
      bench::print_row("  " + entry.name, rewards);
    }
  }
  return 0;
}
