// Figure 11: LB test reward along job size and job inter-arrival interval,
// other parameters at their Table-5 defaults. Policies: Genet(LLF) and
// traditionally trained RL1/RL2/RL3.

#include <cstdio>

#include "exp_common.hpp"
#include "lb/env.hpp"

namespace {

double eval_config(netgym::Policy& policy, const lb::LbEnvConfig& cfg,
                   int n) {
  netgym::Rng rng(99);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    auto env = lb::make_lb_env(cfg, rng);
    total += netgym::run_episode(*env, policy, rng).mean_reward;
  }
  return total / n;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 11 - LB reward along individual environment parameters",
      "the Genet-trained LB policy outperforms traditional RL by ~15% "
      "across job sizes and arrival intervals");

  genet::ModelZoo zoo;
  auto adapter3 = bench::make_adapter("lb", 3);
  struct Entry {
    std::string name;
    std::unique_ptr<rl::MlpPolicy> policy;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"Genet", bench::make_policy(*adapter3, bench::genet_params(
                                                  zoo, *adapter3, "lb", "llf",
                                                  1))});
  for (int space = 1; space <= 3; ++space) {
    auto adapter = bench::make_adapter("lb", space);
    entries.push_back(
        {"RL" + std::to_string(space),
         bench::make_policy(*adapter3,
                            bench::traditional_params(
                                zoo, *adapter, "lb", space, 1,
                                bench::traditional_iterations("lb")))});
  }

  {
    const std::vector<double> sizes{500, 2000, 5000, 10000};
    std::printf("\njob size (bytes):");
    for (double v : sizes) std::printf(" %10.3g", v);
    std::printf("\n");
    for (Entry& entry : entries) {
      std::vector<double> rewards;
      for (double v : sizes) {
        lb::LbEnvConfig cfg;
        cfg.job_size_bytes = v;
        rewards.push_back(eval_config(*entry.policy, cfg, 20));
      }
      bench::print_row("  " + entry.name, rewards);
    }
  }
  {
    const std::vector<double> intervals{0.02, 0.05, 0.09, 0.13};
    std::printf("\njob interval (s):");
    for (double v : intervals) std::printf(" %10.3g", v);
    std::printf("\n");
    for (Entry& entry : entries) {
      std::vector<double> rewards;
      for (double v : intervals) {
        lb::LbEnvConfig cfg;
        cfg.job_interval_s = v;
        rewards.push_back(eval_config(*entry.policy, cfg, 20));
      }
      bench::print_row("  " + entry.name, rewards);
    }
  }
  return 0;
}
