// Figure 12: asymptotic performance when real traces are available during
// training. Traditional RL draws trace-driven environments with ratio
// 5/10/20/50/100% (synthetic otherwise); Genet mixes traces with its default
// 30% rule while running its curriculum. All policies are tested on
// trace-driven environments built from the held-out test split.

#include <cstdio>

#include "exp_common.hpp"
#include "netgym/stats.hpp"
#include "traces/tracesets.hpp"

namespace {

void run_task(const std::string& task,
              const std::vector<traces::TraceSet>& sets,
              const std::string& baseline) {
  genet::ModelZoo zoo;

  std::vector<netgym::Trace> train_corpus, test_corpus;
  for (auto set : sets) {
    auto train = traces::make_corpus(set, false);
    auto test = traces::make_corpus(set, true);
    train_corpus.insert(train_corpus.end(), train.begin(), train.end());
    test_corpus.insert(test_corpus.end(), test.begin(), test.end());
  }
  auto plain_adapter = bench::make_adapter(task, 3);

  auto eval = [&](netgym::Policy& policy) {
    netgym::Rng rng(9);
    return netgym::mean(
        genet::test_per_trace(*plain_adapter, policy, test_corpus, rng));
  };

  std::printf("\n(%s, tested on %zu held-out traces)\n", task.c_str(),
              test_corpus.size());

  for (double ratio : {0.05, 0.10, 0.20, 0.50, 1.00}) {
    genet::TraceMixOptions mix;
    mix.corpus = train_corpus;
    mix.trace_prob = ratio;
    auto adapter = bench::make_adapter(task, 3, std::move(mix));
    char key[128];
    std::snprintf(key, sizeof(key), "%s-mix%02d-seed1", task.c_str(),
                  static_cast<int>(ratio * 100));
    const auto params = zoo.get_or_train(key, [&] {
      std::fprintf(stderr, "[train] %s ...\n", key);
      auto trainer = genet::train_traditional(
          *adapter, bench::traditional_iterations(task), 1);
      return trainer->snapshot();
    });
    auto policy = bench::make_policy(*plain_adapter, params);
    char label[64];
    std::snprintf(label, sizeof(label), "RL (synth + %3.0f%% real)",
                  ratio * 100);
    bench::print_row(label, {eval(*policy)});
  }

  {
    genet::TraceMixOptions mix;
    mix.corpus = train_corpus;  // Genet's default 30% trace rule (S4.2)
    auto adapter = bench::make_adapter(task, 3, std::move(mix));
    const std::string key = task + "-genet-mix-" + baseline + "-seed1";
    const auto params = bench::curriculum_params(
        zoo, *adapter, key,
        [&] {
          return std::make_unique<genet::GenetScheme>(
              baseline, bench::search_options());
        },
        1);
    auto policy = bench::make_policy(*plain_adapter, params);
    bench::print_row("Genet (synth + real)", {eval(*policy)});
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 12 - training with real traces mixed into synthetic "
      "environments",
      "Genet outperforms traditional RL by 17-18% regardless of the real "
      "trace ratio used by the traditional training");
  run_task("cc", {traces::TraceSet::kCellular, traces::TraceSet::kEthernet},
           "bbr");
  run_task("abr", {traces::TraceSet::kFcc, traces::TraceSet::kNorway},
           "mpc");
  return 0;
}
