// Figure 13: generalization test. Policies trained ENTIRELY on synthetic
// environments (RL1/RL2/RL3 traditional + Genet) are tested on the four
// real-trace stand-in sets: Cellular and Ethernet for CC, FCC and Norway
// for ABR. Four panels, mean reward per test trace.

#include <cstdio>

#include "exp_common.hpp"
#include "netgym/stats.hpp"
#include "traces/tracesets.hpp"

namespace {

void run_panel(const std::string& task, const std::string& baseline,
               traces::TraceSet set) {
  genet::ModelZoo zoo;
  auto adapter3 = bench::make_adapter(task, 3);
  const auto corpus = traces::make_corpus(set, /*test=*/true);

  std::printf("\n(%s tested on %s traces, %zu traces)\n", task.c_str(),
              traces::info(set).name.c_str(), corpus.size());

  for (int space = 1; space <= 3; ++space) {
    auto adapter = bench::make_adapter(task, space);
    const auto params = bench::traditional_params(
        zoo, *adapter, task, space, 1, bench::traditional_iterations(task));
    auto policy = bench::make_policy(*adapter3, params);
    netgym::Rng rng(9);
    bench::print_row(
        "RL" + std::to_string(space),
        {netgym::mean(genet::test_per_trace(*adapter3, *policy, corpus, rng))});
  }
  {
    const auto params =
        bench::genet_params(zoo, *adapter3, task, baseline, 1);
    auto policy = bench::make_policy(*adapter3, params);
    netgym::Rng rng(9);
    bench::print_row(
        "Genet (" + baseline + ")",
        {netgym::mean(genet::test_per_trace(*adapter3, *policy, corpus, rng))});
  }
  {
    netgym::Rng env_rng(1);
    auto probe = adapter3->make_env(adapter3->space().midpoint(), env_rng);
    auto rule = adapter3->make_baseline(baseline, *probe);
    netgym::Rng rng(9);
    bench::print_row(
        "rule-based " + baseline,
        {netgym::mean(genet::test_per_trace(*adapter3, *rule, corpus, rng))});
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 13 - generalization from synthetic training to trace-driven "
      "tests",
      "Genet-trained policies, trained only on synthetic environments, "
      "outperform traditional RL on every real trace set");
  run_panel("cc", "bbr", traces::TraceSet::kCellular);
  run_panel("cc", "bbr", traces::TraceSet::kEthernet);
  run_panel("abr", "mpc", traces::TraceSet::kFcc);
  run_panel("abr", "mpc", traces::TraceSet::kNorway);
  return 0;
}
