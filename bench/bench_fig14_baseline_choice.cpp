// Figure 14 (+ the S5.4 naive-baseline discussion): Genet trained against
// different rule-based baselines. Each Genet(baseline) policy is compared
// with the baseline that guided it, on fresh RL3-range environments. A
// Genet run guided by the deliberately unreasonable "naive" ABR baseline is
// included: its BO search finds no useful environments (the policy beats
// naive everywhere), so it degenerates to roughly traditional training.

#include <cstdio>

#include "exp_common.hpp"
#include "netgym/stats.hpp"

namespace {

void compare(const std::string& task, const std::string& baseline) {
  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter(task, 3);
  netgym::ConfigDistribution target(adapter->space());

  const auto params = bench::genet_params(zoo, *adapter, task, baseline, 1);
  auto policy = bench::make_policy(*adapter, params);
  netgym::Rng r1(77), r2(77);
  const double rl =
      genet::test_on_distribution(*adapter, *policy, target, 120, r1);
  netgym::Rng env_rng(1);
  auto probe = adapter->make_env(adapter->space().midpoint(), env_rng);
  auto rule = adapter->make_baseline(baseline, *probe);
  const double rb =
      genet::test_on_distribution(*adapter, *rule, target, 120, r2);
  std::printf("%-6s Genet(%-6s) %10.3f   vs rule-based %-6s %10.3f   %s\n",
              task.c_str(), baseline.c_str(), rl, baseline.c_str(), rb,
              rl > rb ? "[Genet wins]" : "[baseline wins]");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 14 - impact of the rule-based baseline choice",
      "Genet-trained policies outperform whichever reasonable baseline "
      "guided them; a naive baseline gives no curriculum signal");
  compare("abr", "mpc");
  compare("abr", "bba");
  compare("cc", "bbr");
  compare("cc", "cubic");

  // Naive-baseline ablation (S5.4): once the policy is competent, the BO
  // search cannot find environments where the naive rule wins -- the
  // selection signal degenerates and Genet reduces to traditional training.
  {
    genet::ModelZoo zoo;
    auto adapter = bench::make_adapter("abr", 3);
    genet::CurriculumTrainer trainer(
        *adapter,
        std::make_unique<genet::GenetScheme>("naive", bench::search_options()),
        [] {
          auto o = bench::curriculum_options("abr", 1);
          o.rounds = 3;
          o.iters_per_round = 50;  // short: we only probe the signal
          return o;
        }());
    // Start from the already-trained RL3 policy, as in the paper (the naive
    // baseline is swapped in for a developed model, not a fresh one).
    trainer.trainer().restore(bench::traditional_params(
        zoo, *adapter, "abr", 3, 1, bench::traditional_iterations("abr")));
    std::printf("\nGenet guided by the naive ABR baseline "
                "(3 short rounds from the trained RL3 model):\n");
    for (int r = 0; r < 3; ++r) {
      const genet::CurriculumRound round = trainer.run_round();
      std::printf("  round %d: best gap-to-naive found by BO = %.3f%s\n",
                  round.round, round.selection_score,
                  round.selection_score < 0.5
                      ? "  (no rewarding environment exists)"
                      : "");
    }
  }
  return 0;
}
