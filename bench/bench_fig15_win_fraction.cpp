// Figure 15: how often does the RL policy beat the rule-based baseline it
// was (or wasn't) trained against? For ABR (baselines MPC and BBA) and CC
// (BBR and Cubic), we report the fraction of test traces where each policy
// -- RL1/RL2/RL3 and Genet(baseline) -- scores higher than the baseline.

#include <cstdio>

#include "exp_common.hpp"
#include "netgym/stats.hpp"
#include "traces/tracesets.hpp"

namespace {

void run_panel(const std::string& task, const std::string& baseline,
               const std::vector<traces::TraceSet>& sets) {
  genet::ModelZoo zoo;
  auto adapter3 = bench::make_adapter(task, 3);

  // Baseline rewards per trace (all test sets of the task pooled).
  std::vector<netgym::Trace> corpus;
  for (auto set : sets) {
    auto split = traces::make_corpus(set, /*test=*/true);
    corpus.insert(corpus.end(), split.begin(), split.end());
  }
  netgym::Rng env_rng(1);
  auto probe = adapter3->make_env(adapter3->space().midpoint(), env_rng);
  auto rule = adapter3->make_baseline(baseline, *probe);
  netgym::Rng r0(9);
  const auto rule_rewards =
      genet::test_per_trace(*adapter3, *rule, corpus, r0);

  std::printf("\n(%s vs %s, %zu traces) %% of traces where policy beats the "
              "baseline\n",
              task.c_str(), baseline.c_str(), corpus.size());

  for (int space = 1; space <= 3; ++space) {
    auto adapter = bench::make_adapter(task, space);
    const auto params = bench::traditional_params(
        zoo, *adapter, task, space, 1, bench::traditional_iterations(task));
    auto policy = bench::make_policy(*adapter3, params);
    netgym::Rng rng(9);
    const auto rewards =
        genet::test_per_trace(*adapter3, *policy, corpus, rng);
    bench::print_row("RL" + std::to_string(space),
                     {100.0 * netgym::win_fraction(rewards, rule_rewards)},
                     8, 1);
  }
  {
    const auto params = bench::genet_params(zoo, *adapter3, task, baseline, 1);
    auto policy = bench::make_policy(*adapter3, params);
    netgym::Rng rng(9);
    const auto rewards =
        genet::test_per_trace(*adapter3, *policy, corpus, rng);
    bench::print_row("Genet (" + baseline + ")",
                     {100.0 * netgym::win_fraction(rewards, rule_rewards)},
                     8, 1);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 15 - fraction of traces where the RL policy beats the "
      "rule-based baseline",
      "Genet-trained policies beat the baseline they were trained against "
      "far more often than RL1/RL2/RL3 do");
  const std::vector<traces::TraceSet> abr_sets{traces::TraceSet::kFcc,
                                               traces::TraceSet::kNorway};
  const std::vector<traces::TraceSet> cc_sets{traces::TraceSet::kCellular,
                                              traces::TraceSet::kEthernet};
  run_panel("abr", "mpc", abr_sets);
  run_panel("abr", "bba", abr_sets);
  run_panel("cc", "bbr", cc_sets);
  run_panel("cc", "cubic", cc_sets);
  return 0;
}
