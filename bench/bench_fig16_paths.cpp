// Figure 16 + Tables 6 and 7: tests on fixed wide-area network paths. The
// paper measured five real paths for ABR and three for CC (OpenNetLab nodes
// + home/cloud machines); here each path is a fixed simulated condition
// with the character the paper describes (see DESIGN.md substitution 3) --
// including Path 2 (ABR) whose bandwidth is far above the top bitrate and
// Path 3 (CC) whose queue is deeper than anything in training.

#include <cstdio>

#include "abr/baselines.hpp"
#include "abr/env.hpp"
#include "cc/baselines.hpp"
#include "cc/env.hpp"
#include "exp_common.hpp"
#include "netgym/stats.hpp"

namespace {

struct AbrPath {
  const char* name;
  double max_bw_mbps;
  double bw_min_ratio;
  double bw_change_s;
  double rtt_ms;
};

struct CcPath {
  const char* name;
  double max_bw_mbps;
  double bw_change_s;
  double rtt_ms;
  double queue_pkts;
  double loss;
};

void abr_panel() {
  const AbrPath paths[] = {
      {"Path1 wired->wired", 40.0, 0.8, 30.0, 30.0},
      {"Path2 wired->wifi", 60.0, 0.7, 10.0, 40.0},  // bw >> top bitrate
      {"Path3 wired->cellular", 3.0, 0.15, 3.0, 90.0},
      {"Path4 cloud->wifi", 8.0, 0.4, 8.0, 140.0},
      {"Path5 cloud->wifi (far)", 5.0, 0.3, 6.0, 260.0},
  };
  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter("abr", 3);
  auto genet_policy = bench::make_policy(
      *adapter, bench::genet_params(zoo, *adapter, "abr", "mpc", 1));

  std::printf("\n(a) ABR paths -- Table 6 breakdown, 5 runs each\n");
  std::printf("%-26s %-7s %10s %12s %12s %9s\n", "path", "scheme",
              "bitrate", "rebuf (s)", "change", "reward");
  for (const AbrPath& path : paths) {
    abr::AbrEnvConfig cfg;
    cfg.max_bw_mbps = path.max_bw_mbps;
    cfg.bw_min_ratio = path.bw_min_ratio;
    cfg.bw_change_interval_s = path.bw_change_s;
    cfg.min_rtt_ms = path.rtt_ms;
    struct Scheme {
      const char* name;
      netgym::Policy* policy;
    };
    abr::RobustMpcPolicy mpc;
    abr::BbaPolicy bba;
    const Scheme schemes[] = {
        {"MPC", &mpc}, {"BBA", &bba}, {"Genet", genet_policy.get()}};
    for (const Scheme& scheme : schemes) {
      double bitrate = 0, rebuf = 0, change = 0, reward = 0;
      constexpr int kRuns = 5;
      netgym::Rng rng(31);
      for (int run = 0; run < kRuns; ++run) {
        auto env = abr::make_abr_env(cfg, rng);
        const auto stats = netgym::run_episode(*env, *scheme.policy, rng);
        bitrate += env->totals().mean_bitrate_mbps();
        rebuf += env->totals().mean_rebuffer_s();
        change += env->totals().mean_change_mbps();
        reward += stats.mean_reward;
      }
      std::printf("%-26s %-7s %10.2f %12.3f %12.3f %9.2f\n", path.name,
                  scheme.name, bitrate / kRuns, rebuf / kRuns,
                  change / kRuns, reward / kRuns);
    }
  }
}

void cc_panel() {
  const CcPath paths[] = {
      {"Path1 wired->wired", 60.0, 20.0, 40.0, 80.0, 0.0},
      {"Path2 wired->cellular", 1.0, 2.0, 160.0, 30.0, 0.01},
      // Queue far deeper than the training range's 200-packet cap: the
      // paper's example of Genet failing outside the training ranges.
      {"Path3 wired->wifi", 8.0, 8.0, 60.0, 1200.0, 0.0},
  };
  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter("cc", 3);
  auto genet_policy = bench::make_policy(
      *adapter, bench::genet_params(zoo, *adapter, "cc", "bbr", 1));

  std::printf("\n(b) CC paths -- Table 7 breakdown, 5 runs each\n");
  std::printf("%-24s %-7s %12s %16s %10s %10s\n", "path", "scheme",
              "thpt (Mbps)", "p90 latency(ms)", "loss", "reward");
  for (const CcPath& path : paths) {
    cc::CcEnvConfig cfg;
    cfg.max_bw_mbps = path.max_bw_mbps;
    cfg.bw_change_interval_s = path.bw_change_s;
    cfg.min_rtt_ms = path.rtt_ms;
    cfg.queue_packets = path.queue_pkts;
    cfg.loss_rate = path.loss;
    struct Scheme {
      const char* name;
      netgym::Policy* policy;
    };
    cc::BbrPolicy bbr;
    cc::CubicPolicy cubic;
    const Scheme schemes[] = {
        {"BBR", &bbr}, {"Cubic", &cubic}, {"Genet", genet_policy.get()}};
    for (const Scheme& scheme : schemes) {
      double thpt = 0, p90 = 0, loss = 0, reward = 0;
      constexpr int kRuns = 5;
      netgym::Rng rng(31);
      for (int run = 0; run < kRuns; ++run) {
        auto env = cc::make_cc_env(cfg, rng);
        const auto stats = netgym::run_episode(*env, *scheme.policy, rng);
        thpt += env->totals().mean_throughput_mbps(cfg.duration_s);
        p90 += netgym::percentile(env->totals().mi_latencies_s, 90) * 1000;
        loss += env->totals().loss_fraction();
        reward += stats.mean_reward;
      }
      std::printf("%-24s %-7s %12.2f %16.1f %10.4f %10.1f\n", path.name,
                  scheme.name, thpt / kRuns, p90 / kRuns, loss / kRuns,
                  reward / kRuns);
    }
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 16 + Tables 6, 7 - fixed-path tests",
      "Genet wins on most paths; ABR Path 2 leaves no room (bandwidth >> "
      "top bitrate) and CC Path 3's deep queue is outside the training "
      "range, where Genet can lose");
  abr_panel();
  cc_panel();
  return 0;
}
