// Figure 17: RL-based policies vs rule-based baselines on the QoE frontier.
// CC panels: mean throughput vs 90th-percentile per-MI latency on the
// Cellular and Ethernet trace sets (up and to the left is better). ABR
// panels: mean bitrate vs 90th-percentile rebuffering ratio on FCC and
// Norway. One row per scheme; the paper's claim is that the Genet policy
// sits on the frontier.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "abr/baselines.hpp"
#include "abr/env.hpp"
#include "cc/baselines.hpp"
#include "cc/env.hpp"
#include "exp_common.hpp"
#include "netgym/stats.hpp"
#include "traces/tracesets.hpp"

namespace {

struct NamedPolicy {
  std::string name;
  std::unique_ptr<netgym::Policy> policy;
};

std::vector<NamedPolicy> cc_schemes(genet::ModelZoo& zoo,
                                    const genet::TaskAdapter& adapter) {
  std::vector<NamedPolicy> out;
  out.push_back({"Cubic", std::make_unique<cc::CubicPolicy>()});
  out.push_back({"BBR", std::make_unique<cc::BbrPolicy>()});
  out.push_back({"Vivace", std::make_unique<cc::VivacePolicy>()});
  out.push_back({"Copa", std::make_unique<cc::CopaPolicy>()});
  for (int space = 1; space <= 3; ++space) {
    auto a = bench::make_adapter("cc", space);
    out.push_back({"RL" + std::to_string(space),
                   bench::make_policy(adapter, bench::traditional_params(
                                                   zoo, *a, "cc", space, 1,
                                                   bench::traditional_iterations("cc")))});
  }
  out.push_back({"Genet",
                 bench::make_policy(adapter, bench::genet_params(
                                                 zoo, adapter, "cc", "bbr",
                                                 1))});
  return out;
}

std::vector<NamedPolicy> abr_schemes(genet::ModelZoo& zoo,
                                     const genet::TaskAdapter& adapter) {
  std::vector<NamedPolicy> out;
  out.push_back({"BBA", std::make_unique<abr::BbaPolicy>()});
  out.push_back({"MPC", std::make_unique<abr::RobustMpcPolicy>()});
  out.push_back({"Oboe", std::make_unique<abr::OboePolicy>()});
  for (int space = 1; space <= 3; ++space) {
    auto a = bench::make_adapter("abr", space);
    out.push_back({"RL" + std::to_string(space),
                   bench::make_policy(adapter, bench::traditional_params(
                                                   zoo, *a, "abr", space, 1,
                                                   bench::traditional_iterations("abr")))});
  }
  out.push_back({"Genet",
                 bench::make_policy(adapter, bench::genet_params(
                                                 zoo, adapter, "abr", "mpc",
                                                 1))});
  return out;
}

void cc_panel(traces::TraceSet set) {
  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter("cc", 3);
  const auto corpus = traces::make_corpus(set, true);
  std::printf("\n(CC on %s traces) up-left is better\n",
              traces::info(set).name.c_str());
  std::printf("%-10s %18s %22s\n", "scheme", "mean thpt (Mbps)",
              "p90 latency (ms)");
  for (auto& scheme : cc_schemes(zoo, *adapter)) {
    double thpt = 0.0;
    std::vector<double> latencies;
    netgym::Rng rng(9);
    for (const auto& trace : corpus) {
      auto env_base = adapter->make_env_from_trace(trace, rng);
      auto* env = dynamic_cast<cc::CcEnv*>(env_base.get());
      netgym::run_episode(*env, *scheme.policy, rng);
      thpt += env->totals().mean_throughput_mbps(env->config().duration_s);
      for (double l : env->totals().mi_latencies_s) {
        latencies.push_back(l * 1000);
      }
    }
    // Sort once and take the sorted-input fast path (the corpus sweep makes
    // this the hottest percentile call in the bench suite).
    std::sort(latencies.begin(), latencies.end());
    std::printf("%-10s %18.2f %22.1f\n", scheme.name.c_str(),
                thpt / corpus.size(),
                netgym::percentile_sorted(latencies, 90));
  }
}

void abr_panel(traces::TraceSet set) {
  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter("abr", 3);
  const auto corpus = traces::make_corpus(set, true);
  std::printf("\n(ABR on %s traces) up-left is better\n",
              traces::info(set).name.c_str());
  std::printf("%-10s %20s %26s\n", "scheme", "mean bitrate (Mbps)",
              "p90 rebuffer ratio (%)");
  for (auto& scheme : abr_schemes(zoo, *adapter)) {
    double bitrate = 0.0;
    std::vector<double> ratios;
    netgym::Rng rng(9);
    for (const auto& trace : corpus) {
      auto env_base = adapter->make_env_from_trace(trace, rng);
      auto* env = dynamic_cast<abr::AbrEnv*>(env_base.get());
      netgym::run_episode(*env, *scheme.policy, rng);
      bitrate += env->totals().mean_bitrate_mbps();
      ratios.push_back(
          100 * env->totals().rebuffer_ratio(env->config().chunk_length_s));
    }
    std::sort(ratios.begin(), ratios.end());
    std::printf("%-10s %20.2f %26.2f\n", scheme.name.c_str(),
                bitrate / corpus.size(),
                netgym::percentile_sorted(ratios, 90));
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 17 - QoE frontier: RL-based vs rule-based schemes",
      "Genet-trained ABR and CC policies sit on the throughput/latency "
      "(bitrate/rebuffering) frontier across trace sets");
  cc_panel(traces::TraceSet::kCellular);
  cc_panel(traces::TraceSet::kEthernet);
  abr_panel(traces::TraceSet::kFcc);
  abr_panel(traces::TraceSet::kNorway);
  return 0;
}
