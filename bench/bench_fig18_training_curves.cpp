// Figure 18 (+ Figure 22): training curves of Genet vs traditional RL3 and
// the three alternative curricula of S3/S5.5 on ABR. Test reward on the
// full target distribution is measured after every curriculum round (same
// iteration grid for every scheme). Figure 22's follow-up: giving RL3 and
// CL3 twice the iterations still does not close the gap -- we report their
// rewards at 2x budget.

#include <cstdio>
#include <functional>

#include "exp_common.hpp"

namespace {

constexpr int kRounds = 9;
constexpr int kItersPerRound = 667;
constexpr int kTestEnvs = 60;

double test_now(const genet::TaskAdapter& adapter, rl::MlpPolicy& policy,
                const netgym::ConfigDistribution& target) {
  policy.set_greedy(true);
  netgym::Rng rng(77);
  const double r =
      genet::test_on_distribution(adapter, policy, target, kTestEnvs, rng);
  policy.set_greedy(false);
  return r;
}

/// Curve for a curriculum scheme, one point per round. Cached in the model
/// zoo (training is deterministic from the seed, so cached curves equal
/// recomputed ones).
std::vector<double> curriculum_curve(
    genet::ModelZoo& zoo, const std::string& key,
    const genet::TaskAdapter& adapter,
    const netgym::ConfigDistribution& target,
    std::function<std::unique_ptr<genet::CurriculumScheme>()> make_scheme) {
  return zoo.get_or_train(key, [&] {
    std::fprintf(stderr, "[train] %s ...\n", key.c_str());
    genet::CurriculumOptions options;
    options.rounds = kRounds;
    options.iters_per_round = kItersPerRound;
    options.seed = 1;
    genet::CurriculumTrainer trainer(adapter, make_scheme(), options);
    std::vector<double> curve;
    for (int r = 0; r < kRounds; ++r) {
      trainer.run_round();
      curve.push_back(test_now(adapter, trainer.policy(), target));
    }
    return curve;
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 18 + Figure 22 - training curves of curriculum strategies "
      "(ABR)",
      "Genet's curve ramps up faster than RL3 and CL1/CL2/CL3; doubling "
      "RL3/CL3's iterations does not close the gap");

  auto adapter = bench::make_adapter("abr", 3);
  netgym::ConfigDistribution target(adapter->space());
  genet::SearchOptions search = bench::search_options();
  genet::ModelZoo zoo;

  std::printf("\ntest reward after every %d training iterations:\n",
              kItersPerRound);
  std::printf("%-18s", "iterations");
  for (int r = 1; r <= kRounds; ++r) std::printf(" %8d", r * kItersPerRound);
  std::printf("\n");

  // Traditional RL3 on the same iteration grid (and 2x for Fig. 22); the
  // last element of the cached vector is the 2x-budget endpoint.
  const std::vector<double> rl3_data =
      zoo.get_or_train("abr-curve-rl3-seed1", [&] {
        std::fprintf(stderr, "[train] abr-curve-rl3-seed1 ...\n");
        auto trainer = adapter->make_trainer(1);
        netgym::ConfigDistribution dist(adapter->space());
        const rl::EnvFactory factory = adapter->factory_for(dist);
        std::vector<double> data;
        for (int r = 0; r < 2 * kRounds; ++r) {
          for (int i = 0; i < kItersPerRound; ++i) {
            trainer->train_iteration(factory);
          }
          if (r < kRounds) {
            data.push_back(test_now(*adapter, trainer->policy(), target));
          }
        }
        data.push_back(test_now(*adapter, trainer->policy(), target));
        return data;
      });
  const std::vector<double> rl3_curve(rl3_data.begin(),
                                      rl3_data.end() - 1);
  const double rl3_double = rl3_data.back();

  const auto genet_curve =
      curriculum_curve(zoo, "abr-curve-genet-seed1", *adapter, target, [&] {
        return std::make_unique<genet::GenetScheme>("mpc", search);
      });
  const auto cl1_curve =
      curriculum_curve(zoo, "abr-curve-cl1-seed1", *adapter, target, [&] {
        // Handcrafted difficulty: faster bandwidth fluctuation is harder.
        return std::make_unique<genet::HandcraftedScheme>(
            "bw_change_interval_s", /*hard_is_low=*/true, kRounds);
      });
  const auto cl2_curve =
      curriculum_curve(zoo, "abr-curve-cl2-seed1", *adapter, target, [&] {
        return std::make_unique<genet::BaselinePerformanceScheme>("mpc",
                                                                  search);
      });
  genet::SearchOptions cl3_search = search;
  cl3_search.envs_per_eval = 6;  // optimum estimation is expensive
  const auto cl3_curve =
      curriculum_curve(zoo, "abr-curve-cl3-seed1", *adapter, target, [&] {
        return std::make_unique<genet::GapToOptimumScheme>(cl3_search);
      });

  bench::print_row("Genet", genet_curve, 8, 3);
  bench::print_row("RL3", rl3_curve, 8, 3);
  bench::print_row("CL1 (handcrafted)", cl1_curve, 8, 3);
  bench::print_row("CL2 (baseline)", cl2_curve, 8, 3);
  bench::print_row("CL3 (gap-to-opt)", cl3_curve, 8, 3);

  // Fig. 22: double-budget runs.
  std::printf("\nFigure 22 - final reward at 2x training budget:\n");
  bench::print_row("RL3 @ 2x iterations", {rl3_double});
  {
    const std::vector<double> cl3_double =
        zoo.get_or_train("abr-curve-cl3double-seed1", [&] {
          std::fprintf(stderr, "[train] abr-curve-cl3double-seed1 ...\n");
          genet::CurriculumOptions options;
          options.rounds = 2 * kRounds;
          options.iters_per_round = kItersPerRound;
          options.seed = 1;
          genet::CurriculumTrainer trainer(
              *adapter,
              std::make_unique<genet::GapToOptimumScheme>(cl3_search),
              options);
          trainer.run();
          return std::vector<double>{
              test_now(*adapter, trainer.policy(), target)};
        });
    bench::print_row("CL3 @ 2x iterations", cl3_double);
  }
  bench::print_row("Genet @ 1x (reference)", {genet_curve.back()});
  return 0;
}
