// Figure 19: comparison with "Robustifying" [19]. Genet's BO criterion is
// replaced by Robustify's: maximize the gap between the offline optimum and
// the current RL model, penalized by bandwidth non-smoothness with weight
// rho in {0.1, 0.5, 1.0}. The resulting ABR policies are tested on the
// full synthetic target distribution next to Genet(MPC) and MPC itself.

#include <cstdio>

#include "abr/baselines.hpp"
#include "exp_common.hpp"
#include "genet/robustify.hpp"

int main() {
  bench::print_header(
      "Figure 19 - Genet vs Robustify-style adversarial trace selection",
      "BO with Robustify's regret-minus-smoothness criterion lands below "
      "Genet; the non-smoothness penalty misjudges which environments are "
      "improvable (cf. Fig. 5)");

  genet::ModelZoo zoo;
  auto adapter = bench::make_adapter("abr", 3);
  netgym::ConfigDistribution target(adapter->space());
  auto evaluate = [&](netgym::Policy& policy) {
    netgym::Rng rng(77);
    return genet::test_on_distribution(*adapter, policy, target, 120, rng);
  };

  {
    abr::RobustMpcPolicy mpc;
    bench::print_row("MPC", {evaluate(mpc)});
  }
  // The full Robustify pipeline (A.6): adversarial bandwidth generator
  // trained against the policy, adversarial traces mixed into retraining.
  {
    const auto params = zoo.get_or_train("abr-robustify-full-seed1", [&] {
      std::fprintf(stderr, "[train] abr-robustify-full-seed1 ...\n");
      genet::RobustifyOptions options;  // rho = 1, as in the paper
      auto trainer = genet::robustify_train(
          /*space_id=*/3, /*pretrain_iters=*/3000, /*retrain_iters=*/1500,
          /*alternations=*/2, options, 1);
      return trainer->snapshot();
    });
    auto policy = bench::make_policy(*adapter, params);
    bench::print_row("Robustify (adversarial gen)", {evaluate(*policy)});
  }

  genet::SearchOptions search = bench::search_options();
  search.envs_per_eval = 6;  // offline-optimal evaluations are expensive
  for (double rho : {0.1, 0.5, 1.0}) {
    char key[64];
    std::snprintf(key, sizeof(key), "abr-robustify-rho%03d-seed1",
                  static_cast<int>(rho * 100));
    const auto params = bench::curriculum_params(
        zoo, *adapter, key,
        [&] { return std::make_unique<genet::RobustifyScheme>(rho, search); },
        1);
    auto policy = bench::make_policy(*adapter, params);
    char label[64];
    std::snprintf(label, sizeof(label), "BO w/ Robustify reward, rho=%.1f",
                  rho);
    bench::print_row(label, {evaluate(*policy)});
  }
  {
    auto policy = bench::make_policy(
        *adapter, bench::genet_params(zoo, *adapter, "abr", "mpc", 1));
    bench::print_row("Genet", {evaluate(*policy)});
  }
  return 0;
}
