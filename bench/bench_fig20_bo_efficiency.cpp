// Figure 20: BO-based search finds environment configurations with large
// gap-to-baseline faster than random exploration or coordinate grid search.
// For an intermediate ABR model (and an intermediate CC model), we run each
// maximizer over the config space and report best-gap-found vs number of
// samples explored.

#include <cstdio>
#include <memory>

#include "bo/search.hpp"
#include "exp_common.hpp"

namespace {

void run_panel(const std::string& task, const std::string& baseline,
               int pretrain_iters) {
  auto adapter = bench::make_adapter(task, 3);
  genet::ModelZoo zoo;
  const auto params = bench::traditional_params(zoo, *adapter, task, 3,
                                                /*seed=*/1, pretrain_iters);
  auto policy = bench::make_policy(*adapter, params);

  const netgym::ConfigSpace& space = adapter->space();
  const int dims = static_cast<int>(space.dims());
  netgym::Rng rng(2026);
  auto evaluate = [&](const std::vector<double>& unit) {
    return genet::gap_to_baseline(*adapter, *policy, baseline,
                                  space.denormalize(unit), /*n=*/5, rng);
  };

  constexpr int kBudget = 50;
  const int checkpoints[] = {1, 3, 5, 8, 11, 15, 20, 30, 50};

  std::printf("\n(%s) gap-to-%s found vs #samples explored\n", task.c_str(),
              baseline.c_str());
  std::printf("%-10s", "samples");
  for (int c : checkpoints) std::printf(" %8d", c);
  std::printf("\n");

  std::vector<std::unique_ptr<bo::Maximizer>> searchers;
  std::vector<std::string> names;
  searchers.push_back(std::make_unique<bo::BayesianOptimizer>(dims, 7));
  names.push_back("BO-based (EI)");
  {
    bo::BayesianOptimizer::Options ucb;
    ucb.acquisition = bo::BayesianOptimizer::Acquisition::kUpperConfidenceBound;
    searchers.push_back(std::make_unique<bo::BayesianOptimizer>(dims, 7, ucb));
    names.push_back("BO-based (UCB)");
  }
  searchers.push_back(std::make_unique<bo::RandomSearch>(dims, 7));
  names.push_back("Random");
  searchers.push_back(std::make_unique<bo::GridSearch>(dims, 10));
  names.push_back("Grid");

  for (std::size_t s = 0; s < searchers.size(); ++s) {
    std::vector<double> best_at;
    for (int i = 1; i <= kBudget; ++i) {
      const auto x = searchers[s]->propose();
      searchers[s]->update(x, evaluate(x));
      for (int c : checkpoints) {
        if (i == c) best_at.push_back(searchers[s]->best_value());
      }
    }
    bench::print_row(names[s], best_at, 8, 3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::print_header(
      "Figure 20 - search efficiency of the sequencing module",
      "within ~15 BO steps the search matches what random exploration needs "
      "~100 points for; grid search converges slower");
  run_panel("abr", "mpc", 1000);
  run_panel("cc", "bbr", 200);
  return 0;
}
