// Fleet-scale evaluation harness (DESIGN.md S5h): replays one policy per
// task (abr, cc, lb) over >= 1e6 heterogeneous sessions total -- mixed
// synthetic/recorded-trace scenarios, sampled config distributions, device
// skew -- streaming population percentiles through shard-merged histograms
// (no per-episode storage) and scoring online SLOs.
//
// Policies default to fixed-seed random inits so the committed
// BENCH_fleet.json regenerates from the binary alone; pass --model-abr /
// --model-cc / --model-lb to score trained model files instead.
//
// Unless --no-determinism, the run opens with a re-assertion of the fleet
// determinism contract: a reduced fleet is run twice, pinned to 1 and then 4
// pool threads, and the two canonical_digest() serializations (every
// deterministic output field, %.17g doubles) are compared byte-for-byte.
// Exit is nonzero on any mismatch; the result lands in the JSON
// "determinism" block that scripts/check_bench_json.py enforces.
//
// Writes BENCH_fleet.json (schema checked by scripts/check_bench_json.py,
// rendered to markdown by scripts/slo_report.py).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "netgym/parallel.hpp"
#include "netgym/parse.hpp"
#include "netgym/rng.hpp"
#include "rl/policy.hpp"
#include "rl/trainer.hpp"

namespace {

constexpr const char* kTasks[] = {"abr", "cc", "lb"};
// Session share per task; cc steps are the most expensive, so it gets a
// slightly smaller slice of the total.
constexpr double kShare[] = {0.35, 0.30, 0.35};

struct Config {
  bool quick = false;
  std::string out = "BENCH_fleet.json";
  std::int64_t sessions = 1'000'000;  // total across all three tasks
  std::uint64_t seed = 1;
  int shards = 256;
  int worst_k = 8;
  std::string out_dir = "fleet_out";
  double trace_prob = 0.5;
  bool determinism = true;
  std::int64_t det_sessions = 1500;  // per task, for the re-assertion
  int det_threads_a = 1;
  int det_threads_b = 4;
  std::map<std::string, std::string> models;  // task -> model file
};

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: bench_fleet [options]
  --quick               small run for CI (1e4 sessions, reduced det check)
  --out FILE            JSON report path (default BENCH_fleet.json)
  --sessions N          total sessions across abr+cc+lb (default 1000000)
  --seed N              fleet seed (default 1)
  --shards N            fixed shard count, determinism contract (default 256)
  --worst-k N           flight-recorded worst sessions/scenario (default 8)
  --out-dir DIR         worst-k JSONL directory (default fleet_out)
  --trace-prob P        recorded-trace share of trace scenarios, in [0,1]
                        (default GENET_FLEET_TRACE_PROB or 0.5)
  --model-abr FILE      trained model instead of the fixed random init
  --model-cc FILE       (same for cc)
  --model-lb FILE       (same for lb)
  --no-determinism      skip the 1-vs-4-thread digest re-assertion
)");
  std::exit(2);
}

Config parse_args(int argc, char** argv) {
  Config cfg;
  cfg.trace_prob = netgym::env_f64("GENET_FLEET_TRACE_PROB", 0.5, 0.0, 1.0);
  const auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) usage(("missing value for " + std::string(flag)).c_str());
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") cfg.quick = true;
    else if (a == "--out") cfg.out = value(i, "--out");
    else if (a == "--sessions")
      cfg.sessions = netgym::parse_i64_in_range("--sessions", value(i, "--sessions"),
                                                3, 1'000'000'000);
    else if (a == "--seed")
      cfg.seed = static_cast<std::uint64_t>(
          netgym::parse_i64_in_range("--seed", value(i, "--seed"), 0,
                                     std::numeric_limits<std::int64_t>::max()));
    else if (a == "--shards")
      cfg.shards = static_cast<int>(
          netgym::parse_i64_in_range("--shards", value(i, "--shards"), 1, 65536));
    else if (a == "--worst-k")
      cfg.worst_k = static_cast<int>(
          netgym::parse_i64_in_range("--worst-k", value(i, "--worst-k"), 0, 1024));
    else if (a == "--out-dir") cfg.out_dir = value(i, "--out-dir");
    else if (a == "--trace-prob")
      cfg.trace_prob = netgym::parse_f64_in_range(
          "--trace-prob", value(i, "--trace-prob"), 0.0, 1.0);
    else if (a == "--model-abr") cfg.models["abr"] = value(i, "--model-abr");
    else if (a == "--model-cc") cfg.models["cc"] = value(i, "--model-cc");
    else if (a == "--model-lb") cfg.models["lb"] = value(i, "--model-lb");
    else if (a == "--no-determinism") cfg.determinism = false;
    else usage(("unknown option " + a).c_str());
  }
  if (cfg.quick) {
    cfg.sessions = std::min<std::int64_t>(cfg.sessions, 10'000);
    cfg.det_sessions = 600;
  }
  return cfg;
}

std::vector<double> load_params(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::size_t n = 0;
  in >> n;
  std::vector<double> params(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(in >> params[i])) {
      throw std::runtime_error("truncated model file " + path);
    }
  }
  return params;
}

/// The policy scored for `task`: a trained model file when one was given,
/// else a random init forked deterministically from the bench seed (so the
/// committed report regenerates without any model artifacts).
rl::MlpPolicy make_policy(const Config& cfg, const std::string& task,
                          int task_index) {
  rl::TrainerOptions defaults;
  netgym::Rng init(cfg.seed * 1000 + static_cast<std::uint64_t>(task_index));
  rl::MlpPolicy policy(fleet::task_obs_size(task),
                       fleet::task_action_count(task), defaults.hidden, init);
  const auto it = cfg.models.find(task);
  if (it != cfg.models.end()) policy.restore(load_params(it->second));
  policy.set_greedy(true);
  return policy;
}

/// Run every task's default scenario mix and merge into one FleetResult
/// (scenario list concatenated in task order, totals summed).
fleet::FleetResult run_all_tasks(const Config& cfg, std::int64_t total_sessions,
                                 const std::string& out_dir) {
  fleet::FleetResult merged;
  merged.seed = cfg.seed;
  merged.shards = cfg.shards;
  merged.worst_k = cfg.worst_k;
  merged.threads = netgym::num_threads();
  for (int t = 0; t < 3; ++t) {
    const std::string task = kTasks[t];
    const std::int64_t task_sessions = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(total_sessions) *
                                     kShare[t]));
    const rl::MlpPolicy policy = make_policy(cfg, task, t);
    fleet::FleetOptions fopts;
    fopts.seed = cfg.seed;
    fopts.shards = cfg.shards;
    fopts.worst_k = cfg.worst_k;
    fopts.out_dir = out_dir;
    const fleet::FleetResult r = fleet::run_fleet(
        policy, fleet::default_scenarios(task, task_sessions, cfg.trace_prob),
        fopts);
    merged.sessions += r.sessions;
    merged.steps += r.steps;
    merged.duration_s += r.duration_s;
    for (const auto& sc : r.scenarios) merged.scenarios.push_back(sc);
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Config cfg = parse_args(argc, argv);
    fleet::BenchInfo info;
    info.quick = cfg.quick;
    info.det_threads_a = cfg.det_threads_a;
    info.det_threads_b = cfg.det_threads_b;

    // Determinism re-assertion first: the same reduced fleet at two thread
    // counts must serialize to byte-identical canonical digests. Flight
    // capture is disabled here (out_dir "") so the check never clobbers the
    // main run's worst-k files; the CI smoke job separately pins the
    // full-pipeline digest through `genet fleet --digest`.
    if (cfg.determinism) {
      info.determinism_checked = true;
      Config det = cfg;
      det.sessions = cfg.det_sessions * 3;
      std::string digests[2];
      const int thread_counts[2] = {cfg.det_threads_a, cfg.det_threads_b};
      for (int pass = 0; pass < 2; ++pass) {
        netgym::set_num_threads(thread_counts[pass]);
        digests[pass] =
            fleet::canonical_digest(run_all_tasks(det, det.sessions, ""));
      }
      netgym::set_num_threads(0);  // back to GENET_THREADS / hardware default
      info.determinism_identical = digests[0] == digests[1];
      std::printf("determinism: %lld sessions at %d vs %d threads -> %s\n",
                  static_cast<long long>(det.sessions), cfg.det_threads_a,
                  cfg.det_threads_b,
                  info.determinism_identical ? "identical" : "MISMATCH");
    }

    const auto start = std::chrono::steady_clock::now();
    fleet::FleetResult result = run_all_tasks(cfg, cfg.sessions, cfg.out_dir);
    result.duration_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::fputs(fleet::format_fleet_summary(result).c_str(), stdout);
    fleet::write_fleet_json(cfg.out, result, info);
    std::printf("wrote %s\n", cfg.out.c_str());

    if (info.determinism_checked && !info.determinism_identical) {
      std::fprintf(stderr,
                   "FAIL: fleet digests differ between %d and %d threads\n",
                   cfg.det_threads_a, cfg.det_threads_b);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
