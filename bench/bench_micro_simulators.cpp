// Microbenchmarks (google-benchmark): throughput of the substrates every
// experiment is built on -- simulator steps, network forward/backward,
// optimizer updates, GP fits, BO proposals, trace generation, and the
// offline-optimal planner.

#include <benchmark/benchmark.h>

#include "abr/env.hpp"
#include "abr/optimal.hpp"
#include "bo/search.hpp"
#include "cc/env.hpp"
#include "lb/env.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "netgym/trace.hpp"

namespace {

void BM_AbrEnvEpisode(benchmark::State& state) {
  abr::AbrEnvConfig cfg;
  netgym::Rng rng(1);
  for (auto _ : state) {
    auto env = abr::make_abr_env(cfg, rng);
    env->reset();
    bool done = false;
    int a = 0;
    while (!done) done = env->step(a++ % abr::kBitrateCount).done;
  }
}
BENCHMARK(BM_AbrEnvEpisode);

void BM_CcEnvEpisode(benchmark::State& state) {
  cc::CcEnvConfig cfg;
  netgym::Rng rng(1);
  for (auto _ : state) {
    auto env = cc::make_cc_env(cfg, rng);
    env->reset();
    bool done = false;
    int a = 0;
    while (!done) done = env->step(a++ % cc::kRateActionCount).done;
  }
}
BENCHMARK(BM_CcEnvEpisode);

void BM_LbEnvEpisode(benchmark::State& state) {
  lb::LbEnvConfig cfg;
  cfg.num_jobs = 500;
  netgym::Rng rng(1);
  for (auto _ : state) {
    auto env = lb::make_lb_env(cfg, rng);
    env->reset();
    bool done = false;
    int a = 0;
    while (!done) done = env->step(a++ % lb::kNumServers).done;
  }
}
BENCHMARK(BM_LbEnvEpisode);

void BM_MlpForward(benchmark::State& state) {
  netgym::Rng rng(1);
  nn::Mlp net({53, 32, 32, 9}, nn::Activation::kTanh, rng);
  std::vector<double> x(53, 0.3);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MlpForward);

void BM_MlpForwardBackward(benchmark::State& state) {
  netgym::Rng rng(1);
  nn::Mlp net({53, 32, 32, 9}, nn::Activation::kTanh, rng);
  std::vector<double> x(53, 0.3);
  std::vector<double> g(9, 0.1);
  for (auto _ : state) {
    net.forward(x);
    net.backward(g);
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_AdamStep(benchmark::State& state) {
  nn::Adam opt(3000);
  std::vector<double> params(3000, 0.1);
  std::vector<double> grads(3000, 0.01);
  for (auto _ : state) opt.step(params, grads);
}
BENCHMARK(BM_AdamStep);

void BM_GpFitPredict(benchmark::State& state) {
  netgym::Rng rng(1);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 15; ++i) {
    xs.push_back({rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1),
                  rng.uniform(0, 1), rng.uniform(0, 1)});
    ys.push_back(rng.uniform(-1, 1));
  }
  for (auto _ : state) {
    bo::GaussianProcess gp;
    gp.fit(xs, ys);
    benchmark::DoNotOptimize(gp.predict(xs[0]));
  }
}
BENCHMARK(BM_GpFitPredict);

void BM_BoProposeUpdate(benchmark::State& state) {
  bo::BayesianOptimizer opt(5, 1);
  netgym::Rng rng(2);
  for (auto _ : state) {
    const auto x = opt.propose();
    opt.update(x, rng.uniform(-1, 1));
  }
}
BENCHMARK(BM_BoProposeUpdate);

void BM_AbrTraceGeneration(benchmark::State& state) {
  netgym::AbrTraceParams params;
  params.duration_s = 200;
  netgym::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netgym::generate_abr_trace(params, rng));
  }
}
BENCHMARK(BM_AbrTraceGeneration);

void BM_OfflineOptimal(benchmark::State& state) {
  abr::AbrEnvConfig cfg;
  cfg.video_length_s = 120;
  netgym::Rng rng(1);
  auto env = abr::make_abr_env(cfg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abr::offline_optimal(*env, 32));
  }
}
BENCHMARK(BM_OfflineOptimal);

}  // namespace

BENCHMARK_MAIN();
