// Parallel-scaling microbenchmark: measures the wall-clock throughput of the
// two hot loops the thread pool accelerates — policy rollout collection
// (rl::collect_batch) and Genet's gap-to-baseline evaluation (Algorithm 2's
// CalcBaselineGap) — at 1, 2, 4, and all-hardware threads, and prints the
// speedup over the serial run. Because the engine is deterministic by
// construction, the work done at every thread count is identical; only the
// schedule changes, so the speedup is a clean measure of the pool.

#include <chrono>
#include <cstdio>
#include <vector>

#include "exp_common.hpp"
#include "netgym/parallel.hpp"
#include "rl/trainer.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One rollout-collection workload unit: a batch of episodes with a fresh
/// stochastic policy. Returns total transitions collected (work sanity).
std::size_t rollout_workload(const genet::TaskAdapter& adapter, int episodes) {
  netgym::Rng init(1);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, init);
  netgym::ConfigDistribution dist(adapter.space());
  const rl::EnvFactory factory = adapter.factory_for(dist);
  netgym::Rng rng(7);
  const rl::RolloutBatch batch =
      rl::collect_batch(policy, factory, rng, episodes,
                        defaults.max_steps_per_episode);
  return batch.size();
}

/// One gap-evaluation workload unit: CalcBaselineGap over `envs` paired
/// episodes, the inner loop of every BO trial.
double gap_workload(const genet::TaskAdapter& adapter,
                    const std::string& baseline, int envs) {
  netgym::Rng init(1);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, init);
  policy.set_greedy(true);
  netgym::Rng rng(13);
  return genet::gap_to_baseline(adapter, policy, baseline,
                                adapter.space().midpoint(), envs, rng);
}

template <typename Fn>
void run_at_thread_counts(const char* label, const Fn& workload) {
  const int hw = []() {
    netgym::set_num_threads(0);  // reset to the hardware default
    return netgym::num_threads();
  }();
  std::vector<int> counts{1, 2, 4};
  if (hw > 4) counts.push_back(hw);
  std::printf("\n%s\n", label);
  double serial_seconds = 0.0;
  for (int threads : counts) {
    netgym::set_num_threads(threads);
    // Warm-up run so pool creation and first-touch allocation stay out of
    // the timed region, then time the workload.
    workload();
    const auto start = std::chrono::steady_clock::now();
    workload();
    const double elapsed = seconds_since(start);
    if (threads == 1) serial_seconds = elapsed;
    std::printf("  %2d threads: %8.3f s   speedup %.2fx\n", threads, elapsed,
                serial_seconds / elapsed);
  }
  netgym::set_num_threads(0);
}

}  // namespace

int main() {
  bench::print_header(
      "Parallel scaling - rollout collection and gap evaluation",
      "deterministic thread-pool engine: identical results at every thread "
      "count, wall-clock drops with cores");

  auto abr = bench::make_adapter("abr", 3);
  auto cc = bench::make_adapter("cc", 3);

  run_at_thread_counts("rollout collection (ABR, 64 episodes)", [&] {
    return rollout_workload(*abr, 64);
  });
  run_at_thread_counts("gap-to-baseline evaluation (ABR vs MPC, 48 envs)",
                       [&] { return gap_workload(*abr, "mpc", 48); });
  run_at_thread_counts("gap-to-baseline evaluation (CC vs BBR, 48 envs)",
                       [&] { return gap_workload(*cc, "bbr", 48); });
  return 0;
}
