// Load harness for the serving daemon (DESIGN.md S5g): drives ~1e5
// simulated concurrent sessions through the batched request-coalescing
// path and reports exact (sorted, not histogram-bucketed) request-latency
// percentiles plus sustained requests/sec.
//
// Two modes:
//
//   self      (default) an in-process serve::Server on an ephemeral
//             localhost port, policies generated on the fly -- this is what
//             produces the committed BENCH_serve.json;
//   external  --port N or --unix PATH targets an already-running
//             genet_serve (the CI smoke job starts the daemon separately
//             and points the bench at it).
//
// Unless --no-swap, the run also proves hot swapping under fire: once half
// the requests are in flight a v2 checkpoint is dropped into the watch
// directory (atomic tmp+rename, same contract as the trainer), and the run
// FAILS unless (a) later responses carry the new policy version and (b) not
// a single request was dropped or answered with an error across the swap.
//
// Every client connection pipelines a window of act requests and matches
// responses by session id, so the server sees genuinely concurrent traffic
// per connection on top of the cross-connection concurrency.
//
// Exit is nonzero on any failed request, latency-accounting hole, or
// hot-swap violation; the JSON schema is validated by
// scripts/check_bench_json.py.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <utility>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "netgym/parse.hpp"
#include "netgym/rng.hpp"
#include "netgym/telemetry.hpp"
#include "rl/policy.hpp"
#include "serve/client.hpp"
#include "serve/policy_store.hpp"
#include "serve/server.hpp"

namespace {

struct Config {
  bool quick = false;
  std::string out = "BENCH_serve.json";
  long sessions = 100000;
  int rounds = 4;          // act requests per session
  int connections = 16;    // client connections (one thread each)
  int window = 64;         // pipelined requests in flight per connection
  int shards = 4;          // self-mode server shards
  int batch_max = 64;
  int batch_window_us = 100;
  bool swap = true;
  // External mode: target an already-running daemon.
  int port = 0;
  std::string unix_path;
  // External-mode hot swap: copy `swap_from` into `swap_dir` mid-run.
  std::string swap_from;
  std::string swap_dir;
};

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: bench_serve_load [options]
  --quick               small run for CI (fewer sessions/connections)
  --out FILE            JSON report path (default BENCH_serve.json)
  --sessions N          simulated concurrent sessions (default 100000)
  --rounds N            act requests per session (default 4)
  --connections N       client connections, one thread each (default 16)
  --window N            pipelined requests per connection (default 64)
  --shards N            self-mode server shards (default 4)
  --batch-max N         self-mode batch size cap (default 64)
  --batch-window-us N   self-mode straggler wait (default 100)
  --no-swap             skip the mid-run hot-swap check
  --port N              external mode: drive 127.0.0.1:N instead of an
                        in-process server
  --unix PATH           external mode: drive a Unix-socket daemon
  --swap-from FILE      external mode: checkpoint to hot-swap in mid-run...
  --swap-dir DIR        ...by atomically copying it into this watch dir
)");
  std::exit(2);
}

Config parse_args(int argc, char** argv) {
  Config cfg;
  const auto int_arg = [&](int& i, const char* flag, std::int64_t lo,
                           std::int64_t hi) {
    if (i + 1 >= argc) usage(("missing value for " + std::string(flag)).c_str());
    return netgym::parse_i64_in_range(flag, argv[++i], lo, hi);
  };
  const auto str_arg = [&](int& i, const char* flag) {
    if (i + 1 >= argc) usage(("missing value for " + std::string(flag)).c_str());
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") cfg.quick = true;
    else if (a == "--out") cfg.out = str_arg(i, "--out");
    else if (a == "--sessions")
      cfg.sessions = int_arg(i, "--sessions", 1, 100'000'000);
    else if (a == "--rounds")
      cfg.rounds = static_cast<int>(int_arg(i, "--rounds", 1, 10'000));
    else if (a == "--connections")
      cfg.connections = static_cast<int>(int_arg(i, "--connections", 1, 1024));
    else if (a == "--window")
      cfg.window = static_cast<int>(int_arg(i, "--window", 1, 65536));
    else if (a == "--shards")
      cfg.shards = static_cast<int>(int_arg(i, "--shards", 1, 256));
    else if (a == "--batch-max")
      cfg.batch_max = static_cast<int>(int_arg(i, "--batch-max", 1, 65536));
    else if (a == "--batch-window-us")
      cfg.batch_window_us =
          static_cast<int>(int_arg(i, "--batch-window-us", 0, 10'000'000));
    else if (a == "--no-swap") cfg.swap = false;
    else if (a == "--port")
      cfg.port = static_cast<int>(int_arg(i, "--port", 1, 65535));
    else if (a == "--unix") cfg.unix_path = str_arg(i, "--unix");
    else if (a == "--swap-from") cfg.swap_from = str_arg(i, "--swap-from");
    else if (a == "--swap-dir") cfg.swap_dir = str_arg(i, "--swap-dir");
    else usage(("unknown option " + a).c_str());
  }
  if (cfg.quick) {
    cfg.sessions = std::min<long>(cfg.sessions, 5000);
    cfg.connections = std::min(cfg.connections, 8);
  }
  return cfg;
}

/// Per-connection load results, merged after the join.
struct WorkerResult {
  std::vector<double> latencies_s;
  std::set<std::uint32_t> versions;
  long ok = 0;
  long failed = 0;
  std::uint32_t last_version = 0;
  std::string error;  // first failure detail, for the report
};

/// Drive one connection: its slice of sessions, `rounds` requests each,
/// pipelined `window` at a time, latencies matched by session id.
void run_worker(const Config& cfg, int port, const std::string& unix_path,
                long first_session, long session_count, int obs_size,
                std::atomic<long>& global_done, WorkerResult& result) {
  using Clock = std::chrono::steady_clock;
  try {
    serve::Client client = unix_path.empty()
                               ? serve::Client::connect_tcp(port)
                               : serve::Client::connect_unix(unix_path);
    result.latencies_s.reserve(
        static_cast<std::size_t>(session_count) * cfg.rounds);

    // Deterministic per-worker observations: contents don't matter to the
    // protocol, but keep them finite and varied so argmax isn't degenerate.
    std::vector<double> obs(static_cast<std::size_t>(obs_size));
    netgym::Rng rng(static_cast<std::uint64_t>(first_session) + 1);

    std::vector<Clock::time_point> sent(static_cast<std::size_t>(cfg.window));
    std::string out;
    for (int round = 0; round < cfg.rounds; ++round) {
      for (long base = 0; base < session_count; base += cfg.window) {
        const long chunk = std::min<long>(cfg.window, session_count - base);
        out.clear();
        for (long k = 0; k < chunk; ++k) {
          const std::uint64_t sid =
              static_cast<std::uint64_t>(first_session + base + k);
          for (double& v : obs) v = rng.uniform(-1.0, 1.0);
          sent[static_cast<std::size_t>(k)] = Clock::now();
          serve::encode_act(out, sid, obs.data(), obs.size());
        }
        client.send_raw(out);
        for (long k = 0; k < chunk; ++k) {
          const std::string body = client.read_frame();
          const Clock::time_point done = Clock::now();
          if (serve::type_of(body) == serve::MsgType::kError) {
            throw serve::ProtocolError("server error: " +
                                       serve::decode_error(body));
          }
          const serve::ActResponse r = serve::decode_act_ok(body);
          const long idx = static_cast<long>(r.session_id) - first_session -
                           base;
          if (idx < 0 || idx >= chunk) {
            throw serve::ProtocolError("response for unknown session id");
          }
          result.latencies_s.push_back(
              std::chrono::duration<double>(
                  done - sent[static_cast<std::size_t>(idx)])
                  .count());
          result.versions.insert(r.policy_version);
          result.last_version = r.policy_version;
          ++result.ok;
          global_done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // Release the server-side session state we created.
    for (long k = 0; k < session_count; ++k) {
      client.close_session(static_cast<std::uint64_t>(first_session + k));
    }
  } catch (const std::exception& e) {
    // Any unanswered pipelined request is a failure: the accounting below
    // compares ok against the expected total.
    result.failed = session_count * cfg.rounds - result.ok;
    result.error = e.what();
  }
}

/// Atomic checkpoint drop: copy into the watch dir under a temp name, then
/// rename -- the watcher can never observe a half-written file.
void drop_checkpoint(const std::string& from, const std::string& dir,
                     const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path tmp = fs::path(dir) / (name + ".tmp");
  const fs::path final_path = fs::path(dir) / name;
  fs::copy_file(from, tmp, fs::copy_options::overwrite_existing);
  fs::rename(tmp, final_path);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Server-side registry read-outs (self mode only): mean coalesced batch
/// size and total batches, from the telemetry registry the in-process
/// server records into.
struct ServerStats {
  double mean_batch = 0.0;
  double batches = 0.0;
  bool present = false;
  /// Per-request latency attribution (DESIGN.md S5j): snapshots of the
  /// serve.phase.* histograms, in the fixed phase order
  /// queue/batch/forward/write/total. Empty when the server recorded no
  /// phases (external mode or a pre-phase daemon).
  std::vector<std::pair<std::string, netgym::telemetry::Histogram::Snapshot>>
      phases;
};

ServerStats read_server_stats() {
  ServerStats stats;
  double batch_count = 0.0;
  double batch_sum = 0.0;
  std::map<std::string, netgym::telemetry::Histogram::Snapshot> phase_hists;
  for (const auto& entry :
       netgym::telemetry::Registry::instance().snapshot()) {
    if (entry.name == "serve.batch_size" &&
        entry.kind == netgym::telemetry::Registry::Kind::kHistogram) {
      batch_count = static_cast<double>(entry.hist.count);
      batch_sum = entry.hist.sum;
      stats.present = true;
    } else if (entry.name == "serve.batches") {
      stats.batches = entry.value;
    } else if (entry.name.rfind("serve.phase.", 0) == 0 &&
               entry.kind == netgym::telemetry::Registry::Kind::kHistogram) {
      // "serve.phase.queue_s" -> "queue"
      std::string phase = entry.name.substr(std::strlen("serve.phase."));
      const auto suffix = phase.rfind("_s");
      if (suffix != std::string::npos) phase.resize(suffix);
      phase_hists[phase] = entry.hist;
    }
  }
  if (batch_count > 0) stats.mean_batch = batch_sum / batch_count;
  for (const char* name : {"queue", "batch", "forward", "write", "total"}) {
    const auto it = phase_hists.find(name);
    if (it != phase_hists.end()) stats.phases.emplace_back(name, it->second);
  }
  return stats;
}

void write_json(const std::string& path, const Config& cfg, bool self_mode,
                long requests_total, long ok, long failed, double duration_s,
                const std::vector<double>& sorted_latencies,
                const std::set<std::uint32_t>& versions,
                std::uint32_t first_version, std::uint32_t last_version,
                bool swap_enabled, bool swap_observed,
                const ServerStats& stats) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  out << "{\n";
  out << "  \"bench\": \"serve\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"quick\": " << (cfg.quick ? "true" : "false") << ",\n";
  out << "  \"mode\": \"" << (self_mode ? "self" : "external") << "\",\n";
  out << "  \"sessions\": " << cfg.sessions << ",\n";
  out << "  \"rounds\": " << cfg.rounds << ",\n";
  out << "  \"connections\": " << cfg.connections << ",\n";
  out << "  \"window\": " << cfg.window << ",\n";
  out << "  \"shards\": " << cfg.shards << ",\n";
  out << "  \"batch_max\": " << cfg.batch_max << ",\n";
  out << "  \"batch_window_us\": " << cfg.batch_window_us << ",\n";
  out << "  \"requests_total\": " << requests_total << ",\n";
  out << "  \"ok_requests\": " << ok << ",\n";
  out << "  \"failed_requests\": " << failed << ",\n";
  out << "  \"duration_s\": " << num(duration_s) << ",\n";
  out << "  \"requests_per_s\": " << num(ok / duration_s) << ",\n";
  out << "  \"latency_ms\": {"
      << "\"p50\": " << num(percentile(sorted_latencies, 0.5) * 1e3)
      << ", \"p99\": " << num(percentile(sorted_latencies, 0.99) * 1e3)
      << ", \"p999\": " << num(percentile(sorted_latencies, 0.999) * 1e3)
      << ", \"max\": "
      << num((sorted_latencies.empty() ? 0.0 : sorted_latencies.back()) * 1e3)
      << "},\n";
  if (stats.present) {
    out << "  \"server\": {\"batches\": " << num(stats.batches)
        << ", \"mean_batch_size\": " << num(stats.mean_batch) << "},\n";
  }
  if (!stats.phases.empty()) {
    // Per-phase latency attribution: the four phases partition each acted
    // request's end-to-end time exactly (queue + batch + forward + write ==
    // total per request), validated by scripts/check_bench_json.py.
    out << "  \"phases\": {";
    bool first_phase = true;
    for (const auto& [name, hist] : stats.phases) {
      if (!first_phase) out << ", ";
      first_phase = false;
      const double mean =
          hist.count > 0 ? hist.sum / static_cast<double>(hist.count) : 0.0;
      out << "\"" << name << "\": {\"count\": " << hist.count
          << ", \"mean_ms\": " << num(mean * 1e3)
          << ", \"p50_ms\": " << num(hist.p50 * 1e3)
          << ", \"p99_ms\": " << num(hist.p99 * 1e3)
          << ", \"max_ms\": " << num(hist.max * 1e3) << "}";
    }
    out << "},\n";
  }
  out << "  \"hot_swap\": {"
      << "\"enabled\": " << (swap_enabled ? "true" : "false")
      << ", \"observed\": " << (swap_observed ? "true" : "false")
      << ", \"versions_seen\": [";
  bool first = true;
  for (const std::uint32_t v : versions) {
    if (!first) out << ", ";
    out << v;
    first = false;
  }
  out << "], \"first_version\": " << first_version
      << ", \"last_version\": " << last_version << "}\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  const bool self_mode = cfg.port == 0 && cfg.unix_path.empty();
  const bool swap_enabled =
      cfg.swap && (self_mode || (!cfg.swap_from.empty() &&
                                 !cfg.swap_dir.empty()));

  try {
    namespace fs = std::filesystem;
    std::unique_ptr<serve::Server> server;
    std::string watch_dir = cfg.swap_dir;
    std::string swap_source = cfg.swap_from;
    int port = cfg.port;

    if (self_mode) {
      // Self-contained fixture: two deterministic policies written to a
      // private watch dir, server started on v1 with the watcher armed.
      watch_dir = (fs::temp_directory_path() /
                   ("bench_serve_" + std::to_string(::getpid())))
                      .string();
      fs::create_directories(watch_dir);
      for (int v = 1; v <= 2; ++v) {
        netgym::Rng rng(static_cast<std::uint64_t>(v));
        rl::MlpPolicy policy(10, 6, {32, 32}, rng);
        const std::string name = "policy_v" + std::to_string(v) + ".ckpt";
        const std::string target = v == 1 ? watch_dir + "/" + name
                                          : watch_dir + "/pending_" + name;
        serve::write_policy_checkpoint(policy, "bench", target);
        if (v == 2) swap_source = target;
      }

      serve::ServerOptions sopt;
      sopt.tcp_port = 0;
      sopt.shards = cfg.shards;
      sopt.batch_max = cfg.batch_max;
      sopt.batch_window_us = cfg.batch_window_us;
      sopt.watch_dir = watch_dir;
      sopt.watch_poll_ms = 20;  // aggressive: the swap must land mid-run
      server = std::make_unique<serve::Server>(sopt);
      server->store().load_file(watch_dir + "/policy_v1.ckpt");
      server->start();
      port = server->port();
    }

    // Shape discovery + the version serving before any load.
    serve::Client probe = cfg.unix_path.empty()
                              ? serve::Client::connect_tcp(port)
                              : serve::Client::connect_unix(cfg.unix_path);
    const serve::HelloResponse hello = probe.hello();
    const std::uint32_t first_version = hello.policy_version;

    const long requests_total = cfg.sessions * cfg.rounds;
    std::printf("bench_serve_load: %ld sessions x %d requests over %d "
                "connections (%s, obs %u -> %u actions, policy v%u)\n",
                cfg.sessions, cfg.rounds, cfg.connections,
                self_mode ? "in-process server" : "external daemon",
                hello.obs_size, hello.action_count, first_version);

    std::vector<WorkerResult> results(
        static_cast<std::size_t>(cfg.connections));
    std::atomic<long> global_done{0};
    const long per_conn =
        (cfg.sessions + cfg.connections - 1) / cfg.connections;

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (int c = 0; c < cfg.connections; ++c) {
      const long first_session = static_cast<long>(c) * per_conn;
      const long count =
          std::max<long>(0, std::min<long>(per_conn,
                                           cfg.sessions - first_session));
      if (count == 0) break;
      workers.emplace_back(run_worker, std::cref(cfg), port,
                           std::cref(cfg.unix_path), first_session, count,
                           static_cast<int>(hello.obs_size),
                           std::ref(global_done),
                           std::ref(results[static_cast<std::size_t>(c)]));
    }

    // Hot swap under fire: wait for half the requests, drop v2 into the
    // watch directory, let the daemon's poller pick it up while the load
    // keeps running.
    bool swap_dropped = false;
    if (swap_enabled) {
      while (global_done.load(std::memory_order_relaxed) <
             requests_total / 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      drop_checkpoint(swap_source, watch_dir, "policy_v2.ckpt");
      swap_dropped = true;
      std::printf("  dropped v2 checkpoint after %ld requests\n",
                  global_done.load(std::memory_order_relaxed));
    }
    for (std::thread& t : workers) t.join();
    const double duration_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Merge.
    std::vector<double> latencies;
    std::set<std::uint32_t> versions;
    long ok = 0;
    long failed = 0;
    std::uint32_t last_version = 0;
    for (const WorkerResult& r : results) {
      latencies.insert(latencies.end(), r.latencies_s.begin(),
                       r.latencies_s.end());
      versions.insert(r.versions.begin(), r.versions.end());
      ok += r.ok;
      failed += r.failed;
      last_version = std::max(last_version, r.last_version);
      if (!r.error.empty()) {
        std::fprintf(stderr, "worker failure: %s\n", r.error.c_str());
      }
    }
    std::sort(latencies.begin(), latencies.end());

    // Short runs can finish before the watcher's next poll tick: if the
    // checkpoint was dropped but no load-phase response carried the new
    // version yet, probe (off the clock) until the swap lands. These drain
    // requests must succeed like any other but don't count toward the
    // throughput/latency numbers.
    long drain_requests = 0;
    if (swap_dropped && versions.size() < 2 && failed == 0) {
      const std::vector<double> obs(hello.obs_size, 0.25);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(15);
      while (std::chrono::steady_clock::now() < deadline) {
        const serve::ActResponse r =
            probe.act(0, obs.data(), obs.size());
        ++drain_requests;
        versions.insert(r.policy_version);
        last_version = r.policy_version;
        if (versions.size() >= 2) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (drain_requests > 0) {
        std::printf("  drained %ld extra requests waiting for the swap\n",
                    drain_requests);
      }
    }
    const bool swap_observed = versions.size() >= 2;

    const ServerStats stats =
        self_mode ? read_server_stats() : ServerStats{};
    if (server) server->stop();

    std::printf("  %ld/%ld ok in %.2fs  (%.0f requests/s)\n", ok,
                requests_total, duration_s, ok / duration_s);
    std::printf("  latency p50 %.3fms  p99 %.3fms  p99.9 %.3fms  max %.3fms\n",
                percentile(latencies, 0.5) * 1e3,
                percentile(latencies, 0.99) * 1e3,
                percentile(latencies, 0.999) * 1e3,
                (latencies.empty() ? 0.0 : latencies.back()) * 1e3);
    if (stats.present) {
      std::printf("  server: %.0f batches, mean batch size %.1f\n",
                  stats.batches, stats.mean_batch);
    }
    for (const auto& [name, hist] : stats.phases) {
      std::printf("  phase %-8s p50 %.3fms  p99 %.3fms  max %.3fms\n",
                  name.c_str(), hist.p50 * 1e3, hist.p99 * 1e3,
                  hist.max * 1e3);
    }
    if (swap_enabled) {
      std::printf("  hot swap: versions seen {");
      bool first = true;
      for (const std::uint32_t v : versions) {
        std::printf("%s%u", first ? "" : ", ", v);
        first = false;
      }
      std::printf("}, last response v%u\n", last_version);
    }

    write_json(cfg.out, cfg, self_mode, requests_total, ok, failed,
               duration_s, latencies, versions, first_version, last_version,
               swap_enabled, swap_observed, stats);
    std::printf("  wrote %s\n", cfg.out.c_str());

    if (self_mode) fs::remove_all(watch_dir);

    // Hard pass/fail: the bench is also the hot-swap correctness harness.
    int rc = 0;
    if (failed != 0 || ok != requests_total) {
      std::fprintf(stderr, "FAIL: %ld of %ld requests failed\n",
                   requests_total - ok, requests_total);
      rc = 1;
    }
    if (static_cast<long>(latencies.size()) != ok) {
      std::fprintf(stderr, "FAIL: latency accounting hole (%zu != %ld)\n",
                   latencies.size(), ok);
      rc = 1;
    }
    if (swap_enabled && swap_dropped && !swap_observed) {
      std::fprintf(stderr,
                   "FAIL: hot swap dropped but every response carried the "
                   "old policy version\n");
      rc = 1;
    }
    if (swap_enabled && swap_observed && last_version == first_version) {
      std::fprintf(stderr, "FAIL: final responses regressed to v%u\n",
                   first_version);
      rc = 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
