// Table 1: RL use cases and their reward definitions. Prints the reward
// weights wired into each simulator and verifies them on one concrete
// episode step per task, decomposing the observed reward into its terms.

#include <cstdio>

#include "abr/env.hpp"
#include "cc/env.hpp"
#include "exp_common.hpp"
#include "lb/env.hpp"

int main() {
  bench::print_header(
      "Table 1 - reward definitions",
      "ABR: sum(a*Rebuf + b*Bitrate + g*|Change|)/n, a=-10/s, b=1/Mbps, "
      "g=-1/Mbps; CC: sum(a*Thpt + b*Lat + c*Loss)/n, a=120/Mbps, b=-1000/s "
      "(one-way), c=-2000; LB: -sum(Delay)/n seconds");

  {
    const abr::RewardWeights w;
    std::printf("\nABR weights: alpha(rebuffer) %.1f  beta(bitrate) %.1f  "
                "gamma(change) %.1f\n",
                w.alpha_rebuffer, w.beta_bitrate, w.gamma_change);
    abr::AbrEnvConfig config;
    netgym::Rng rng(1);
    auto env = abr::make_abr_env(config, rng);
    env->reset();
    const auto out = env->chunk_transition(0, 0, 0, false, 0, 3);
    std::printf("  sample chunk @ ladder 3: bitrate %.2f Mbps, rebuffer "
                "%.2f s -> reward %.3f (= %.2f - 10*%.2f)\n",
                abr::bitrate_mbps(3), out.rebuffer_s, out.reward,
                abr::bitrate_mbps(3), out.rebuffer_s);
  }
  {
    const cc::CcRewardWeights w;
    std::printf("\nCC weights: a(throughput) %.1f  b(latency) %.1f  "
                "c(loss) %.1f\n",
                w.a_throughput, w.b_latency, w.c_loss);
    cc::CcEnvConfig config;
    netgym::Rng rng(1);
    auto env = cc::make_cc_env(config, rng);
    env->reset();
    const auto result = env->step(4);  // hold rate
    std::printf("  sample monitor interval: reward %.2f\n", result.reward);
  }
  {
    std::printf("\nLB reward: negative job completion delay (seconds)\n");
    lb::LbEnvConfig config;
    netgym::Rng rng(1);
    auto env = lb::make_lb_env(config, rng);
    env->reset();
    const double job = env->current_job_bytes();
    const auto result = env->step(0);
    std::printf("  sample job of %.0f bytes on server 0 (%.0f B/s): reward "
                "%.3f (= -delay)\n",
                job, env->server_rate_bytes_per_s(0), result.reward);
  }
  return 0;
}
