// Tables 3, 4, 5: the environment-parameter ranges of the RL1/RL2/RL3
// training distributions for ABR, CC, and LB. Prints every dimension with
// its range per space and its sampling scale (S4.2: "uniform or exponential
// along each parameter" -- log-scale dimensions are the exponential ones).

#include <cstdio>

#include "abr/env.hpp"
#include "cc/env.hpp"
#include "exp_common.hpp"
#include "lb/env.hpp"

namespace {

void print_space(const std::string& task) {
  std::printf("\n%s parameter ranges\n", task.c_str());
  std::printf("%-24s %-22s %-22s %-22s %s\n", "parameter", "RL1", "RL2",
              "RL3", "scale");
  const auto s1 = bench::make_adapter(task, 1)->space();
  const auto s2 = bench::make_adapter(task, 2)->space();
  const auto s3 = bench::make_adapter(task, 3)->space();
  for (std::size_t d = 0; d < s3.dims(); ++d) {
    char r1[64], r2[64], r3[64];
    std::snprintf(r1, sizeof(r1), "[%g, %g]", s1.param(d).lo, s1.param(d).hi);
    std::snprintf(r2, sizeof(r2), "[%g, %g]", s2.param(d).lo, s2.param(d).hi);
    std::snprintf(r3, sizeof(r3), "[%g, %g]", s3.param(d).lo, s3.param(d).hi);
    std::printf("%-24s %-22s %-22s %-22s %s\n", s3.param(d).name.c_str(), r1,
                r2, r3, s3.param(d).log_scale ? "log" : "linear");
  }
}

}  // namespace

int main() {
  bench::print_header("Tables 3-5 - RL1/RL2/RL3 environment ranges",
                      "nested parameter ranges per use case; RL1 narrow, "
                      "RL3 the full target space");
  print_space("abr");
  print_space("cc");
  print_space("lb");
  return 0;
}
