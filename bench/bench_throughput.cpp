// Throughput harness for the batched math layer and the loops it feeds:
//
//   inference  — ns/sample of the policy MLP under (a) the per-sample
//                forward loop, (b) the strict batched kernels, (c) the
//                fast-mode (AVX2/FMA when available) batched kernels, at
//                batch sizes 1..512, with the batched-vs-scalar speedup;
//   rollout    — env-steps/s of lockstepped rollout collection at 1/2/4/N
//                worker threads;
//   training   — full train_iteration updates/s for the LB A2C and CC PPO
//                trainers (rollout + batched update);
//   gap eval   — lockstep-batched gap-to-baseline evaluations/s, the inner
//                loop of every BO trial.
//
// Besides the human-readable table, the run writes a JSON report (default
// ./BENCH_throughput.json, override with --out) whose schema is validated by
// scripts/check_bench_json.py; CI runs `--quick` and asserts the batched
// path is not slower than the scalar one. The committed BENCH_throughput.json
// at the repo root is a full (non-quick) run.
//
// The inference section also double-checks the determinism contract inline:
// strict batched outputs must be bit-identical to the per-sample loop, and
// fast-mode outputs are reported with their worst relative deviation.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp_common.hpp"
#include "netgym/parallel.hpp"
#include "nn/gemm.hpp"
#include "nn/mlp.hpp"
#include "rl/trainer.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Wall-clock of `reps` calls to `fn`, after one untimed warm-up call.
double time_calls(const std::function<void()>& fn, long reps) {
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (long r = 0; r < reps; ++r) fn();
  return seconds_since(start);
}

struct InferenceRow {
  int batch = 0;
  double scalar_ns = 0.0;  // per sample
  double strict_ns = 0.0;
  double fast_ns = 0.0;
  bool strict_bit_identical = false;
  double fast_max_rel_err = 0.0;
  double strict_speedup() const { return scalar_ns / strict_ns; }
  double fast_speedup() const { return scalar_ns / fast_ns; }
};

// ---------------------------------------------------------------------------
// Raw GEMM core: one hidden-layer-shaped affine transform (W 32x32 + bias),
// batched vs the pre-batching per-sample matvec. This isolates the math core
// the batched layer replaced; the MLP rows below additionally carry the
// activation cost (std::tanh), which is identical on both paths and bounds
// the end-to-end gain (Amdahl).
// ---------------------------------------------------------------------------

std::vector<InferenceRow> bench_gemm(bool quick) {
  const int n_in = 32;
  const int n_out = 32;
  std::vector<double> w(static_cast<std::size_t>(n_out) * n_in);
  std::vector<double> bias(n_out);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = std::sin(0.05 * static_cast<double>(i + 1));
  }
  for (int i = 0; i < n_out; ++i) bias[i] = 0.01 * i;

  const long samples_target = quick ? 400000 : 4000000;
  std::vector<InferenceRow> rows;
  std::vector<double> wt(w.size());
  for (int batch : {1, 8, 32, 128, 512}) {
    std::vector<double> inputs(static_cast<std::size_t>(batch) * n_in);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = std::cos(0.1 * static_cast<double>(i + 1));
    }
    std::vector<double> out_scalar(static_cast<std::size_t>(batch) * n_out);
    std::vector<double> out_gemm(out_scalar.size());

    // The pre-batching shape: per sample, per output, a dot product over the
    // contiguous weight row.
    const auto scalar_pass = [&] {
      for (int m = 0; m < batch; ++m) {
        const double* a = inputs.data() + static_cast<std::size_t>(m) * n_in;
        double* c = out_scalar.data() + static_cast<std::size_t>(m) * n_out;
        for (int i = 0; i < n_out; ++i) {
          const double* wrow = w.data() + static_cast<std::size_t>(i) * n_in;
          double acc = bias[i];
          for (int j = 0; j < n_in; ++j) acc += wrow[j] * a[j];
          c[i] = acc;
        }
      }
    };
    // The batched layer: bias-row seed, per-call weight transpose (as
    // Mlp::forward_batch does), one GEMM over the whole batch.
    const auto batched_pass = [&] {
      for (int m = 0; m < batch; ++m) {
        std::copy(bias.begin(), bias.end(),
                  out_gemm.begin() + static_cast<std::size_t>(m) * n_out);
      }
      nn::transpose(n_out, n_in, w.data(), wt.data());
      nn::gemm_nn(batch, n_out, n_in, inputs.data(), wt.data(),
                  out_gemm.data());
    };

    InferenceRow row;
    row.batch = batch;
    scalar_pass();
    nn::set_math_mode(nn::MathMode::kStrict);
    batched_pass();
    row.strict_bit_identical =
        std::memcmp(out_gemm.data(), out_scalar.data(),
                    out_scalar.size() * sizeof(double)) == 0;
    nn::set_math_mode(nn::MathMode::kFast);
    batched_pass();
    for (std::size_t i = 0; i < out_scalar.size(); ++i) {
      const double denom = std::max(std::abs(out_scalar[i]), 1e-12);
      row.fast_max_rel_err =
          std::max(row.fast_max_rel_err,
                   std::abs(out_gemm[i] - out_scalar[i]) / denom);
    }
    nn::set_math_mode(nn::MathMode::kStrict);

    const long reps = std::max<long>(1, samples_target / batch);
    const double scalar_s = time_calls(scalar_pass, reps);
    const double strict_s = time_calls(batched_pass, reps);
    nn::set_math_mode(nn::MathMode::kFast);
    const double fast_s = time_calls(batched_pass, reps);
    nn::set_math_mode(nn::MathMode::kStrict);

    const double samples = static_cast<double>(reps) * batch;
    row.scalar_ns = scalar_s / samples * 1e9;
    row.strict_ns = strict_s / samples * 1e9;
    row.fast_ns = fast_s / samples * 1e9;
    rows.push_back(row);
  }
  return rows;
}

struct RolloutRow {
  std::string task;
  int threads = 0;
  double env_steps_per_s = 0.0;
  double speedup_vs_serial = 0.0;
};

struct TrainingRow {
  std::string task;
  std::string algo;
  double updates_per_s = 0.0;
  double env_steps_per_s = 0.0;
};

struct GapEvalRow {
  std::string task;
  std::string baseline;
  double episodes_per_s = 0.0;
};

// ---------------------------------------------------------------------------
// Inference microbenchmark
// ---------------------------------------------------------------------------

std::vector<InferenceRow> bench_inference(bool quick) {
  // A policy-sized net: observation-like input, two hidden layers of 32
  // (TrainerOptions defaults), a discrete action head.
  const std::vector<int> sizes{16, 32, 32, 8};
  netgym::Rng rng(42);
  nn::Mlp net(sizes, nn::Activation::kTanh, rng);
  const int in = sizes.front();
  const int out = sizes.back();

  const long samples_target = quick ? 200000 : 2000000;
  std::vector<InferenceRow> rows;
  for (int batch : {1, 8, 32, 128, 512}) {
    // One fixed input matrix per batch size (values don't affect timing).
    std::vector<double> inputs(static_cast<std::size_t>(batch) * in);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = std::sin(0.1 * static_cast<double>(i + 1));
    }
    InferenceRow row;
    row.batch = batch;

    // Reference outputs via the per-sample loop (row-major out matrix).
    std::vector<double> reference(static_cast<std::size_t>(batch) * out);
    std::vector<double> one(static_cast<std::size_t>(in));
    for (int b = 0; b < batch; ++b) {
      std::copy(inputs.begin() + static_cast<std::size_t>(b) * in,
                inputs.begin() + static_cast<std::size_t>(b + 1) * in,
                one.begin());
      const std::vector<double>& y = net.forward(one);
      std::copy(y.begin(), y.end(),
                reference.begin() + static_cast<std::size_t>(b) * out);
    }

    nn::set_math_mode(nn::MathMode::kStrict);
    const std::vector<double>& strict_out =
        net.forward_batch(inputs.data(), static_cast<std::size_t>(batch));
    row.strict_bit_identical =
        std::memcmp(strict_out.data(), reference.data(),
                    reference.size() * sizeof(double)) == 0;

    nn::set_math_mode(nn::MathMode::kFast);
    const std::vector<double>& fast_out =
        net.forward_batch(inputs.data(), static_cast<std::size_t>(batch));
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const double denom = std::max(std::abs(reference[i]), 1e-12);
      row.fast_max_rel_err = std::max(
          row.fast_max_rel_err, std::abs(fast_out[i] - reference[i]) / denom);
    }
    nn::set_math_mode(nn::MathMode::kStrict);

    const long reps = std::max<long>(1, samples_target / batch);
    const double scalar_s = time_calls(
        [&] {
          for (int b = 0; b < batch; ++b) {
            std::copy(inputs.begin() + static_cast<std::size_t>(b) * in,
                      inputs.begin() + static_cast<std::size_t>(b + 1) * in,
                      one.begin());
            net.forward(one);
          }
        },
        reps);
    const double strict_s = time_calls(
        [&] { net.forward_batch(inputs.data(), static_cast<std::size_t>(batch)); },
        reps);
    nn::set_math_mode(nn::MathMode::kFast);
    const double fast_s = time_calls(
        [&] { net.forward_batch(inputs.data(), static_cast<std::size_t>(batch)); },
        reps);
    nn::set_math_mode(nn::MathMode::kStrict);

    const double samples = static_cast<double>(reps) * batch;
    row.scalar_ns = scalar_s / samples * 1e9;
    row.strict_ns = strict_s / samples * 1e9;
    row.fast_ns = fast_s / samples * 1e9;
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Rollout / training / gap-eval workloads
// ---------------------------------------------------------------------------

std::size_t rollout_workload(const genet::TaskAdapter& adapter, int episodes) {
  netgym::Rng init(1);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, init);
  netgym::ConfigDistribution dist(adapter.space());
  const rl::EnvFactory factory = adapter.factory_for(dist);
  netgym::Rng rng(7);
  const rl::RolloutBatch batch = rl::collect_batch(
      policy, factory, rng, episodes, defaults.max_steps_per_episode);
  return batch.size();
}

std::vector<RolloutRow> bench_rollout(const genet::TaskAdapter& adapter,
                                      const std::string& task, bool quick) {
  const int episodes = quick ? 16 : 64;
  const int hw = []() {
    netgym::set_num_threads(0);
    return netgym::num_threads();
  }();
  std::vector<int> counts{1, 2, 4};
  if (hw > 4) counts.push_back(hw);
  std::vector<RolloutRow> rows;
  double serial_rate = 0.0;
  for (int threads : counts) {
    netgym::set_num_threads(threads);
    std::size_t steps = 0;
    const double elapsed =
        time_calls([&] { steps = rollout_workload(adapter, episodes); }, 1);
    RolloutRow row;
    row.task = task;
    row.threads = threads;
    row.env_steps_per_s = static_cast<double>(steps) / elapsed;
    if (threads == 1) serial_rate = row.env_steps_per_s;
    row.speedup_vs_serial = row.env_steps_per_s / serial_rate;
    rows.push_back(row);
  }
  netgym::set_num_threads(0);
  return rows;
}

TrainingRow bench_training(const genet::TaskAdapter& adapter,
                           const std::string& task, const std::string& algo,
                           bool quick) {
  const int iterations = quick ? 2 : 8;
  auto trainer = adapter.make_trainer(/*seed=*/1);
  netgym::ConfigDistribution dist(adapter.space());
  const rl::EnvFactory factory = adapter.factory_for(dist);
  trainer->train_iteration(factory);  // warm-up (pool + first allocations)
  long steps = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    steps += trainer->train_iteration(factory).steps;
  }
  const double elapsed = seconds_since(start);
  TrainingRow row;
  row.task = task;
  row.algo = algo;
  row.updates_per_s = iterations / elapsed;
  row.env_steps_per_s = static_cast<double>(steps) / elapsed;
  return row;
}

GapEvalRow bench_gap_eval(const genet::TaskAdapter& adapter,
                          const std::string& task,
                          const std::string& baseline, bool quick) {
  const int envs = quick ? 12 : 48;
  netgym::Rng init(1);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, init);
  policy.set_greedy(true);
  const double elapsed = time_calls(
      [&] {
        netgym::Rng rng(13);
        genet::gap_to_baseline(adapter, policy, baseline,
                               adapter.space().midpoint(), envs, rng);
      },
      1);
  GapEvalRow row;
  row.task = task;
  row.baseline = baseline;
  // Each env evaluates one RL episode plus one baseline episode.
  row.episodes_per_s = 2.0 * envs / elapsed;
  return row;
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

void write_json(const std::string& path, bool quick,
                const std::vector<InferenceRow>& gemm,
                const std::vector<InferenceRow>& inference,
                const std::vector<RolloutRow>& rollout,
                const std::vector<TrainingRow>& training,
                const std::vector<GapEvalRow>& gap_eval) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  char buf[256];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto rows_json = [&](const std::vector<InferenceRow>& rows) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const InferenceRow& r = rows[i];
      out << "    {\"batch\": " << r.batch
          << ", \"scalar_ns_per_sample\": " << num(r.scalar_ns)
          << ", \"strict_ns_per_sample\": " << num(r.strict_ns)
          << ", \"fast_ns_per_sample\": " << num(r.fast_ns)
          << ", \"strict_speedup\": " << num(r.strict_speedup())
          << ", \"fast_speedup\": " << num(r.fast_speedup())
          << ", \"strict_bit_identical\": "
          << (r.strict_bit_identical ? "true" : "false")
          << ", \"fast_max_rel_err\": " << num(r.fast_max_rel_err) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
  };
  double speedup_at_32 = 0.0;
  double fast_speedup_at_32 = 0.0;
  for (const InferenceRow& r : gemm) {
    if (r.batch == 32) {
      speedup_at_32 = r.strict_speedup();
      fast_speedup_at_32 = r.fast_speedup();
    }
  }
  double mlp_speedup_at_32 = 0.0;
  for (const InferenceRow& r : inference) {
    if (r.batch == 32) mlp_speedup_at_32 = r.strict_speedup();
  }
  out << "{\n";
  out << "  \"bench\": \"throughput\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"threads_available\": " << netgym::num_threads() << ",\n";
  out << "  \"cpu_avx2_fma\": " << (nn::cpu_has_avx2_fma() ? "true" : "false")
      << ",\n";
  out << "  \"gemm\": [\n";
  rows_json(gemm);
  out << "  ],\n";
  out << "  \"inference\": [\n";
  rows_json(inference);
  out << "  ],\n";
  out << "  \"rollout\": [\n";
  for (std::size_t i = 0; i < rollout.size(); ++i) {
    const RolloutRow& r = rollout[i];
    out << "    {\"task\": \"" << r.task << "\", \"threads\": " << r.threads
        << ", \"env_steps_per_s\": " << num(r.env_steps_per_s)
        << ", \"speedup_vs_serial\": " << num(r.speedup_vs_serial) << "}"
        << (i + 1 < rollout.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"training\": [\n";
  for (std::size_t i = 0; i < training.size(); ++i) {
    const TrainingRow& r = training[i];
    out << "    {\"task\": \"" << r.task << "\", \"algo\": \"" << r.algo
        << "\", \"updates_per_s\": " << num(r.updates_per_s)
        << ", \"env_steps_per_s\": " << num(r.env_steps_per_s) << "}"
        << (i + 1 < training.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"gap_eval\": [\n";
  for (std::size_t i = 0; i < gap_eval.size(); ++i) {
    const GapEvalRow& r = gap_eval[i];
    out << "    {\"task\": \"" << r.task << "\", \"baseline\": \""
        << r.baseline << "\", \"episodes_per_s\": " << num(r.episodes_per_s)
        << "}" << (i + 1 < gap_eval.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"summary\": {\"batched_speedup_at_32\": " << num(speedup_at_32)
      << ", \"fast_speedup_at_32\": " << num(fast_speedup_at_32)
      << ", \"mlp_strict_speedup_at_32\": " << num(mlp_speedup_at_32)
      << ", \"target_speedup_at_32\": 2.0}\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bool quick = false;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
      ++i;
    }
  }

  bench::print_header(
      "Throughput - batched inference, rollout, training, gap evaluation",
      "batched GEMM core: >= 2x inference throughput at batch 32 with "
      "bit-identical strict-mode results");

  const auto print_rows = [](const std::vector<InferenceRow>& rows) {
    std::printf("  %6s %12s %12s %12s %9s %9s  %s\n", "batch", "scalar",
                "strict", "fast", "strict x", "fast x", "checks");
    for (const InferenceRow& r : rows) {
      std::printf(
          "  %6d %12.1f %12.1f %12.1f %8.2fx %8.2fx  %s, rel err %.1e\n",
          r.batch, r.scalar_ns, r.strict_ns, r.fast_ns, r.strict_speedup(),
          r.fast_speedup(),
          r.strict_bit_identical ? "bit-identical" : "MISMATCH",
          r.fast_max_rel_err);
    }
  };
  const auto all_bit_identical = [](const std::vector<InferenceRow>& rows) {
    for (const InferenceRow& r : rows) {
      if (!r.strict_bit_identical) {
        std::fprintf(stderr,
                     "error: strict batched result differs from per-sample "
                     "result at batch %d\n",
                     r.batch);
        return false;
      }
    }
    return true;
  };

  std::printf("\ngemm core (affine layer 32x32 + bias, ns/sample)\n");
  const std::vector<InferenceRow> gemm = bench_gemm(quick);
  print_rows(gemm);
  if (!all_bit_identical(gemm)) return 1;

  std::printf("\ninference (MLP 16-32-32-8 forward incl. tanh, ns/sample)\n");
  const std::vector<InferenceRow> inference = bench_inference(quick);
  print_rows(inference);
  if (!all_bit_identical(inference)) return 1;

  auto abr = bench::make_adapter("abr", 3);
  auto cc = bench::make_adapter("cc", 3);
  auto lb = bench::make_adapter("lb", 3);

  std::printf("\nrollout collection (ABR, %d episodes, lockstep)\n",
              quick ? 16 : 64);
  const std::vector<RolloutRow> rollout = bench_rollout(*abr, "abr", quick);
  for (const RolloutRow& r : rollout) {
    std::printf("  %2d threads: %10.0f env-steps/s   speedup %.2fx\n",
                r.threads, r.env_steps_per_s, r.speedup_vs_serial);
  }

  std::printf("\ntraining iterations (batched update path)\n");
  std::vector<TrainingRow> training;
  training.push_back(bench_training(*lb, "lb", "a2c", quick));
  training.push_back(bench_training(*cc, "cc", "ppo", quick));
  for (const TrainingRow& r : training) {
    std::printf("  %-3s %-4s: %6.2f updates/s  %10.0f env-steps/s\n",
                r.task.c_str(), r.algo.c_str(), r.updates_per_s,
                r.env_steps_per_s);
  }

  std::printf("\ngap-to-baseline evaluation (lockstep batched)\n");
  std::vector<GapEvalRow> gap_eval;
  gap_eval.push_back(bench_gap_eval(*abr, "abr", "mpc", quick));
  gap_eval.push_back(bench_gap_eval(*cc, "cc", "bbr", quick));
  for (const GapEvalRow& r : gap_eval) {
    std::printf("  %-3s vs %-6s: %8.1f episodes/s\n", r.task.c_str(),
                r.baseline.c_str(), r.episodes_per_s);
  }

  write_json(out_path, quick, gemm, inference, rollout, training, gap_eval);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
