#include "exp_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "netgym/checkpoint.hpp"
#include "nn/gemm.hpp"
#include "netgym/flight.hpp"
#include "netgym/health.hpp"
#include "netgym/parallel.hpp"
#include "netgym/parse.hpp"
#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"

namespace bench {

namespace {

std::string g_checkpoint_dir;

/// Snapshot path for one zoo training run; "" when checkpointing is off.
/// Creating the directory lazily keeps --checkpoint-dir side-effect free for
/// harnesses that end up fully cache-hitting the model zoo.
std::string checkpoint_path_for(const std::string& key) {
  if (g_checkpoint_dir.empty()) return "";
  std::filesystem::create_directories(g_checkpoint_dir);
  return (std::filesystem::path(g_checkpoint_dir) / (key + ".ckpt")).string();
}

}  // namespace

void set_checkpoint_dir(const std::string& dir) { g_checkpoint_dir = dir; }

const std::string& checkpoint_dir() { return g_checkpoint_dir; }

int traditional_iterations(const std::string& task) {
  if (task == "abr") return 6000;
  if (task == "cc") return 600;
  if (task == "lb") return 720;
  throw std::invalid_argument("traditional_iterations: unknown task " + task);
}

genet::CurriculumOptions curriculum_options(const std::string& task,
                                            std::uint64_t seed) {
  genet::CurriculumOptions options;
  options.rounds = 9;
  options.iters_per_round = traditional_iterations(task) / options.rounds;
  options.seed = seed;
  return options;
}

genet::SearchOptions search_options() {
  genet::SearchOptions options;
  options.bo_trials = 15;
  options.envs_per_eval = 10;
  return options;
}

std::unique_ptr<genet::TaskAdapter> make_adapter(const std::string& task,
                                                 int space) {
  return make_adapter(task, space, genet::TraceMixOptions{});
}

std::unique_ptr<genet::TaskAdapter> make_adapter(
    const std::string& task, int space, genet::TraceMixOptions traces) {
  if (task == "abr") {
    return std::make_unique<genet::AbrAdapter>(space, std::move(traces));
  }
  if (task == "cc") {
    return std::make_unique<genet::CcAdapter>(space, std::move(traces));
  }
  if (task == "lb") return std::make_unique<genet::LbAdapter>(space);
  throw std::invalid_argument("make_adapter: unknown task " + task);
}

std::vector<double> traditional_params(genet::ModelZoo& zoo,
                                       const genet::TaskAdapter& adapter,
                                       const std::string& task, int space,
                                       std::uint64_t seed, int iterations) {
  const std::string key = task + "-rl" + std::to_string(space) + "-seed" +
                          std::to_string(seed) + "-it" +
                          std::to_string(iterations);
  // Spec-describable trainings (synthetic-only adapters) go through the
  // batch path so a dist::Coordinator's train-model hook can ship them to
  // worker processes; results are bit-identical either way because the
  // worker rebuilds the same adapter from the spec and runs the same
  // train_traditional. Checkpoint-dir resume stays local: mid-training
  // snapshots are a coordinator-side feature the workers don't have.
  if (!zoo.contains(key) && g_checkpoint_dir.empty() &&
      !adapter.dist_spec().empty()) {
    genet::ModelZoo::TrainSpec spec;
    spec.key = key;
    spec.adapter_spec = adapter.dist_spec();
    spec.iterations = iterations;
    spec.seed = seed;
    std::fprintf(stderr, "[train] %s ...\n", key.c_str());
    return zoo.get_or_train_batch({spec}).front();
  }
  return zoo.get_or_train(key, [&] {
    std::fprintf(stderr, "[train] %s ...\n", key.c_str());
    const std::string ckpt = checkpoint_path_for(key);
    if (ckpt.empty()) {
      return genet::train_traditional(adapter, iterations, seed)->snapshot();
    }
    std::unique_ptr<rl::ActorCriticBase> trainer = adapter.make_trainer(seed);
    if (std::filesystem::exists(ckpt)) {
      trainer->load_state(netgym::checkpoint::read_file(ckpt), "trainer/");
      std::fprintf(stderr, "[resume] %s from iteration %ld\n", key.c_str(),
                   trainer->iterations());
    }
    netgym::ConfigDistribution dist(adapter.space());
    const rl::EnvFactory factory = adapter.factory_for(dist);
    for (long i = trainer->iterations(); i < iterations; ++i) {
      trainer->train_iteration(factory);
      if ((i + 1) % 10 == 0 || i + 1 == iterations) {
        netgym::checkpoint::Snapshot snap;
        trainer->save_state(snap, "trainer/");
        netgym::checkpoint::write_file(snap, ckpt);
      }
    }
    return trainer->snapshot();
  });
}

std::vector<double> genet_params(genet::ModelZoo& zoo,
                                 const genet::TaskAdapter& adapter,
                                 const std::string& task,
                                 const std::string& baseline,
                                 std::uint64_t seed) {
  const std::string key =
      task + "-genet-" + baseline + "-seed" + std::to_string(seed);
  return curriculum_params(
      zoo, adapter, key,
      [&] {
        return std::make_unique<genet::GenetScheme>(baseline,
                                                    search_options());
      },
      seed);
}

std::vector<double> curriculum_params(
    genet::ModelZoo& zoo, const genet::TaskAdapter& adapter,
    const std::string& key,
    const std::function<std::unique_ptr<genet::CurriculumScheme>()>&
        make_scheme,
    std::uint64_t seed) {
  return zoo.get_or_train(key, [&] {
    std::fprintf(stderr, "[train] %s ...\n", key.c_str());
    const genet::CurriculumOptions options =
        curriculum_options(adapter.name(), seed);
    genet::CurriculumTrainer trainer(adapter, make_scheme(), options);
    const std::string ckpt = checkpoint_path_for(key);
    if (!ckpt.empty() && std::filesystem::exists(ckpt)) {
      trainer.load_checkpoint(ckpt);
      std::fprintf(stderr, "[resume] %s from round %d\n", key.c_str(),
                   trainer.rounds_completed());
    }
    while (trainer.rounds_completed() < options.rounds) {
      trainer.run_round();
      if (!ckpt.empty()) trainer.save_checkpoint(ckpt);
    }
    return trainer.trainer().snapshot();
  });
}

std::unique_ptr<rl::MlpPolicy> make_policy(const genet::TaskAdapter& adapter,
                                           const std::vector<double>& params) {
  netgym::Rng init_rng(0);
  rl::TrainerOptions defaults;
  auto policy = std::make_unique<rl::MlpPolicy>(
      adapter.obs_size(), adapter.action_count(), defaults.hidden, init_rng);
  policy->restore(params);
  policy->set_greedy(true);
  return policy;
}

void parallel_sweep(int n, std::uint64_t seed,
                    const std::function<void(int, netgym::Rng&)>& body) {
  if (n <= 0) return;
  netgym::Rng root(seed);
  std::vector<netgym::Rng> streams;
  streams.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) streams.push_back(root.fork());
  netgym::parallel_for_each(static_cast<std::size_t>(n), [&](std::size_t i) {
    body(static_cast<int>(i), streams[i]);
  });
}

void parse_common_flags(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      // Strict parse: `--threads garbage` used to become atoi's 0 (silently
      // clamped to 1 thread); now it exits nonzero with a usage message.
      std::int64_t threads = 0;
      if (!netgym::parse_i64(argv[i + 1], threads) || threads < 1) {
        std::fprintf(stderr,
                     "error: --threads expects a positive integer, got '%s'\n"
                     "usage: %s [--threads N] [--log-file F] [--trace-out F] "
                     "[--flight-out F] [--checkpoint-dir D]\n",
                     argv[i + 1], argv[0]);
        std::exit(2);
      }
      netgym::set_num_threads(static_cast<int>(threads));
      ++i;
    } else if (std::strcmp(argv[i], "--log-file") == 0) {
      netgym::telemetry::open_global_logger(argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      netgym::tracing::install(argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--flight-out") == 0) {
      netgym::flight::install(argv[i + 1]);
      ++i;
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      set_checkpoint_dir(argv[i + 1]);
      ++i;
    }
  }
}

void print_header(const std::string& experiment, const std::string& claim) {
  netgym::telemetry::open_global_logger_from_env();
  netgym::tracing::install_from_env();
  netgym::flight::install_from_env();
  netgym::health::install_from_env();  // GENET_HEALTH[_FAIL_FAST]
  if (g_checkpoint_dir.empty()) {
    const char* env = std::getenv("GENET_CHECKPOINT_DIR");
    if (env != nullptr && env[0] != '\0') set_checkpoint_dir(env);
  }
  netgym::telemetry::log_event("run_start", 0,
                               {{"experiment", experiment}, {"claim", claim}});
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("math: %s (%s kernels)\n", nn::math_mode_name(nn::math_mode()),
              nn::active_kernel_name());
  std::printf("================================================================\n");
}

void print_row(const std::string& label, const std::vector<double>& values,
               int width, int precision) {
  std::printf("%-28s", label.c_str());
  for (double v : values) std::printf(" %*.*f", width, precision, v);
  std::printf("\n");
}

}  // namespace bench
