#pragma once

// Shared machinery of the experiment harnesses in bench/. Each binary
// regenerates one table or figure of the paper; models that several figures
// share (the RL1/RL2/RL3 and Genet policies per task) are trained once and
// cached in a ModelZoo directory (./genet_models by default, override with
// GENET_MODEL_DIR). Training is deterministic from the seed, so a cold
// cache reproduces identical numbers.
//
// Budgets are scaled to a single core (see DESIGN.md S4, substitution 6):
// the paper trained on clusters; we keep the comparative structure, not the
// absolute sample counts.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "genet/zoo.hpp"
#include "rl/policy.hpp"

namespace bench {

/// Per-task training budgets (iterations of the task's trainer).
int traditional_iterations(const std::string& task);

/// Curriculum schedule with the same total training budget as the
/// traditional runs: 9 rounds (S4.2) of budget/9 iterations.
genet::CurriculumOptions curriculum_options(const std::string& task,
                                            std::uint64_t seed);

/// BO search options used by every curriculum harness (paper defaults:
/// 15 trials, k = 10 envs per gap estimate).
genet::SearchOptions search_options();

/// Adapter factory: task in {"abr", "cc", "lb"}, space in 1..3.
std::unique_ptr<genet::TaskAdapter> make_adapter(const std::string& task,
                                                 int space);
std::unique_ptr<genet::TaskAdapter> make_adapter(
    const std::string& task, int space, genet::TraceMixOptions traces);

/// Train (or load from the zoo) a traditionally trained policy on the given
/// space; key example: "abr-rl3-seed1-it3000".
std::vector<double> traditional_params(genet::ModelZoo& zoo,
                                       const genet::TaskAdapter& adapter,
                                       const std::string& task, int space,
                                       std::uint64_t seed, int iterations);

/// Train (or load) a Genet-curriculum policy guided by `baseline`.
std::vector<double> genet_params(genet::ModelZoo& zoo,
                                 const genet::TaskAdapter& adapter,
                                 const std::string& task,
                                 const std::string& baseline,
                                 std::uint64_t seed);

/// Train (or load) a policy under an arbitrary curriculum scheme; the key
/// must uniquely describe the scheme.
std::vector<double> curriculum_params(
    genet::ModelZoo& zoo, const genet::TaskAdapter& adapter,
    const std::string& key,
    const std::function<std::unique_ptr<genet::CurriculumScheme>()>&
        make_scheme,
    std::uint64_t seed);

/// Greedy policy wrapping cached parameters.
std::unique_ptr<rl::MlpPolicy> make_policy(const genet::TaskAdapter& adapter,
                                           const std::vector<double>& params);

/// Per-config sweep engine: runs `body(index, rng)` for every index in
/// [0, n) across the global netgym thread pool. One RNG stream per index is
/// forked serially from `seed` before any work starts, so results are
/// bit-identical at any thread count; `body` must only write per-index
/// state (its own result slots) and must build its own policies/trainers
/// rather than sharing mutable ones across indices.
void parallel_sweep(int n, std::uint64_t seed,
                    const std::function<void(int, netgym::Rng&)>& body);

/// Common command-line controls for the experiment harnesses:
///   --threads N         resize the global rollout/evaluation pool
///   --log-file F        write the run's JSONL telemetry trajectory to F
///   --trace-out F       write a Chrome trace-event JSON span timeline to F
///   --flight-out F      dump the worst-k episode flight recordings to F
///   --checkpoint-dir D  crash-safe training snapshots: every zoo training
///                       run saves D/<key>.ckpt per curriculum round (every
///                       10 iterations for traditional runs) and resumes
///                       from it when present, so a killed harness re-run
///                       picks up mid-training with bit-identical results
/// Unrecognized arguments are ignored so harnesses stay free to add their
/// own. Call from main() before any work starts.
void parse_common_flags(int argc, char** argv);

/// Snapshot directory used by `traditional_params`/`curriculum_params`
/// (empty = checkpointing disabled). `print_header` seeds it from the
/// GENET_CHECKPOINT_DIR environment variable unless already set.
void set_checkpoint_dir(const std::string& dir);
const std::string& checkpoint_dir();

/// Pretty-printing helpers: every harness leads with the experiment id and
/// what the paper's version of the plot shows. `print_header` also installs
/// a JSONL telemetry sink from the GENET_LOG environment variable (unless a
/// sink is already installed, e.g. via --log-file), honours GENET_TRACE /
/// GENET_FLIGHT / GENET_HEALTH (training-health watchdog + its JSONL sink;
/// GENET_HEALTH_FAIL_FAST=1 aborts on non-finite values) the same way, and
/// emits a "run_start" event, so *every* bench can write a machine-readable
/// trajectory.
void print_header(const std::string& experiment, const std::string& claim);
void print_row(const std::string& label, const std::vector<double>& values,
               int width = 10, int precision = 3);

}  // namespace bench
