// Adaptive bitrate streaming scenario: stream one video session over a
// fluctuating synthetic link with three controllers -- BBA, RobustMPC, and
// the offline optimal -- and print the per-chunk decisions each one makes.
// This exercises the ABR simulator and baseline stack directly (no RL), the
// way S2's motivation compares rule-based schemes.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/env.hpp"
#include "abr/optimal.hpp"

namespace {

void stream_once(const char* name, netgym::Policy& policy,
                 const abr::AbrEnvConfig& config, const netgym::Trace& trace) {
  abr::AbrEnv env(config, trace, /*seed=*/7);
  netgym::Rng rng(1);
  policy.begin_episode();
  netgym::Observation obs = env.reset();
  double total = 0.0;
  std::string decisions;
  bool done = false;
  while (!done) {
    const int action = policy.act(obs, rng);
    decisions += std::to_string(action);
    const auto result = env.step(action);
    total += result.reward;
    done = result.done;
    obs = result.observation;
  }
  std::printf("  %-10s total reward %7.2f  bitrate choices: %s\n", name,
              total, decisions.c_str());
}

}  // namespace

int main() {
  // A mid-grade mobile connection: 0.7-3.5 Mbps changing every ~6 seconds.
  abr::AbrEnvConfig config;
  config.video_length_s = 120.0;
  config.chunk_length_s = 4.0;
  config.max_buffer_s = 25.0;
  config.min_rtt_ms = 80.0;

  netgym::AbrTraceParams trace_params;
  trace_params.min_bw_mbps = 0.7;
  trace_params.max_bw_mbps = 3.5;
  trace_params.bw_change_interval_s = 6.0;
  trace_params.duration_s = 400.0;
  netgym::Rng trace_rng(2024);
  const netgym::Trace trace =
      netgym::generate_abr_trace(trace_params, trace_rng);

  std::printf("video: %.0f s in %.0f s chunks, link %.1f-%.1f Mbps\n",
              config.video_length_s, config.chunk_length_s,
              trace_params.min_bw_mbps, trace_params.max_bw_mbps);
  std::printf("bitrate ladder indices 0..5 = {0.3, 0.75, 1.2, 1.85, 2.85, "
              "4.3} Mbps\n\n");

  abr::BbaPolicy bba;
  stream_once("BBA", bba, config, trace);
  abr::RobustMpcPolicy mpc;
  stream_once("RobustMPC", mpc, config, trace);

  // Offline optimal with full future knowledge (upper bound).
  abr::AbrEnv plan_env(config, trace, 7);
  const abr::OptimalPlan plan = abr::offline_optimal(plan_env, 64);
  std::string plan_str;
  for (int b : plan.bitrates) plan_str += std::to_string(b);
  std::printf("  %-10s total reward %7.2f  bitrate choices: %s\n", "optimal",
              plan.total_reward, plan_str.c_str());
  return 0;
}
