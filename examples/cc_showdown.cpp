// Congestion-control scenario: run every rule-based controller (Cubic, BBR,
// Vivace, Copa) plus the omniscient oracle over the same set of links --
// a clean ethernet-like link, a lossy link, and a volatile cellular-like
// link -- and print the Pantheon-style breakdown (throughput, latency,
// loss, Table-1 reward) for each. Exercises the CC simulator and the whole
// baseline stack.

#include <cstdio>
#include <memory>

#include "cc/baselines.hpp"
#include "cc/env.hpp"
#include "traces/tracesets.hpp"

namespace {

void run_on(const char* scenario, const cc::CcEnvConfig& config,
            const netgym::Trace& trace) {
  std::printf("%s (capacity ~%.1f Mbps, RTT %.0f ms, queue %.0f pkts, "
              "loss %.1f%%)\n",
              scenario, trace.mean_bandwidth(), config.min_rtt_ms,
              config.queue_packets, config.loss_rate * 100);
  std::printf("  %-8s %12s %13s %9s %9s\n", "scheme", "thpt (Mbps)",
              "latency (ms)", "loss (%)", "reward");

  const char* names[] = {"cubic", "bbr", "vivace", "copa", "oracle"};
  for (const char* name : names) {
    cc::CcEnv env(config, trace, /*seed=*/11);
    std::unique_ptr<netgym::Policy> policy;
    const std::string n = name;
    if (n == "cubic") policy = std::make_unique<cc::CubicPolicy>();
    if (n == "bbr") policy = std::make_unique<cc::BbrPolicy>();
    if (n == "vivace") policy = std::make_unique<cc::VivacePolicy>();
    if (n == "copa") policy = std::make_unique<cc::CopaPolicy>();
    if (n == "oracle") policy = std::make_unique<cc::OraclePolicy>(env);
    netgym::Rng rng(3);
    const netgym::EpisodeStats stats =
        netgym::run_episode(env, *policy, rng);
    const cc::CcEnv::Totals& totals = env.totals();
    std::printf("  %-8s %12.2f %13.1f %9.2f %9.1f\n", name,
                totals.mean_throughput_mbps(config.duration_s),
                totals.mean_latency_s() * 1000.0,
                totals.loss_fraction() * 100.0, stats.mean_reward);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  {
    cc::CcEnvConfig config;
    config.min_rtt_ms = 40.0;
    config.queue_packets = 60.0;
    const netgym::Trace trace =
        traces::make_trace(traces::TraceSet::kEthernet, /*test=*/false, 0);
    run_on("ethernet-like link", config, trace);
  }
  {
    cc::CcEnvConfig config;
    config.min_rtt_ms = 80.0;
    config.queue_packets = 40.0;
    config.loss_rate = 0.02;  // random loss: Cubic's weak spot (S4.2)
    const netgym::Trace trace =
        traces::make_trace(traces::TraceSet::kEthernet, false, 1);
    run_on("lossy link", config, trace);
  }
  {
    cc::CcEnvConfig config;
    config.min_rtt_ms = 120.0;
    config.queue_packets = 25.0;
    const netgym::Trace trace =
        traces::make_trace(traces::TraceSet::kCellular, false, 0);
    run_on("cellular-like link", config, trace);
  }
  return 0;
}
