// Curriculum anatomy: watch Genet's sequencing module at work. For one
// snapshot of a partially trained ABR policy, run the Bayesian-optimization
// search for the configuration with the largest gap-to-baseline and print
// every trial -- the probed configuration, the estimated gap -- followed by
// the chosen environment. This is the inner loop of Algorithm 2 made
// visible, and the seed of Fig. 20.

#include <cstdio>

#include "bo/search.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"

int main() {
  genet::AbrAdapter adapter(/*space_id=*/3);

  std::printf("pretraining an ABR policy for 300 iterations...\n");
  auto trainer = genet::train_traditional(adapter, 300, /*seed=*/5);
  trainer->policy().set_greedy(true);

  const netgym::ConfigSpace& space = adapter.space();
  bo::BayesianOptimizer optimizer(static_cast<int>(space.dims()), 99);
  netgym::Rng rng(17);

  std::printf("\nBO search for the largest gap-to-baseline (baseline: "
              "RobustMPC)\n");
  std::printf("%-6s", "trial");
  for (const auto& p : space.params()) std::printf(" %14s", p.name.c_str());
  std::printf(" %10s\n", "gap");

  for (int trial = 0; trial < 15; ++trial) {
    const std::vector<double> unit = optimizer.propose();
    const netgym::Config config = space.denormalize(unit);
    const double gap = genet::gap_to_baseline(
        adapter, trainer->policy(), "mpc", config, /*n=*/6, rng);
    optimizer.update(unit, gap);
    std::printf("%-6d", trial);
    for (double v : config.values) std::printf(" %14.3g", v);
    std::printf(" %10.3f\n", gap);
  }

  const netgym::Config best = space.denormalize(optimizer.best_point());
  std::printf("\nchosen rewarding environment (gap %.3f):\n",
              optimizer.best_value());
  for (std::size_t d = 0; d < space.dims(); ++d) {
    std::printf("  %-22s = %.4g\n", space.param(d).name.c_str(),
                best.values[d]);
  }
  std::printf("\nGenet would now promote this configuration to 30%% of the "
              "training distribution and resume training.\n");
  return 0;
}
