// Load-balancing scenario: a heterogeneous 8-server fleet under rising
// load, comparing every rule-based dispatcher (LLF, shortest-completion,
// join-shortest-queue, power-of-two-choices, random, and the omniscient
// oracle) -- first with truthful observations, then with fully shuffled
// ones (Table 5's queue-shuffle knob), where every observation-driven
// policy degrades toward random while the oracle does not.

#include <cstdio>
#include <memory>
#include <vector>

#include "lb/baselines.hpp"
#include "lb/env.hpp"

namespace {

double mean_delay_s(netgym::Policy& policy, const lb::LbEnvConfig& config,
                    const lb::LbEnv* oracle_env = nullptr) {
  double total = 0.0;
  constexpr int kRuns = 5;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    lb::LbEnv env(config, seed);
    netgym::Rng rng(seed);
    if (oracle_env != nullptr) {
      lb::OracleLbPolicy oracle(env);
      total += -netgym::run_episode(env, oracle, rng).mean_reward;
    } else {
      total += -netgym::run_episode(env, policy, rng).mean_reward;
    }
  }
  return total / kRuns;
}

void run_panel(double shuffle_prob) {
  std::printf("\nobservation shuffle probability = %.0f%%\n",
              shuffle_prob * 100);
  std::printf("%-22s", "load (jobs/s):");
  const double intervals[] = {0.25, 0.12, 0.07, 0.045};
  for (double itv : intervals) std::printf(" %9.1f", 1.0 / itv);
  std::printf("\n");

  struct Entry {
    const char* name;
    std::unique_ptr<netgym::Policy> policy;
    bool oracle;
  };
  std::vector<Entry> entries;
  entries.push_back({"LLF", std::make_unique<lb::LlfPolicy>(), false});
  entries.push_back({"shortest-completion",
                     std::make_unique<lb::ShortestCompletionPolicy>(), false});
  entries.push_back({"join-shortest-queue",
                     std::make_unique<lb::LeastRequestsPolicy>(), false});
  entries.push_back({"power-of-two",
                     std::make_unique<lb::PowerOfTwoPolicy>(), false});
  entries.push_back({"random", std::make_unique<lb::RandomLbPolicy>(), false});
  entries.push_back({"oracle (true state)",
                     std::make_unique<lb::RandomLbPolicy>(), true});

  for (Entry& entry : entries) {
    std::printf("%-22s", entry.name);
    for (double itv : intervals) {
      lb::LbEnvConfig config;
      config.job_interval_s = itv;
      config.num_jobs = 400;
      config.queue_shuffle_prob = shuffle_prob;
      lb::LbEnv probe(config, 1);  // only used to bind the oracle
      const double delay =
          mean_delay_s(*entry.policy, config, entry.oracle ? &probe : nullptr);
      std::printf(" %9.3f", delay);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("mean job completion delay (seconds, lower is better), "
              "8 heterogeneous servers, Pareto job sizes\n");
  run_panel(0.0);
  run_panel(1.0);
  return 0;
}
