// Backend cross-validation scenario: run the same rule-based congestion
// controllers over the same links on BOTH simulator backends -- the fluid
// 10 ms-slice model (cc::CcEnv) and the discrete-event per-packet model
// (cc::PacketCcEnv) -- and print the aggregate statistics side by side.
// Agreement between the two backends is what justifies training on the
// cheap fluid model (DESIGN.md); this executable makes the comparison
// visible on demand.

#include <cstdio>
#include <memory>
#include <string>

#include "cc/baselines.hpp"
#include "cc/env.hpp"
#include "cc/packet_sim.hpp"
#include "netgym/trace.hpp"

namespace {

std::unique_ptr<netgym::Policy> make_controller(const std::string& name) {
  if (name == "cubic") return std::make_unique<cc::CubicPolicy>();
  if (name == "bbr") return std::make_unique<cc::BbrPolicy>();
  if (name == "vivace") return std::make_unique<cc::VivacePolicy>();
  return std::make_unique<cc::CopaPolicy>();
}

struct Outcome {
  double thpt_mbps = 0.0;
  double latency_ms = 0.0;
  double loss_pct = 0.0;
};

template <typename EnvT>
Outcome run_backend(EnvT& env, netgym::Policy& policy, double duration_s) {
  netgym::Rng rng(7);
  netgym::run_episode(env, policy, rng);
  return {env.totals().mean_throughput_mbps(duration_s),
          env.totals().mean_latency_s() * 1000.0,
          env.totals().loss_fraction() * 100.0};
}

}  // namespace

int main() {
  const double bandwidths[] = {2.0, 8.0, 25.0};
  const char* controllers[] = {"cubic", "bbr", "vivace", "copa"};

  std::printf("%-8s %-8s | %12s %12s | %12s %12s | %8s %8s\n", "link",
              "scheme", "fluid Mbps", "packet Mbps", "fluid ms", "packet ms",
              "fl loss%", "pk loss%");
  for (double bw : bandwidths) {
    cc::CcEnvConfig config;
    config.max_bw_mbps = bw;
    config.min_rtt_ms = 60.0;
    config.queue_packets = 40.0;
    netgym::Rng trace_rng(3);
    const netgym::Trace trace = netgym::generate_cc_trace(
        {bw, 5.0, config.duration_s}, trace_rng);
    for (const char* name : controllers) {
      auto p1 = make_controller(name);
      auto p2 = make_controller(name);
      cc::CcEnv fluid(config, trace, 1);
      cc::PacketCcEnv packet(config, trace, 1);
      const Outcome f = run_backend(fluid, *p1, config.duration_s);
      const Outcome k = run_backend(packet, *p2, config.duration_s);
      std::printf("%-8.1f %-8s | %12.2f %12.2f | %12.1f %12.1f | %8.2f %8.2f\n",
                  bw, name, f.thpt_mbps, k.thpt_mbps, f.latency_ms,
                  k.latency_ms, f.loss_pct, k.loss_pct);
    }
  }
  std::printf("\nfluid = 10 ms fluid-queue integration, packet = per-packet "
              "discrete-event simulation (same trace, same controller).\n");
  return 0;
}
