// Quickstart: train a load-balancing policy with Genet's automatic
// curriculum and compare it against the rule-based least-load-first (LLF)
// baseline. This is the smallest end-to-end tour of the public API:
//
//   1. pick a task adapter (the Fig.-8 bridge to a simulator + baselines),
//   2. run the curriculum trainer (Algorithm 2),
//   3. evaluate the greedy policy on fresh environments.
//
// Runs in well under a minute on one core.

#include <cstdio>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "lb/baselines.hpp"

int main() {
  // The LB task over the RL1 parameter ranges of Table 5.
  genet::LbAdapter adapter(/*space_id=*/1);

  // Genet: promote environments where the current policy trails LLF.
  genet::SearchOptions search;
  search.bo_trials = 8;      // BO budget per curriculum round
  search.envs_per_eval = 5;  // envs per gap-to-baseline estimate
  genet::CurriculumOptions options;
  options.rounds = 4;
  options.iters_per_round = 150;
  options.seed = 7;

  genet::CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", search), options);

  std::printf("training (Genet curriculum, %d rounds x %d iterations)...\n",
              options.rounds, options.iters_per_round);
  for (int r = 0; r < options.rounds; ++r) {
    const genet::CurriculumRound round = trainer.run_round();
    std::printf("  round %d: mean train reward %.3f, promoted config [",
                round.round, round.train_reward);
    for (std::size_t d = 0; d < round.promoted.values.size(); ++d) {
      std::printf("%s%.3g", d ? ", " : "", round.promoted.values[d]);
    }
    std::printf("]\n");
  }

  // Evaluate the greedy policy against the baseline on fresh environments
  // drawn from the same target distribution.
  trainer.policy().set_greedy(true);
  netgym::ConfigDistribution target(adapter.space());
  netgym::Rng rng_rl(42);
  const double rl_reward = genet::test_on_distribution(
      adapter, trainer.policy(), target, /*n=*/50, rng_rl);

  lb::LlfPolicy llf;
  netgym::Rng rng_llf(42);
  const double llf_reward =
      genet::test_on_distribution(adapter, llf, target, 50, rng_llf);

  std::printf("\nmean reward over 50 fresh environments "
              "(higher is better; reward = -job delay in seconds)\n");
  std::printf("  Genet-trained RL policy : %8.3f\n", rl_reward);
  std::printf("  least-load-first (LLF)  : %8.3f\n", llf_reward);
  return 0;
}
