#!/usr/bin/env python3
"""Split bench_output.txt into per-experiment CSV files.

The experiment harnesses print human-readable tables; this script slices the
combined output back into one block per experiment and converts every
whitespace-aligned table row into CSV, so the figures can be re-plotted with
any tool. Pure stdlib, no dependencies.

A `BENCH_*.json` report (e.g. BENCH_throughput.json from bench_throughput)
can be passed instead of the text log: every top-level array-of-objects
section becomes its own CSV (keys in first-row order), so the perf
trajectory plots share the pipeline with the figure tables.

BENCH_fleet.json nests per-scenario metric and SLO lists inside the
"scenarios" array, which the generic flattener can't represent; fleet
reports instead produce three CSVs — <stem>_scenarios.csv (one row per
scenario, scalar fields only), <stem>_metrics.csv and <stem>_slos.csv
(one row per scenario x metric/SLO, scenario name in the first column).

BENCH_serve.json similarly produces <stem>_summary.csv (the scalar run
header with the latency percentiles inlined as latency_*_ms columns) and,
when the report carries the per-phase attribution block, <stem>_phases.csv
with one row per phase (queue/batch/forward/write/total) and the
count/mean_ms/p50_ms/p99_ms/max_ms columns.

Usage:
    python3 scripts/bench_to_csv.py [bench_output.txt | BENCH_x.json] [output_dir]
"""

import json
import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-zA-Z0-9]+", "_", title.lower()).strip("_")
    return slug[:60]


def split_experiments(lines):
    """Yield (title, block_lines) for each ====-delimited experiment."""
    title = None
    block = []
    i = 0
    while i < len(lines):
        if lines[i].startswith("====") and i + 1 < len(lines):
            if title is not None:
                yield title, block
            title = lines[i + 1].strip()
            block = []
            # Skip the header: title line, "paper:" line(s), closing ====.
            i += 2
            while i < len(lines) and not lines[i].startswith("===="):
                i += 1
            i += 1
            continue
        if title is not None:
            block.append(lines[i].rstrip("\n"))
        i += 1
    if title is not None:
        yield title, block


def table_rows(block):
    """Convert aligned table lines into CSV rows (best effort)."""
    rows = []
    for line in block:
        if not line.strip() or line.startswith("[train]"):
            continue
        # Split on runs of 2+ spaces so multi-word labels stay together.
        cells = [c.strip() for c in re.split(r"\s{2,}", line.strip()) if c.strip()]
        if len(cells) >= 2:
            rows.append(cells)
    return rows


ROUND_LINE = re.compile(r"^\s*round (\d+): (.+)$")
ROUND_TRAIN = re.compile(
    r"train reward (-?[\d.]+(?:e-?\d+)?), selection score (-?[\d.]+(?:e-?\d+)?)"
)
ROUND_GAP = re.compile(r"best gap-to-\S+ found by BO = (-?[\d.]+(?:e-?\d+)?)")


def rounds_rows(block):
    """Extract per-curriculum-round progress lines as CSV rows.

    Two shapes appear in bench/CLI output: the curriculum trainers print
    "round N: train reward X, selection score Y", and the baseline-choice
    probe prints "round N: best gap-to-<baseline> found by BO = Z". Both land
    in one <slug>_rounds.csv with empty cells for the columns a line lacks,
    so gap/selection-score trajectories can be plotted without re-running.
    """
    rows = []
    for line in block:
        match = ROUND_LINE.match(line)
        if not match:
            continue
        rnd, rest = match.group(1), match.group(2)
        train = ROUND_TRAIN.search(rest)
        if train:
            rows.append([rnd, train.group(1), train.group(2), ""])
            continue
        gap = ROUND_GAP.search(rest)
        if gap:
            rows.append([rnd, "", "", gap.group(1)])
    if rows:
        rows.insert(0, ["round", "train_reward", "selection_score", "bo_gap"])
    return rows


METRICS_HEADER = re.compile(r"^metric\s+kind\s+count\s+value\s+p50\s+p90\s+p99\s+max$")
METRICS_COLUMNS = ["metric", "kind", "count", "value", "p50", "p90", "p99", "max"]
METRIC_KINDS = {"counter", "gauge", "timer", "histogram"}


def metrics_rows(block):
    """Extract an embedded metrics table (the `--metrics-out -` dump) as CSV
    rows, histogram percentile fields included; returns (rows, other_lines).

    Metric names never contain spaces, so rows split on single whitespace:
    counters/gauges have (name, kind, value), timers (name, kind, count,
    seconds), histograms all eight columns.
    """
    rows = []
    rest = []
    in_table = False
    for line in block:
        stripped = line.strip()
        if METRICS_HEADER.match(stripped):
            in_table = True
            rows.append(METRICS_COLUMNS)
            continue
        if in_table:
            cells = stripped.split()
            if len(cells) >= 3 and cells[1] in METRIC_KINDS:
                kind = cells[1]
                if kind in ("counter", "gauge"):
                    rows.append([cells[0], kind, "", cells[2], "", "", "", ""])
                elif kind == "timer":
                    rows.append(cells[:4] + ["", "", "", ""])
                else:
                    rows.append(cells[:8])
                continue
            in_table = False
        rest.append(line)
    return rows, rest


def write_csv(path, columns, rows):
    with open(path, "w", encoding="utf-8") as out:
        out.write(",".join(columns) + "\n")
        for row in rows:
            out.write(",".join(str(row.get(c, "")) for c in columns) + "\n")


def fleet_to_csv(doc, stem, out_dir):
    """Flatten a "bench": "fleet" report into scenario/metric/SLO CSVs.

    The scenarios rows keep only scalar fields (the nested metrics/slos
    lists would otherwise be stringified into unusable cells); the metric
    and SLO tables get one row per scenario x entry with the scenario name
    as the join key.
    """
    scenarios = doc.get("scenarios") or []
    scenario_rows = []
    metric_rows = []
    slo_rows = []
    for sc in scenarios:
        scenario_rows.append(
            {k: v for k, v in sc.items() if not isinstance(v, (list, dict))}
        )
        for m in sc.get("metrics") or []:
            metric_rows.append({"scenario": sc.get("name", ""), **m})
        for s in sc.get("slos") or []:
            slo_rows.append({"scenario": sc.get("name", ""), **s})
    count = 0
    for section, rows in (
        ("scenarios", scenario_rows),
        ("metrics", metric_rows),
        ("slos", slo_rows),
    ):
        if not rows:
            continue
        write_csv(
            os.path.join(out_dir, f"{stem}_{section}.csv"),
            list(rows[0].keys()),
            rows,
        )
        count += 1
    return count


def serve_to_csv(doc, stem, out_dir):
    """Flatten a "bench": "serve" report into summary + per-phase CSVs.

    The phase table is the plot-ready form of the serve.phase.* histograms:
    one row per phase so a stacked latency-attribution bar falls out of a
    single groupby.
    """
    count = 0
    summary = {
        k: v for k, v in doc.items() if not isinstance(v, (list, dict))
    }
    for key, value in (doc.get("latency_ms") or {}).items():
        summary[f"latency_{key}_ms"] = value
    write_csv(
        os.path.join(out_dir, f"{stem}_summary.csv"),
        list(summary.keys()),
        [summary],
    )
    count += 1
    phase_rows = [
        {"phase": name, **vals}
        for name, vals in (doc.get("phases") or {}).items()
        if isinstance(vals, dict)
    ]
    if phase_rows:
        write_csv(
            os.path.join(out_dir, f"{stem}_phases.csv"),
            list(phase_rows[0].keys()),
            phase_rows,
        )
        count += 1
    return count


def json_sections_to_csv(src, out_dir):
    """Write one CSV per top-level list-of-objects section of a JSON report.

    Column order follows the first row's keys; rows missing a key get an
    empty cell. The file stem (e.g. "bench_throughput" for
    BENCH_throughput.json) prefixes each CSV name.
    """
    with open(src, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        print(f"{src}: top level is not a JSON object", file=sys.stderr)
        return None
    stem = slugify(os.path.splitext(os.path.basename(src))[0])
    if doc.get("bench") == "fleet":
        return fleet_to_csv(doc, stem, out_dir)
    if doc.get("bench") == "serve":
        return serve_to_csv(doc, stem, out_dir)
    count = 0
    for section, rows in doc.items():
        if not isinstance(rows, list) or not rows:
            continue
        if not all(isinstance(r, dict) for r in rows):
            continue
        columns = list(rows[0].keys())
        write_csv(os.path.join(out_dir, f"{stem}_{slugify(section)}.csv"),
                  columns, rows)
        count += 1
    return count


def main() -> int:
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    if src.endswith(".json"):
        os.makedirs(out_dir, exist_ok=True)
        count = json_sections_to_csv(src, out_dir)
        if count is None:
            return 1
        print(f"wrote {count} CSV files to {out_dir}/")
        return 0
    with open(src, encoding="utf-8") as handle:
        lines = handle.readlines()
    os.makedirs(out_dir, exist_ok=True)
    count = 0
    for title, block in split_experiments(lines):
        mrows, block = metrics_rows(block)
        if len(mrows) > 1:
            path = os.path.join(out_dir, slugify(title) + "_metrics.csv")
            with open(path, "w", encoding="utf-8") as out:
                for cells in mrows:
                    out.write(",".join(cells) + "\n")
            count += 1
        rrows = rounds_rows(block)
        if rrows:
            path = os.path.join(out_dir, slugify(title) + "_rounds.csv")
            with open(path, "w", encoding="utf-8") as out:
                for cells in rrows:
                    out.write(",".join(cells) + "\n")
            count += 1
        rows = table_rows(block)
        if not rows:
            continue
        path = os.path.join(out_dir, slugify(title) + ".csv")
        with open(path, "w", encoding="utf-8") as out:
            for cells in rows:
                out.write(",".join(c.replace(",", ";") for c in cells) + "\n")
        count += 1
    print(f"wrote {count} CSV files to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
