#!/usr/bin/env python3
"""Validate the benchmark JSON reports committed at the repo root.

Dispatches on the top-level "bench" field:

  throughput  (bench/bench_throughput) — the header fields, the five
      measurement sections (gemm, inference, rollout, training, gap_eval)
      with per-row field types, the strict-mode bit-identity flags, and the
      summary block. `--min-speedup X` additionally requires
      summary.batched_speedup_at_32 >= X — CI runs with `--min-speedup 1.0`
      (batched must never be slower than the per-sample loop); the committed
      full-run report is held to the 2.0 target recorded in the summary.

  serve  (bench/bench_serve_load) — the load-run header, the exact-percentile
      latency block, and the hot-swap record. failed_requests must be 0 and
      ok_requests must equal requests_total in every report. `--min-rps X`
      additionally requires requests_per_s >= X; `--require-swap` requires
      the hot-swap block to show a mid-run policy version change
      (enabled, observed, >= 2 versions seen, last != first). When the
      report carries the per-phase attribution block ("phases": queue /
      batch / forward / write / total, from the serve.phase.* histograms),
      every phase is schema-checked, counts must agree across phases,
      percentiles must be monotone, and the four component *means* must sum
      to the end-to-end mean within 2% — the phases partition each request's
      latency exactly, and means (unlike quantiles) add, so any larger
      residual means the attribution timestamps drifted. The four component
      p50s must additionally sum to the end-to-end p50 within
      `--phase-tolerance` (default 0.25; the committed full-run report is
      held to 0.10). Quantiles of independent phases do not add in general,
      so this is a distribution-shape sanity check, not the partition proof;
      pass `--phase-tolerance inf` for short contended quick runs whose p50
      mix is dominated by scheduler noise.

  fleet  (bench/bench_fleet, `genet fleet --json`) — the run header, the
      determinism block (if checked, identical must be true: the 1-vs-4
      thread canonical digests matched byte-for-byte), and per-scenario
      metric/SLO records. Cross-checks internal consistency: session/step
      totals equal the per-scenario sums, percentiles are monotone
      (min <= p50 <= p90 <= p99 <= p999 <= max), each SLO's fraction equals
      compliant/sessions and its pass bit matches fraction vs target.
      `--require-slo` additionally requires every scenario to carry at
      least one SLO; `--min-sessions-per-s X` gates fleet throughput.

Usage:
    python3 scripts/check_bench_json.py FILE [--min-speedup X]
                                             [--min-rps X] [--require-swap]
                                             [--phase-tolerance X]
                                             [--require-slo]
                                             [--min-sessions-per-s X]

Exit status 0 on success; 1 with a diagnostic on the first failure.
Pure stdlib, no dependencies.
"""

import json
import sys

# section -> (field -> type); "num" means int or float.
ROW_SCHEMAS = {
    "gemm": {
        "batch": "int",
        "scalar_ns_per_sample": "num",
        "strict_ns_per_sample": "num",
        "fast_ns_per_sample": "num",
        "strict_speedup": "num",
        "fast_speedup": "num",
        "strict_bit_identical": "bool",
        "fast_max_rel_err": "num",
    },
    "inference": None,  # same as gemm; filled below
    "rollout": {
        "task": "str",
        "threads": "int",
        "env_steps_per_s": "num",
        "speedup_vs_serial": "num",
    },
    "training": {
        "task": "str",
        "algo": "str",
        "updates_per_s": "num",
        "env_steps_per_s": "num",
    },
    "gap_eval": {
        "task": "str",
        "baseline": "str",
        "episodes_per_s": "num",
    },
}
ROW_SCHEMAS["inference"] = ROW_SCHEMAS["gemm"]

SUMMARY_FIELDS = {
    "batched_speedup_at_32": "num",
    "fast_speedup_at_32": "num",
    "mlp_strict_speedup_at_32": "num",
    "target_speedup_at_32": "num",
}

SERVE_HEADER = {
    "bench": "str",
    "schema_version": "int",
    "quick": "bool",
    "mode": "str",
    "sessions": "int",
    "rounds": "int",
    "connections": "int",
    "window": "int",
    "requests_total": "int",
    "ok_requests": "int",
    "failed_requests": "int",
    "duration_s": "num",
    "requests_per_s": "num",
}

SERVE_LATENCY_FIELDS = {"p50": "num", "p99": "num", "p999": "num", "max": "num"}

SERVE_SWAP_FIELDS = {
    "enabled": "bool",
    "observed": "bool",
    "first_version": "int",
    "last_version": "int",
}

SERVE_PHASE_FIELDS = {
    "count": "int",
    "mean_ms": "num",
    "p50_ms": "num",
    "p99_ms": "num",
    "max_ms": "num",
}

# The four components partition "total" exactly per request (DESIGN.md S5j):
# queue-wait + batch-formation + forward + write-back == end-to-end.
SERVE_PHASE_NAMES = ("queue", "batch", "forward", "write", "total")


FLEET_HEADER = {
    "bench": "str",
    "schema_version": "int",
    "quick": "bool",
    "seed": "int",
    "threads": "int",
    "shards": "int",
    "worst_k": "int",
    "sessions_total": "int",
    "steps_total": "int",
    "duration_s": "num",
    "sessions_per_s": "num",
    "steps_per_s": "num",
}

FLEET_DETERMINISM_FIELDS = {
    "checked": "bool",
    "threads_a": "int",
    "threads_b": "int",
    "identical": "bool",
}

FLEET_SCENARIO_FIELDS = {
    "name": "str",
    "task": "str",
    "space": "int",
    "sessions": "int",
    "steps": "int",
    "duration_s": "num",
    "sessions_per_s": "num",
    "trace_set": "str",
    "trace_prob": "num",
    "flight_path": "str",
    "flight_episodes": "int",
}

FLEET_METRIC_FIELDS = {
    "name": "str",
    "count": "int",
    "mean": "num",
    "min": "num",
    "max": "num",
    "p50": "num",
    "p90": "num",
    "p99": "num",
    "p999": "num",
    "exact": "bool",
    "dropped": "int",
    "saturated": "int",
}

FLEET_SLO_FIELDS = {
    "metric": "str",
    "op": "str",
    "threshold": "num",
    "target_fraction": "num",
    "compliant": "int",
    "fraction": "num",
    "pass": "bool",
}


def type_ok(value, kind):
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "num":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == "bool":
        return isinstance(value, bool)
    if kind == "str":
        return isinstance(value, str)
    return False


def check_fields(where, obj, schema):
    for field, kind in schema.items():
        if field not in obj:
            return f"{where}: missing field '{field}'"
        if not type_ok(obj[field], kind):
            return (
                f"{where}: field '{field}' has wrong type "
                f"({type(obj[field]).__name__}, want {kind})"
            )
    return None


def check_throughput(path, doc, opts):
    header = {
        "bench": "str",
        "schema_version": "int",
        "quick": "bool",
        "threads_available": "int",
        "cpu_avx2_fma": "bool",
    }
    err = check_fields(path, doc, header)
    if err:
        return err
    if doc["schema_version"] != 1:
        return f"{path}: unknown schema_version {doc['schema_version']}"

    for section, schema in ROW_SCHEMAS.items():
        rows = doc.get(section)
        if not isinstance(rows, list) or not rows:
            return f"{path}: section '{section}' missing or empty"
        for i, row in enumerate(rows):
            where = f"{path}: {section}[{i}]"
            if not isinstance(row, dict):
                return f"{where}: not an object"
            err = check_fields(where, row, schema)
            if err:
                return err
            if "strict_bit_identical" in row and not row["strict_bit_identical"]:
                return (
                    f"{where}: strict batched result was not bit-identical "
                    f"to the per-sample loop (batch {row['batch']})"
                )

    # The speedup headline is defined at batch 32; require that the row the
    # summary is derived from actually exists.
    if not any(row["batch"] == 32 for row in doc["gemm"]):
        return f"{path}: gemm section has no batch=32 row"

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        return f"{path}: summary missing"
    err = check_fields(f"{path}: summary", summary, SUMMARY_FIELDS)
    if err:
        return err
    if opts["min_speedup"] is not None:
        got = summary["batched_speedup_at_32"]
        if got < opts["min_speedup"]:
            return (
                f"{path}: batched_speedup_at_32 is {got:.2f}, "
                f"below required {opts['min_speedup']:.2f}"
            )
    return None


def check_serve(path, doc, opts):
    err = check_fields(path, doc, SERVE_HEADER)
    if err:
        return err
    if doc["schema_version"] != 1:
        return f"{path}: unknown schema_version {doc['schema_version']}"
    if doc["mode"] not in ("self", "external"):
        return f"{path}: mode is '{doc['mode']}', want 'self' or 'external'"

    # A committed or CI serve report is only valid if the run was clean:
    # every single request answered, none failed, even across the hot swap.
    if doc["failed_requests"] != 0:
        return f"{path}: failed_requests is {doc['failed_requests']}, want 0"
    if doc["ok_requests"] != doc["requests_total"]:
        return (
            f"{path}: ok_requests {doc['ok_requests']} != "
            f"requests_total {doc['requests_total']}"
        )
    if doc["requests_total"] != doc["sessions"] * doc["rounds"]:
        return (
            f"{path}: requests_total {doc['requests_total']} != "
            f"sessions*rounds {doc['sessions'] * doc['rounds']}"
        )

    latency = doc.get("latency_ms")
    if not isinstance(latency, dict):
        return f"{path}: latency_ms missing"
    err = check_fields(f"{path}: latency_ms", latency, SERVE_LATENCY_FIELDS)
    if err:
        return err
    if not latency["p50"] <= latency["p99"] <= latency["p999"] <= latency["max"]:
        return f"{path}: latency percentiles are not monotone"
    if latency["p50"] <= 0:
        return f"{path}: latency p50 is not positive"

    phases = doc.get("phases")
    if phases is not None:  # pre-S5j reports lack the attribution block
        if not isinstance(phases, dict):
            return f"{path}: phases is not an object"
        for name in SERVE_PHASE_NAMES:
            phase = phases.get(name)
            if not isinstance(phase, dict):
                return f"{path}: phases.{name} missing"
            err = check_fields(f"{path}: phases.{name}", phase,
                               SERVE_PHASE_FIELDS)
            if err:
                return err
            if not phase["p50_ms"] <= phase["p99_ms"] <= phase["max_ms"]:
                return f"{path}: phases.{name} percentiles are not monotone"
            if phase["count"] != phases["total"]["count"]:
                return (
                    f"{path}: phases.{name}.count {phase['count']} != "
                    f"total.count {phases['total']['count']} — every acted "
                    f"request records every phase"
                )
        # The exact check: per request queue+batch+forward+write == total,
        # and means add, so the mean residual is pure attribution drift (plus
        # JSON rounding) no matter how noisy the run was.
        total_mean = phases["total"]["mean_ms"]
        mean_sum = sum(
            phases[name]["mean_ms"] for name in SERVE_PHASE_NAMES[:-1]
        )
        if total_mean > 0:
            residual = abs(mean_sum - total_mean) / total_mean
            if residual > 0.02:
                return (
                    f"{path}: phase means sum to {mean_sum:.4f}ms but "
                    f"end-to-end mean is {total_mean:.4f}ms "
                    f"(residual {residual:.1%} > 2%) — attribution "
                    f"timestamps no longer partition the request"
                )
        total_p50 = phases["total"]["p50_ms"]
        component_sum = sum(
            phases[name]["p50_ms"] for name in SERVE_PHASE_NAMES[:-1]
        )
        if total_p50 > 0:
            residual = abs(component_sum - total_p50) / total_p50
            if residual > opts["phase_tolerance"]:
                return (
                    f"{path}: phase p50s sum to {component_sum:.4f}ms but "
                    f"end-to-end p50 is {total_p50:.4f}ms "
                    f"(residual {residual:.1%} > "
                    f"{opts['phase_tolerance']:.0%}) — the latency "
                    f"distribution shape shifted; rerun on an unloaded "
                    f"machine or loosen --phase-tolerance for quick runs"
                )

    swap = doc.get("hot_swap")
    if not isinstance(swap, dict):
        return f"{path}: hot_swap missing"
    err = check_fields(f"{path}: hot_swap", swap, SERVE_SWAP_FIELDS)
    if err:
        return err
    versions = swap.get("versions_seen")
    if not isinstance(versions, list) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in versions
    ):
        return f"{path}: hot_swap.versions_seen missing or not a list of ints"

    if opts["min_rps"] is not None and doc["requests_per_s"] < opts["min_rps"]:
        return (
            f"{path}: requests_per_s is {doc['requests_per_s']:.0f}, "
            f"below required {opts['min_rps']:.0f}"
        )
    if opts["require_swap"]:
        if not (swap["enabled"] and swap["observed"]):
            return f"{path}: hot swap not observed (enabled+observed required)"
        if len(set(versions)) < 2:
            return f"{path}: hot swap saw {versions}, want >= 2 versions"
        if swap["last_version"] == swap["first_version"]:
            return (
                f"{path}: last served version equals the first "
                f"(v{swap['first_version']}) — swap never took effect"
            )
    return None


def check_fleet(path, doc, opts):
    err = check_fields(path, doc, FLEET_HEADER)
    if err:
        return err
    if doc["schema_version"] != 1:
        return f"{path}: unknown schema_version {doc['schema_version']}"

    det = doc.get("determinism")
    if not isinstance(det, dict):
        return f"{path}: determinism block missing"
    err = check_fields(f"{path}: determinism", det, FLEET_DETERMINISM_FIELDS)
    if err:
        return err
    # A report whose run re-asserted determinism is only valid when the two
    # canonical digests actually matched; an unchecked report (plain
    # `genet fleet --json`) is allowed but can't claim identity.
    if det["checked"] and not det["identical"]:
        return (
            f"{path}: determinism was checked at {det['threads_a']} vs "
            f"{det['threads_b']} threads and the digests DIFFERED"
        )

    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return f"{path}: scenarios missing or empty"
    sessions_sum = 0
    steps_sum = 0
    for i, sc in enumerate(scenarios):
        where = f"{path}: scenarios[{i}]"
        if not isinstance(sc, dict):
            return f"{where}: not an object"
        err = check_fields(where, sc, FLEET_SCENARIO_FIELDS)
        if err:
            return err
        if sc["task"] not in ("abr", "cc", "lb"):
            return f"{where}: unknown task '{sc['task']}'"
        if sc["sessions"] <= 0:
            return f"{where}: sessions is {sc['sessions']}, want > 0"
        sessions_sum += sc["sessions"]
        steps_sum += sc["steps"]

        metrics = sc.get("metrics")
        if not isinstance(metrics, list) or not metrics:
            return f"{where}: metrics missing or empty"
        for j, m in enumerate(metrics):
            mwhere = f"{where}.metrics[{j}]"
            if not isinstance(m, dict):
                return f"{mwhere}: not an object"
            err = check_fields(mwhere, m, FLEET_METRIC_FIELDS)
            if err:
                return err
            if m["count"] != sc["sessions"]:
                return (
                    f"{mwhere}: count {m['count']} != scenario sessions "
                    f"{sc['sessions']}"
                )
            if not (
                m["min"] <= m["p50"] <= m["p90"] <= m["p99"] <= m["p999"]
                <= m["max"]
            ):
                return f"{mwhere}: percentiles are not monotone"
            if not m["min"] <= m["mean"] <= m["max"]:
                return f"{mwhere}: mean outside [min, max]"

        metric_names = {m["name"] for m in metrics}
        slos = sc.get("slos")
        if not isinstance(slos, list):
            return f"{where}: slos missing (empty list allowed)"
        if opts["require_slo"] and not slos:
            return f"{where}: no SLOs (--require-slo)"
        for j, slo in enumerate(slos):
            swhere = f"{where}.slos[{j}]"
            if not isinstance(slo, dict):
                return f"{swhere}: not an object"
            err = check_fields(swhere, slo, FLEET_SLO_FIELDS)
            if err:
                return err
            if slo["op"] not in ("<=", ">="):
                return f"{swhere}: op is '{slo['op']}', want '<=' or '>='"
            if slo["metric"] not in metric_names:
                return (
                    f"{swhere}: SLO metric '{slo['metric']}' not in the "
                    f"scenario's metrics {sorted(metric_names)}"
                )
            want_fraction = slo["compliant"] / sc["sessions"]
            if abs(slo["fraction"] - want_fraction) > 1e-9:
                return (
                    f"{swhere}: fraction {slo['fraction']} != "
                    f"compliant/sessions {want_fraction}"
                )
            want_pass = slo["fraction"] >= slo["target_fraction"] - 1e-12
            if slo["pass"] != want_pass:
                return (
                    f"{swhere}: pass is {slo['pass']} but fraction "
                    f"{slo['fraction']} vs target {slo['target_fraction']} "
                    f"says {want_pass}"
                )

    if sessions_sum != doc["sessions_total"]:
        return (
            f"{path}: sessions_total {doc['sessions_total']} != scenario sum "
            f"{sessions_sum}"
        )
    if steps_sum != doc["steps_total"]:
        return (
            f"{path}: steps_total {doc['steps_total']} != scenario sum "
            f"{steps_sum}"
        )
    if opts["min_sessions_per_s"] is not None:
        got = doc["sessions_per_s"]
        if got < opts["min_sessions_per_s"]:
            return (
                f"{path}: sessions_per_s is {got:.0f}, below required "
                f"{opts['min_sessions_per_s']:.0f}"
            )
    return None


def summarize(doc):
    if doc["bench"] == "throughput":
        rows = sum(len(doc[s]) for s in ROW_SCHEMAS)
        speedup = doc["summary"]["batched_speedup_at_32"]
        return f"{rows} rows, batched_speedup_at_32 {speedup:.2f}x"
    if doc["bench"] == "fleet":
        slos = [s for sc in doc["scenarios"] for s in sc["slos"]]
        passing = sum(1 for s in slos if s["pass"])
        det = doc["determinism"]
        det_note = (
            f"determinism {det['threads_a']}v{det['threads_b']} identical"
            if det["checked"]
            else "determinism unchecked"
        )
        return (
            f"{doc['sessions_total']} sessions over "
            f"{len(doc['scenarios'])} scenarios, "
            f"{doc['sessions_per_s']:.0f} sessions/s, "
            f"SLOs {passing}/{len(slos)} passing, {det_note}"
        )
    latency = doc["latency_ms"]
    return (
        f"{doc['sessions']} sessions, {doc['requests_per_s']:.0f} req/s, "
        f"p50 {latency['p50']:.2f}ms p99 {latency['p99']:.2f}ms "
        f"p99.9 {latency['p999']:.2f}ms, versions "
        f"{doc['hot_swap']['versions_seen']}"
    )


def main() -> int:
    argv = sys.argv[1:]
    path = None
    opts = {
        "min_speedup": None,
        "min_rps": None,
        "require_swap": False,
        "require_slo": False,
        "min_sessions_per_s": None,
        "phase_tolerance": 0.25,
    }
    i = 0
    while i < len(argv):
        if argv[i] in ("--min-speedup", "--min-rps", "--min-sessions-per-s",
                       "--phase-tolerance"):
            key = argv[i].lstrip("-").replace("-", "_")
            if i + 1 >= len(argv):
                print(f"{argv[i]} needs a value", file=sys.stderr)
                return 1
            try:
                opts[key] = float(argv[i + 1])
            except ValueError:
                print(f"bad {argv[i]} value '{argv[i + 1]}'", file=sys.stderr)
                return 1
            i += 2
            continue
        if argv[i] == "--require-swap":
            opts["require_swap"] = True
            i += 1
            continue
        if argv[i] == "--require-slo":
            opts["require_slo"] = True
            i += 1
            continue
        if path is None:
            path = argv[i]
        else:
            print(__doc__, file=sys.stderr)
            return 1
        i += 1
    if path is None:
        print(__doc__, file=sys.stderr)
        return 1

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: {err}", file=sys.stderr)
        return 1

    if not isinstance(doc, dict):
        print(f"{path}: top level is not a JSON object", file=sys.stderr)
        return 1
    checkers = {
        "throughput": check_throughput,
        "serve": check_serve,
        "fleet": check_fleet,
    }
    bench = doc.get("bench")
    if bench not in checkers:
        print(
            f"{path}: bench is {bench!r}, want one of {sorted(checkers)}",
            file=sys.stderr,
        )
        return 1

    err = checkers[bench](path, doc, opts)
    if err:
        print(err, file=sys.stderr)
        return 1
    print(f"{path}: schema OK ({summarize(doc)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
