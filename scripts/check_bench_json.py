#!/usr/bin/env python3
"""Validate BENCH_throughput.json (written by bench/bench_throughput).

Checks the schema the throughput harness commits to: the header fields, the
four measurement sections (gemm, inference, rollout, training, gap_eval)
with per-row field types, the strict-mode bit-identity flags, and the
summary block. `--min-speedup X` additionally requires
summary.batched_speedup_at_32 >= X — CI runs with `--min-speedup 1.0`
(batched must never be slower than the per-sample loop); the committed
full-run report is held to the 2.0 target recorded in the summary itself.

Usage:
    python3 scripts/check_bench_json.py FILE [--min-speedup X]

Exit status 0 on success; 1 with a diagnostic on the first failure.
Pure stdlib, no dependencies.
"""

import json
import sys

# section -> (field -> type); "num" means int or float.
ROW_SCHEMAS = {
    "gemm": {
        "batch": "int",
        "scalar_ns_per_sample": "num",
        "strict_ns_per_sample": "num",
        "fast_ns_per_sample": "num",
        "strict_speedup": "num",
        "fast_speedup": "num",
        "strict_bit_identical": "bool",
        "fast_max_rel_err": "num",
    },
    "inference": None,  # same as gemm; filled below
    "rollout": {
        "task": "str",
        "threads": "int",
        "env_steps_per_s": "num",
        "speedup_vs_serial": "num",
    },
    "training": {
        "task": "str",
        "algo": "str",
        "updates_per_s": "num",
        "env_steps_per_s": "num",
    },
    "gap_eval": {
        "task": "str",
        "baseline": "str",
        "episodes_per_s": "num",
    },
}
ROW_SCHEMAS["inference"] = ROW_SCHEMAS["gemm"]

SUMMARY_FIELDS = {
    "batched_speedup_at_32": "num",
    "fast_speedup_at_32": "num",
    "mlp_strict_speedup_at_32": "num",
    "target_speedup_at_32": "num",
}


def type_ok(value, kind):
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "num":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == "bool":
        return isinstance(value, bool)
    if kind == "str":
        return isinstance(value, str)
    return False


def check_fields(where, obj, schema):
    for field, kind in schema.items():
        if field not in obj:
            return f"{where}: missing field '{field}'"
        if not type_ok(obj[field], kind):
            return (
                f"{where}: field '{field}' has wrong type "
                f"({type(obj[field]).__name__}, want {kind})"
            )
    return None


def check(path, doc, min_speedup):
    if not isinstance(doc, dict):
        return f"{path}: top level is not a JSON object"
    header = {
        "bench": "str",
        "schema_version": "int",
        "quick": "bool",
        "threads_available": "int",
        "cpu_avx2_fma": "bool",
    }
    err = check_fields(path, doc, header)
    if err:
        return err
    if doc["bench"] != "throughput":
        return f"{path}: bench is '{doc['bench']}', want 'throughput'"
    if doc["schema_version"] != 1:
        return f"{path}: unknown schema_version {doc['schema_version']}"

    for section, schema in ROW_SCHEMAS.items():
        rows = doc.get(section)
        if not isinstance(rows, list) or not rows:
            return f"{path}: section '{section}' missing or empty"
        for i, row in enumerate(rows):
            where = f"{path}: {section}[{i}]"
            if not isinstance(row, dict):
                return f"{where}: not an object"
            err = check_fields(where, row, schema)
            if err:
                return err
            if "strict_bit_identical" in row and not row["strict_bit_identical"]:
                return (
                    f"{where}: strict batched result was not bit-identical "
                    f"to the per-sample loop (batch {row['batch']})"
                )

    # The speedup headline is defined at batch 32; require that the row the
    # summary is derived from actually exists.
    if not any(row["batch"] == 32 for row in doc["gemm"]):
        return f"{path}: gemm section has no batch=32 row"

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        return f"{path}: summary missing"
    err = check_fields(f"{path}: summary", summary, SUMMARY_FIELDS)
    if err:
        return err
    if min_speedup is not None:
        got = summary["batched_speedup_at_32"]
        if got < min_speedup:
            return (
                f"{path}: batched_speedup_at_32 is {got:.2f}, "
                f"below required {min_speedup:.2f}"
            )
    return None


def main() -> int:
    argv = sys.argv[1:]
    path = None
    min_speedup = None
    i = 0
    while i < len(argv):
        if argv[i] == "--min-speedup":
            if i + 1 >= len(argv):
                print("--min-speedup needs a value", file=sys.stderr)
                return 1
            try:
                min_speedup = float(argv[i + 1])
            except ValueError:
                print(f"bad --min-speedup value '{argv[i + 1]}'", file=sys.stderr)
                return 1
            i += 2
            continue
        if path is None:
            path = argv[i]
        else:
            print(__doc__, file=sys.stderr)
            return 1
        i += 1
    if path is None:
        print(__doc__, file=sys.stderr)
        return 1

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: {err}", file=sys.stderr)
        return 1

    err = check(path, doc, min_speedup)
    if err:
        print(err, file=sys.stderr)
        return 1
    rows = sum(len(doc[s]) for s in ROW_SCHEMAS)
    speedup = doc["summary"]["batched_speedup_at_32"]
    print(
        f"{path}: schema OK ({rows} rows, batched_speedup_at_32 "
        f"{speedup:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
