#!/usr/bin/env python3
"""Validate a genet checkpoint file without loading it into the C++ library.

Checks the whole crash-safety contract from the outside: the magic line, a
supported schema version, the declared payload length against the actual
file size, the CRC-32 of the payload (zlib polynomial, matching
netgym::checkpoint::crc32), and that every payload line parses as a typed
entry with a unique key. Used by the CI checkpoint-smoke job after
kill/resume runs, and handy interactively:

    python3 scripts/check_checkpoint.py FILE [--expect-key KEY ...]

With --expect-key, the named keys must be present (e.g. "round",
"trainer/iteration_count"). Exit status 0 on success; 1 with a diagnostic
on the first defect. Only the Python standard library is used.
"""

import argparse
import re
import sys
import zlib

SUPPORTED_VERSIONS = {1}
KEY_RE = re.compile(rb"^[\x21-\x7e]+$")  # printable, no whitespace
HEX64_RE = re.compile(r"^[0-9a-f]{16}$")


def fail(path: str, message: str) -> int:
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def parse_entry(key: str, kind: str, args: list[str]) -> str | None:
    """Returns an error string, or None if the entry is well formed."""
    if kind == "i":
        if len(args) != 1 or not re.fullmatch(r"-?\d+", args[0]):
            return "i entry wants one decimal integer"
    elif kind == "u":
        if len(args) != 1 or not re.fullmatch(r"\d+", args[0]):
            return "u entry wants one unsigned decimal integer"
    elif kind == "d":
        if len(args) != 1 or not HEX64_RE.fullmatch(args[0]):
            return "d entry wants one 16-digit hex word"
    elif kind == "s":
        if not args or not re.fullmatch(r"\d+", args[0]):
            return "s entry wants a length"
        length = int(args[0])
        body = args[1] if len(args) == 2 else ""
        if len(args) > 2 or len(body) != 2 * length:
            return f"s entry body has {len(body)} hex digits, wants {2 * length}"
        if body and not re.fullmatch(r"[0-9a-f]+", body):
            return "s entry body is not lowercase hex"
    elif kind == "dv":
        if not args or not re.fullmatch(r"\d+", args[0]):
            return "dv entry wants a count"
        values = args[1:]
        if len(values) != int(args[0]):
            return f"dv count {args[0]} but {len(values)} values"
        for v in values:
            if not HEX64_RE.fullmatch(v):
                return f"dv value {v!r} is not a 16-digit hex word"
    elif kind == "iv":
        if not args or not re.fullmatch(r"\d+", args[0]):
            return "iv entry wants a count"
        values = args[1:]
        if len(values) != int(args[0]):
            return f"iv count {args[0]} but {len(values)} values"
        for v in values:
            if not re.fullmatch(r"-?\d+", v):
                return f"iv value {v!r} is not a decimal integer"
    else:
        return f"unknown entry type {kind!r}"
    return None


def check(path: str, expect_keys: list[str]) -> int:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as err:
        return fail(path, f"cannot read: {err}")

    magic_end = blob.find(b"\n")
    if magic_end < 0:
        return fail(path, "truncated: no header line")
    magic = blob[:magic_end].split(b" ")
    if len(magic) != 2 or magic[0] != b"genet-checkpoint":
        return fail(path, "not a genet checkpoint (bad magic line)")
    try:
        version = int(magic[1])
    except ValueError:
        return fail(path, f"malformed version {magic[1]!r}")
    if version not in SUPPORTED_VERSIONS:
        return fail(path, f"unsupported schema version {version}")

    header_end = blob.find(b"\n", magic_end + 1)
    if header_end < 0:
        return fail(path, "truncated: no payload header line")
    header = blob[magic_end + 1 : header_end].split(b" ")
    if len(header) != 4 or header[0] != b"payload" or header[2] != b"crc32":
        return fail(path, "malformed payload header line")
    try:
        declared_size = int(header[1])
        declared_crc = int(header[3], 16)
    except ValueError:
        return fail(path, "malformed payload size or CRC")

    payload = blob[header_end + 1 :]
    if len(payload) != declared_size:
        return fail(
            path,
            f"truncated or padded: header claims {declared_size} payload "
            f"bytes, file has {len(payload)}",
        )
    actual_crc = zlib.crc32(payload)
    if actual_crc != declared_crc:
        return fail(
            path,
            f"corrupt: CRC mismatch (header {declared_crc:08x}, "
            f"payload {actual_crc:08x})",
        )

    if payload and not payload.endswith(b"\n"):
        return fail(path, "payload does not end with a newline")
    seen: set[str] = set()
    for lineno, line in enumerate(payload.split(b"\n")[:-1], start=1):
        tokens = line.split(b" ")
        if len(tokens) < 2:
            return fail(path, f"payload line {lineno}: malformed entry")
        if not KEY_RE.fullmatch(tokens[0]):
            return fail(path, f"payload line {lineno}: bad key {tokens[0]!r}")
        key = tokens[0].decode()
        if key in seen:
            return fail(path, f"payload line {lineno}: duplicate key {key!r}")
        seen.add(key)
        error = parse_entry(
            key, tokens[1].decode(), [t.decode() for t in tokens[2:]]
        )
        if error is not None:
            return fail(path, f"payload line {lineno} ({key}): {error}")

    missing = [key for key in expect_keys if key not in seen]
    if missing:
        return fail(path, f"missing expected key(s): {', '.join(missing)}")
    print(f"{path}: version {version}, {len(seen)} entries, crc {actual_crc:08x} OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate a genet checkpoint file."
    )
    parser.add_argument("file")
    parser.add_argument(
        "--expect-key",
        action="append",
        default=[],
        metavar="KEY",
        help="require KEY to be present (repeatable)",
    )
    args = parser.parse_args()
    return check(args.file, args.expect_key)


if __name__ == "__main__":
    sys.exit(main())
