#!/usr/bin/env python3
"""Validate a JSONL file: every line must be a standalone JSON object.

Used by the CI observability smoke job (and the ctest CLI smoke tests) on the
run-telemetry log (--log-file), the flight-recorder dump (--flight-out), and
the health watchdog stream (--health-out). Plain extra arguments are key
names that every object must contain. The file must hold at least one
object -- an empty log means the producer silently wrote nothing, which is
exactly the regression this check exists to catch.

Per-type schema checks: each repeatable `--type NAME:KEY1,KEY2,...` argument
requires that (a) at least one record with "type" == NAME exists, and
(b) every record of that type carries all the listed keys. E.g. the health
and provenance streams are validated with:

    python3 scripts/check_jsonl.py run.jsonl seq ts_ms \
        --type health:step,mean_entropy,actor_grad_norm,approx_kl \
        --type bo_trial_provenance:round,scheme,unit,config,measured_gap

Usage:
    python3 scripts/check_jsonl.py FILE [required_key ...] [--type NAME:KEYS]

Exit status 0 on success; 1 with a diagnostic on the first offending line.
"""

import json
import sys


def parse_args(argv):
    path = None
    required = []
    type_specs = {}  # type name -> list of required keys
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--type":
            if i + 1 >= len(argv):
                print("--type needs a NAME:KEY1,KEY2,... value", file=sys.stderr)
                return None
            spec = argv[i + 1]
            i += 2
            name, sep, keys = spec.partition(":")
            if not name or not sep:
                print(f"bad --type spec '{spec}' (want NAME:KEY1,...)",
                      file=sys.stderr)
                return None
            type_specs.setdefault(name, []).extend(
                k for k in keys.split(",") if k
            )
            continue
        if path is None:
            path = arg
        else:
            required.append(arg)
        i += 1
    if path is None:
        return None
    return path, required, type_specs


def main() -> int:
    parsed = parse_args(sys.argv[1:])
    if parsed is None:
        print(__doc__, file=sys.stderr)
        return 1
    path, required, type_specs = parsed
    count = 0
    type_counts = {name: 0 for name in type_specs}
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                print(f"{path}:{lineno}: blank line", file=sys.stderr)
                return 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: invalid JSON: {err}", file=sys.stderr)
                return 1
            if not isinstance(obj, dict):
                print(f"{path}:{lineno}: not a JSON object", file=sys.stderr)
                return 1
            missing = [key for key in required if key not in obj]
            if missing:
                print(
                    f"{path}:{lineno}: missing key(s): {', '.join(missing)}",
                    file=sys.stderr,
                )
                return 1
            rtype = obj.get("type")
            if rtype in type_specs:
                type_counts[rtype] += 1
                missing = [k for k in type_specs[rtype] if k not in obj]
                if missing:
                    print(
                        f"{path}:{lineno}: '{rtype}' record missing key(s): "
                        f"{', '.join(missing)}",
                        file=sys.stderr,
                    )
                    return 1
            count += 1
    if count == 0:
        print(f"{path}: no objects found", file=sys.stderr)
        return 1
    absent = [name for name, n in type_counts.items() if n == 0]
    if absent:
        print(
            f"{path}: no records of required type(s): {', '.join(absent)}",
            file=sys.stderr,
        )
        return 1
    summary = "".join(
        f", {n} x {name}" for name, n in sorted(type_counts.items())
    )
    print(f"{path}: {count} JSON objects OK{summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
