#!/usr/bin/env python3
"""Validate a JSONL file: every line must be a standalone JSON object.

Used by the CI observability smoke job (and the ctest CLI smoke tests) on the
run-telemetry log (--log-file) and the flight-recorder dump (--flight-out).
Any extra arguments are key names that every object must contain. The file
must hold at least one object -- an empty log means the producer silently
wrote nothing, which is exactly the regression this check exists to catch.

Usage:
    python3 scripts/check_jsonl.py FILE [required_key ...]

Exit status 0 on success; 1 with a diagnostic on the first offending line.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = sys.argv[1]
    required = sys.argv[2:]
    count = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                print(f"{path}:{lineno}: blank line", file=sys.stderr)
                return 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: invalid JSON: {err}", file=sys.stderr)
                return 1
            if not isinstance(obj, dict):
                print(f"{path}:{lineno}: not a JSON object", file=sys.stderr)
                return 1
            missing = [key for key in required if key not in obj]
            if missing:
                print(
                    f"{path}:{lineno}: missing key(s): {', '.join(missing)}",
                    file=sys.stderr,
                )
                return 1
            count += 1
    if count == 0:
        print(f"{path}: no objects found", file=sys.stderr)
        return 1
    print(f"{path}: {count} JSON objects OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
