#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by netgym::tracing.

Checks that the file is one JSON document with a `traceEvents` list, that
every "X" (complete) event carries a name and numeric ts/dur, and -- when span
names are given -- that a time-containment chain exists through those names in
order (e.g. some `bo_trial` span inside a `round` span, some `eval` span
inside that `bo_trial`, ...). That is the nesting Perfetto will render, so
this is the scriptable version of eyeballing the trace.

Usage:
    python3 scripts/check_trace.py FILE [outer_span inner_span ...]

Exit status 0 on success; 1 with a diagnostic otherwise.
"""

import json
import sys

# Timestamps are microseconds with nanosecond precision; absorb only the
# text round-trip.
EPS_US = 1e-3


def contained_in(child, parent) -> bool:
    return (
        child["ts"] >= parent["ts"] - EPS_US
        and child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + EPS_US
    )


def chain_exists(spans_by_name, names, parent=None) -> bool:
    """True when a containment chain names[0] > names[1] > ... exists
    (each inside `parent`, when given)."""
    if not names:
        return True
    for span in spans_by_name.get(names[0], []):
        if parent is not None and not contained_in(span, parent):
            continue
        if chain_exists(spans_by_name, names[1:], span):
            return True
    return False


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = sys.argv[1]
    chain = sys.argv[2:]

    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            print(f"{path}: invalid JSON: {err}", file=sys.stderr)
            return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"{path}: no traceEvents list", file=sys.stderr)
        return 1

    spans_by_name = {}
    span_count = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            print(f"{path}: event {i} has no phase", file=sys.stderr)
            return 1
        if event["ph"] != "X":
            continue
        if not isinstance(event.get("name"), str) or not all(
            isinstance(event.get(k), (int, float)) for k in ("ts", "dur")
        ):
            print(f"{path}: malformed span event {i}: {event}", file=sys.stderr)
            return 1
        spans_by_name.setdefault(event["name"], []).append(event)
        span_count += 1
    if span_count == 0:
        print(f"{path}: no span events", file=sys.stderr)
        return 1

    for name in chain:
        if name not in spans_by_name:
            print(f"{path}: no span named '{name}'", file=sys.stderr)
            return 1
    if chain and not chain_exists(spans_by_name, chain):
        print(
            f"{path}: no containment chain {' > '.join(chain)}",
            file=sys.stderr,
        )
        return 1

    suffix = f", chain {' > '.join(chain)} OK" if chain else ""
    print(f"{path}: {span_count} spans OK{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
