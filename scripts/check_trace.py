#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by netgym::tracing.

Checks that the file is one JSON document with a `traceEvents` list, that
every "X" (complete) event carries a name and numeric ts/dur, and -- when span
names are given -- that a time-containment chain exists through those names in
order (e.g. some `bo_trial` span inside a `round` span, some `eval` span
inside that `bo_trial`, ...). That is the nesting Perfetto will render, so
this is the scriptable version of eyeballing the trace.

Merged multi-process traces (DESIGN.md S5j) get three more checks:

  * `--min-pids N` requires span events across at least N distinct process
    lanes -- a coordinator trace that lost its worker lanes fails here.
  * Orphan detection: every span whose args carry a nonzero `parent` must
    reference a `span_id` that exists somewhere in the file. A dead worker's
    spans are allowed to be *absent* (dropped and counted), but a present
    span must never point at a parent that was silently lost.
  * Per-lane ordering: within each (pid, tid) lane, span *completion* times
    (ts + dur) must be non-decreasing in file order. Rings push spans when
    they end, and the coordinator appends shipped batches in arrival order,
    so a lane that violates this was merged or clock-mapped incorrectly.

Usage:
    python3 scripts/check_trace.py FILE [outer inner ...] [--min-pids N]

Exit status 0 on success; 1 with a diagnostic otherwise.
"""

import json
import sys

# Timestamps are microseconds with nanosecond precision; absorb only the
# text round-trip.
EPS_US = 1e-3


def contained_in(child, parent) -> bool:
    return (
        child["ts"] >= parent["ts"] - EPS_US
        and child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + EPS_US
    )


def chain_exists(spans_by_name, names, parent=None) -> bool:
    """True when a containment chain names[0] > names[1] > ... exists
    (each inside `parent`, when given)."""
    if not names:
        return True
    for span in spans_by_name.get(names[0], []):
        if parent is not None and not contained_in(span, parent):
            continue
        if chain_exists(spans_by_name, names[1:], span):
            return True
    return False


def main() -> int:
    argv = sys.argv[1:]
    path = None
    chain = []
    min_pids = None
    i = 0
    while i < len(argv):
        if argv[i] == "--min-pids":
            if i + 1 >= len(argv):
                print("--min-pids needs a value", file=sys.stderr)
                return 1
            try:
                min_pids = int(argv[i + 1])
            except ValueError:
                print(f"bad --min-pids value '{argv[i + 1]}'", file=sys.stderr)
                return 1
            i += 2
            continue
        if path is None:
            path = argv[i]
        else:
            chain.append(argv[i])
        i += 1
    if path is None:
        print(__doc__, file=sys.stderr)
        return 1

    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            print(f"{path}: invalid JSON: {err}", file=sys.stderr)
            return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"{path}: no traceEvents list", file=sys.stderr)
        return 1

    spans_by_name = {}
    span_count = 0
    pids = set()
    span_ids = set()
    parent_refs = []  # (event index, parent id)
    last_end_by_lane = {}  # (pid, tid) -> (event index, end ts)
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            print(f"{path}: event {i} has no phase", file=sys.stderr)
            return 1
        if event["ph"] != "X":
            continue
        if not isinstance(event.get("name"), str) or not all(
            isinstance(event.get(k), (int, float)) for k in ("ts", "dur")
        ):
            print(f"{path}: malformed span event {i}: {event}", file=sys.stderr)
            return 1
        spans_by_name.setdefault(event["name"], []).append(event)
        span_count += 1
        pids.add(event.get("pid"))
        args = event.get("args")
        if isinstance(args, dict):
            if args.get("span_id"):
                span_ids.add(args["span_id"])
            if args.get("parent"):
                parent_refs.append((i, args["parent"]))
        lane = (event.get("pid"), event.get("tid"))
        end = event["ts"] + event["dur"]
        prev = last_end_by_lane.get(lane)
        if prev is not None and end < prev[1] - EPS_US:
            print(
                f"{path}: lane pid={lane[0]} tid={lane[1]} is not "
                f"completion-ordered: event {i} ends at {end}us before "
                f"event {prev[0]}'s end {prev[1]}us",
                file=sys.stderr,
            )
            return 1
        if prev is None or end > prev[1]:
            last_end_by_lane[lane] = (i, end)
    if span_count == 0:
        print(f"{path}: no span events", file=sys.stderr)
        return 1

    for i, parent in parent_refs:
        if parent not in span_ids:
            print(
                f"{path}: event {i} is orphaned: parent span {parent} "
                f"appears nowhere in the file",
                file=sys.stderr,
            )
            return 1

    if min_pids is not None and len(pids) < min_pids:
        print(
            f"{path}: spans cover {len(pids)} process lane(s) "
            f"{sorted(p for p in pids if p is not None)}, "
            f"want >= {min_pids}",
            file=sys.stderr,
        )
        return 1

    for name in chain:
        if name not in spans_by_name:
            print(f"{path}: no span named '{name}'", file=sys.stderr)
            return 1
    if chain and not chain_exists(spans_by_name, chain):
        print(
            f"{path}: no containment chain {' > '.join(chain)}",
            file=sys.stderr,
        )
        return 1

    suffix = f", chain {' > '.join(chain)} OK" if chain else ""
    if min_pids is not None:
        suffix += f", {len(pids)} process lanes"
    print(f"{path}: {span_count} spans OK{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
