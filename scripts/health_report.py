#!/usr/bin/env python3
"""Render a training-health / curriculum-provenance JSONL stream as markdown.

Consumes the log written by `genet train --health-out F` (or any run with
GENET_HEALTH set and a JSONL sink installed) and produces a human-readable
report answering two questions the raw stream buries:

  * WHY was each round's environment chosen? The gap trajectory and the
    per-round candidate tables show every configuration the Bayesian
    optimizer evaluated (normalized point, denormalized values, the GP
    surrogate's predicted mean/variance, the measured gap) next to the
    chosen configuration and its selection score.
  * WAS training healthy while it happened? Summaries of the per-update
    health statistics (entropy, gradient norms, approximate update-KL,
    explained variance) and a timeline of watchdog alerts.

Pure stdlib. Usage:

    python3 scripts/health_report.py run.jsonl [-o report.md]

Writes to stdout without -o. Exit status 1 if the file holds no records.
"""

import json
import sys


def load(path):
    records = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: invalid JSON: {err}", file=sys.stderr)
                sys.exit(1)
            if isinstance(obj, dict):
                records.append(obj)
    return records


def fmt(value, digits=4):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def summarize(values):
    """(count, mean, min, max) over the finite entries of `values`."""
    finite = [v for v in values
              if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not finite:
        return None
    return (len(finite), sum(finite) / len(finite), min(finite), max(finite))


def config_label(vector, names, max_dims=6):
    """Compact name=value rendering of a config vector."""
    if not isinstance(vector, list):
        return "-"
    parts = []
    for i, v in enumerate(vector[:max_dims]):
        name = names[i] if i < len(names) else f"x{i}"
        parts.append(f"{name}={fmt(v, 3)}")
    if len(vector) > max_dims:
        parts.append("...")
    return ", ".join(parts)


def main() -> int:
    args = sys.argv[1:]
    out_path = None
    if "-o" in args:
        i = args.index("-o")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 1
        out_path = args[i + 1]
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 1
    path = args[0]
    records = load(path)
    if not records:
        print(f"{path}: no records", file=sys.stderr)
        return 1

    rounds = [r for r in records if r.get("type") == "round"]
    trials = [r for r in records if r.get("type") == "bo_trial_provenance"]
    health = [r for r in records if r.get("type") == "health"]
    alerts = [r for r in records if r.get("type") == "alert"]

    param_names = []
    for r in rounds:
        names = r.get("param_names")
        if isinstance(names, str) and names:
            param_names = names.split(",")
            break

    lines = [f"# Training health report", "",
             f"Source: `{path}` ({len(records)} records: {len(rounds)} "
             f"rounds, {len(trials)} BO trials, {len(health)} health checks, "
             f"{len(alerts)} alerts)", ""]

    # --- Gap trajectory -----------------------------------------------------
    lines.append("## Gap trajectory")
    lines.append("")
    if rounds:
        rows = []
        for r in rounds:
            rid = r.get("step")
            mine = [t for t in trials if t.get("round") == rid]
            gaps = [t.get("measured_gap") for t in mine
                    if isinstance(t.get("measured_gap"), (int, float))]
            rows.append([
                fmt(rid),
                str(r.get("scheme", "-")),
                fmt(len(mine)),
                fmt(max(gaps) if gaps else None),
                fmt(r.get("selection_score")),
                fmt(r.get("train_reward")),
            ])
        lines += table(["round", "scheme", "bo trials", "best measured gap",
                        "selection score", "train reward"], rows)
    else:
        lines.append("No `round` records (not a curriculum run).")
    lines.append("")

    # --- Per-round candidate sets ------------------------------------------
    if trials:
        lines.append("## Candidate configurations per round")
        lines.append("")
        lines.append("Every configuration the sequencing search evaluated. "
                     "`gp mean +- sd` is the surrogate's prediction at the "
                     "proposal (blank during the initial random phase); "
                     "`measured gap` is the criterion value the evaluation "
                     "actually returned; **bold** marks each round's best.")
        lines.append("")
        by_round = {}
        for t in trials:
            by_round.setdefault(t.get("round"), []).append(t)
        for rid in sorted(by_round, key=lambda x: (x is None, x)):
            mine = by_round[rid]
            chosen = next((r for r in rounds if r.get("step") == rid), None)
            head = f"### Round {fmt(rid)}"
            if chosen is not None:
                head += (f" -- chose {config_label(chosen.get('promoted'), param_names)}"
                         f" (selection score {fmt(chosen.get('selection_score'))})")
            lines.append(head)
            lines.append("")
            gaps = [t.get("measured_gap") for t in mine
                    if isinstance(t.get("measured_gap"), (int, float))]
            best_gap = max(gaps) if gaps else None
            rows = []
            for t in mine:
                gap = t.get("measured_gap")
                gap_s = fmt(gap)
                if best_gap is not None and gap == best_gap:
                    gap_s = f"**{gap_s}**"
                if t.get("gp_valid"):
                    sd = t.get("gp_variance", 0.0) or 0.0
                    gp = f"{fmt(t.get('gp_mean'))} +- {fmt(max(sd, 0.0) ** 0.5, 3)}"
                else:
                    gp = "(random phase)"
                rows.append([
                    fmt(t.get("step")),
                    config_label(t.get("config"), param_names),
                    gp,
                    gap_s,
                    fmt(t.get("envs_per_eval")),
                    fmt(t.get("best_value")),
                ])
            lines += table(["trial", "config", "gp mean +- sd",
                            "measured gap", "envs/eval", "running best"], rows)
            lines.append("")

    # --- Health summary -----------------------------------------------------
    lines.append("## Health summary")
    lines.append("")
    if health:
        metrics = [
            ("mean_entropy", "policy entropy"),
            ("mean_episode_reward", "episode reward"),
            ("actor_grad_norm", "actor grad norm (pre-clip)"),
            ("actor_grad_norm_clipped", "actor grad norm (clipped)"),
            ("critic_grad_norm", "critic grad norm (pre-clip)"),
            ("approx_kl", "approximate update-KL"),
            ("explained_variance", "explained variance"),
        ]
        rows = []
        for key, label in metrics:
            s = summarize([h.get(key) for h in health])
            if s is None:
                continue
            n, mean, lo, hi = s
            rows.append([label, fmt(n), fmt(mean), fmt(lo), fmt(hi)])
        lines += table(["metric", "updates", "mean", "min", "max"], rows)
        non_finite = sum(1 for h in health if h.get("non_finite"))
        lines.append("")
        lines.append(f"Non-finite sentinels fired on {non_finite} of "
                     f"{len(health)} observed updates.")
    else:
        lines.append("No `health` records (watchdog was not enabled).")
    lines.append("")

    # --- Alert timeline -----------------------------------------------------
    lines.append("## Alert timeline")
    lines.append("")
    if alerts:
        rows = [[fmt(a.get("step")), str(a.get("kind", "-")),
                 str(a.get("message", "-")), fmt(a.get("value")),
                 fmt(a.get("threshold"))] for a in alerts]
        lines += table(["step", "kind", "message", "value", "threshold"], rows)
    else:
        lines.append("No alerts.")
    lines.append("")

    text = "\n".join(lines)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as out:
            out.write(text)
        print(f"wrote {out_path} ({len(lines)} lines)")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
