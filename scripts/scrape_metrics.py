#!/usr/bin/env python3
"""Scrape a live Genet metrics endpoint and validate the exposition text.

Connects to the read-only localhost endpoint that `genet train
--metrics-port` / `genet_serve --metrics-port` expose (DESIGN.md S5j), GETs
/metrics, and checks the response against the Prometheus text exposition
format (version 0.0.4):

  * HTTP 200 with the text/plain; version=0.0.4 content type.
  * Every sample line is `name[{labels}] value` with a sanitized metric name
    ([a-zA-Z_:][a-zA-Z0-9_:]*) and a float-parseable value.
  * Every `# TYPE name kind` line has kind counter|gauge|summary and comes
    before that metric's samples; every sample belongs to a declared metric.
  * Summaries: quantile labels parse as floats in [0, 1] and appear in
    increasing order; `_sum` and `_count` samples are present; the quantile
    samples of an empty summary (count 0) are omitted, never NaN.

Usage:
    python3 scripts/scrape_metrics.py (--port N | --port-file PATH)
                                      [--expect NAME]... [--timeout S]

`--port-file` reads the port from a file the daemon writes (first line),
waiting up to --timeout (default 10s) for it to appear. `--expect NAME`
additionally requires a metric with that (sanitized) name to be present --
repeatable. Exit status 0 on success; 1 with a diagnostic otherwise.
Pure stdlib, no dependencies.
"""

import re
import socket
import sys
import time

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>\S+) (?P<kind>counter|gauge|summary|histogram|untyped)$"
)


def http_get_metrics(port: int, timeout: float) -> str:
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        chunks = []
        while True:
            data = s.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode("utf-8", errors="replace")


def base_name(sample_name: str) -> str:
    """Metric family a sample belongs to (strips _sum/_count suffixes)."""
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate(body: str, expect):
    declared = {}  # name -> kind
    samples = {}  # family -> list of (labels dict, value)
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    return f"line {lineno}: malformed TYPE line: {line!r}"
                name = m.group("name")
                if not NAME_RE.match(name):
                    return f"line {lineno}: unsanitized metric name {name!r}"
                if name in declared:
                    return f"line {lineno}: duplicate TYPE for {name!r}"
                declared[name] = m.group("kind")
            continue  # HELP and other comments are free-form
        m = SAMPLE_RE.match(line)
        if not m:
            return f"line {lineno}: malformed sample line: {line!r}"
        try:
            value = float(m.group("value"))
        except ValueError:
            return f"line {lineno}: unparseable value {m.group('value')!r}"
        family = base_name(m.group("name"))
        if family not in declared:
            return (
                f"line {lineno}: sample {m.group('name')!r} has no "
                f"preceding TYPE line"
            )
        labels = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                if "=" not in part:
                    return f"line {lineno}: malformed label {part!r}"
                key, _, raw = part.partition("=")
                if not (raw.startswith('"') and raw.endswith('"')):
                    return f"line {lineno}: unquoted label value {raw!r}"
                labels[key] = raw[1:-1]
        samples.setdefault(family, []).append((labels, value))

    if not declared:
        return "no TYPE lines: empty or non-Prometheus body"

    for name, kind in declared.items():
        rows = samples.get(name, [])
        if kind == "summary":
            quantiles = [
                (labels, value)
                for labels, value in rows
                if "quantile" in labels
            ]
            # _sum/_count samples land under the same family via base_name.
            plain = [v for labels, v in rows if not labels]
            if len(plain) < 2:
                return f"summary {name!r}: missing _sum/_count samples"
            qs = []
            for labels, value in quantiles:
                try:
                    q = float(labels["quantile"])
                except ValueError:
                    return (
                        f"summary {name!r}: bad quantile label "
                        f"{labels['quantile']!r}"
                    )
                if not 0.0 <= q <= 1.0:
                    return f"summary {name!r}: quantile {q} outside [0, 1]"
                if value != value:  # NaN
                    return f"summary {name!r}: quantile {q} is NaN"
                qs.append(q)
            if qs != sorted(qs):
                return f"summary {name!r}: quantiles out of order: {qs}"
        else:
            if not rows:
                return f"metric {name!r}: TYPE line but no samples"

    missing = [name for name in expect if name not in declared]
    if missing:
        return (
            f"expected metric(s) {missing} not exposed; "
            f"got {sorted(declared)}"
        )
    return None


def main() -> int:
    argv = sys.argv[1:]
    port = None
    port_file = None
    expect = []
    timeout = 10.0
    i = 0
    while i < len(argv):
        if argv[i] == "--port" and i + 1 < len(argv):
            port = int(argv[i + 1])
            i += 2
        elif argv[i] == "--port-file" and i + 1 < len(argv):
            port_file = argv[i + 1]
            i += 2
        elif argv[i] == "--expect" and i + 1 < len(argv):
            expect.append(argv[i + 1])
            i += 2
        elif argv[i] == "--timeout" and i + 1 < len(argv):
            timeout = float(argv[i + 1])
            i += 2
        else:
            print(__doc__, file=sys.stderr)
            return 1
    if (port is None) == (port_file is None):
        print("exactly one of --port / --port-file required", file=sys.stderr)
        return 1

    deadline = time.monotonic() + timeout
    if port_file is not None:
        while True:
            try:
                with open(port_file, encoding="utf-8") as handle:
                    text = handle.readline().strip()
                if text:
                    port = int(text)
                    break
            except OSError:
                pass
            if time.monotonic() >= deadline:
                print(f"{port_file}: no port within {timeout}s", file=sys.stderr)
                return 1
            time.sleep(0.05)

    # Retry until the deadline: the endpoint may not have bound yet, and an
    # --expect'ed metric registers lazily on first use, so a scrape early in
    # the run is allowed to come up short and try again.
    last_err = "never attempted"
    while True:
        try:
            response = http_get_metrics(port, 2.0)
            head, _, body = response.partition("\r\n\r\n")
            status = head.splitlines()[0] if head else ""
            if " 200 " not in status:
                last_err = f"bad status line {status!r}"
            elif "text/plain; version=0.0.4" not in head:
                last_err = f"missing exposition content type in {head!r}"
            else:
                err = validate(body, expect)
                if err is None:
                    families = len(re.findall(r"^# TYPE ", body, flags=re.M))
                    print(
                        f"127.0.0.1:{port}: exposition OK "
                        f"({families} metric families)"
                    )
                    return 0
                last_err = err
        except OSError as err:
            last_err = str(err)
        if time.monotonic() >= deadline:
            print(f"127.0.0.1:{port}: {last_err}", file=sys.stderr)
            return 1
        time.sleep(0.2)


if __name__ == "__main__":
    sys.exit(main())
