#!/usr/bin/env python3
"""Render BENCH_fleet.json as a per-scenario markdown SLO report.

Input is the "bench": "fleet" document written by bench/bench_fleet or
`genet fleet --json` (schema validated by scripts/check_bench_json.py).
Output is one markdown section per scenario: a population-percentile table
over the streamed per-session metrics (count, mean, p50, p90, p99, p99.9,
max, plus the exact/approximate flag from the histogram) and an SLO table
with the measured compliant fraction against each target. A header block
records the run shape (sessions, throughput, shard count, determinism
re-assertion) and a fleet-wide SLO scoreboard.

Percentiles marked `approx` came from the log-bucket tail of the merged
histograms (past the 4096-sample exact cap) and carry a <= 9.05% relative
error bound (see DESIGN.md S5h); `exact` rows were computed from sorted
samples.

Usage:
    python3 scripts/slo_report.py BENCH_fleet.json [-o SLO_REPORT.md]

With no -o the markdown goes to stdout. Pure stdlib, no dependencies.
"""

import json
import sys


def num(v):
    """Compact human-readable number: 4 significant digits."""
    if isinstance(v, int):
        return str(v)
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.3e}"
    return f"{v:.4g}"


def pct(v):
    return f"{100.0 * v:.1f}%"


def table(columns, rows):
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def scenario_section(sc):
    head = f"## `{sc['name']}`"
    shape = [f"task `{sc['task']}`", f"config space RL{sc['space']}"]
    shape.append(f"{sc['sessions']:,} sessions, {sc['steps']:,} env steps")
    if sc["trace_set"]:
        shape.append(
            f"{pct(sc['trace_prob'])} of sessions on recorded "
            f"{sc['trace_set']} traces"
        )
    else:
        shape.append("fully synthetic")
    if sc["flight_path"]:
        shape.append(f"worst-k flight recording: `{sc['flight_path']}`")

    metric_rows = [
        [
            f"`{m['name']}`",
            str(m["count"]),
            num(m["mean"]),
            num(m["p50"]),
            num(m["p90"]),
            num(m["p99"]),
            num(m["p999"]),
            num(m["max"]),
            "exact" if m["exact"] else "approx",
        ]
        for m in sc["metrics"]
    ]
    out = [
        head,
        "",
        "; ".join(shape) + ".",
        "",
        table(
            ["metric", "count", "mean", "p50", "p90", "p99", "p99.9", "max",
             "tail"],
            metric_rows,
        ),
    ]

    if sc["slos"]:
        slo_rows = [
            [
                f"`{s['metric']} {s['op']} {num(s['threshold'])}`",
                pct(s["target_fraction"]),
                pct(s["fraction"]),
                f"{s['compliant']:,}/{sc['sessions']:,}",
                "**PASS**" if s["pass"] else "**FAIL**",
            ]
            for s in sc["slos"]
        ]
        out += [
            "",
            table(
                ["SLO", "target", "measured", "compliant", "verdict"],
                slo_rows,
            ),
        ]
    else:
        out += ["", "_No SLOs defined for this scenario._"]
    return "\n".join(out)


def render(doc):
    slos = [s for sc in doc["scenarios"] for s in sc["slos"]]
    passing = sum(1 for s in slos if s["pass"])
    det = doc["determinism"]
    det_line = (
        f"re-asserted at {det['threads_a']} vs {det['threads_b']} pool "
        f"threads: canonical digests "
        + ("**byte-identical**" if det["identical"] else "**DIFFERED**")
        if det["checked"]
        else "not re-asserted in this run"
    )

    lines = [
        "# Fleet SLO report",
        "",
        f"- **Sessions**: {doc['sessions_total']:,} across "
        f"{len(doc['scenarios'])} scenarios "
        f"({doc['steps_total']:,} env steps)",
        f"- **Throughput**: {doc['sessions_per_s']:,.0f} sessions/s "
        f"({doc['steps_per_s']:,.0f} steps/s) on {doc['threads']} "
        f"thread(s), {doc['shards']} shards, seed {doc['seed']}"
        + (", quick run" if doc["quick"] else ""),
        f"- **SLOs**: {passing}/{len(slos)} passing",
        f"- **Determinism**: {det_line}",
        "",
    ]
    for sc in doc["scenarios"]:
        lines.append(scenario_section(sc))
        lines.append("")
    return "\n".join(lines)


def main() -> int:
    argv = sys.argv[1:]
    path = None
    out_path = None
    i = 0
    while i < len(argv):
        if argv[i] == "-o":
            if i + 1 >= len(argv):
                print("-o needs a value", file=sys.stderr)
                return 1
            out_path = argv[i + 1]
            i += 2
            continue
        if path is None:
            path = argv[i]
            i += 1
            continue
        print(__doc__, file=sys.stderr)
        return 1
    if path is None:
        print(__doc__, file=sys.stderr)
        return 1

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: {err}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict) or doc.get("bench") != "fleet":
        print(f"{path}: not a 'bench': 'fleet' report", file=sys.stderr)
        return 1

    try:
        text = render(doc)
    except KeyError as err:
        print(
            f"{path}: missing field {err} — run "
            "scripts/check_bench_json.py for a real diagnostic",
            file=sys.stderr,
        )
        return 1
    if out_path is None:
        sys.stdout.write(text)
    else:
        with open(out_path, "w", encoding="utf-8") as out:
            out.write(text)
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
