#include "abr/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abr {

namespace {

double buffer_from_obs(const netgym::Observation& obs) {
  return obs[AbrEnv::kObsBuffer] * 30.0;
}

double max_buffer_from_obs(const netgym::Observation& obs) {
  return obs[AbrEnv::kObsMaxBuffer] * 100.0;
}

double chunk_length_from_obs(const netgym::Observation& obs) {
  return obs[AbrEnv::kObsChunkLength] * 10.0;
}

/// Shared MPC planning core: enumerate bitrate sequences over `horizon`
/// chunks under a fixed throughput prediction and return the best first
/// action (used by RobustMPC and Oboe).
int mpc_best_first_action(const netgym::Observation& obs,
                          double predicted_throughput_mbps, int horizon) {
  const double throughput = std::max(predicted_throughput_mbps, 1e-3);
  const double chunk_len = std::max(chunk_length_from_obs(obs), 0.1);
  const double capacity = std::max(max_buffer_from_obs(obs), 1.0);
  const double rtt_s = obs[AbrEnv::kObsMinRtt];
  const double start_buffer = buffer_from_obs(obs);
  const int last_bitrate = static_cast<int>(
      std::lround(obs[AbrEnv::kObsLastBitrate] * (kBitrateCount - 1)));

  double best_reward = -1e18;
  int best_first = 0;
  std::vector<int> seq(static_cast<std::size_t>(horizon), 0);
  auto simulate = [&](auto&& self, int depth, double buffer, int last,
                      double reward) -> void {
    if (depth == horizon) {
      if (reward > best_reward) {
        best_reward = reward;
        best_first = seq[0];
      }
      return;
    }
    for (int b = 0; b < kBitrateCount; ++b) {
      seq[static_cast<std::size_t>(depth)] = b;
      const double size_mb =
          depth == 0 ? obs[AbrEnv::kObsNextSizes + b]
                     : bitrate_kbps(b) * 1000.0 * chunk_len / 8e6;
      const double download_s = size_mb * 8.0 / throughput + rtt_s;
      const double rebuffer = std::max(download_s - buffer, 0.0);
      double new_buffer = std::max(buffer - download_s, 0.0) + chunk_len;
      new_buffer = std::min(new_buffer, capacity);
      const double change = std::abs(bitrate_mbps(b) - bitrate_mbps(last));
      const double r = bitrate_mbps(b) - 10.0 * rebuffer - change;
      self(self, depth + 1, new_buffer, b, reward + r);
    }
  };
  simulate(simulate, 0, start_buffer, last_bitrate, 0.0);
  return best_first;
}

}  // namespace

int BbaPolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  const double buffer = buffer_from_obs(obs);
  const double capacity = std::max(max_buffer_from_obs(obs), 1.0);
  const double chunk_len = std::max(chunk_length_from_obs(obs), 0.1);
  // Reservoir: a floor of playback runway before leaving the lowest rate;
  // upper threshold: where the highest rate becomes safe. The cushion is at
  // least two chunk durations so that players whose buffer capacity is
  // smaller than a few chunks (Table 3 allows 2 s buffers with 10 s chunks)
  // stay conservative instead of pinning to the top rate.
  const double reservoir =
      std::min(std::max(0.1 * capacity, chunk_len), 0.4 * capacity);
  const double upper =
      reservoir + std::max(0.75 * capacity, 2.0 * chunk_len);
  if (buffer <= reservoir) return 0;
  if (buffer >= upper) return kBitrateCount - 1;
  const double fraction = (buffer - reservoir) / (upper - reservoir);
  const int index = static_cast<int>(fraction * (kBitrateCount - 1) + 0.5);
  return std::clamp(index, 0, kBitrateCount - 1);
}

RobustMpcPolicy::RobustMpcPolicy(int horizon) : horizon_(horizon) {
  if (horizon <= 0) {
    throw std::invalid_argument("RobustMpcPolicy: horizon must be > 0");
  }
}

void RobustMpcPolicy::begin_episode() {
  last_prediction_mbps_ = 0.0;
  max_error_ = 0.0;
}

double RobustMpcPolicy::predict_throughput_mbps(
    const netgym::Observation& obs) {
  // Harmonic mean of the non-zero throughput history (up to 5 most recent).
  double inv_sum = 0.0;
  int count = 0;
  for (int i = AbrEnv::kThroughputHistory - 1;
       i >= 0 && count < 5; --i) {
    const double mbps =
        std::pow(10.0, obs[AbrEnv::kObsThroughputHist + i]) - 1.0;
    if (mbps > 1e-6) {
      inv_sum += 1.0 / mbps;
      ++count;
    }
  }
  const double harmonic = count > 0 ? count / inv_sum : 1.0;
  // Track the relative error of the previous prediction against the newest
  // actual sample, keeping the max over the episode so far (RobustMPC keeps
  // a window; an episode-max is the conservative variant).
  const double latest =
      std::pow(10.0,
               obs[AbrEnv::kObsThroughputHist + AbrEnv::kThroughputHistory - 1]) -
      1.0;
  if (last_prediction_mbps_ > 1e-6 && latest > 1e-6) {
    const double err =
        std::abs(last_prediction_mbps_ - latest) / latest;
    max_error_ = std::max(max_error_ * 0.9, err);  // slowly forget
  }
  const double robust = harmonic / (1.0 + max_error_);
  last_prediction_mbps_ = robust;
  return std::max(robust, 1e-3);
}

int RobustMpcPolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  const double throughput = predict_throughput_mbps(obs);
  return mpc_best_first_action(obs, throughput, horizon_);
}

OboePolicy::OboePolicy(int horizon) : horizon_(horizon) {
  if (horizon <= 0) {
    throw std::invalid_argument("OboePolicy: horizon must be > 0");
  }
}

int OboePolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  // Oboe-style auto-tuning: the throughput prediction's safety discount is
  // set from the observed network state (mean and coefficient of variation
  // of recent throughput), rather than from online error tracking.
  double sum = 0.0, sq = 0.0;
  int count = 0;
  for (int i = 0; i < AbrEnv::kThroughputHistory; ++i) {
    const double mbps =
        std::pow(10.0, obs[AbrEnv::kObsThroughputHist + i]) - 1.0;
    if (mbps > 1e-6) {
      sum += mbps;
      sq += mbps * mbps;
      ++count;
    }
  }
  if (count == 0) return 0;  // no signal yet: be conservative
  const double mean = sum / count;
  const double var = std::max(sq / count - mean * mean, 0.0);
  const double cv = std::sqrt(var) / std::max(mean, 1e-6);
  const double discounted = mean / (1.0 + 1.5 * cv);
  return mpc_best_first_action(obs, discounted, horizon_);
}

int NaiveAbrPolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  const double buffer = buffer_from_obs(obs);
  return buffer < 1.0 ? kBitrateCount - 1 : 0;
}

ConstantBitratePolicy::ConstantBitratePolicy(int bitrate_index)
    : bitrate_index_(bitrate_index) {
  if (bitrate_index < 0 || bitrate_index >= kBitrateCount) {
    throw std::invalid_argument("ConstantBitratePolicy: index out of range");
  }
}

int ConstantBitratePolicy::act(const netgym::Observation&, netgym::Rng&) {
  return bitrate_index_;
}

}  // namespace abr
