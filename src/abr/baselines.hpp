#pragma once

#include <memory>

#include "abr/env.hpp"
#include "netgym/env.hpp"

namespace abr {

/// Buffer-Based Adaptation (BBA [23]): maps the current playback-buffer
/// occupancy linearly onto the bitrate ladder between a reservoir and an
/// upper threshold, both derived from the player's buffer capacity (the BBA
/// paper's reservoir/cushion scheme). Deterministic and stateless.
class BbaPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<BbaPolicy>(*this);
  }
};

/// RobustMPC [57]: model-predictive control over a short lookahead horizon.
/// Throughput is predicted as the harmonic mean of recent measurements,
/// discounted by the maximum recent prediction error (the "robust" part);
/// the policy enumerates bitrate sequences over the horizon and picks the
/// first step of the sequence with the best predicted Table-1 reward.
class RobustMpcPolicy : public netgym::Policy {
 public:
  explicit RobustMpcPolicy(int horizon = 5);

  void begin_episode() override;
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<RobustMpcPolicy>(*this);
  }

 private:
  double predict_throughput_mbps(const netgym::Observation& obs);

  int horizon_;
  double last_prediction_mbps_ = 0.0;
  double max_error_ = 0.0;
};

/// Oboe [5] (simplified): auto-tunes the MPC throughput discount from the
/// observed mean and variance of recent throughput, instead of RobustMPC's
/// online error tracking. The paper calls Oboe "a very competitive
/// baseline" (footnote 3) and plots it in Fig. 17.
class OboePolicy : public netgym::Policy {
 public:
  explicit OboePolicy(int horizon = 5);
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<OboePolicy>(*this);
  }

 private:
  int horizon_;
};

/// The deliberately unreasonable ABR baseline of S5.4 ("choosing the highest
/// bitrate when rebuffer"): requests the top ladder rate whenever the buffer
/// is nearly empty and the bottom rate otherwise. Used to show what happens
/// when Genet is guided by a naive baseline.
class NaiveAbrPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<NaiveAbrPolicy>(*this);
  }
};

/// Fixed-bitrate policy (useful reference and test fixture).
class ConstantBitratePolicy : public netgym::Policy {
 public:
  explicit ConstantBitratePolicy(int bitrate_index);
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<ConstantBitratePolicy>(*this);
  }

 private:
  int bitrate_index_;
};

}  // namespace abr
