#include "abr/env.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netgym/telemetry.hpp"

namespace abr {

namespace {
// Bandwidth below this is treated as this value to keep downloads finite.
constexpr double kMinEffectiveBwMbps = 0.01;
// Honest players keep downloading during rebuffering, but a pathological
// chunk (huge size over near-zero bandwidth) must not stall an episode;
// cap a single download at this many seconds.
constexpr double kMaxDownloadS = 300.0;
}  // namespace

netgym::ConfigSpace abr_config_space(int which) {
  using P = netgym::ParamSpec;
  switch (which) {
    case 1:  // RL1 (Table 3)
      return netgym::ConfigSpace({P{"max_buffer_s", 2, 10},
                                  P{"chunk_length_s", 1, 4},
                                  P{"min_rtt_ms", 20, 30, false, true},
                                  P{"video_length_s", 40, 45},
                                  P{"bw_change_interval_s", 2, 2, false, true},
                                  P{"max_bw_mbps", 2, 5, false, true}});
    case 2:  // RL2
      return netgym::ConfigSpace({P{"max_buffer_s", 2, 50},
                                  P{"chunk_length_s", 1, 6},
                                  P{"min_rtt_ms", 20, 220, false, true},
                                  P{"video_length_s", 40, 200},
                                  P{"bw_change_interval_s", 2, 20, false, true},
                                  P{"max_bw_mbps", 2, 100, false, true}});
    case 3:  // RL3 (full ranges)
      return netgym::ConfigSpace({P{"max_buffer_s", 2, 100},
                                  P{"chunk_length_s", 1, 10},
                                  P{"min_rtt_ms", 20, 1000, false, true},
                                  P{"video_length_s", 40, 400},
                                  P{"bw_change_interval_s", 2, 100, false, true},
                                  P{"max_bw_mbps", 2, 1000, false, true}});
    default:
      throw std::invalid_argument("abr_config_space: which must be 1..3");
  }
}

AbrEnvConfig abr_config_from_point(const netgym::Config& point) {
  if (point.values.size() != 6) {
    throw std::invalid_argument("abr_config_from_point: expected 6 values");
  }
  AbrEnvConfig cfg;
  cfg.max_buffer_s = point.values[0];
  cfg.chunk_length_s = point.values[1];
  cfg.min_rtt_ms = point.values[2];
  cfg.video_length_s = point.values[3];
  cfg.bw_change_interval_s = point.values[4];
  cfg.max_bw_mbps = point.values[5];
  return cfg;
}

netgym::Config abr_point_from_config(const AbrEnvConfig& cfg) {
  return netgym::Config{{cfg.max_buffer_s, cfg.chunk_length_s, cfg.min_rtt_ms,
                         cfg.video_length_s, cfg.bw_change_interval_s,
                         cfg.max_bw_mbps}};
}

AbrEnv::AbrEnv(AbrEnvConfig config, netgym::Trace trace, std::uint64_t seed)
    : config_(config),
      trace_(std::move(trace)),
      video_(config.video_length_s, config.chunk_length_s, seed) {
  trace_.validate();
  if (trace_.empty() || trace_.duration_s() <= 0) {
    throw std::invalid_argument("AbrEnv: trace must cover a positive span");
  }
  if (config_.max_buffer_s <= 0 || config_.min_rtt_ms < 0) {
    throw std::invalid_argument("AbrEnv: invalid config");
  }
}

double AbrEnv::download_time_s(double bits, double start_s) const {
  if (bits <= 0) throw std::invalid_argument("download_time_s: bits <= 0");
  const double span = trace_.duration_s();
  double t = config_.min_rtt_ms / 1000.0;  // request latency
  double remaining = bits;
  // Integrate the bandwidth step function in small slices; the trace wraps.
  constexpr double kSlice = 0.05;
  while (remaining > 0 && t < kMaxDownloadS) {
    const double now = std::fmod(start_s + t, span);
    const double bw_bps =
        std::max(trace_.bandwidth_at(now), kMinEffectiveBwMbps) * 1e6;
    const double sent = bw_bps * kSlice;
    if (sent >= remaining) {
      t += remaining / bw_bps;
      remaining = 0;
    } else {
      remaining -= sent;
      t += kSlice;
    }
  }
  return std::min(t, kMaxDownloadS);
}

netgym::Observation AbrEnv::reset() {
  // Cheap run telemetry: one relaxed atomic add per episode/step, no RNG.
  static netgym::telemetry::Counter& episodes =
      netgym::telemetry::Registry::instance().counter("abr.episodes");
  episodes.add();
  flight_ = netgym::flight::begin_episode("abr", {"buffer_s", "rebuffer_s"});
  clock_s_ = 0.0;
  buffer_s_ = 0.0;
  next_chunk_ = 0;
  last_bitrate_ = 0;
  started_ = false;
  done_ = false;
  throughput_hist_mbps_.assign(kThroughputHistory, 0.0);
  delay_hist_s_.assign(kThroughputHistory, 0.0);
  totals_ = {};
  return make_observation();
}

AbrEnv::ChunkOutcome AbrEnv::chunk_transition(double clock_s, double buffer_s,
                                              int last_bitrate, bool started,
                                              int chunk, int action) const {
  if (action < 0 || action >= kBitrateCount) {
    throw std::invalid_argument("AbrEnv: bitrate index out of range");
  }
  const double bits = video_.chunk_size_bits(chunk, action);
  ChunkOutcome out;
  out.delay_s = download_time_s(bits, clock_s);
  out.clock_s = clock_s + out.delay_s;

  out.rebuffer_s = std::max(out.delay_s - buffer_s, 0.0);
  out.buffer_s =
      std::max(buffer_s - out.delay_s, 0.0) + config_.chunk_length_s;
  if (out.buffer_s > config_.max_buffer_s) {
    // Player pauses downloading while the buffer drains to capacity.
    out.clock_s += out.buffer_s - config_.max_buffer_s;
    out.buffer_s = config_.max_buffer_s;
  }

  const double bitrate = bitrate_mbps(action);
  const double change =
      started ? std::abs(bitrate - bitrate_mbps(last_bitrate)) : 0.0;
  out.reward = config_.reward.beta_bitrate * bitrate +
               config_.reward.alpha_rebuffer * out.rebuffer_s +
               config_.reward.gamma_change * change;
  return out;
}

netgym::Env::StepResult AbrEnv::step(int action) {
  if (done_) throw std::logic_error("AbrEnv::step: episode already finished");
  static netgym::telemetry::Counter& steps =
      netgym::telemetry::Registry::instance().counter("abr.env_steps");
  steps.add();
  const ChunkOutcome out = chunk_transition(clock_s_, buffer_s_, last_bitrate_,
                                            started_, next_chunk_, action);
  clock_s_ = out.clock_s;
  buffer_s_ = out.buffer_s;
  const double reward = out.reward;

  const double bits = video_.chunk_size_bits(next_chunk_, action);
  const double measured_mbps = bits / 1e6 / std::max(out.delay_s, 1e-6);
  push_history(measured_mbps, out.delay_s);
  totals_.bitrate_mbps_sum += bitrate_mbps(action);
  totals_.rebuffer_s_sum += out.rebuffer_s;
  if (started_) {
    totals_.change_mbps_sum +=
        std::abs(bitrate_mbps(action) - bitrate_mbps(last_bitrate_));
  }
  ++totals_.chunks;
  last_bitrate_ = action;
  started_ = true;
  ++next_chunk_;
  done_ = next_chunk_ >= video_.num_chunks();

  if (flight_ != nullptr) {
    flight_->add(action, reward, {buffer_s_, out.rebuffer_s});
  }
  if (done_) {
    // Episode stall time distribution behind the paper's tail metrics.
    static netgym::telemetry::Histogram& stall =
        netgym::telemetry::Registry::instance().histogram(
            "abr.episode_rebuffer_s");
    stall.record(totals_.rebuffer_s_sum);
    netgym::flight::submit(std::move(flight_));
  }

  StepResult result;
  result.reward = reward;
  result.done = done_;
  result.observation = make_observation();
  return result;
}

void AbrEnv::push_history(double throughput_mbps, double delay_s) {
  throughput_hist_mbps_.erase(throughput_hist_mbps_.begin());
  throughput_hist_mbps_.push_back(throughput_mbps);
  delay_hist_s_.erase(delay_hist_s_.begin());
  delay_hist_s_.push_back(delay_s);
}

netgym::Observation AbrEnv::make_observation() const {
  netgym::Observation obs(kObsSize, 0.0);
  obs[kObsLastBitrate] =
      static_cast<double>(last_bitrate_) / (kBitrateCount - 1);
  obs[kObsBuffer] = buffer_s_ / 30.0;
  for (int i = 0; i < kThroughputHistory; ++i) {
    // Log-compressed features: bandwidths span 2-1000 Mbps (Table 3), and
    // linear features that large saturate the tanh policy network.
    obs[kObsThroughputHist + i] = std::log10(1.0 + throughput_hist_mbps_[i]);
    obs[kObsDelayHist + i] = std::log10(1.0 + delay_hist_s_[i]);
  }
  const int chunk = std::min(next_chunk_, video_.num_chunks() - 1);
  for (int b = 0; b < kBitrateCount; ++b) {
    obs[kObsNextSizes + b] = video_.chunk_size_bits(chunk, b) / 8e6;  // MB
  }
  obs[kObsRemaining] =
      static_cast<double>(video_.num_chunks() - next_chunk_) /
      video_.num_chunks();
  obs[kObsChunkLength] = config_.chunk_length_s / 10.0;
  obs[kObsMinRtt] = config_.min_rtt_ms / 1000.0;
  obs[kObsMaxBuffer] = config_.max_buffer_s / 100.0;
  return obs;
}

std::unique_ptr<AbrEnv> make_abr_env(const AbrEnvConfig& config,
                                     netgym::Rng& rng) {
  netgym::AbrTraceParams params;
  params.max_bw_mbps = config.max_bw_mbps;
  params.min_bw_mbps =
      std::max(config.max_bw_mbps * config.bw_min_ratio, kMinEffectiveBwMbps);
  params.bw_change_interval_s = config.bw_change_interval_s;
  params.duration_s = std::max(config.video_length_s, 10.0);
  netgym::Trace trace = generate_abr_trace(params, rng);
  return std::make_unique<AbrEnv>(config, std::move(trace), rng.engine()());
}

std::unique_ptr<AbrEnv> make_abr_env(const AbrEnvConfig& config,
                                     const netgym::Trace& trace,
                                     netgym::Rng& rng) {
  return std::make_unique<AbrEnv>(config, trace, rng.engine()());
}

}  // namespace abr
