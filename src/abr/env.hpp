#pragma once

#include <memory>

#include "abr/video.hpp"
#include "netgym/config.hpp"
#include "netgym/env.hpp"
#include "netgym/flight.hpp"
#include "netgym/trace.hpp"

namespace abr {

/// Reward weights of Table 1: sum_i (alpha*Rebuf_i + beta*Bitrate_i +
/// gamma*|BitrateChange_i|) / n, rebuffering in seconds, bitrates in Mbps.
struct RewardWeights {
  double alpha_rebuffer = -10.0;
  double beta_bitrate = 1.0;
  double gamma_change = -1.0;
};

/// Environment parameters of the ABR simulator (Table 3 plus the BW min/max
/// ratio swept in Fig. 10). `bw_min_ratio` sets the trace generator's minimum
/// bandwidth as a fraction of `max_bw_mbps`.
struct AbrEnvConfig {
  double max_buffer_s = 60.0;
  double chunk_length_s = 4.0;
  double min_rtt_ms = 80.0;
  double video_length_s = 196.0;
  double bw_change_interval_s = 5.0;
  double max_bw_mbps = 5.0;
  /// The paper's example configurations use bandwidth ranges like
  /// "0-5 Mbps"; a small floor ratio keeps downloads finite while producing
  /// comparably swingy links.
  double bw_min_ratio = 0.2;
  RewardWeights reward;
};

/// The 6-dimensional ABR configuration space of Table 3. `which` selects the
/// RL1 / RL2 / RL3 ranges (1, 2, or 3).
netgym::ConfigSpace abr_config_space(int which);

/// Convert a point of `abr_config_space` into simulator parameters
/// (`bw_min_ratio` stays at its default; Fig. 10 sweeps it directly).
AbrEnvConfig abr_config_from_point(const netgym::Config& point);
netgym::Config abr_point_from_config(const AbrEnvConfig& cfg);

/// Chunk-level video-streaming simulator in the style of Pensieve's.
///
/// Each step downloads one chunk at the chosen ladder bitrate over the
/// bandwidth trace (plus one `min_rtt` of request latency), advances the
/// playback buffer, and emits the Table-1 reward. The trace wraps around if
/// the video outlasts it. Episodes run for the whole video.
///
/// Observation layout (all features scaled to roughly O(1)):
///   [0]                     last bitrate index / 5
///   [1]                     playback buffer (s) / 30
///   [2 .. 2+H-1]            throughput history, log10(1 + Mbps), oldest first
///   [2+H .. 2+2H-1]         download-time history, log10(1 + s), oldest first
///   [2+2H .. 2+2H+B-1]      next chunk sizes (MB) per ladder index
///   [2+2H+B]                fraction of chunks remaining
///   [2+2H+B+1]              chunk length (s) / 10
///   [2+2H+B+2]              min RTT (s)
///   [2+2H+B+3]              max playback buffer (s) / 100
/// with H = kThroughputHistory and B = kBitrateCount.
class AbrEnv : public netgym::Env {
 public:
  static constexpr int kThroughputHistory = 8;
  static constexpr int kObsSize = 2 + 2 * kThroughputHistory + kBitrateCount + 4;

  // Named observation indices for rule-based policies.
  static constexpr int kObsLastBitrate = 0;
  static constexpr int kObsBuffer = 1;
  static constexpr int kObsThroughputHist = 2;
  static constexpr int kObsDelayHist = 2 + kThroughputHistory;
  static constexpr int kObsNextSizes = 2 + 2 * kThroughputHistory;
  static constexpr int kObsRemaining = kObsNextSizes + kBitrateCount;
  static constexpr int kObsChunkLength = kObsRemaining + 1;
  static constexpr int kObsMinRtt = kObsChunkLength + 1;
  static constexpr int kObsMaxBuffer = kObsMinRtt + 1;

  /// Build an environment over an explicit bandwidth trace (trace-driven
  /// envs) with chunk sizes derived from `seed`.
  AbrEnv(AbrEnvConfig config, netgym::Trace trace, std::uint64_t seed);

  netgym::Observation reset() override;
  StepResult step(int action) override;
  int action_count() const override { return kBitrateCount; }
  std::size_t observation_size() const override { return kObsSize; }

  const AbrEnvConfig& config() const { return config_; }
  const Video& video() const { return video_; }
  const netgym::Trace& trace() const { return trace_; }

  double buffer_s() const { return buffer_s_; }
  double clock_s() const { return clock_s_; }
  int next_chunk() const { return next_chunk_; }

  /// Per-episode QoE breakdown (the quantities of Table 6): accumulated
  /// since the last reset().
  struct Totals {
    double bitrate_mbps_sum = 0.0;
    double rebuffer_s_sum = 0.0;
    double change_mbps_sum = 0.0;
    int chunks = 0;
    double mean_bitrate_mbps() const {
      return chunks > 0 ? bitrate_mbps_sum / chunks : 0.0;
    }
    double mean_rebuffer_s() const {
      return chunks > 0 ? rebuffer_s_sum / chunks : 0.0;
    }
    double mean_change_mbps() const {
      return chunks > 0 ? change_mbps_sum / chunks : 0.0;
    }
    /// Rebuffering time as a fraction of played video time.
    double rebuffer_ratio(double chunk_length_s) const {
      const double played = chunks * chunk_length_s;
      return played > 0 ? rebuffer_s_sum / played : 0.0;
    }
  };
  const Totals& totals() const { return totals_; }

  /// Wall-clock seconds to download `bits` starting at trace time `start_s`
  /// (includes the request RTT). Deterministic; used by the offline optimal.
  double download_time_s(double bits, double start_s) const;

  /// Pure chunk-download transition: the exact dynamics of `step`, exposed so
  /// offline planners (the beam-search optimal, MPC variants) replay the same
  /// physics without mutating the environment.
  struct ChunkOutcome {
    double clock_s = 0.0;
    double buffer_s = 0.0;
    double delay_s = 0.0;
    double rebuffer_s = 0.0;
    double reward = 0.0;
  };
  ChunkOutcome chunk_transition(double clock_s, double buffer_s,
                                int last_bitrate, bool started, int chunk,
                                int action) const;

 private:
  void push_history(double throughput_mbps, double delay_s);
  netgym::Observation make_observation() const;

  AbrEnvConfig config_;
  netgym::Trace trace_;
  Video video_;
  double clock_s_ = 0.0;
  double buffer_s_ = 0.0;
  int next_chunk_ = 0;
  int last_bitrate_ = 0;
  bool started_ = false;
  bool done_ = true;
  std::vector<double> throughput_hist_mbps_;
  std::vector<double> delay_hist_s_;
  Totals totals_;
  std::unique_ptr<netgym::flight::EpisodeCapture> flight_;
};

/// Synthesize the trace for `config` (Appendix A.2 generator) and build an
/// environment on it. This is the "N random envs per config" step: both trace
/// and chunk sizes come from `rng`.
std::unique_ptr<AbrEnv> make_abr_env(const AbrEnvConfig& config,
                                     netgym::Rng& rng);

/// Trace-driven variant: the recorded bandwidth is replayed, every other
/// parameter comes from `config`.
std::unique_ptr<AbrEnv> make_abr_env(const AbrEnvConfig& config,
                                     const netgym::Trace& trace,
                                     netgym::Rng& rng);

}  // namespace abr
