#include "abr/optimal.hpp"

#include <algorithm>
#include <stdexcept>

namespace abr {

namespace {

struct BeamState {
  double clock_s = 0.0;
  double buffer_s = 0.0;
  int last_bitrate = 0;
  bool started = false;
  double reward = 0.0;
  std::vector<int> choices;
};

}  // namespace

OptimalPlan offline_optimal(const AbrEnv& env, int beam_width) {
  if (beam_width <= 0) {
    throw std::invalid_argument("offline_optimal: beam_width must be > 0");
  }
  const int chunks = env.video().num_chunks();
  std::vector<BeamState> beam{BeamState{}};
  std::vector<BeamState> next;
  next.reserve(static_cast<std::size_t>(beam_width) * kBitrateCount);

  for (int chunk = 0; chunk < chunks; ++chunk) {
    next.clear();
    for (const BeamState& state : beam) {
      for (int action = 0; action < kBitrateCount; ++action) {
        const AbrEnv::ChunkOutcome out =
            env.chunk_transition(state.clock_s, state.buffer_s,
                                 state.last_bitrate, state.started, chunk,
                                 action);
        BeamState child;
        child.clock_s = out.clock_s;
        child.buffer_s = out.buffer_s;
        child.last_bitrate = action;
        child.started = true;
        child.reward = state.reward + out.reward;
        child.choices = state.choices;
        child.choices.push_back(action);
        next.push_back(std::move(child));
      }
    }
    if (static_cast<int>(next.size()) > beam_width) {
      // Keep the best `beam_width` states by accumulated reward; break ties
      // toward larger buffers (more future slack).
      std::partial_sort(next.begin(), next.begin() + beam_width, next.end(),
                        [](const BeamState& a, const BeamState& b) {
                          if (a.reward != b.reward) return a.reward > b.reward;
                          return a.buffer_s > b.buffer_s;
                        });
      next.resize(static_cast<std::size_t>(beam_width));
    }
    beam.swap(next);
  }

  const auto best = std::max_element(
      beam.begin(), beam.end(),
      [](const BeamState& a, const BeamState& b) { return a.reward < b.reward; });
  OptimalPlan plan;
  plan.bitrates = best->choices;
  plan.total_reward = best->reward;
  plan.mean_reward = chunks > 0 ? best->reward / chunks : 0.0;
  return plan;
}

}  // namespace abr
