#pragma once

#include <vector>

#include "abr/env.hpp"

namespace abr {

/// Result of the offline planner: the bitrate sequence it chose and the
/// total / per-chunk reward that sequence achieves under the environment's
/// exact dynamics.
struct OptimalPlan {
  std::vector<int> bitrates;
  double total_reward = 0.0;
  double mean_reward = 0.0;
};

/// Offline near-optimal ABR plan via beam search with full knowledge of the
/// bandwidth trace and chunk sizes ("Strawman 3"'s ground-truth optimum,
/// S3). Each beam state tracks (clock, buffer, last bitrate, reward) and is
/// advanced through `AbrEnv::chunk_transition`, i.e. the same physics the
/// live environment applies, so the plan's reward is exactly attainable.
///
/// Beam search with a few dozen states is within a fraction of a percent of
/// exhaustive DP on these horizons while staying cheap enough to call inside
/// curriculum search loops.
OptimalPlan offline_optimal(const AbrEnv& env, int beam_width = 64);

}  // namespace abr
