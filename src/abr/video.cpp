#include "abr/video.hpp"

#include <cmath>
#include <stdexcept>

#include "netgym/rng.hpp"

namespace abr {

double bitrate_kbps(int index) {
  if (index < 0 || index >= kBitrateCount) {
    throw std::out_of_range("bitrate_kbps: ladder index out of range");
  }
  return kBitratesKbps[index];
}

double bitrate_mbps(int index) { return bitrate_kbps(index) / 1000.0; }

Video::Video(double length_s, double chunk_length_s, std::uint64_t size_seed)
    : chunk_length_s_(chunk_length_s) {
  if (length_s <= 0 || chunk_length_s <= 0) {
    throw std::invalid_argument("Video: lengths must be > 0");
  }
  const int chunks = static_cast<int>(std::ceil(length_s / chunk_length_s));
  netgym::Rng rng(size_seed);
  sizes_bits_.resize(static_cast<std::size_t>(chunks));
  for (auto& per_bitrate : sizes_bits_) {
    per_bitrate.resize(kBitrateCount);
    const double noise = rng.uniform(0.9, 1.1);
    for (int b = 0; b < kBitrateCount; ++b) {
      per_bitrate[static_cast<std::size_t>(b)] =
          kBitratesKbps[b] * 1000.0 * chunk_length_s * noise;
    }
  }
}

double Video::chunk_size_bits(int chunk, int bitrate_index) const {
  if (chunk < 0 || chunk >= num_chunks()) {
    throw std::out_of_range("Video::chunk_size_bits: chunk out of range");
  }
  if (bitrate_index < 0 || bitrate_index >= kBitrateCount) {
    throw std::out_of_range("Video::chunk_size_bits: bitrate out of range");
  }
  return sizes_bits_[static_cast<std::size_t>(chunk)]
                    [static_cast<std::size_t>(bitrate_index)];
}

}  // namespace abr
