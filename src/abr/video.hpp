#pragma once

#include <cstdint>
#include <vector>

namespace abr {

/// The bitrate ladder of the test video, in kbps. This matches the
/// "EnvivioDash3" ladder used by the Pensieve testbed the paper builds on.
inline constexpr int kBitrateCount = 6;
inline constexpr double kBitratesKbps[kBitrateCount] = {300.0,  750.0,
                                                        1200.0, 1850.0,
                                                        2850.0, 4300.0};

double bitrate_kbps(int index);
double bitrate_mbps(int index);

/// A pre-encoded video: per-chunk, per-bitrate sizes in bits. Sizes are the
/// nominal `bitrate * chunk_length` perturbed by +/-10% multiplicative noise
/// per chunk (real encoders produce variable-size chunks); the whole table is
/// generated up front so model-predictive and offline-optimal policies can
/// inspect future chunks, as in the real system where a DASH manifest lists
/// all chunk sizes.
class Video {
 public:
  /// Builds a video of ceil(length_s / chunk_length_s) chunks.
  Video(double length_s, double chunk_length_s, std::uint64_t size_seed);

  int num_chunks() const { return static_cast<int>(sizes_bits_.size()); }
  double chunk_length_s() const { return chunk_length_s_; }

  /// Size in bits of `chunk` at ladder index `bitrate_index`.
  double chunk_size_bits(int chunk, int bitrate_index) const;

 private:
  double chunk_length_s_;
  // sizes_bits_[chunk][bitrate]
  std::vector<std::vector<double>> sizes_bits_;
};

}  // namespace abr
