#include "bo/gp.hpp"

#include <cmath>
#include <stdexcept>

namespace bo {

GaussianProcess::GaussianProcess(Options options) : options_(options) {
  if (options_.length_scale <= 0 || options_.signal_variance <= 0 ||
      options_.noise_variance < 0) {
    throw std::invalid_argument("GaussianProcess: invalid options");
  }
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  const double l2 = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * sq / l2);
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& points,
                          const std::vector<double>& targets) {
  if (points.empty() || points.size() != targets.size()) {
    throw std::invalid_argument("GaussianProcess::fit: bad shapes");
  }
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      throw std::invalid_argument("GaussianProcess::fit: ragged points");
    }
  }
  points_ = points;

  // Standardize targets.
  const auto n = points.size();
  double mean = 0.0;
  for (double y : targets) mean += y;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double y : targets) var += (y - mean) * (y - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = std::sqrt(std::max(var, 1e-12));

  // K + noise*I, then its Cholesky factor (lower triangular, row-major).
  chol_.assign(n * n, 0.0);
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(points_[i], points_[j]) +
                       (i == j ? options_.noise_variance : 0.0);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = k[i * n + j];
      for (std::size_t m = 0; m < j; ++m) {
        sum -= chol_[i * n + m] * chol_[j * n + m];
      }
      if (i == j) {
        if (sum <= 1e-12) sum = 1e-12;  // jitter against degeneracy
        chol_[i * n + i] = std::sqrt(sum);
      } else {
        chol_[i * n + j] = sum / chol_[j * n + j];
      }
    }
  }

  // alpha = K^-1 y_std  via forward/back substitution.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = (targets[i] - y_mean_) / y_std_;
    for (std::size_t m = 0; m < i; ++m) sum -= chol_[i * n + m] * z[m];
    z[i] = sum / chol_[i * n + i];
  }
  alpha_.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = z[i];
    for (std::size_t m = i + 1; m < n; ++m) {
      sum -= chol_[m * n + i] * alpha_[m];
    }
    alpha_[i] = sum / chol_[i * n + i];
  }
}

GaussianProcess::Prediction GaussianProcess::predict(
    const std::vector<double>& x) const {
  if (!fitted()) {
    // Prior: zero mean (in standardized units), full signal variance.
    return {y_mean_, options_.signal_variance};
  }
  const auto n = points_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(points_[i], x);

  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += kstar[i] * alpha_[i];

  // v = L^-1 k*; var = k(x,x) - v.v
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = kstar[i];
    for (std::size_t m = 0; m < i; ++m) sum -= chol_[i * n + m] * v[m];
    v[i] = sum / chol_[i * n + i];
  }
  double var_std = kernel(x, x);
  for (std::size_t i = 0; i < n; ++i) var_std -= v[i] * v[i];
  var_std = std::max(var_std, 0.0);

  Prediction p;
  p.mean = y_mean_ + mean_std * y_std_;
  p.variance = var_std * y_std_ * y_std_;
  return p;
}

void GaussianProcess::save_state(netgym::checkpoint::Snapshot& snap,
                                 const std::string& prefix) const {
  const std::size_t n = points_.size();
  const std::size_t d = n > 0 ? points_.front().size() : 0;
  snap.put_i64(prefix + "n", static_cast<std::int64_t>(n));
  snap.put_i64(prefix + "d", static_cast<std::int64_t>(d));
  std::vector<double> flat;
  flat.reserve(n * d);
  for (const auto& p : points_) flat.insert(flat.end(), p.begin(), p.end());
  snap.put_doubles(prefix + "points", std::move(flat));
  snap.put_doubles(prefix + "alpha", alpha_);
  snap.put_doubles(prefix + "chol", chol_);
  snap.put_double(prefix + "y_mean", y_mean_);
  snap.put_double(prefix + "y_std", y_std_);
}

void GaussianProcess::load_state(const netgym::checkpoint::Snapshot& snap,
                                 const std::string& prefix) {
  using netgym::checkpoint::CheckpointError;
  const std::int64_t n_raw = snap.get_i64(prefix + "n");
  const std::int64_t d_raw = snap.get_i64(prefix + "d");
  const std::vector<double>& flat = snap.get_doubles(prefix + "points");
  const std::vector<double>& alpha = snap.get_doubles(prefix + "alpha");
  const std::vector<double>& chol = snap.get_doubles(prefix + "chol");
  const double y_mean = snap.get_double(prefix + "y_mean");
  const double y_std = snap.get_double(prefix + "y_std");
  if (n_raw < 0 || d_raw < 0) {
    throw CheckpointError("GaussianProcess::load_state: negative shape (" +
                          prefix + ")");
  }
  const std::size_t n = static_cast<std::size_t>(n_raw);
  const std::size_t d = static_cast<std::size_t>(d_raw);
  if (flat.size() != n * d || alpha.size() != n || chol.size() != n * n) {
    throw CheckpointError(
        "GaussianProcess::load_state: inconsistent fit shapes (" + prefix +
        ")");
  }
  std::vector<std::vector<double>> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i].assign(flat.begin() + static_cast<std::ptrdiff_t>(i * d),
                     flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * d));
  }
  points_ = std::move(points);
  alpha_ = alpha;
  chol_ = chol;
  y_mean_ = y_mean;
  y_std_ = y_std;
}

}  // namespace bo
