#pragma once

#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"

namespace bo {

/// Gaussian-process regression with an RBF (squared-exponential) kernel over
/// the unit cube, the surrogate model behind the Bayesian-optimization
/// search of S4.2. Targets are standardized internally, so the kernel's
/// signal variance is relative to the observed spread.
class GaussianProcess : public netgym::checkpoint::Serializable {
 public:
  struct Options {
    double length_scale = 0.25;
    double signal_variance = 1.0;
    double noise_variance = 1e-2;
  };

  GaussianProcess() : GaussianProcess(Options{}) {}
  explicit GaussianProcess(Options options);

  /// Fit to observations (points in [0,1]^d, one target each). Replaces any
  /// previous fit. Throws if shapes are inconsistent or `points` is empty.
  void fit(const std::vector<std::vector<double>>& points,
           const std::vector<double>& targets);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };

  /// Posterior prediction at `x` (in the original target units).
  Prediction predict(const std::vector<double>& x) const;

  bool fitted() const { return !points_.empty(); }
  std::size_t num_points() const { return points_.size(); }

  /// Checkpoint hooks: persist the exact fitted state (points, alpha, the
  /// Cholesky factor, target standardization) so a restored GP predicts
  /// bit-identically without refitting. An unfitted GP round-trips as n = 0.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  double kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  Options options_;
  std::vector<std::vector<double>> points_;
  std::vector<double> alpha_;       // K^-1 (y - mean) in standardized units
  std::vector<double> chol_;        // lower-triangular Cholesky factor of K
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace bo
