#include "bo/search.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netgym/telemetry.hpp"

namespace bo {

namespace {

/// Standard normal pdf/cdf for Expected Improvement.
double norm_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

void Maximizer::update(const std::vector<double>& x, double value) {
  points_.push_back(x);
  values_.push_back(value);
  if (value > best_value_) {
    best_value_ = value;
    best_point_ = x;
  }
}

BayesianOptimizer::BayesianOptimizer(int dims, std::uint64_t seed,
                                     Options options)
    : dims_(dims), options_(options), rng_(seed), gp_(options.gp) {
  if (dims <= 0) {
    throw std::invalid_argument("BayesianOptimizer: dims must be > 0");
  }
}

double BayesianOptimizer::acquisition_value(
    const GaussianProcess::Prediction& p) const {
  const double sigma = std::sqrt(std::max(p.variance, 1e-12));
  if (options_.acquisition == Acquisition::kUpperConfidenceBound) {
    return p.mean + options_.ucb_kappa * sigma;
  }
  const double improvement = p.mean - best_value_ - options_.xi;
  const double z = improvement / sigma;
  return improvement * norm_cdf(z) + sigma * norm_pdf(z);
}

std::vector<double> BayesianOptimizer::propose() {
  if (num_evaluations() < options_.initial_random) {
    last_prediction_ = ProposalPrediction{};  // random phase: no surrogate
    std::vector<double> x(static_cast<std::size_t>(dims_));
    for (double& v : x) v = rng_.uniform(0.0, 1.0);
    return x;
  }
  if (gp_dirty_) {
    gp_.fit(points_, values_);
    gp_dirty_ = false;
  }
  std::vector<double> best_candidate;
  GaussianProcess::Prediction best_pred{};
  double best_ei = -1e300;
  for (int c = 0; c < options_.candidates; ++c) {
    std::vector<double> x(static_cast<std::size_t>(dims_));
    if (c % 4 == 0 && !best_point_.empty()) {
      // Local jitter around the incumbent to refine promising regions.
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = std::clamp(best_point_[i] + rng_.gaussian(0.0, 0.08), 0.0, 1.0);
      }
    } else {
      for (double& v : x) v = rng_.uniform(0.0, 1.0);
    }
    const GaussianProcess::Prediction pred = gp_.predict(x);
    const double score = acquisition_value(pred);
    if (score > best_ei) {
      best_ei = score;
      best_candidate = std::move(x);
      best_pred = pred;
    }
  }
  last_prediction_ =
      ProposalPrediction{true, best_pred.mean, best_pred.variance, best_ei};
  return best_candidate;
}

void BayesianOptimizer::update(const std::vector<double>& x, double value) {
  Maximizer::update(x, value);
  gp_dirty_ = true;

  // Telemetry: one "bo_trial" event per proposal/observation pair (Fig. 20's
  // best-gap-vs-samples data). Emitted on the proposing thread after all RNG
  // use, so the sink cannot change what the search explores.
  namespace tel = netgym::telemetry;
  tel::Registry::instance().counter("bo.trials").add();
  if (tel::logging_enabled()) {
    tel::log_event("bo_trial", num_evaluations() - 1,
                   {{"point", x},
                    {"value", value},
                    {"best_value", best_value()}});
  }
}

void BayesianOptimizer::save_state(netgym::checkpoint::Snapshot& snap,
                                   const std::string& prefix) const {
  const std::size_t n = points_.size();
  snap.put_i64(prefix + "dims", static_cast<std::int64_t>(dims_));
  snap.put_i64(prefix + "n", static_cast<std::int64_t>(n));
  std::vector<double> flat;
  flat.reserve(n * static_cast<std::size_t>(dims_));
  for (const auto& p : points_) flat.insert(flat.end(), p.begin(), p.end());
  snap.put_doubles(prefix + "points", std::move(flat));
  snap.put_doubles(prefix + "values", values_);
  snap.put_doubles(prefix + "best_point", best_point_);
  snap.put_double(prefix + "best_value", best_value_);
  snap.put_string(prefix + "rng", rng_.state());
  snap.put_i64(prefix + "gp_dirty", gp_dirty_ ? 1 : 0);
  gp_.save_state(snap, prefix + "gp/");
}

void BayesianOptimizer::load_state(const netgym::checkpoint::Snapshot& snap,
                                   const std::string& prefix) {
  using netgym::checkpoint::CheckpointError;
  const std::int64_t dims = snap.get_i64(prefix + "dims");
  const std::int64_t n_raw = snap.get_i64(prefix + "n");
  const std::vector<double>& flat = snap.get_doubles(prefix + "points");
  const std::vector<double>& values = snap.get_doubles(prefix + "values");
  const std::vector<double>& best_point =
      snap.get_doubles(prefix + "best_point");
  const double best_value = snap.get_double(prefix + "best_value");
  const std::int64_t gp_dirty = snap.get_i64(prefix + "gp_dirty");
  if (dims != dims_) {
    throw CheckpointError(
        "BayesianOptimizer::load_state: dimensionality mismatch (" + prefix +
        "dims)");
  }
  if (n_raw < 0) {
    throw CheckpointError("BayesianOptimizer::load_state: negative count (" +
                          prefix + "n)");
  }
  const std::size_t n = static_cast<std::size_t>(n_raw);
  const std::size_t d = static_cast<std::size_t>(dims_);
  if (flat.size() != n * d || values.size() != n ||
      (!best_point.empty() && best_point.size() != d)) {
    throw CheckpointError(
        "BayesianOptimizer::load_state: inconsistent history shapes (" +
        prefix + ")");
  }
  netgym::Rng rng = rng_;
  try {
    rng.set_state(snap.get_string(prefix + "rng"));
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(std::string("BayesianOptimizer::load_state: ") +
                          e.what() + " (" + prefix + "rng)");
  }
  GaussianProcess gp = gp_;
  gp.load_state(snap, prefix + "gp/");

  points_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    points_[i].assign(flat.begin() + static_cast<std::ptrdiff_t>(i * d),
                      flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * d));
  }
  values_ = values;
  best_point_ = best_point;
  best_value_ = best_value;
  rng_ = rng;
  gp_ = std::move(gp);
  gp_dirty_ = gp_dirty != 0;
}

RandomSearch::RandomSearch(int dims, std::uint64_t seed)
    : dims_(dims), rng_(seed) {
  if (dims <= 0) throw std::invalid_argument("RandomSearch: dims must be > 0");
}

std::vector<double> RandomSearch::propose() {
  std::vector<double> x(static_cast<std::size_t>(dims_));
  for (double& v : x) v = rng_.uniform(0.0, 1.0);
  return x;
}

GridSearch::GridSearch(int dims, int points_per_dim)
    : dims_(dims),
      points_per_dim_(points_per_dim),
      incumbent_(static_cast<std::size_t>(dims), 0.5) {
  if (dims <= 0 || points_per_dim < 2) {
    throw std::invalid_argument("GridSearch: bad arguments");
  }
}

std::vector<double> GridSearch::propose() {
  std::vector<double> x = incumbent_;
  const int dim = current_dim_ % dims_;
  x[static_cast<std::size_t>(dim)] =
      static_cast<double>(current_step_) / (points_per_dim_ - 1);
  return x;
}

void GridSearch::update(const std::vector<double>& x, double value) {
  Maximizer::update(x, value);
  const int dim = current_dim_ % dims_;
  const double coord = x[static_cast<std::size_t>(dim)];
  if (value > dim_best_value_) {
    dim_best_value_ = value;
    dim_best_coord_ = coord;
  }
  ++current_step_;
  if (current_step_ >= points_per_dim_) {
    // Fix this dimension at its best grid value, move to the next one.
    incumbent_[static_cast<std::size_t>(dim)] = dim_best_coord_;
    current_step_ = 0;
    ++current_dim_;
    dim_best_value_ = -1e300;
    dim_best_coord_ = 0.5;
  }
}

}  // namespace bo
