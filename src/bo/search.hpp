#pragma once

#include <vector>

#include "bo/gp.hpp"
#include "netgym/rng.hpp"

namespace bo {

/// Common interface of the black-box maximizers compared in Fig. 20. All of
/// them propose points in the unit cube [0,1]^d; the caller evaluates the
/// black-box function (gap-to-baseline of an environment configuration) and
/// reports it back via `update`.
class Maximizer {
 public:
  virtual ~Maximizer() = default;

  /// Next point to evaluate.
  virtual std::vector<double> propose() = 0;

  /// Report the function value observed at `x` (the point from `propose`).
  virtual void update(const std::vector<double>& x, double value);

  const std::vector<double>& best_point() const { return best_point_; }
  double best_value() const { return best_value_; }
  int num_evaluations() const { return static_cast<int>(values_.size()); }

 protected:
  std::vector<std::vector<double>> points_;
  std::vector<double> values_;
  std::vector<double> best_point_;
  double best_value_ = -1e300;
};

/// Bayesian optimization with a GP surrogate and Expected Improvement
/// acquisition, maximized over a random candidate set (plus local jitter
/// around the incumbent). This is Genet's sequencing-module search (S4.2);
/// it is restarted from scratch for every new RL model snapshot.
class BayesianOptimizer : public Maximizer,
                          public netgym::checkpoint::Serializable {
 public:
  enum class Acquisition {
    kExpectedImprovement,  ///< EI (default; what Genet uses)
    kUpperConfidenceBound  ///< mean + kappa * stddev
  };

  struct Options {
    int initial_random = 3;  ///< pure exploration before the GP kicks in
    int candidates = 512;    ///< acquisition maximization sample size
    double xi = 0.01;        ///< EI exploration margin
    Acquisition acquisition = Acquisition::kExpectedImprovement;
    double ucb_kappa = 2.0;  ///< exploration weight for UCB
    GaussianProcess::Options gp;
  };

  BayesianOptimizer(int dims, std::uint64_t seed)
      : BayesianOptimizer(dims, seed, Options{}) {}
  BayesianOptimizer(int dims, std::uint64_t seed, Options options);

  std::vector<double> propose() override;
  void update(const std::vector<double>& x, double value) override;

  /// GP surrogate view of the point the most recent `propose()` returned:
  /// predicted mean/variance plus the acquisition score that won the
  /// candidate sweep. `valid` is false while the search is still in its
  /// initial random phase (no surrogate was consulted) or before the first
  /// proposal. Provenance only -- never feeds back into the search. Not
  /// checkpointed (a resumed search reports invalid until its next propose).
  struct ProposalPrediction {
    bool valid = false;
    double mean = 0.0;
    double variance = 0.0;
    double acquisition = 0.0;
  };
  const ProposalPrediction& last_proposal_prediction() const {
    return last_prediction_;
  }

  /// Checkpoint hooks: persist the evaluation history, incumbent, RNG stream,
  /// and the GP surrogate, so a resumed search proposes the exact points an
  /// uninterrupted one would. load_state validates dimensionality and shape
  /// consistency before mutating anything.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  double acquisition_value(const GaussianProcess::Prediction& p) const;

  int dims_;
  Options options_;
  netgym::Rng rng_;
  GaussianProcess gp_;
  bool gp_dirty_ = true;
  ProposalPrediction last_prediction_;
};

/// Uniform random search (Fig. 20's "Random" comparator).
class RandomSearch : public Maximizer {
 public:
  RandomSearch(int dims, std::uint64_t seed);
  std::vector<double> propose() override;

 private:
  int dims_;
  netgym::Rng rng_;
};

/// Coordinate grid search (Fig. 20's "Grid" comparator): all coordinates
/// start at their midpoints; the search sweeps one dimension at a time over
/// an even grid, fixing each dimension at its best value before moving on.
class GridSearch : public Maximizer {
 public:
  GridSearch(int dims, int points_per_dim = 10);
  std::vector<double> propose() override;
  void update(const std::vector<double>& x, double value) override;

 private:
  int dims_;
  int points_per_dim_;
  int current_dim_ = 0;
  int current_step_ = 0;
  std::vector<double> incumbent_;
  double dim_best_value_ = -1e300;
  double dim_best_coord_ = 0.5;
};

}  // namespace bo
