#include "cc/baselines.hpp"

#include <algorithm>
#include <cmath>

namespace cc {

RateController::MiView RateController::view(const netgym::Observation& obs) {
  MiView mi;
  mi.rate_pkts = (std::pow(10.0, obs[CcEnv::kObsRate]) - 1.0) * 100.0;
  mi.min_rtt_s = obs[CcEnv::kObsMinRtt];
  const int base = CcEnv::kObsNewestMi;
  mi.avg_rtt_s = (obs[base + 0] + 1.0) * mi.min_rtt_s;
  mi.latency_gradient = obs[base + 1];
  mi.loss_rate = obs[base + 3];
  mi.delivered_mbps = std::pow(10.0, obs[base + 4]) - 1.0;
  mi.delivered_pkts_per_s = mi.delivered_mbps * 1e6 / CcEnv::kPacketBits;
  mi.mi_duration_s = obs[CcEnv::kObsMiDuration];
  return mi;
}

int RateController::act(const netgym::Observation& obs, netgym::Rng& rng) {
  const MiView mi = view(obs);
  const double target = std::max(target_rate_pkts(mi, rng), 1.0);
  // Emit the factor that lands closest (in log space) to the target rate.
  const double current = std::max(mi.rate_pkts, 1.0);
  int best = 0;
  double best_dist = 1e18;
  for (int a = 0; a < kRateActionCount; ++a) {
    const double next = current * kRateFactors[a];
    const double dist = std::abs(std::log(next) - std::log(target));
    if (dist < best_dist) {
      best_dist = dist;
      best = a;
    }
  }
  return best;
}

void CubicPolicy::begin_episode() {
  cwnd_pkts_ = 10.0;
  w_max_ = 0.0;
  k_s_ = 0.0;
  epoch_clock_s_ = 0.0;
  slow_start_ = true;
  initialized_ = false;
}

double CubicPolicy::target_rate_pkts(const MiView& mi, netgym::Rng&) {
  const double rtt = std::max(mi.avg_rtt_s, 1e-3);
  if (!initialized_) {
    initialized_ = true;
    return cwnd_pkts_ / rtt;
  }
  // Any loss in the MI counts as a loss event (Cubic cannot tell random
  // loss apart from congestion loss -- the very weakness S4.2 discusses).
  if (mi.loss_rate > 1e-4) {
    w_max_ = cwnd_pkts_;
    cwnd_pkts_ = std::max(cwnd_pkts_ * kBeta, 2.0);
    k_s_ = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
    epoch_clock_s_ = 0.0;
    slow_start_ = false;
  } else if (slow_start_) {
    cwnd_pkts_ *= 2.0;  // one doubling per RTT-long MI
  } else {
    epoch_clock_s_ += std::max(mi.mi_duration_s, 1e-3);
    const double t = epoch_clock_s_ - k_s_;
    cwnd_pkts_ = std::max(kC * t * t * t + w_max_, 2.0);
  }
  cwnd_pkts_ = std::min(cwnd_pkts_, 1e6);
  return cwnd_pkts_ / rtt;
}

void BbrPolicy::begin_episode() {
  mode_ = Mode::kStartup;
  delivery_samples_.clear();
  full_bw_ = 0.0;
  full_bw_stalls_ = 0;
  cycle_index_ = 0;
  pacing_rate_ = 0.0;
}

double BbrPolicy::btlbw_pkts() const {
  double best = 0.0;
  const std::size_t start =
      delivery_samples_.size() > kBtlBwWindow
          ? delivery_samples_.size() - kBtlBwWindow
          : 0;
  for (std::size_t i = start; i < delivery_samples_.size(); ++i) {
    best = std::max(best, delivery_samples_[i]);
  }
  return best;
}

double BbrPolicy::target_rate_pkts(const MiView& mi, netgym::Rng&) {
  if (mi.delivered_pkts_per_s > 0) {
    delivery_samples_.push_back(mi.delivered_pkts_per_s);
  }
  const double btlbw = std::max(btlbw_pkts(), 1.0);

  switch (mode_) {
    case Mode::kStartup: {
      // Exit startup once the delivery rate stops growing by >= 25%.
      if (btlbw > full_bw_ * 1.25) {
        full_bw_ = btlbw;
        full_bw_stalls_ = 0;
      } else {
        ++full_bw_stalls_;
      }
      if (full_bw_stalls_ >= 3) {
        mode_ = Mode::kDrain;
        pacing_rate_ = btlbw * 0.75;
        return pacing_rate_;
      }
      pacing_rate_ = std::max(mi.rate_pkts * 2.0, 10.0);
      return pacing_rate_;
    }
    case Mode::kDrain: {
      // Queue drained when measured RTT approaches the propagation RTT.
      if (mi.avg_rtt_s <= mi.min_rtt_s * 1.2) {
        mode_ = Mode::kProbeBandwidth;
        cycle_index_ = 0;
      }
      pacing_rate_ = btlbw * 0.75;
      return pacing_rate_;
    }
    case Mode::kProbeBandwidth: {
      // BBRv2-style loss response: heavy loss means the bandwidth estimate
      // is stale (the link faded under us); collapse it to the currently
      // observed delivery rate before resuming the gain cycle.
      if (mi.loss_rate > 0.05 && mi.delivered_pkts_per_s > 0) {
        delivery_samples_.assign(1, mi.delivered_pkts_per_s);
        cycle_index_ = 1;  // start in the drain phase of the cycle
        pacing_rate_ = mi.delivered_pkts_per_s * 0.9;
        return pacing_rate_;
      }
      static constexpr double kGains[kCycleLength] = {1.25, 0.75, 1, 1,
                                                      1,    1,    1, 1};
      const double gain = kGains[cycle_index_];
      cycle_index_ = (cycle_index_ + 1) % kCycleLength;
      pacing_rate_ = btlbw * gain;
      return pacing_rate_;
    }
  }
  return pacing_rate_;
}

void VivacePolicy::begin_episode() {
  prev_rate_ = 0.0;
  prev_utility_ = 0.0;
  direction_ = 1.0;
  streak_ = 0;
  has_prev_ = false;
}

double VivacePolicy::target_rate_pkts(const MiView& mi, netgym::Rng&) {
  const double thr = std::max(mi.delivered_pkts_per_s, 1.0);
  const double utility = std::pow(thr, 0.9) -
                         900.0 * thr * std::max(mi.latency_gradient, 0.0) -
                         11.35 * thr * mi.loss_rate;
  const double rate = std::max(mi.rate_pkts, 1.0);
  if (!has_prev_) {
    has_prev_ = true;
    prev_rate_ = rate;
    prev_utility_ = utility;
    return rate * 1.1;
  }
  // Gradient sign from the last two (rate, utility) samples.
  if (std::abs(rate - prev_rate_) > 1e-9) {
    const double gradient = (utility - prev_utility_) / (rate - prev_rate_);
    const double new_direction = gradient >= 0 ? 1.0 : -1.0;
    if (new_direction == direction_) {
      streak_ = std::min(streak_ + 1, 5);
    } else {
      streak_ = 0;
      direction_ = new_direction;
    }
  }
  prev_rate_ = rate;
  prev_utility_ = utility;
  const double step = 0.05 * (1 + streak_);  // confidence amplification
  return rate * (1.0 + direction_ * step);
}

void CopaPolicy::begin_episode() {
  velocity_ = 1.0;
  last_direction_ = 0.0;
}

double CopaPolicy::target_rate_pkts(const MiView& mi, netgym::Rng&) {
  const double queue_delay = std::max(mi.avg_rtt_s - mi.min_rtt_s, 1e-4);
  const double target = 1.0 / (kDelta * queue_delay);
  const double rate = std::max(mi.rate_pkts, 1.0);
  const double direction = target > rate ? 1.0 : -1.0;
  if (direction == last_direction_) {
    velocity_ = std::min(velocity_ * 2.0, 32.0);
  } else {
    velocity_ = 1.0;
    last_direction_ = direction;
  }
  const double rtt = std::max(mi.avg_rtt_s, 1e-3);
  const double step = velocity_ / (kDelta * rtt);
  return std::max(rate + direction * step, 1.0);
}

double OraclePolicy::target_rate_pkts(const MiView&, netgym::Rng&) {
  const double span = env_.trace().duration_s();
  const double bw = env_.trace().bandwidth_at(std::fmod(env_.clock_s(), span));
  return std::max(bw, 0.01) * 1e6 / CcEnv::kPacketBits;
}

}  // namespace cc
