#pragma once

#include <memory>

#include "cc/env.hpp"
#include "netgym/env.hpp"

namespace cc {

/// Base class for rule-based congestion controllers driven through the CC
/// environment's discrete rate-factor action space. Each controller computes
/// a *target* sending rate from the latest monitor-interval statistics; the
/// base class then emits the action whose factor moves the current rate
/// closest to that target. (This inherits the MI decision granularity of the
/// simulator — exactly the coarseness S7 of the paper discusses; S4.3 notes
/// a baseline needn't be perfectly faithful to steer Genet.)
class RateController : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) final;

 protected:
  /// Convenience view over the observation's newest MI block.
  struct MiView {
    double rate_pkts = 0.0;
    double min_rtt_s = 0.0;
    double avg_rtt_s = 0.0;
    double latency_gradient = 0.0;
    double loss_rate = 0.0;
    double delivered_mbps = 0.0;
    double delivered_pkts_per_s = 0.0;
    double mi_duration_s = 0.0;
  };
  static MiView view(const netgym::Observation& obs);

  /// Return the desired sending rate (packets/s) for the next MI.
  virtual double target_rate_pkts(const MiView& mi, netgym::Rng& rng) = 0;
};

/// TCP Cubic [20] adapted to rate-based MI control: a congestion window
/// grows along the cubic curve W(t) = C (t - K)^3 + W_max, multiplicative
/// decrease (beta) on loss, slow-start until the first loss. The sending
/// rate is cwnd / RTT.
class CubicPolicy : public RateController {
 public:
  void begin_episode() override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<CubicPolicy>(*this);
  }

 protected:
  double target_rate_pkts(const MiView& mi, netgym::Rng& rng) override;

 private:
  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;
  double cwnd_pkts_ = 10.0;
  double w_max_ = 0.0;
  double k_s_ = 0.0;
  double epoch_clock_s_ = 0.0;
  bool slow_start_ = true;
  bool initialized_ = false;
};

/// BBR [8] adapted to MI control: startup doubles the rate until the
/// delivery rate stops growing, then the controller paces at the estimated
/// bottleneck bandwidth (max delivery rate over a sliding window) with a
/// pacing-gain cycle that periodically probes for more bandwidth and then
/// drains the queue.
class BbrPolicy : public RateController {
 public:
  void begin_episode() override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<BbrPolicy>(*this);
  }

 protected:
  double target_rate_pkts(const MiView& mi, netgym::Rng& rng) override;

 private:
  static constexpr int kBtlBwWindow = 10;
  static constexpr int kCycleLength = 8;
  enum class Mode { kStartup, kDrain, kProbeBandwidth };
  Mode mode_ = Mode::kStartup;
  std::vector<double> delivery_samples_;
  double full_bw_ = 0.0;
  int full_bw_stalls_ = 0;
  int cycle_index_ = 0;
  double pacing_rate_ = 0.0;

  double btlbw_pkts() const;
};

/// PCC Vivace [14] (latency flavour), simplified to its core online-learning
/// loop: estimate the utility gradient by comparing consecutive MIs and move
/// the rate in the improving direction with a confidence-amplified step.
/// Utility: throughput^0.9 - 900 * throughput * max(0, dRTT/dt)
///          - 11.35 * throughput * loss.
class VivacePolicy : public RateController {
 public:
  void begin_episode() override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<VivacePolicy>(*this);
  }

 protected:
  double target_rate_pkts(const MiView& mi, netgym::Rng& rng) override;

 private:
  double prev_rate_ = 0.0;
  double prev_utility_ = 0.0;
  double direction_ = 1.0;
  int streak_ = 0;
  bool has_prev_ = false;
};

/// Copa (Arun & Balakrishnan, NSDI'18), simplified: target rate is
/// 1 / (delta * queueing delay); the rate moves toward the target with a
/// velocity that doubles while the direction is consistent.
class CopaPolicy : public RateController {
 public:
  void begin_episode() override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<CopaPolicy>(*this);
  }

 protected:
  double target_rate_pkts(const MiView& mi, netgym::Rng& rng) override;

 private:
  static constexpr double kDelta = 0.5;
  double velocity_ = 1.0;
  double last_direction_ = 0.0;
};

/// Omniscient sender: paces exactly at the link's current capacity (reads
/// the trace). Upper reference for gap-to-optimum comparisons (CL3 /
/// Strawman 3).
class OraclePolicy : public RateController {
 public:
  explicit OraclePolicy(const CcEnv& env) : env_(env) {}

 protected:
  double target_rate_pkts(const MiView& mi, netgym::Rng& rng) override;

 private:
  const CcEnv& env_;
};

}  // namespace cc
