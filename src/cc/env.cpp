#include "cc/env.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netgym/telemetry.hpp"

namespace cc {

namespace {
constexpr double kFluidSliceS = 0.01;
constexpr double kMinRatePkts = 5.0;
constexpr double kMaxRatePkts = 40000.0;  // ~480 Mbps headroom above RL3 max
}  // namespace

netgym::ConfigSpace cc_config_space(int which) {
  using P = netgym::ParamSpec;
  switch (which) {
    case 1:  // RL1 (Table 4; example 1/9-width slice of RL3)
      return netgym::ConfigSpace({P{"max_bw_mbps", 0.5, 7, false, true},
                                  P{"min_rtt_ms", 205, 250, false, true},
                                  P{"bw_change_interval_s", 11, 13},
                                  P{"loss_rate", 0.01, 0.014},
                                  P{"queue_packets", 2, 6, false, true}});
    case 2:  // RL2 (1/3-width slice)
      return netgym::ConfigSpace({P{"max_bw_mbps", 0.4, 14, false, true},
                                  P{"min_rtt_ms", 156, 288, false, true},
                                  P{"bw_change_interval_s", 3, 8},
                                  P{"loss_rate", 0.007, 0.02},
                                  P{"queue_packets", 2, 11, false, true}});
    case 3:  // RL3 (full ranges)
      return netgym::ConfigSpace({P{"max_bw_mbps", 0.1, 100, false, true},
                                  P{"min_rtt_ms", 10, 400, false, true},
                                  P{"bw_change_interval_s", 0, 30},
                                  P{"loss_rate", 0, 0.05},
                                  P{"queue_packets", 2, 200, false, true}});
    default:
      throw std::invalid_argument("cc_config_space: which must be 1..3");
  }
}

CcEnvConfig cc_config_from_point(const netgym::Config& point) {
  if (point.values.size() != 5) {
    throw std::invalid_argument("cc_config_from_point: expected 5 values");
  }
  CcEnvConfig cfg;
  cfg.max_bw_mbps = point.values[0];
  cfg.min_rtt_ms = point.values[1];
  cfg.bw_change_interval_s = point.values[2];
  cfg.loss_rate = point.values[3];
  cfg.queue_packets = point.values[4];
  return cfg;
}

netgym::Config cc_point_from_config(const CcEnvConfig& cfg) {
  return netgym::Config{{cfg.max_bw_mbps, cfg.min_rtt_ms,
                         cfg.bw_change_interval_s, cfg.loss_rate,
                         cfg.queue_packets}};
}

double CcEnv::Totals::mean_throughput_mbps(double duration_s) const {
  if (duration_s <= 0) return 0.0;
  return delivered_pkts * kPacketBits / 1e6 / duration_s;
}

double CcEnv::Totals::loss_fraction() const {
  return sent_pkts > 0 ? lost_pkts / sent_pkts : 0.0;
}

double CcEnv::Totals::mean_latency_s() const {
  return delivered_pkts > 0 ? latency_weighted_s / delivered_pkts : 0.0;
}

CcEnv::CcEnv(CcEnvConfig config, netgym::Trace trace, std::uint64_t seed)
    : config_(config), trace_(std::move(trace)), rng_(seed) {
  trace_.validate();
  if (trace_.empty() || trace_.duration_s() <= 0) {
    throw std::invalid_argument("CcEnv: trace must cover a positive span");
  }
  if (config_.min_rtt_ms <= 0 || config_.queue_packets < 1 ||
      config_.loss_rate < 0 || config_.loss_rate >= 1 ||
      config_.duration_s <= 0) {
    throw std::invalid_argument("CcEnv: invalid config");
  }
}

double CcEnv::current_rtt_s() const {
  const double span = trace_.duration_s();
  const double bw_pkts =
      std::max(trace_.bandwidth_at(std::fmod(clock_s_, span)), 0.01) * 1e6 /
      kPacketBits;
  return config_.min_rtt_ms / 1000.0 + queue_pkts_ / bw_pkts;
}

netgym::Observation CcEnv::reset() {
  // Cheap run telemetry: one relaxed atomic add per episode/step, no RNG.
  static netgym::telemetry::Counter& episodes =
      netgym::telemetry::Registry::instance().counter("cc.episodes");
  episodes.add();
  flight_ = netgym::flight::begin_episode(
      "cc", {"queue_delay_s", "rate_pkts_per_s"});
  clock_s_ = 0.0;
  queue_pkts_ = 0.0;
  done_ = false;
  // Start around 1 Mbps regardless of the link: the policy must discover the
  // capacity itself (same convention as Aurora's simulator).
  rate_pkts_ = 1e6 / kPacketBits * rng_.uniform(0.7, 1.3);
  history_ = {};
  totals_ = {};
  return make_observation();
}

CcEnv::MiStats CcEnv::simulate_interval(double duration_s) {
  MiStats stats;
  stats.duration_s = duration_s;
  const double span = trace_.duration_s();
  double t = 0.0;
  double latency_acc = 0.0;   // delivered-weighted latency
  while (t < duration_s - 1e-12) {
    const double dt = std::min(kFluidSliceS, duration_s - t);
    const double now = std::fmod(clock_s_ + t, span);
    const double bw_pkts =
        std::max(trace_.bandwidth_at(now), 0.01) * 1e6 / kPacketBits;

    const double sent = rate_pkts_ * dt;
    const double random_lost = sent * config_.loss_rate;
    double arriving = sent - random_lost;

    // FIFO queue: overflow beyond capacity is dropped (congestion loss).
    const double room = std::max(config_.queue_packets - queue_pkts_, 0.0);
    const double overflow = std::max(arriving - room - bw_pkts * dt, 0.0);
    arriving -= overflow;
    queue_pkts_ = std::min(queue_pkts_ + arriving, config_.queue_packets);

    const double served = std::min(queue_pkts_, bw_pkts * dt);
    queue_pkts_ -= served;

    // Per-packet latency: propagation + queueing delay at service time.
    double latency =
        config_.min_rtt_ms / 1000.0 + queue_pkts_ / bw_pkts;
    if (config_.delay_noise_ms > 0) {
      latency += std::abs(rng_.gaussian(0.0, config_.delay_noise_ms / 1000.0));
    }
    latency_acc += latency * served;

    stats.sent += sent;
    stats.lost += random_lost + overflow;
    stats.delivered += served;
    t += dt;
  }
  stats.avg_latency_s = stats.delivered > 0
                            ? latency_acc / stats.delivered
                            : current_rtt_s();
  return stats;
}

netgym::Env::StepResult CcEnv::step(int action) {
  if (done_) throw std::logic_error("CcEnv::step: episode already finished");
  static netgym::telemetry::Counter& steps =
      netgym::telemetry::Registry::instance().counter("cc.env_steps");
  steps.add();
  if (action < 0 || action >= kRateActionCount) {
    throw std::invalid_argument("CcEnv::step: action out of range");
  }
  rate_pkts_ = std::clamp(rate_pkts_ * kRateFactors[action], kMinRatePkts,
                          kMaxRatePkts);

  // One monitor interval = one (current) RTT, floored so very short RTTs do
  // not explode the step count.
  const double mi = std::clamp(current_rtt_s(), 0.05, 2.0);
  const MiStats stats = simulate_interval(mi);
  clock_s_ += mi;

  push_mi(stats);
  totals_.sent_pkts += stats.sent;
  totals_.delivered_pkts += stats.delivered;
  totals_.lost_pkts += stats.lost;
  totals_.latency_weighted_s += stats.avg_latency_s * stats.delivered;
  totals_.mi_latencies_s.push_back(stats.avg_latency_s);

  const double throughput_mbps =
      stats.delivered * kPacketBits / 1e6 / stats.duration_s;
  const double loss = stats.sent > 0 ? stats.lost / stats.sent : 0.0;
  // Latency enters the reward as the average one-way packet delay (half the
  // measured RTT), which reproduces the reward scales of the paper's
  // figures; see CcRewardWeights.
  const double reward = config_.reward.a_throughput * throughput_mbps +
                        config_.reward.b_latency * stats.avg_latency_s / 2.0 +
                        config_.reward.c_loss * loss;

  done_ = clock_s_ >= config_.duration_s;

  // Per-MI queueing delay (measured latency minus propagation): the
  // env-internal distribution behind the paper's latency tails.
  const double queue_delay_s =
      std::max(stats.avg_latency_s - config_.min_rtt_ms / 1000.0, 0.0);
  static netgym::telemetry::Histogram& queue_delay =
      netgym::telemetry::Registry::instance().histogram("cc.queue_delay_s");
  queue_delay.record(queue_delay_s);
  if (flight_ != nullptr) {
    flight_->add(action, reward, {queue_delay_s, rate_pkts_});
  }
  if (done_) netgym::flight::submit(std::move(flight_));

  StepResult result;
  result.reward = reward;
  result.done = done_;
  result.observation = make_observation();
  return result;
}

void CcEnv::push_mi(const MiStats& stats) {
  for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
    history_[i] = history_[i + 1];
  }
  history_.back() = stats;
}

netgym::Observation CcEnv::make_observation() const {
  netgym::Observation obs(kObsSize, 0.0);
  const double min_rtt_s = config_.min_rtt_ms / 1000.0;
  double prev_latency = 0.0;
  for (int i = 0; i < kMiHistory; ++i) {
    const MiStats& mi = history_[static_cast<std::size_t>(i)];
    const int base = i * kFeaturesPerMi;
    if (mi.duration_s <= 0) {
      prev_latency = 0.0;
      continue;  // untouched slot (early in the episode)
    }
    obs[base + 0] = mi.avg_latency_s / min_rtt_s - 1.0;
    obs[base + 1] = prev_latency > 0
                        ? (mi.avg_latency_s - prev_latency) / mi.duration_s
                        : 0.0;
    const double send_ratio =
        mi.delivered > 1e-9 ? mi.sent / mi.delivered : 11.0;
    obs[base + 2] = std::min(send_ratio - 1.0, 10.0);
    obs[base + 3] = mi.sent > 0 ? mi.lost / mi.sent : 0.0;
    obs[base + 4] = std::log10(
        1.0 + mi.delivered * kPacketBits / 1e6 / mi.duration_s);
    prev_latency = mi.avg_latency_s;
  }
  obs[kObsRate] = std::log10(1.0 + rate_pkts_ / 100.0);
  obs[kObsMinRtt] = min_rtt_s;
  obs[kObsMiDuration] = history_.back().duration_s;
  return obs;
}

std::unique_ptr<CcEnv> make_cc_env(const CcEnvConfig& config,
                                   netgym::Rng& rng) {
  netgym::CcTraceParams params;
  params.max_bw_mbps = std::max(config.max_bw_mbps, 0.05);
  params.bw_change_interval_s = config.bw_change_interval_s;
  params.duration_s = config.duration_s;
  netgym::Trace trace = generate_cc_trace(params, rng);
  return std::make_unique<CcEnv>(config, std::move(trace), rng.engine()());
}

std::unique_ptr<CcEnv> make_cc_env(const CcEnvConfig& config,
                                   const netgym::Trace& trace,
                                   netgym::Rng& rng) {
  return std::make_unique<CcEnv>(config, trace, rng.engine()());
}

}  // namespace cc
