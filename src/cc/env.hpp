#pragma once

#include <array>
#include <memory>

#include "netgym/config.hpp"
#include "netgym/env.hpp"
#include "netgym/flight.hpp"
#include "netgym/trace.hpp"

namespace cc {

/// Reward weights of Table 1: sum_i (a*Throughput_i + b*Latency_i +
/// c*LossRate_i) / n with throughput in Mbps, latency = average one-way
/// packet delay in seconds (half the measured RTT), loss as a fraction.
/// (Table 1 prints "kbps" for the throughput unit; with a = 120 that unit
/// produces rewards ~1000x larger than every reward axis in the paper's
/// figures, so we use Mbps + one-way delay, which reproduces those scales.)
struct CcRewardWeights {
  double a_throughput = 120.0;
  double b_latency = -1000.0;
  double c_loss = -2000.0;
};

/// Environment parameters of the CC simulator (Table 4 / Appendix A.2).
struct CcEnvConfig {
  double max_bw_mbps = 3.16;
  double min_rtt_ms = 100.0;      ///< two-way propagation delay
  double bw_change_interval_s = 7.5;
  double loss_rate = 0.0;         ///< random (non-congestion) packet loss
  double queue_packets = 10.0;
  double delay_noise_ms = 0.0;    ///< gaussian noise on measured delay
  double duration_s = 30.0;
  CcRewardWeights reward;
};

/// The 5-dimensional CC configuration space of Table 4 (RL1/RL2/RL3).
netgym::ConfigSpace cc_config_space(int which);

CcEnvConfig cc_config_from_point(const netgym::Config& point);
netgym::Config cc_point_from_config(const CcEnvConfig& cfg);

/// Relative rate changes available per monitor interval. Aurora's action is a
/// continuous rate delta; we discretize it to these multiplicative factors.
/// (S7 of the paper discusses the coarse decision granularity of MI-based
/// control; rule-based baselines in this simulator act through the same
/// factors, see baselines.hpp.)
inline constexpr int kRateActionCount = 9;
inline constexpr double kRateFactors[kRateActionCount] = {
    0.5, 0.75, 0.9, 0.97, 1.0, 1.03, 1.1, 1.25, 1.5};

/// Monitor-interval congestion-control simulator in the style of Aurora's.
///
/// One `step` simulates one monitor interval (MI), one RTT long: the sender
/// transmits at its current rate into a single bottleneck link with a FIFO
/// queue of `queue_packets`, time-varying bandwidth from the trace, random
/// loss, and two-way propagation delay `min_rtt_ms`. The queue is integrated
/// as a fluid in 10 ms slices. The action rescales the sending rate for the
/// next MI by `kRateFactors[action]`.
///
/// Observation layout (kMiHistory MIs, oldest first, 5 features per MI):
///   [5i+0]  latency ratio - 1        (avg RTT / min RTT - 1)
///   [5i+1]  latency gradient         (d avg RTT / dt, unitless)
///   [5i+2]  send ratio - 1           (sent / delivered - 1, capped at 10)
///   [5i+3]  loss rate                (lost / sent)
///   [5i+4]  delivered throughput     log10(1 + Mbps)
/// then:
///   [5H+0]  current sending rate     log10(1 + packets-per-second / 100)
///   [5H+1]  minimum RTT (s)
///   [5H+2]  last MI duration (s)
class CcEnv : public netgym::Env {
 public:
  static constexpr int kMiHistory = 10;
  static constexpr int kFeaturesPerMi = 5;
  static constexpr int kObsSize = kMiHistory * kFeaturesPerMi + 3;
  static constexpr double kPacketBits = 12000.0;  // 1500-byte packets

  // Named offsets of the newest MI block and the trailing scalars.
  static constexpr int kObsNewestMi = (kMiHistory - 1) * kFeaturesPerMi;
  static constexpr int kObsRate = kMiHistory * kFeaturesPerMi;
  static constexpr int kObsMinRtt = kObsRate + 1;
  static constexpr int kObsMiDuration = kObsRate + 2;

  CcEnv(CcEnvConfig config, netgym::Trace trace, std::uint64_t seed);

  netgym::Observation reset() override;
  StepResult step(int action) override;
  int action_count() const override { return kRateActionCount; }
  std::size_t observation_size() const override { return kObsSize; }

  const CcEnvConfig& config() const { return config_; }
  const netgym::Trace& trace() const { return trace_; }
  double clock_s() const { return clock_s_; }
  double rate_pkts_per_s() const { return rate_pkts_; }

  /// Aggregate per-episode statistics (for Table 7-style breakdowns).
  struct Totals {
    double sent_pkts = 0.0;
    double delivered_pkts = 0.0;
    double lost_pkts = 0.0;
    double latency_weighted_s = 0.0;  ///< sum of (avg latency * delivered)
    std::vector<double> mi_latencies_s;
    double mean_throughput_mbps(double duration_s) const;
    double loss_fraction() const;
    double mean_latency_s() const;
  };
  const Totals& totals() const { return totals_; }

 private:
  struct MiStats {
    double sent = 0.0;
    double delivered = 0.0;
    double lost = 0.0;
    double avg_latency_s = 0.0;
    double duration_s = 0.0;
  };
  MiStats simulate_interval(double duration_s);
  void push_mi(const MiStats& stats);
  netgym::Observation make_observation() const;
  double current_rtt_s() const;

  CcEnvConfig config_;
  netgym::Trace trace_;
  netgym::Rng rng_;
  double clock_s_ = 0.0;
  double rate_pkts_ = 0.0;
  double queue_pkts_ = 0.0;
  bool done_ = true;
  std::array<MiStats, kMiHistory> history_{};
  Totals totals_;
  std::unique_ptr<netgym::flight::EpisodeCapture> flight_;
};

/// Synthesize the bandwidth trace for `config` (Appendix A.2) and build an
/// environment on it.
std::unique_ptr<CcEnv> make_cc_env(const CcEnvConfig& config,
                                   netgym::Rng& rng);

/// Trace-driven variant: recorded bandwidth, other parameters from `config`.
std::unique_ptr<CcEnv> make_cc_env(const CcEnvConfig& config,
                                   const netgym::Trace& trace,
                                   netgym::Rng& rng);

}  // namespace cc
