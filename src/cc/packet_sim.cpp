#include "cc/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cc {

namespace {
constexpr double kMinRatePkts = 5.0;
constexpr double kMaxRatePkts = 40000.0;
}  // namespace

PacketCcEnv::PacketCcEnv(CcEnvConfig config, netgym::Trace trace,
                         std::uint64_t seed)
    : config_(config), trace_(std::move(trace)), rng_(seed) {
  trace_.validate();
  if (trace_.empty() || trace_.duration_s() <= 0) {
    throw std::invalid_argument("PacketCcEnv: trace must cover a positive span");
  }
  if (config_.min_rtt_ms <= 0 || config_.queue_packets < 1 ||
      config_.loss_rate < 0 || config_.loss_rate >= 1 ||
      config_.duration_s <= 0) {
    throw std::invalid_argument("PacketCcEnv: invalid config");
  }
}

double PacketCcEnv::bandwidth_pkts_at(double t) const {
  const double span = trace_.duration_s();
  return std::max(trace_.bandwidth_at(std::fmod(t, span)), 0.01) * 1e6 /
         CcEnv::kPacketBits;
}

double PacketCcEnv::current_rtt_s() const {
  const double queue_delay =
      std::max(last_depart_s_ - clock_s_, 0.0);
  return config_.min_rtt_ms / 1000.0 + queue_delay;
}

netgym::Observation PacketCcEnv::reset() {
  clock_s_ = 0.0;
  done_ = false;
  rate_pkts_ = 1e6 / CcEnv::kPacketBits * rng_.uniform(0.7, 1.3);
  next_send_s_ = 0.0;
  last_depart_s_ = 0.0;
  queue_departures_.clear();
  history_ = {};
  totals_ = {};
  return make_observation();
}

PacketCcEnv::MiStats PacketCcEnv::simulate_interval(double duration_s) {
  MiStats stats;
  stats.duration_s = duration_s;
  const double end_s = clock_s_ + duration_s;
  double latency_acc = 0.0;

  // Emit packets at the pacing rate until the MI ends.
  const double gap = 1.0 / rate_pkts_;
  while (next_send_s_ < end_s) {
    const double now = next_send_s_;
    next_send_s_ += gap;
    stats.sent += 1.0;

    // Random (non-congestion) loss.
    if (rng_.bernoulli(config_.loss_rate)) {
      stats.lost += 1.0;
      continue;
    }

    // Drain the queue of packets that departed before this arrival.
    while (!queue_departures_.empty() && queue_departures_.front() <= now) {
      queue_departures_.pop_front();
    }
    // Tail drop on overflow.
    if (static_cast<double>(queue_departures_.size()) >=
        config_.queue_packets) {
      stats.lost += 1.0;
      continue;
    }

    const double service = 1.0 / bandwidth_pkts_at(now);
    const double depart = std::max(now, last_depart_s_) + service;
    last_depart_s_ = depart;
    queue_departures_.push_back(depart);

    double latency = (depart - now) + config_.min_rtt_ms / 1000.0;
    if (config_.delay_noise_ms > 0) {
      latency += std::abs(rng_.gaussian(0.0, config_.delay_noise_ms / 1000.0));
    }
    latency_acc += latency;
    stats.delivered += 1.0;
  }

  stats.avg_latency_s = stats.delivered > 0
                            ? latency_acc / stats.delivered
                            : current_rtt_s();
  return stats;
}

netgym::Env::StepResult PacketCcEnv::step(int action) {
  if (done_) {
    throw std::logic_error("PacketCcEnv::step: episode already finished");
  }
  if (action < 0 || action >= kRateActionCount) {
    throw std::invalid_argument("PacketCcEnv::step: action out of range");
  }
  rate_pkts_ = std::clamp(rate_pkts_ * kRateFactors[action], kMinRatePkts,
                          kMaxRatePkts);

  const double mi = std::clamp(current_rtt_s(), 0.05, 2.0);
  const MiStats stats = simulate_interval(mi);
  clock_s_ += mi;

  push_mi(stats);
  totals_.sent_pkts += stats.sent;
  totals_.delivered_pkts += stats.delivered;
  totals_.lost_pkts += stats.lost;
  totals_.latency_weighted_s += stats.avg_latency_s * stats.delivered;
  totals_.mi_latencies_s.push_back(stats.avg_latency_s);

  const double throughput_mbps =
      stats.delivered * CcEnv::kPacketBits / 1e6 / stats.duration_s;
  const double loss = stats.sent > 0 ? stats.lost / stats.sent : 0.0;
  const double reward = config_.reward.a_throughput * throughput_mbps +
                        config_.reward.b_latency * stats.avg_latency_s / 2.0 +
                        config_.reward.c_loss * loss;

  done_ = clock_s_ >= config_.duration_s;
  StepResult result;
  result.reward = reward;
  result.done = done_;
  result.observation = make_observation();
  return result;
}

void PacketCcEnv::push_mi(const MiStats& stats) {
  for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
    history_[i] = history_[i + 1];
  }
  history_.back() = stats;
}

netgym::Observation PacketCcEnv::make_observation() const {
  netgym::Observation obs(kObsSize, 0.0);
  const double min_rtt_s = config_.min_rtt_ms / 1000.0;
  double prev_latency = 0.0;
  for (int i = 0; i < CcEnv::kMiHistory; ++i) {
    const MiStats& mi = history_[static_cast<std::size_t>(i)];
    const int base = i * CcEnv::kFeaturesPerMi;
    if (mi.duration_s <= 0) {
      prev_latency = 0.0;
      continue;
    }
    obs[base + 0] = mi.avg_latency_s / min_rtt_s - 1.0;
    obs[base + 1] = prev_latency > 0
                        ? (mi.avg_latency_s - prev_latency) / mi.duration_s
                        : 0.0;
    const double send_ratio =
        mi.delivered > 1e-9 ? mi.sent / mi.delivered : 11.0;
    obs[base + 2] = std::min(send_ratio - 1.0, 10.0);
    obs[base + 3] = mi.sent > 0 ? mi.lost / mi.sent : 0.0;
    obs[base + 4] = std::log10(
        1.0 + mi.delivered * CcEnv::kPacketBits / 1e6 / mi.duration_s);
    prev_latency = mi.avg_latency_s;
  }
  obs[CcEnv::kObsRate] = std::log10(1.0 + rate_pkts_ / 100.0);
  obs[CcEnv::kObsMinRtt] = min_rtt_s;
  obs[CcEnv::kObsMiDuration] = history_.back().duration_s;
  return obs;
}

std::unique_ptr<PacketCcEnv> make_packet_cc_env(const CcEnvConfig& config,
                                                netgym::Rng& rng) {
  netgym::CcTraceParams params;
  params.max_bw_mbps = std::max(config.max_bw_mbps, 0.05);
  params.bw_change_interval_s = config.bw_change_interval_s;
  params.duration_s = config.duration_s;
  netgym::Trace trace = generate_cc_trace(params, rng);
  return std::make_unique<PacketCcEnv>(config, std::move(trace),
                                       rng.engine()());
}

std::unique_ptr<PacketCcEnv> make_packet_cc_env(const CcEnvConfig& config,
                                                const netgym::Trace& trace,
                                                netgym::Rng& rng) {
  return std::make_unique<PacketCcEnv>(config, trace, rng.engine()());
}

}  // namespace cc
