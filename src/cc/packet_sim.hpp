#pragma once

#include <deque>
#include <memory>

#include "cc/env.hpp"

namespace cc {

/// Discrete-event, per-packet congestion-control simulator.
///
/// The fluid `CcEnv` integrates the bottleneck queue in 10 ms slices; this
/// backend simulates every packet individually, which is what Aurora's
/// original simulator does: packets are emitted at the sender's pacing
/// rate, each one either suffers random loss, is dropped on queue overflow
/// (FIFO of `queue_packets`), or departs after queueing behind every
/// earlier packet at the link's time-varying service rate. Per-packet
/// latency is (departure - arrival) + propagation.
///
/// The RL interface is identical to `CcEnv` (same observation layout, same
/// `kRateFactors` actions, same Table-1 reward), so any policy -- learned
/// or rule-based -- runs unchanged on either backend. Tests cross-validate
/// the two backends against each other.
class PacketCcEnv : public netgym::Env {
 public:
  static constexpr int kObsSize = CcEnv::kObsSize;

  PacketCcEnv(CcEnvConfig config, netgym::Trace trace, std::uint64_t seed);

  netgym::Observation reset() override;
  StepResult step(int action) override;
  int action_count() const override { return kRateActionCount; }
  std::size_t observation_size() const override { return kObsSize; }

  const CcEnvConfig& config() const { return config_; }
  const netgym::Trace& trace() const { return trace_; }
  double clock_s() const { return clock_s_; }
  double rate_pkts_per_s() const { return rate_pkts_; }

  /// Same aggregate statistics as the fluid backend.
  const CcEnv::Totals& totals() const { return totals_; }

 private:
  struct MiStats {
    double sent = 0.0;
    double delivered = 0.0;
    double lost = 0.0;
    double avg_latency_s = 0.0;
    double duration_s = 0.0;
  };
  MiStats simulate_interval(double duration_s);
  void push_mi(const MiStats& stats);
  netgym::Observation make_observation() const;
  double current_rtt_s() const;
  double bandwidth_pkts_at(double t) const;

  CcEnvConfig config_;
  netgym::Trace trace_;
  netgym::Rng rng_;
  double clock_s_ = 0.0;
  double rate_pkts_ = 0.0;
  double next_send_s_ = 0.0;   ///< pacing: time of the next packet emission
  double last_depart_s_ = 0.0; ///< departure time of the newest queued packet
  std::deque<double> queue_departures_;  ///< departure times of queued pkts
  bool done_ = true;
  std::array<MiStats, CcEnv::kMiHistory> history_{};
  CcEnv::Totals totals_;
};

/// Factories mirroring `make_cc_env`.
std::unique_ptr<PacketCcEnv> make_packet_cc_env(const CcEnvConfig& config,
                                                netgym::Rng& rng);
std::unique_ptr<PacketCcEnv> make_packet_cc_env(const CcEnvConfig& config,
                                                const netgym::Trace& trace,
                                                netgym::Rng& rng);

}  // namespace cc
