#include "dist/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "dist/protocol.hpp"
#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"
#include "nn/gemm.hpp"

namespace dist {

namespace {

namespace tel = netgym::telemetry;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void log_worker_event(std::size_t index, pid_t pid, const char* event) {
  if (tel::logging_enabled()) {
    tel::log_event("dist_worker", static_cast<std::int64_t>(index),
                   {{"pid", static_cast<std::int64_t>(pid)},
                    {"event", std::string(event)}});
  }
}

}  // namespace

Coordinator::Coordinator(const Options& options) : options_(options) {
  if (options_.workers < 1) {
    throw std::invalid_argument("dist: workers must be >= 1");
  }
  if (options_.worker_exe.empty()) {
    throw std::invalid_argument("dist: worker_exe must be set");
  }
  if (options_.timeout_ms < 1) {
    throw std::invalid_argument("dist: timeout_ms must be >= 1");
  }
  // Observational only: the id correlates trace lanes across processes and
  // never feeds any computation, so it may come from the wall clock.
  trace_id_ = (static_cast<std::uint64_t>(::getpid()) << 32) ^
              static_cast<std::uint64_t>(netgym::tracing::now_ns());
  workers_.resize(static_cast<std::size_t>(options_.workers));
  for (std::size_t i = 0; i < workers_.size(); ++i) spawn_worker(i);
  exchange_hellos();
}

Coordinator::~Coordinator() {
  if (hooks_installed_) {
    genet::set_gap_eval_hook(nullptr);
    genet::set_train_model_hook(nullptr);
  }
  // Graceful first: a shutdown frame, then the closed socket, then SIGKILL
  // for stragglers. Never throws.
  std::string shutdown;
  try {
    encode_shutdown(shutdown);
  } catch (...) {
  }
  for (WorkerProc& w : workers_) {
    if (!w.alive) continue;
    if (!shutdown.empty()) {
      (void)::send(w.fd, shutdown.data(), shutdown.size(), MSG_NOSIGNAL);
    }
    ::close(w.fd);
    w.fd = -1;
  }
  const std::int64_t deadline = now_ms() + 2000;
  for (WorkerProc& w : workers_) {
    if (!w.alive) continue;
    for (;;) {
      const pid_t reaped = ::waitpid(w.pid, nullptr, WNOHANG);
      if (reaped == w.pid || (reaped < 0 && errno != EINTR)) break;
      if (now_ms() >= deadline) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        break;
      }
      ::usleep(2000);
    }
    w.alive = false;
  }
}

int Coordinator::alive_workers() const {
  int n = 0;
  for (const WorkerProc& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

std::vector<pid_t> Coordinator::worker_pids() const {
  std::vector<pid_t> pids;
  for (const WorkerProc& w : workers_) {
    if (w.alive) pids.push_back(w.pid);
  }
  return pids;
}

void Coordinator::spawn_worker(std::size_t index) {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error(std::string("dist: socketpair failed: ") +
                             std::strerror(errno));
  }
  // Materialize argv before fork: the child must only close/exec/_exit
  // (threads from the netgym pool may hold locks at fork time).
  std::vector<std::string> args;
  args.push_back(options_.worker_exe);
  args.insert(args.end(), options_.worker_args.begin(),
              options_.worker_args.end());
  args.push_back("--dist-fd");
  args.push_back(std::to_string(sv[1]));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error(std::string("dist: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    ::close(sv[0]);
    ::execv(options_.worker_exe.c_str(), argv.data());
    _exit(127);
  }
  ::close(sv[1]);
  WorkerProc& w = workers_[index];
  w.pid = pid;
  w.fd = sv[0];
  w.alive = true;
  tel::Registry::instance().counter("dist.spawns").add();
  log_worker_event(index, pid, "spawn");
}

void Coordinator::exchange_hellos() {
  Hello hello;
  hello.math_mode = nn::math_mode_name(nn::math_mode());
  hello.threads = options_.threads_per_worker;
  hello.trace_id = trace_id_;
  hello.trace_enabled = netgym::tracing::enabled() ? 1 : 0;
  hello.trace_capacity =
      static_cast<std::int64_t>(netgym::tracing::kDefaultBufferCapacity);
  hello.trace_ship_max_bytes = options_.trace_ship_max_bytes;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerProc& w = workers_[i];
    if (!w.alive) continue;
    hello.worker_ordinal = static_cast<std::int64_t>(i);
    std::string frame;
    encode_hello(frame, hello);
    (void)send_to(w, frame);
  }
  const std::int64_t deadline = now_ms() + options_.timeout_ms;
  for (;;) {
    bool waiting = false;
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerProc& w = workers_[i];
      if (!w.alive || w.saw_hello) continue;
      waiting = true;
      fds.push_back(pollfd{w.fd, POLLIN, 0});
      fd_owner.push_back(i);
    }
    if (!waiting) break;
    const std::int64_t remaining = deadline - now_ms();
    if (remaining <= 0) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].alive && !workers_[i].saw_hello) {
          destroy_worker(workers_[i], "hello timeout");
        }
      }
      break;
    }
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(std::min<std::int64_t>(
                                 remaining, 500)));
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("dist: poll failed: ") +
                               std::strerror(errno));
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerProc& w = workers_[fd_owner[k]];
      char buf[4096];
      const ssize_t n = ::read(w.fd, buf, sizeof buf);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        destroy_worker(w, "died before hello");
        continue;
      }
      w.reader.feed(buf, static_cast<std::size_t>(n));
      try {
        while (const auto body = w.reader.next()) {
          const HelloOk ok = decode_hello_ok(*body);
          if (ok.version != kDistProtocolVersion) {
            throw std::runtime_error(
                "dist: worker protocol version " +
                std::to_string(ok.version) + " != coordinator " +
                std::to_string(kDistProtocolVersion));
          }
          w.saw_hello = true;
        }
      } catch (const serve::ProtocolError&) {
        destroy_worker(w, "bad hello");
      }
    }
  }
  if (alive_workers() == 0) {
    throw std::runtime_error(
        "dist: no worker completed the hello handshake (exe '" +
        options_.worker_exe + "')");
  }
}

void Coordinator::destroy_worker(WorkerProc& worker, const char* reason) {
  if (!worker.alive) return;
  worker.alive = false;
  ::kill(worker.pid, SIGKILL);
  ::close(worker.fd);
  worker.fd = -1;
  while (::waitpid(worker.pid, nullptr, 0) < 0 && errno == EINTR) {
  }
  tel::Registry::instance().counter("dist.worker_deaths").add();
  if (netgym::tracing::enabled()) {
    // The dead worker's unshipped spans are gone; the merged trace stays
    // valid (its shipped batches are already registered) but the loss is
    // counted so an operator can see the gap is real, not a bug.
    tel::Registry::instance().counter("dist.trace_batches_lost").add();
  }
  log_worker_event(
      static_cast<std::size_t>(&worker - workers_.data()), worker.pid,
      reason);
  if (worker.unit >= 0) {
    const std::size_t unit = static_cast<std::size_t>(worker.unit);
    worker.unit = -1;
    if (attempts_[unit] >= options_.max_attempts) {
      throw std::runtime_error("dist: work unit " + std::to_string(unit) +
                               " failed after " +
                               std::to_string(attempts_[unit]) + " attempts");
    }
    pending_.push_front(unit);
    ++reassigned_;
    tel::Registry::instance().counter("dist.reassigned").add();
    if (tel::logging_enabled()) {
      tel::log_event(
          "dist_reassign", static_cast<std::int64_t>(unit),
          {{"worker",
            static_cast<std::int64_t>(&worker - workers_.data())},
           {"pid", static_cast<std::int64_t>(worker.pid)},
           {"attempt", static_cast<std::int64_t>(attempts_[unit])}});
    }
  }
}

bool Coordinator::send_to(WorkerProc& worker, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(worker.fd, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      destroy_worker(worker, "send failed");
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Coordinator::broadcast(const std::string& bytes) {
  for (WorkerProc& w : workers_) {
    if (w.alive) (void)send_to(w, bytes);
  }
}

void Coordinator::maybe_inject_kill(std::size_t index) {
  if (kill_injected_ || index != 0) return;
  if (options_.kill_worker0_after_sends < 0) return;
  if (workers_[0].sends < options_.kill_worker0_after_sends) return;
  kill_injected_ = true;
  tel::Registry::instance().counter("dist.test_kills").add();
  // SIGKILL only: the death is discovered through the normal EOF/EPIPE
  // path, so the test exercises exactly what a real crash would. Fired
  // after the Nth unit is claimed but before its bytes are written (the
  // call site precedes send_to), so the unit is guaranteed stranded --
  // killing after the send would race against a fast worker finishing.
  ::kill(workers_[0].pid, SIGKILL);
}

void Coordinator::register_remote_spans(std::size_t worker_index,
                                        SpanBatch batch) {
  if (batch.empty() || !netgym::tracing::enabled()) return;
  auto& registry = tel::Registry::instance();
  if (batch.dropped > 0) {
    registry.counter("dist.trace_spans_dropped").add(batch.dropped);
  }
  if (batch.spans.empty()) return;
  registry.counter("dist.trace_spans_shipped")
      .add(static_cast<std::int64_t>(batch.spans.size()));
  // Spans arrive already parented: the worker stamps them from the
  // dispatch's parent_span before shipping, so a batch can never be
  // mis-attributed to whichever dispatch happens to be in flight on arrival.
  netgym::tracing::add_remote_spans(
      static_cast<std::int64_t>(workers_[worker_index].pid),
      "worker-" + std::to_string(worker_index), std::move(batch.spans));
}

void Coordinator::run_units(
    std::size_t n,
    const std::function<void(std::size_t, std::string&)>& encode_unit,
    const std::function<std::size_t(std::size_t, const std::string&)>&
        on_result) {
  pending_.clear();
  for (std::size_t i = 0; i < n; ++i) pending_.push_back(i);
  attempts_.assign(n, 0);
  completed_ = 0;

  while (completed_ < n) {
    if (alive_workers() == 0) {
      throw std::runtime_error(
          "dist: all workers died with work outstanding");
    }
    // Dispatch pending units to idle workers.
    for (std::size_t i = 0; i < workers_.size() && !pending_.empty(); ++i) {
      WorkerProc& w = workers_[i];
      if (!w.alive || w.unit >= 0) continue;
      const std::size_t unit = pending_.front();
      pending_.pop_front();
      std::string frame;
      encode_unit(unit, frame);
      w.unit = static_cast<std::int64_t>(unit);
      w.deadline_ms = now_ms() + options_.timeout_ms;
      ++w.sends;
      ++attempts_[unit];
      maybe_inject_kill(i);
      (void)send_to(w, frame);  // on failure the death path already requeued
    }

    // Wait for a response or the nearest deadline.
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    std::int64_t nearest = now_ms() + 500;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const WorkerProc& w = workers_[i];
      if (!w.alive) continue;
      fds.push_back(pollfd{w.fd, POLLIN, 0});
      fd_owner.push_back(i);
      if (w.unit >= 0) nearest = std::min(nearest, w.deadline_ms);
    }
    if (fds.empty()) continue;  // loop re-checks alive_workers
    const int wait = static_cast<int>(std::max<std::int64_t>(
        0, std::min<std::int64_t>(nearest - now_ms(), 500)));
    const int ready = ::poll(fds.data(), fds.size(), wait);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("dist: poll failed: ") +
                               std::strerror(errno));
    }

    // Drain readable workers.
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerProc& w = workers_[fd_owner[k]];
      if (!w.alive) continue;
      char buf[64 * 1024];
      const ssize_t got = ::read(w.fd, buf, sizeof buf);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        destroy_worker(w, "socket eof");
        continue;
      }
      w.reader.feed(buf, static_cast<std::size_t>(got));
      for (;;) {
        std::string body;
        try {
          auto next = w.reader.next();
          if (!next) break;
          body = std::move(*next);
        } catch (const serve::ProtocolError&) {
          destroy_worker(w, "malformed frame");
          break;
        }
        // A worker-reported error is fatal: the request fails identically
        // on every worker, so reassigning would just loop.
        if (!body.empty() &&
            static_cast<serve::MsgType>(
                static_cast<std::uint8_t>(body[0])) ==
                serve::MsgType::kError) {
          throw std::runtime_error("dist worker error: " +
                                   serve::decode_error(body));
        }
        std::size_t unit = 0;
        try {
          // on_result validates everything -- frame type, checkpoint CRC,
          // field shapes, unit bookkeeping -- before any state mutates; a
          // truncated or corrupt payload lands here and costs the worker,
          // not the run.
          unit = on_result(fd_owner[k], body);
        } catch (const std::exception&) {
          destroy_worker(w, "malformed result");
          break;
        }
        if (w.unit != static_cast<std::int64_t>(unit)) {
          destroy_worker(w, "stray result");
          break;
        }
        w.unit = -1;
        ++w.items_done;
        ++completed_;
        tel::Registry::instance().counter("dist.items").add();
      }
    }

    // Enforce per-unit deadlines.
    const std::int64_t now = now_ms();
    for (WorkerProc& w : workers_) {
      if (w.alive && w.unit >= 0 && now >= w.deadline_ms) {
        tel::Registry::instance().counter("dist.timeouts").add();
        destroy_worker(w, "deadline exceeded");
      }
    }
  }
}

std::vector<double> Coordinator::eval_items(
    const genet::GapEvalRequest& request) {
  // The dispatch span's id travels in the setup frame so every worker span
  // shipped back can be parented under it in the merged trace.
  const std::uint64_t dispatch_span =
      netgym::tracing::enabled() ? netgym::tracing::next_span_id() : 0;
  netgym::tracing::TraceSpan span("dist.eval", "dist", -1, dispatch_span);
  const std::size_t n = request.stream_states.size();
  const std::uint64_t eval_id = ++eval_seq_;
  const std::int64_t reassigned_before = reassigned_;

  EvalSetup setup;
  setup.eval_id = eval_id;
  setup.adapter_spec = request.adapter_spec;
  setup.kind = request.kind;
  setup.baseline = request.baseline;
  setup.config = request.config;
  setup.policy_params = request.policy_params;
  setup.greedy = request.greedy ? 1 : 0;
  setup.parent_span = dispatch_span;
  std::string setup_frame;
  encode_eval_setup(setup_frame, setup);
  broadcast(setup_frame);

  std::vector<double> values(n);
  std::vector<char> done(n, 0);
  run_units(
      n,
      [&](std::size_t i, std::string& out) {
        ItemsRequest items;
        items.eval_id = eval_id;
        items.first = static_cast<std::int64_t>(i);
        items.streams.push_back(request.stream_states[i]);
        encode_items_request(out, items);
      },
      [&](std::size_t worker, const std::string& body) -> std::size_t {
        ItemsResult result = decode_items_result(body);
        if (result.eval_id != eval_id || result.first < 0 ||
            result.first >= static_cast<std::int64_t>(n) ||
            result.values.size() != 1 ||
            done[static_cast<std::size_t>(result.first)] != 0) {
          throw serve::ProtocolError("dist: stray items result");
        }
        const auto i = static_cast<std::size_t>(result.first);
        values[i] = result.values[0];
        done[i] = 1;
        register_remote_spans(worker, std::move(result.spans));
        return i;
      });

  tel::Registry::instance().counter("dist.evals").add();
  if (tel::logging_enabled()) {
    tel::log_event("dist_eval", static_cast<std::int64_t>(eval_id),
                   {{"items", static_cast<std::int64_t>(n)},
                    {"kind", request.kind},
                    {"reassigned", reassigned_ - reassigned_before},
                    {"workers_alive",
                     static_cast<std::int64_t>(alive_workers())}});
  }
  return values;
}

std::vector<std::vector<double>> Coordinator::train_models(
    const std::vector<genet::TrainModelRequest>& requests) {
  const std::uint64_t dispatch_span =
      netgym::tracing::enabled() ? netgym::tracing::next_span_id() : 0;
  netgym::tracing::TraceSpan span("dist.train", "dist", -1, dispatch_span);
  const std::size_t n = requests.size();
  if (n == 0) return {};
  const std::uint64_t batch_base = train_seq_;
  train_seq_ += n;
  const std::int64_t reassigned_before = reassigned_;

  std::vector<std::vector<double>> results(n);
  std::vector<char> done(n, 0);
  run_units(
      n,
      [&](std::size_t i, std::string& out) {
        TrainRequest train;
        train.train_id = batch_base + i;
        train.adapter_spec = requests[i].adapter_spec;
        train.iterations = requests[i].iterations;
        train.seed = requests[i].seed;
        train.parent_span = dispatch_span;
        encode_train_request(out, train);
      },
      [&](std::size_t worker, const std::string& body) -> std::size_t {
        TrainResult result = decode_train_result(body);
        if (result.train_id < batch_base ||
            result.train_id >= batch_base + n) {
          throw serve::ProtocolError("dist: stray train result");
        }
        const auto i = static_cast<std::size_t>(result.train_id - batch_base);
        if (done[i] != 0) {
          throw serve::ProtocolError("dist: duplicate train result");
        }
        results[i] = result.params;
        done[i] = 1;
        register_remote_spans(worker, std::move(result.spans));
        return i;
      });

  tel::Registry::instance().counter("dist.trainings").add(
      static_cast<std::int64_t>(n));
  if (tel::logging_enabled()) {
    tel::log_event("dist_train", static_cast<std::int64_t>(batch_base),
                   {{"models", static_cast<std::int64_t>(n)},
                    {"reassigned", reassigned_ - reassigned_before},
                    {"workers_alive",
                     static_cast<std::int64_t>(alive_workers())}});
  }
  return results;
}

void Coordinator::install_hooks() {
  genet::set_gap_eval_hook(
      [this](const genet::GapEvalRequest& request) {
        return eval_items(request);
      });
  genet::set_train_model_hook(
      [this](const std::vector<genet::TrainModelRequest>& requests) {
        return train_models(requests);
      });
  hooks_installed_ = true;
}

}  // namespace dist
