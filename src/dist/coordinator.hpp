#pragma once

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "serve/frame.hpp"

namespace dist {

/// Knobs of the worker pool. `worker_exe` + `worker_args` name the command
/// each worker runs (genet_cli passes itself plus "dist-worker"); the
/// coordinator appends "--dist-fd <n>" with its end of a socketpair.
struct Options {
  int workers = 1;
  std::string worker_exe;
  std::vector<std::string> worker_args;
  std::int64_t timeout_ms = 120000;  ///< per-work-unit deadline
  std::int64_t threads_per_worker = 1;
  int max_attempts = 3;  ///< dispatches of one unit before giving up
  /// Cap on the serialized span batch a worker may piggyback on one result
  /// frame (--trace-ship-max-bytes / GENET_TRACE_SHIP_MAX_BYTES); a worker
  /// drops its oldest spans (counted) rather than exceed it. Only consulted
  /// while tracing is enabled on the coordinator.
  std::int64_t trace_ship_max_bytes = 1 << 20;
  /// Test hook (GENET_DIST_KILL_AFTER_SEND): SIGKILL worker 0 immediately
  /// after its Nth dispatched work unit, guaranteeing a unit is in flight
  /// when the worker dies so the reassignment path is exercised
  /// deterministically. -1 disables.
  int kill_worker0_after_sends = -1;
};

/// Coordinator of the distributed curriculum trainer (DESIGN.md S5i): owns a
/// pool of fork/exec'd worker processes, shards gap-evaluation items and
/// model-zoo trainings across them, and survives worker death.
///
/// Determinism contract: callers fork the per-item RNG streams serially
/// before handing work over (genet's dist_gap_eval), every unit's result is
/// a pure function of its request bytes, and results are stored by unit
/// index -- so worker count, scheduling, timing, and kill/reassign events
/// cannot change any output bit (in strict math mode, the same contract the
/// in-process thread pool gives).
///
/// Failure handling: socket EOF, poll errors, malformed response frames, and
/// per-unit deadline expiry all mark the worker dead (SIGKILL + waitpid) and
/// requeue its in-flight unit at the front, bumping the dist.reassigned
/// counter and logging a "dist_reassign" record. A unit that fails
/// `max_attempts` dispatches, a worker kError frame (request errors fail
/// everywhere), and losing the last worker are fatal.
class Coordinator {
 public:
  explicit Coordinator(const Options& options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  int alive_workers() const;
  std::vector<pid_t> worker_pids() const;  ///< pids of the alive workers
  std::int64_t reassignments() const { return reassigned_; }

  /// Shard one gap evaluation: broadcast the setup, dispatch one item per
  /// frame, return per-item values in item order.
  std::vector<double> eval_items(const genet::GapEvalRequest& request);

  /// Train each spec on a worker; parameter snapshots in request order.
  std::vector<std::vector<double>> train_models(
      const std::vector<genet::TrainModelRequest>& requests);

  /// Route genet's gap evaluations (set_gap_eval_hook) and model-zoo batch
  /// trainings (set_train_model_hook) through this coordinator; the
  /// destructor uninstalls both.
  void install_hooks();

 private:
  struct WorkerProc {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool saw_hello = false;
    serve::FrameReader reader{serve::kMaxDistFrameBytes};
    std::int64_t unit = -1;  ///< in-flight unit index, -1 when idle
    std::int64_t deadline_ms = 0;  ///< steady-clock deadline of `unit`
    int sends = 0;           ///< work units dispatched to this worker
    std::int64_t items_done = 0;
  };

  void spawn_worker(std::size_t index);
  void exchange_hellos();
  void destroy_worker(WorkerProc& worker, const char* reason);
  bool send_to(WorkerProc& worker, const std::string& bytes);
  void broadcast(const std::string& bytes);
  void maybe_inject_kill(std::size_t index);

  /// The dispatch/poll/reassign engine shared by eval_items and
  /// train_models: run `n` units to completion over the alive workers.
  /// `encode_unit` appends unit i's frame; `on_result` parses one response
  /// body fully (throwing on any defect, before any caller state mutates)
  /// and returns the completed unit's index. `on_result`'s first argument is
  /// the responding worker's index, so shipped span batches land in the
  /// right trace lane.
  void run_units(std::size_t n,
                 const std::function<void(std::size_t, std::string&)>&
                     encode_unit,
                 const std::function<std::size_t(std::size_t,
                                                 const std::string&)>&
                     on_result);

  /// Merge a result frame's piggybacked span batch into the local tracing
  /// registry under the worker's pid lane. Spans arrive pre-parented (the
  /// worker stamps them from the dispatch's parent_span before shipping),
  /// so this only counts and registers them. Observational only.
  void register_remote_spans(std::size_t worker_index, SpanBatch batch);

  Options options_;
  std::vector<WorkerProc> workers_;
  std::int64_t reassigned_ = 0;
  std::uint64_t eval_seq_ = 0;
  std::uint64_t train_seq_ = 0;
  std::uint64_t trace_id_ = 0;  ///< run-wide trace correlation id
  bool kill_injected_ = false;
  bool hooks_installed_ = false;

  // run_units state shared with the death path.
  std::deque<std::size_t> pending_;
  std::vector<int> attempts_;
  std::size_t completed_ = 0;
};

}  // namespace dist
