#include "dist/protocol.hpp"

#include "netgym/checkpoint.hpp"

namespace dist {

namespace {

namespace ckpt = netgym::checkpoint;

void append_snapshot_frame(std::string& out, serve::MsgType type,
                           const ckpt::Snapshot& snap) {
  serve::encode_payload_frame(out, type, ckpt::encode_file_bytes(snap),
                              serve::kMaxDistFrameBytes);
}

ckpt::Snapshot snapshot_of(std::string_view body, serve::MsgType type,
                           const char* what) {
  return ckpt::decode_file_bytes(serve::payload_of(body, type),
                                 std::string("dist ") + what + " frame");
}

std::string stream_key(std::size_t i) { return "stream/" + std::to_string(i); }

}  // namespace

void encode_hello(std::string& out, const Hello& msg) {
  ckpt::Snapshot snap;
  snap.put_i64("version", msg.version);
  snap.put_string("math_mode", msg.math_mode);
  snap.put_i64("threads", msg.threads);
  append_snapshot_frame(out, serve::MsgType::kDistHello, snap);
}

Hello decode_hello(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistHello, "hello");
  Hello msg;
  msg.version = snap.get_i64("version");
  msg.math_mode = snap.get_string("math_mode");
  msg.threads = snap.get_i64("threads");
  return msg;
}

void encode_hello_ok(std::string& out, const HelloOk& msg) {
  ckpt::Snapshot snap;
  snap.put_i64("version", msg.version);
  snap.put_i64("pid", msg.pid);
  append_snapshot_frame(out, serve::MsgType::kDistHelloOk, snap);
}

HelloOk decode_hello_ok(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistHelloOk, "hello_ok");
  HelloOk msg;
  msg.version = snap.get_i64("version");
  msg.pid = snap.get_i64("pid");
  return msg;
}

void encode_eval_setup(std::string& out, const EvalSetup& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("eval_id", msg.eval_id);
  snap.put_string("adapter_spec", msg.adapter_spec);
  snap.put_string("kind", msg.kind);
  snap.put_string("baseline", msg.baseline);
  snap.put_doubles("config", msg.config);
  snap.put_doubles("policy_params", msg.policy_params);
  snap.put_i64("greedy", msg.greedy);
  append_snapshot_frame(out, serve::MsgType::kDistEval, snap);
}

EvalSetup decode_eval_setup(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistEval, "eval_setup");
  EvalSetup msg;
  msg.eval_id = snap.get_u64("eval_id");
  msg.adapter_spec = snap.get_string("adapter_spec");
  msg.kind = snap.get_string("kind");
  msg.baseline = snap.get_string("baseline");
  msg.config = snap.get_doubles("config");
  msg.policy_params = snap.get_doubles("policy_params");
  msg.greedy = snap.get_i64("greedy");
  return msg;
}

void encode_items_request(std::string& out, const ItemsRequest& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("eval_id", msg.eval_id);
  snap.put_i64("first", msg.first);
  snap.put_i64("count", static_cast<std::int64_t>(msg.streams.size()));
  for (std::size_t i = 0; i < msg.streams.size(); ++i) {
    snap.put_string(stream_key(i), msg.streams[i]);
  }
  append_snapshot_frame(out, serve::MsgType::kDistItems, snap);
}

ItemsRequest decode_items_request(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistItems, "items_request");
  ItemsRequest msg;
  msg.eval_id = snap.get_u64("eval_id");
  msg.first = snap.get_i64("first");
  const std::int64_t count = snap.get_i64("count");
  msg.streams.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    msg.streams.push_back(
        snap.get_string(stream_key(static_cast<std::size_t>(i))));
  }
  return msg;
}

void encode_items_result(std::string& out, const ItemsResult& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("eval_id", msg.eval_id);
  snap.put_i64("first", msg.first);
  snap.put_doubles("values", msg.values);
  append_snapshot_frame(out, serve::MsgType::kDistItemsOk, snap);
}

ItemsResult decode_items_result(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistItemsOk, "items_result");
  ItemsResult msg;
  msg.eval_id = snap.get_u64("eval_id");
  msg.first = snap.get_i64("first");
  msg.values = snap.get_doubles("values");
  return msg;
}

void encode_train_request(std::string& out, const TrainRequest& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("train_id", msg.train_id);
  snap.put_string("adapter_spec", msg.adapter_spec);
  snap.put_i64("iterations", msg.iterations);
  snap.put_u64("seed", msg.seed);
  append_snapshot_frame(out, serve::MsgType::kDistTrain, snap);
}

TrainRequest decode_train_request(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistTrain, "train_request");
  TrainRequest msg;
  msg.train_id = snap.get_u64("train_id");
  msg.adapter_spec = snap.get_string("adapter_spec");
  msg.iterations = snap.get_i64("iterations");
  msg.seed = snap.get_u64("seed");
  return msg;
}

void encode_train_result(std::string& out, const TrainResult& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("train_id", msg.train_id);
  snap.put_doubles("params", msg.params);
  append_snapshot_frame(out, serve::MsgType::kDistTrainOk, snap);
}

TrainResult decode_train_result(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistTrainOk, "train_result");
  TrainResult msg;
  msg.train_id = snap.get_u64("train_id");
  msg.params = snap.get_doubles("params");
  return msg;
}

void encode_shutdown(std::string& out) {
  ckpt::Snapshot snap;
  snap.put_i64("version", kDistProtocolVersion);
  append_snapshot_frame(out, serve::MsgType::kDistShutdown, snap);
}

}  // namespace dist
