#include "dist/protocol.hpp"

#include "netgym/checkpoint.hpp"

namespace dist {

namespace {

namespace ckpt = netgym::checkpoint;

void append_snapshot_frame(std::string& out, serve::MsgType type,
                           const ckpt::Snapshot& snap) {
  serve::encode_payload_frame(out, type, ckpt::encode_file_bytes(snap),
                              serve::kMaxDistFrameBytes);
}

ckpt::Snapshot snapshot_of(std::string_view body, serve::MsgType type,
                           const char* what) {
  return ckpt::decode_file_bytes(serve::payload_of(body, type),
                                 std::string("dist ") + what + " frame");
}

std::string stream_key(std::size_t i) { return "stream/" + std::to_string(i); }

std::string span_key(const char* field, std::size_t i) {
  return std::string("span/") + field + "/" + std::to_string(i);
}

/// Span batches ship as six parallel i64 arrays plus indexed name/cat
/// strings; wire tids/timestamps are exact i64s (a double would truncate
/// steady_clock ns above 2^53), and span/parent ids are u64s carried as
/// their i64 bit patterns so the hierarchy survives the trip.
void put_span_batch(ckpt::Snapshot& snap, const SpanBatch& batch) {
  const auto n = static_cast<std::int64_t>(batch.spans.size());
  snap.put_i64("spans/count", n);
  snap.put_i64("spans/dropped", batch.dropped);
  if (n == 0) return;
  std::vector<std::int64_t> tids, starts, durs, indexes, span_ids, parents;
  tids.reserve(batch.spans.size());
  starts.reserve(batch.spans.size());
  durs.reserve(batch.spans.size());
  indexes.reserve(batch.spans.size());
  span_ids.reserve(batch.spans.size());
  parents.reserve(batch.spans.size());
  for (std::size_t i = 0; i < batch.spans.size(); ++i) {
    const auto& s = batch.spans[i];
    snap.put_string(span_key("name", i), s.name);
    snap.put_string(span_key("cat", i), s.cat);
    tids.push_back(s.tid);
    starts.push_back(s.start_ns);
    durs.push_back(s.dur_ns);
    indexes.push_back(s.index);
    span_ids.push_back(static_cast<std::int64_t>(s.span_id));
    parents.push_back(static_cast<std::int64_t>(s.parent_id));
  }
  snap.put_i64s("spans/tids", std::move(tids));
  snap.put_i64s("spans/starts", std::move(starts));
  snap.put_i64s("spans/durs", std::move(durs));
  snap.put_i64s("spans/indexes", std::move(indexes));
  snap.put_i64s("spans/span_ids", std::move(span_ids));
  snap.put_i64s("spans/parents", std::move(parents));
}

SpanBatch get_span_batch(const ckpt::Snapshot& snap) {
  SpanBatch batch;
  const std::int64_t n = snap.get_i64("spans/count");
  batch.dropped = snap.get_i64("spans/dropped");
  if (n == 0) return batch;
  const auto& tids = snap.get_i64s("spans/tids");
  const auto& starts = snap.get_i64s("spans/starts");
  const auto& durs = snap.get_i64s("spans/durs");
  const auto& indexes = snap.get_i64s("spans/indexes");
  const auto& span_ids = snap.get_i64s("spans/span_ids");
  const auto& parents = snap.get_i64s("spans/parents");
  const auto count = static_cast<std::size_t>(n);
  if (tids.size() != count || starts.size() != count ||
      durs.size() != count || indexes.size() != count ||
      span_ids.size() != count || parents.size() != count) {
    throw serve::ProtocolError("dist span batch: array shape mismatch");
  }
  batch.spans.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    netgym::tracing::RemoteSpan s;
    s.name = snap.get_string(span_key("name", i));
    s.cat = snap.get_string(span_key("cat", i));
    s.tid = tids[i];
    s.start_ns = starts[i];
    s.dur_ns = durs[i];
    s.index = indexes[i];
    s.span_id = static_cast<std::uint64_t>(span_ids[i]);
    s.parent_id = static_cast<std::uint64_t>(parents[i]);
    batch.spans.push_back(std::move(s));
  }
  return batch;
}

}  // namespace

void encode_hello(std::string& out, const Hello& msg) {
  ckpt::Snapshot snap;
  snap.put_i64("version", msg.version);
  snap.put_string("math_mode", msg.math_mode);
  snap.put_i64("threads", msg.threads);
  snap.put_u64("trace_id", msg.trace_id);
  snap.put_i64("worker_ordinal", msg.worker_ordinal);
  snap.put_i64("trace_enabled", msg.trace_enabled);
  snap.put_i64("trace_capacity", msg.trace_capacity);
  snap.put_i64("trace_ship_max_bytes", msg.trace_ship_max_bytes);
  append_snapshot_frame(out, serve::MsgType::kDistHello, snap);
}

Hello decode_hello(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistHello, "hello");
  Hello msg;
  msg.version = snap.get_i64("version");
  msg.math_mode = snap.get_string("math_mode");
  msg.threads = snap.get_i64("threads");
  msg.trace_id = snap.get_u64("trace_id");
  msg.worker_ordinal = snap.get_i64("worker_ordinal");
  msg.trace_enabled = snap.get_i64("trace_enabled");
  msg.trace_capacity = snap.get_i64("trace_capacity");
  msg.trace_ship_max_bytes = snap.get_i64("trace_ship_max_bytes");
  return msg;
}

void encode_hello_ok(std::string& out, const HelloOk& msg) {
  ckpt::Snapshot snap;
  snap.put_i64("version", msg.version);
  snap.put_i64("pid", msg.pid);
  append_snapshot_frame(out, serve::MsgType::kDistHelloOk, snap);
}

HelloOk decode_hello_ok(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistHelloOk, "hello_ok");
  HelloOk msg;
  msg.version = snap.get_i64("version");
  msg.pid = snap.get_i64("pid");
  return msg;
}

void encode_eval_setup(std::string& out, const EvalSetup& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("eval_id", msg.eval_id);
  snap.put_string("adapter_spec", msg.adapter_spec);
  snap.put_string("kind", msg.kind);
  snap.put_string("baseline", msg.baseline);
  snap.put_doubles("config", msg.config);
  snap.put_doubles("policy_params", msg.policy_params);
  snap.put_i64("greedy", msg.greedy);
  snap.put_u64("parent_span", msg.parent_span);
  append_snapshot_frame(out, serve::MsgType::kDistEval, snap);
}

EvalSetup decode_eval_setup(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistEval, "eval_setup");
  EvalSetup msg;
  msg.eval_id = snap.get_u64("eval_id");
  msg.adapter_spec = snap.get_string("adapter_spec");
  msg.kind = snap.get_string("kind");
  msg.baseline = snap.get_string("baseline");
  msg.config = snap.get_doubles("config");
  msg.policy_params = snap.get_doubles("policy_params");
  msg.greedy = snap.get_i64("greedy");
  msg.parent_span = snap.get_u64("parent_span");
  return msg;
}

void encode_items_request(std::string& out, const ItemsRequest& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("eval_id", msg.eval_id);
  snap.put_i64("first", msg.first);
  snap.put_i64("count", static_cast<std::int64_t>(msg.streams.size()));
  for (std::size_t i = 0; i < msg.streams.size(); ++i) {
    snap.put_string(stream_key(i), msg.streams[i]);
  }
  append_snapshot_frame(out, serve::MsgType::kDistItems, snap);
}

ItemsRequest decode_items_request(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistItems, "items_request");
  ItemsRequest msg;
  msg.eval_id = snap.get_u64("eval_id");
  msg.first = snap.get_i64("first");
  const std::int64_t count = snap.get_i64("count");
  msg.streams.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    msg.streams.push_back(
        snap.get_string(stream_key(static_cast<std::size_t>(i))));
  }
  return msg;
}

void encode_items_result(std::string& out, const ItemsResult& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("eval_id", msg.eval_id);
  snap.put_i64("first", msg.first);
  snap.put_doubles("values", msg.values);
  put_span_batch(snap, msg.spans);
  append_snapshot_frame(out, serve::MsgType::kDistItemsOk, snap);
}

ItemsResult decode_items_result(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistItemsOk, "items_result");
  ItemsResult msg;
  msg.eval_id = snap.get_u64("eval_id");
  msg.first = snap.get_i64("first");
  msg.values = snap.get_doubles("values");
  msg.spans = get_span_batch(snap);
  return msg;
}

void encode_train_request(std::string& out, const TrainRequest& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("train_id", msg.train_id);
  snap.put_string("adapter_spec", msg.adapter_spec);
  snap.put_i64("iterations", msg.iterations);
  snap.put_u64("seed", msg.seed);
  snap.put_u64("parent_span", msg.parent_span);
  append_snapshot_frame(out, serve::MsgType::kDistTrain, snap);
}

TrainRequest decode_train_request(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistTrain, "train_request");
  TrainRequest msg;
  msg.train_id = snap.get_u64("train_id");
  msg.adapter_spec = snap.get_string("adapter_spec");
  msg.iterations = snap.get_i64("iterations");
  msg.seed = snap.get_u64("seed");
  msg.parent_span = snap.get_u64("parent_span");
  return msg;
}

void encode_train_result(std::string& out, const TrainResult& msg) {
  ckpt::Snapshot snap;
  snap.put_u64("train_id", msg.train_id);
  snap.put_doubles("params", msg.params);
  put_span_batch(snap, msg.spans);
  append_snapshot_frame(out, serve::MsgType::kDistTrainOk, snap);
}

TrainResult decode_train_result(std::string_view body) {
  const ckpt::Snapshot snap =
      snapshot_of(body, serve::MsgType::kDistTrainOk, "train_result");
  TrainResult msg;
  msg.train_id = snap.get_u64("train_id");
  msg.params = snap.get_doubles("params");
  msg.spans = get_span_batch(snap);
  return msg;
}

void encode_shutdown(std::string& out) {
  ckpt::Snapshot snap;
  snap.put_i64("version", kDistProtocolVersion);
  append_snapshot_frame(out, serve::MsgType::kDistShutdown, snap);
}

}  // namespace dist
