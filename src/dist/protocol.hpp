#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netgym/tracing.hpp"
#include "serve/frame.hpp"

namespace dist {

// Wire protocol of the distributed curriculum trainer (DESIGN.md S5i).
//
// Frames reuse the serve codec (length prefix + type byte) with the larger
// serve::kMaxDistFrameBytes ceiling; the body after the type byte is one
// checkpoint-encoded Snapshot blob (netgym::checkpoint::encode_file_bytes),
// so every message is versioned and CRC-checked end to end and no second
// field codec exists. Decoders parse and validate the whole blob -- frame
// type, checkpoint header, CRC, field presence and types -- before returning
// a message, and throw serve::ProtocolError / checkpoint::CheckpointError
// otherwise, so a caller's state is never half-updated by a torn or corrupt
// frame.

/// Bumped on any incompatible change to the dist message payloads; carried
/// in the hello exchange (serve::kProtocolVersion covers the framing layer).
/// v2: hello gained the trace context, dispatch frames gained `parent_span`,
/// and result frames gained span batches (all mandatory keys, so a v1 peer
/// must be rejected by version, not by a missing-key decode error).
inline constexpr std::int64_t kDistProtocolVersion = 2;

/// Coordinator->worker greeting: pin the numeric environment so a worker
/// computes exactly what the coordinator would have computed in-process,
/// and carry the trace context (DESIGN.md S5j) -- workers are exec'd before
/// any env-driven setup, so tracing enablement travels here, never via an
/// inherited GENET_TRACE.
struct Hello {
  std::int64_t version = kDistProtocolVersion;
  std::string math_mode;     ///< nn::math_mode_name of the coordinator
  std::int64_t threads = 1;  ///< worker-side netgym thread count
  std::uint64_t trace_id = 0;        ///< run-wide correlation id
  std::int64_t worker_ordinal = 0;   ///< coordinator-assigned lane index
  std::int64_t trace_enabled = 0;    ///< 1 = run the span rings
  std::int64_t trace_capacity = 0;   ///< per-thread ring capacity (records)
  std::int64_t trace_ship_max_bytes = 0;  ///< span-batch size cap per result
};

struct HelloOk {
  std::int64_t version = kDistProtocolVersion;
  std::int64_t pid = 0;
};

/// Per-evaluation setup, broadcast once per gap evaluation; the per-item
/// frames that follow carry only stream states.
struct EvalSetup {
  std::uint64_t eval_id = 0;
  std::string adapter_spec;
  std::string kind;      ///< "baseline" or "optimum"
  std::string baseline;  ///< baseline name (kind == "baseline")
  std::vector<double> config;
  std::vector<double> policy_params;
  std::int64_t greedy = 1;
  std::uint64_t parent_span = 0;  ///< coordinator span id worker spans nest
                                  ///< under in the merged trace
};

/// A chunk of work items: the textual RNG stream states of items
/// [first, first + streams.size()).
struct ItemsRequest {
  std::uint64_t eval_id = 0;
  std::int64_t first = 0;
  std::vector<std::string> streams;
};

/// Serialized span batch piggybacked on result frames (never a second
/// serializer: the batch rides inside the result's Snapshot blob). Spans
/// ship with their `span_id`/`parent_id` intact -- the worker parents its
/// top-level spans from the request's `parent_span` before shipping, so a
/// batch is self-describing and never re-parented on arrival. `dropped`
/// counts spans lost worker-side to ring overflow or the ship-size cap.
struct SpanBatch {
  std::vector<netgym::tracing::RemoteSpan> spans;
  std::int64_t dropped = 0;

  bool empty() const { return spans.empty() && dropped == 0; }
};

struct ItemsResult {
  std::uint64_t eval_id = 0;
  std::int64_t first = 0;
  std::vector<double> values;
  SpanBatch spans;
};

struct TrainRequest {
  std::uint64_t train_id = 0;
  std::string adapter_spec;
  std::int64_t iterations = 0;
  std::uint64_t seed = 1;
  std::uint64_t parent_span = 0;  ///< see EvalSetup::parent_span
};

struct TrainResult {
  std::uint64_t train_id = 0;
  std::vector<double> params;
  SpanBatch spans;
};

// Encoders append one complete frame (length prefix included) to `out`.
void encode_hello(std::string& out, const Hello& msg);
void encode_hello_ok(std::string& out, const HelloOk& msg);
void encode_eval_setup(std::string& out, const EvalSetup& msg);
void encode_items_request(std::string& out, const ItemsRequest& msg);
void encode_items_result(std::string& out, const ItemsResult& msg);
void encode_train_request(std::string& out, const TrainRequest& msg);
void encode_train_result(std::string& out, const TrainResult& msg);
void encode_shutdown(std::string& out);

Hello decode_hello(std::string_view body);
HelloOk decode_hello_ok(std::string_view body);
EvalSetup decode_eval_setup(std::string_view body);
ItemsRequest decode_items_request(std::string_view body);
ItemsResult decode_items_result(std::string_view body);
TrainRequest decode_train_request(std::string_view body);
TrainResult decode_train_result(std::string_view body);

}  // namespace dist
