#include "dist/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

#include "dist/protocol.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/config.hpp"
#include "netgym/parallel.hpp"
#include "netgym/rng.hpp"
#include "netgym/tracing.hpp"
#include "nn/gemm.hpp"
#include "rl/policy.hpp"
#include "rl/trainer.hpp"
#include "serve/frame.hpp"

namespace dist {

namespace {

void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("dist worker: write failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Worker-side state of the current evaluation: the reconstructed adapter
/// and policy an ItemsRequest runs against.
struct EvalState {
  std::uint64_t eval_id = 0;
  bool active = false;
  EvalSetup setup;
  std::unique_ptr<genet::TaskAdapter> adapter;
  std::unique_ptr<rl::MlpPolicy> policy;
};

void apply_eval_setup(EvalState& state, EvalSetup setup) {
  state.adapter = genet::make_adapter_from_spec(setup.adapter_spec);
  // Reconstruct the coordinator's MlpPolicy: shape from the adapter, the
  // default hidden layout every task trainer uses, parameters from the wire.
  netgym::Rng init_rng(0);
  auto policy = std::make_unique<rl::MlpPolicy>(
      state.adapter->obs_size(), state.adapter->action_count(),
      rl::TrainerOptions{}.hidden, init_rng);
  policy->restore(setup.policy_params);
  policy->set_greedy(setup.greedy != 0);
  state.policy = std::move(policy);
  state.eval_id = setup.eval_id;
  state.setup = std::move(setup);
  state.active = true;
}

ItemsResult run_items(EvalState& state, const ItemsRequest& request) {
  if (!state.active || request.eval_id != state.eval_id) {
    throw std::runtime_error(
        "dist worker: items request for eval " +
        std::to_string(request.eval_id) + " but current setup is " +
        (state.active ? std::to_string(state.eval_id) : "absent"));
  }
  netgym::Config config;
  config.values = state.setup.config;
  ItemsResult result;
  result.eval_id = request.eval_id;
  result.first = request.first;
  result.values.reserve(request.streams.size());
  std::int64_t item = request.first;
  for (const std::string& stream : request.streams) {
    netgym::tracing::TraceSpan span("worker.eval_item", "dist", item++);
    netgym::Rng item_rng;
    item_rng.set_state(stream);
    result.values.push_back(genet::eval_gap_item(
        *state.adapter, *state.policy, state.setup.kind, state.setup.baseline,
        config, item_rng));
  }
  return result;
}

TrainResult run_train(const TrainRequest& request) {
  netgym::tracing::TraceSpan span("worker.train", "dist",
                                  static_cast<std::int64_t>(request.train_id));
  genet::TrainModelRequest model_request;
  model_request.adapter_spec = request.adapter_spec;
  model_request.iterations = static_cast<int>(request.iterations);
  model_request.seed = request.seed;
  TrainResult result;
  result.train_id = request.train_id;
  result.params = genet::train_model_for_request(model_request);
  return result;
}

/// Drain this worker's span rings into a result-frame batch, dropping the
/// oldest spans (and counting them) if the encoded batch would exceed the
/// coordinator's ship-size cap -- backpressure never grows a result frame
/// without bound. Unparented spans are parented here, from the `parent_span`
/// the request being answered carried: the worker knows exactly which
/// dispatch its spans belong to, so the batch ships self-describing and the
/// coordinator never has to guess from arrival timing.
SpanBatch collect_spans(std::int64_t max_bytes, std::uint64_t parent_span) {
  SpanBatch batch;
  if (!netgym::tracing::enabled()) return batch;
  auto collected = netgym::tracing::collect_and_reset();
  batch.dropped = static_cast<std::int64_t>(collected.dropped);
  batch.spans = std::move(collected.spans);
  for (auto& span : batch.spans) {
    if (span.parent_id == 0) span.parent_id = parent_span;
  }
  if (max_bytes <= 0) return batch;
  // Conservative per-span wire estimate: strings hex-encode at 2 bytes per
  // byte and each span adds four i64 array slots plus key overhead.
  const auto span_cost = [](const netgym::tracing::RemoteSpan& s) {
    return 160 + 2 * (s.name.size() + s.cat.size());
  };
  std::size_t estimate = 256;
  for (const auto& s : batch.spans) estimate += span_cost(s);
  std::size_t drop = 0;
  while (estimate > static_cast<std::size_t>(max_bytes) &&
         drop < batch.spans.size()) {
    estimate -= span_cost(batch.spans[drop]);
    ++drop;
  }
  if (drop > 0) {
    batch.spans.erase(batch.spans.begin(),
                      batch.spans.begin() + static_cast<std::ptrdiff_t>(drop));
    batch.dropped += static_cast<std::int64_t>(drop);
  }
  return batch;
}

}  // namespace

int worker_main(int fd) {
  try {
    serve::FrameReader reader(serve::kMaxDistFrameBytes);
    EvalState state;
    std::int64_t trace_ship_max_bytes = 0;
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("dist worker: read failed: ") +
                                 std::strerror(errno));
      }
      if (n == 0) return 0;  // coordinator closed the socket; exit quietly
      reader.feed(buf, static_cast<std::size_t>(n));
      while (const auto body = reader.next()) {
        std::string out;
        switch (serve::type_of(*body)) {
          case serve::MsgType::kDistHello: {
            const Hello hello = decode_hello(*body);
            if (hello.version != kDistProtocolVersion) {
              throw std::runtime_error(
                  "dist worker: protocol version mismatch: coordinator " +
                  std::to_string(hello.version) + ", worker " +
                  std::to_string(kDistProtocolVersion));
            }
            nn::set_math_mode(nn::parse_math_mode(hello.math_mode));
            netgym::set_num_threads(static_cast<int>(hello.threads));
            if (hello.trace_enabled != 0) {
              // Trace context arrives here, never via env: the worker was
              // exec'd before env-driven setup. Spans collect locally and
              // ship back piggybacked on result frames.
              trace_ship_max_bytes = hello.trace_ship_max_bytes;
              netgym::tracing::start(static_cast<std::size_t>(
                  hello.trace_capacity > 0
                      ? hello.trace_capacity
                      : static_cast<std::int64_t>(
                            netgym::tracing::kDefaultBufferCapacity)));
            }
            HelloOk ok;
            ok.pid = static_cast<std::int64_t>(::getpid());
            encode_hello_ok(out, ok);
            break;
          }
          case serve::MsgType::kDistEval:
            apply_eval_setup(state, decode_eval_setup(*body));
            break;
          case serve::MsgType::kDistItems: {
            ItemsResult result = run_items(state, decode_items_request(*body));
            result.spans =
                collect_spans(trace_ship_max_bytes, state.setup.parent_span);
            encode_items_result(out, result);
            break;
          }
          case serve::MsgType::kDistTrain: {
            const TrainRequest request = decode_train_request(*body);
            TrainResult result = run_train(request);
            result.spans =
                collect_spans(trace_ship_max_bytes, request.parent_span);
            encode_train_result(out, result);
            break;
          }
          case serve::MsgType::kDistShutdown:
            return 0;
          default:
            throw std::runtime_error("dist worker: unexpected message type");
        }
        if (!out.empty()) write_all(fd, out);
      }
    }
  } catch (const std::exception& e) {
    // Best effort: tell the coordinator why before dying, so a request
    // error surfaces as a loud failure instead of a silent reassign loop.
    try {
      std::string out;
      serve::encode_error(out, e.what());
      write_all(fd, out);
    } catch (...) {
    }
    return 1;
  }
}

}  // namespace dist
