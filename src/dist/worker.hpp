#pragma once

namespace dist {

/// Serve loop of one fork/exec'd evaluation worker (DESIGN.md S5i): read
/// frames from `fd` (one end of the coordinator's socketpair), answer
/// gap-eval items and train-from-spec requests, exit on shutdown or EOF.
/// Any error is reported back as a serve kError frame before exiting with a
/// nonzero code; the coordinator treats it as fatal (a bad request fails on
/// every worker, so retrying elsewhere cannot help).
///
/// Run via the hidden `genet dist-worker --dist-fd N` subcommand, which
/// calls this before any env-driven telemetry/thread setup -- workers must
/// not inherit GENET_LOG/GENET_THREADS side effects; the coordinator pins
/// math mode and thread count explicitly in its hello frame.
int worker_main(int fd);

}  // namespace dist
