#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "abr/env.hpp"
#include "cc/env.hpp"
#include "lb/env.hpp"
#include "netgym/config.hpp"
#include "netgym/flight.hpp"
#include "netgym/parallel.hpp"
#include "netgym/rng.hpp"
#include "rl/lockstep.hpp"

namespace fleet {

namespace {

/// Sessions stepped together through one act_batch stream. Fixed (unlike
/// rl::lockstep_group_size, which adapts to the thread count) so that even
/// fast math mode -- where batched rounding depends on group size -- stays
/// deterministic across thread counts. 16 rows already saturates the batched
/// GEMM's advantage over scalar forwards.
constexpr int kGroupSize = 16;

/// Effective step bound when a scenario leaves max_steps at 0; matches the
/// netgym::run_episode safety net.
constexpr int kUnboundedSteps = 100000;

netgym::ConfigSpace config_space_for(const std::string& task, int space_id) {
  if (task == "abr") return abr::abr_config_space(space_id);
  if (task == "cc") return cc::cc_config_space(space_id);
  if (task == "lb") return lb::lb_config_space(space_id);
  throw std::invalid_argument("fleet: unknown task '" + task + "'");
}

/// Device profile with dimension names resolved to indices up front, so the
/// per-session hot path does no string lookups.
struct ResolvedDevice {
  double weight = 1.0;
  std::vector<std::pair<std::size_t, double>> scales;
};

struct ResolvedScenario {
  netgym::ConfigSpace space;
  std::vector<ResolvedDevice> devices;
  std::vector<double> device_weights;
  std::vector<netgym::Trace> corpus;  ///< empty when no recorded traces
  std::vector<std::size_t> slo_metric;  ///< SLO index -> metric index
  int max_steps = kUnboundedSteps;
};

/// Draw one session's environment. Every stochastic choice (device class,
/// config point, recorded-vs-synthetic, trace index, env-internal seeds)
/// comes from `rng`, the session's own forked stream.
std::unique_ptr<netgym::Env> build_session_env(const Scenario& sc,
                                               const ResolvedScenario& rs,
                                               netgym::Rng& rng) {
  netgym::Config point = rs.space.sample(rng);
  if (!rs.devices.empty()) {
    const std::size_t di = rng.categorical(rs.device_weights);
    for (const auto& [dim, scale] : rs.devices[di].scales) {
      point.values[dim] *= scale;
    }
    point = rs.space.clamp(point);
    for (std::size_t i = 0; i < rs.space.dims(); ++i) {
      if (rs.space.param(i).integer) {
        point.values[i] = std::round(point.values[i]);
      }
    }
  }
  bool recorded = false;
  std::size_t trace_index = 0;
  if (!rs.corpus.empty()) {
    recorded = rng.uniform(0.0, 1.0) < sc.trace_prob;
    if (recorded) {
      trace_index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(rs.corpus.size()) - 1));
    }
  }
  if (sc.task == "abr") {
    const abr::AbrEnvConfig cfg = abr::abr_config_from_point(point);
    return recorded ? abr::make_abr_env(cfg, rs.corpus[trace_index], rng)
                    : abr::make_abr_env(cfg, rng);
  }
  if (sc.task == "cc") {
    const cc::CcEnvConfig cfg = cc::cc_config_from_point(point);
    return recorded ? cc::make_cc_env(cfg, rs.corpus[trace_index], rng)
                    : cc::make_cc_env(cfg, rng);
  }
  const lb::LbEnvConfig cfg = lb::lb_config_from_point(point);
  return lb::make_lb_env(cfg, rng);
}

/// Per-session metric values, in metric_names(task) order. The env was built
/// by build_session_env, so the static downcast is exact.
void extract_metrics(const std::string& task, const netgym::Env& env,
                     const netgym::EpisodeStats& stats, double out[3]) {
  out[0] = stats.mean_reward;
  if (task == "abr") {
    const auto& e = static_cast<const abr::AbrEnv&>(env);
    out[1] = e.totals().mean_rebuffer_s();
    out[2] = e.totals().mean_bitrate_mbps();
  } else if (task == "cc") {
    const auto& e = static_cast<const cc::CcEnv&>(env);
    out[1] = std::max(
        e.totals().mean_latency_s() - e.config().min_rtt_ms / 1000.0, 0.0);
    out[2] = e.totals().mean_throughput_mbps(std::max(e.clock_s(), 1e-9));
  } else {
    const auto& e = static_cast<const lb::LbEnv&>(env);
    out[1] = e.totals().mean_slowdown();
    out[2] = e.totals().mean_delay_s();
  }
}

bool slo_compliant(const SloSpec& spec, double value) {
  return spec.op == SloOp::kAtMost ? value <= spec.threshold
                                   : value >= spec.threshold;
}

ResolvedScenario resolve_and_validate(const rl::MlpPolicy& policy,
                                      const Scenario& sc) {
  const auto fail = [&](const std::string& why) {
    throw std::invalid_argument("fleet: scenario '" + sc.name + "': " + why);
  };
  if (sc.name.empty()) {
    throw std::invalid_argument("fleet: scenario with empty name");
  }
  if (sc.sessions <= 0) fail("sessions must be positive");
  if (sc.max_steps < 0) fail("max_steps must be >= 0");
  if (!(sc.trace_prob >= 0.0 && sc.trace_prob <= 1.0)) {
    fail("trace_prob must be in [0, 1]");
  }
  if (policy.obs_size() != task_obs_size(sc.task) ||
      policy.action_count() != task_action_count(sc.task)) {
    fail("policy shape " + std::to_string(policy.obs_size()) + "x" +
         std::to_string(policy.action_count()) + " does not match task '" +
         sc.task + "'");
  }
  ResolvedScenario rs;
  rs.space = config_space_for(sc.task, sc.space_id);
  rs.max_steps = sc.max_steps > 0 ? sc.max_steps : kUnboundedSteps;
  if (sc.use_traces && sc.trace_prob > 0.0) {
    if (sc.task == "lb") fail("lb has no recorded trace sets");
    const bool abr_set = traces::info(sc.trace_set).for_abr;
    if (abr_set != (sc.task == "abr")) {
      fail("trace set " + traces::info(sc.trace_set).name +
           " does not drive task '" + sc.task + "'");
    }
    rs.corpus = traces::make_corpus(sc.trace_set, /*test_split=*/true);
    if (rs.corpus.empty()) fail("empty trace corpus");
  }
  for (const DeviceProfile& dev : sc.devices) {
    if (!(dev.weight > 0.0)) fail("device '" + dev.name + "' needs weight > 0");
    ResolvedDevice rd;
    rd.weight = dev.weight;
    for (const auto& [dim, scale] : dev.dim_scales) {
      if (!(scale > 0.0)) {
        fail("device '" + dev.name + "' scale for '" + dim +
             "' must be > 0");
      }
      rd.scales.emplace_back(rs.space.index_of(dim), scale);  // throws on typo
    }
    rs.devices.push_back(std::move(rd));
    rs.device_weights.push_back(dev.weight);
  }
  const auto& names = metric_names(sc.task);
  for (const SloSpec& slo : sc.slos) {
    const auto it = std::find(names.begin(), names.end(), slo.metric);
    if (it == names.end()) fail("SLO metric '" + slo.metric + "' unknown");
    if (!std::isfinite(slo.threshold)) fail("SLO threshold must be finite");
    if (!(slo.target_fraction >= 0.0 && slo.target_fraction <= 1.0)) {
      fail("SLO target_fraction must be in [0, 1]");
    }
    rs.slo_metric.push_back(
        static_cast<std::size_t>(it - names.begin()));
  }
  return rs;
}

ScenarioResult run_scenario(const rl::MlpPolicy& policy, const Scenario& sc,
                            const ResolvedScenario& rs,
                            const FleetOptions& opts, netgym::Rng& scen_rng) {
  using netgym::telemetry::Histogram;
  const auto& names = metric_names(sc.task);
  const std::size_t nm = names.size();
  const std::int64_t sessions = sc.sessions;
  const int n_shards = static_cast<int>(std::min<std::int64_t>(
      std::max(opts.shards, 1), sessions));
  const std::int64_t per_shard = (sessions + n_shards - 1) / n_shards;

  // Shard streams forked serially: the partition and every shard's stream
  // depend only on (seed, scenario order, shard count), never on threads.
  std::vector<netgym::Rng> shard_rngs;
  shard_rngs.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) shard_rngs.push_back(scen_rng.fork());

  struct ShardStats {
    std::vector<std::unique_ptr<Histogram>> hist;
    std::vector<std::int64_t> slo_ok;
    std::int64_t steps = 0;
  };
  std::vector<ShardStats> shard_stats(static_cast<std::size_t>(n_shards));
  for (auto& st : shard_stats) {
    st.hist.reserve(nm);
    for (std::size_t m = 0; m < nm; ++m) {
      st.hist.push_back(std::make_unique<Histogram>());
    }
    st.slo_ok.assign(sc.slos.size(), 0);
  }

  const auto start = std::chrono::steady_clock::now();
  netgym::parallel_for_each(
      static_cast<std::size_t>(n_shards), [&](std::size_t s) {
        ShardStats& st = shard_stats[s];
        netgym::Rng& srng = shard_rngs[s];
        // Each shard owns an executable copy: Mlp forward scratch is mutable,
        // so sharing one network across workers would race.
        rl::MlpPolicy local(policy);
        local.set_greedy(true);
        const std::int64_t begin = static_cast<std::int64_t>(s) * per_shard;
        const std::int64_t end = std::min(sessions, begin + per_shard);
        std::vector<std::unique_ptr<netgym::Env>> envs;
        std::vector<netgym::Rng> act_rngs;
        std::vector<netgym::Env*> env_ptrs;
        std::vector<netgym::Rng*> rng_ptrs;
        for (std::int64_t g = begin; g < end; g += kGroupSize) {
          const int k =
              static_cast<int>(std::min<std::int64_t>(kGroupSize, end - g));
          envs.clear();
          act_rngs.clear();
          env_ptrs.clear();
          rng_ptrs.clear();
          envs.reserve(static_cast<std::size_t>(k));
          act_rngs.reserve(static_cast<std::size_t>(k));
          for (int j = 0; j < k; ++j) {
            netgym::Rng env_rng = srng.fork();
            act_rngs.push_back(srng.fork());
            envs.push_back(build_session_env(sc, rs, env_rng));
          }
          for (int j = 0; j < k; ++j) {
            env_ptrs.push_back(envs[static_cast<std::size_t>(j)].get());
            rng_ptrs.push_back(&act_rngs[static_cast<std::size_t>(j)]);
          }
          const auto stats = rl::run_episodes_lockstep(local, env_ptrs,
                                                       rng_ptrs, rs.max_steps);
          for (int j = 0; j < k; ++j) {
            double vals[3];
            extract_metrics(sc.task, *envs[static_cast<std::size_t>(j)],
                            stats[static_cast<std::size_t>(j)], vals);
            for (std::size_t m = 0; m < nm; ++m) st.hist[m]->record(vals[m]);
            for (std::size_t i = 0; i < sc.slos.size(); ++i) {
              if (slo_compliant(sc.slos[i], vals[rs.slo_metric[i]])) {
                ++st.slo_ok[i];
              }
            }
            st.steps += stats[static_cast<std::size_t>(j)].steps;
          }
        }
      });

  // Serial merge in shard index order: float sums accumulate in the same
  // order at any thread count (see Histogram::merge).
  ScenarioResult r;
  r.name = sc.name;
  r.task = sc.task;
  r.space_id = sc.space_id;
  r.sessions = sessions;
  r.trace_set = rs.corpus.empty() ? "" : traces::info(sc.trace_set).name;
  r.trace_prob = rs.corpus.empty() ? 0.0 : sc.trace_prob;
  std::vector<std::unique_ptr<Histogram>> merged;
  merged.reserve(nm);
  for (std::size_t m = 0; m < nm; ++m) {
    merged.push_back(std::make_unique<Histogram>());
  }
  std::vector<std::int64_t> slo_ok(sc.slos.size(), 0);
  for (const ShardStats& st : shard_stats) {
    for (std::size_t m = 0; m < nm; ++m) merged[m]->merge(*st.hist[m]);
    for (std::size_t i = 0; i < slo_ok.size(); ++i) slo_ok[i] += st.slo_ok[i];
    r.steps += st.steps;
  }
  for (std::size_t m = 0; m < nm; ++m) {
    r.metrics.push_back(MetricSummary{names[m], merged[m]->snapshot()});
  }
  for (std::size_t i = 0; i < sc.slos.size(); ++i) {
    SloResult sr;
    sr.spec = sc.slos[i];
    sr.compliant = slo_ok[i];
    sr.fraction = static_cast<double>(slo_ok[i]) /
                  static_cast<double>(sessions);
    sr.pass = sr.fraction >= sr.spec.target_fraction - 1e-12;
    r.slos.push_back(std::move(sr));
  }
  r.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

}  // namespace

const char* slo_op_name(SloOp op) {
  return op == SloOp::kAtMost ? "<=" : ">=";
}

const std::vector<std::string>& metric_names(const std::string& task) {
  static const std::vector<std::string> kAbr = {"episode_reward", "rebuffer_s",
                                               "bitrate_mbps"};
  static const std::vector<std::string> kCc = {"episode_reward",
                                              "queue_delay_s",
                                              "throughput_mbps"};
  static const std::vector<std::string> kLb = {"episode_reward",
                                              "job_slowdown", "job_delay_s"};
  if (task == "abr") return kAbr;
  if (task == "cc") return kCc;
  if (task == "lb") return kLb;
  throw std::invalid_argument("fleet: unknown task '" + task + "'");
}

int task_obs_size(const std::string& task) {
  if (task == "abr") return abr::AbrEnv::kObsSize;
  if (task == "cc") return cc::CcEnv::kObsSize;
  if (task == "lb") return lb::LbEnv::kObsSize;
  throw std::invalid_argument("fleet: unknown task '" + task + "'");
}

int task_action_count(const std::string& task) {
  if (task == "abr") return abr::kBitrateCount;
  if (task == "cc") return cc::kRateActionCount;
  if (task == "lb") return lb::kNumServers;
  throw std::invalid_argument("fleet: unknown task '" + task + "'");
}

std::vector<Scenario> default_scenarios(const std::string& task,
                                        std::int64_t sessions,
                                        double trace_prob) {
  if (sessions <= 0) {
    throw std::invalid_argument("fleet: sessions must be positive");
  }
  metric_names(task);  // validates the task name
  const auto split = [&](double frac) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               static_cast<double>(sessions) * frac)));
  };
  std::vector<Scenario> out;
  if (task == "abr") {
    const std::vector<DeviceProfile> devices = {
        {"phone", 0.50, {{"max_bw_mbps", 0.6}, {"max_buffer_s", 0.5},
                         {"min_rtt_ms", 1.5}}},
        {"desktop", 0.35, {}},
        {"tv", 0.15, {{"max_bw_mbps", 1.5}, {"max_buffer_s", 1.5},
                      {"min_rtt_ms", 0.8}}},
    };
    const std::vector<SloSpec> slos = {
        {"rebuffer_s", SloOp::kAtMost, 0.25, 0.90},
        {"episode_reward", SloOp::kAtLeast, -5.0, 0.95},
    };
    Scenario synth{"abr_rl1_synth", "abr", 1, split(0.30), 256,
                   false, traces::TraceSet::kFcc, 0.0, devices, slos};
    Scenario fcc{"abr_rl2_fcc", "abr", 2, split(0.35), 256,
                 true, traces::TraceSet::kFcc, trace_prob, devices, slos};
    Scenario norway{"abr_rl2_norway", "abr", 2, split(0.35), 256,
                    true, traces::TraceSet::kNorway, trace_prob, devices,
                    slos};
    out = {synth, fcc, norway};
  } else if (task == "cc") {
    const std::vector<DeviceProfile> devices = {
        {"mobile", 0.5, {{"max_bw_mbps", 0.6}, {"min_rtt_ms", 1.5}}},
        {"wired", 0.5, {{"max_bw_mbps", 1.25}, {"min_rtt_ms", 0.75}}},
    };
    const std::vector<SloSpec> slos = {
        {"queue_delay_s", SloOp::kAtMost, 0.10, 0.90},
        {"episode_reward", SloOp::kAtLeast, -300.0, 0.95},
    };
    Scenario synth{"cc_rl1_synth", "cc", 1, split(0.34), 128,
                   false, traces::TraceSet::kCellular, 0.0, devices, slos};
    Scenario cell{"cc_rl2_cellular", "cc", 2, split(0.33), 128,
                  true, traces::TraceSet::kCellular, trace_prob, devices,
                  slos};
    Scenario eth{"cc_rl2_ethernet", "cc", 2, split(0.33), 128,
                 true, traces::TraceSet::kEthernet, trace_prob, devices, slos};
    out = {synth, cell, eth};
  } else {
    const std::vector<DeviceProfile> devices = {
        {"small_cluster", 0.5, {{"service_rate", 0.7}}},
        {"large_cluster", 0.5, {{"service_rate", 1.4}}},
    };
    const std::vector<SloSpec> slos = {
        {"job_slowdown", SloOp::kAtMost, 50.0, 0.90},
        {"job_delay_s", SloOp::kAtMost, 10.0, 0.95},
    };
    Scenario rl1{"lb_rl1", "lb", 1, split(0.50), 256,
                 false, traces::TraceSet::kFcc, 0.0, devices, slos};
    Scenario rl2{"lb_rl2", "lb", 2, split(0.50), 256,
                 false, traces::TraceSet::kFcc, 0.0, devices, slos};
    out = {rl1, rl2};
  }
  return out;
}

FleetResult run_fleet(const rl::MlpPolicy& policy,
                      const std::vector<Scenario>& scenarios,
                      const FleetOptions& opts) {
  if (scenarios.empty()) {
    throw std::invalid_argument("fleet: no scenarios");
  }
  if (opts.shards < 1) {
    throw std::invalid_argument("fleet: shards must be >= 1");
  }
  if (opts.worst_k < 0) {
    throw std::invalid_argument("fleet: worst_k must be >= 0");
  }
  std::vector<ResolvedScenario> resolved;
  resolved.reserve(scenarios.size());
  for (const Scenario& sc : scenarios) {
    resolved.push_back(resolve_and_validate(policy, sc));
  }
  const bool capture = !opts.out_dir.empty() && opts.worst_k > 0;
  if (capture) std::filesystem::create_directories(opts.out_dir);

  FleetResult out;
  out.seed = opts.seed;
  out.shards = opts.shards;
  out.worst_k = capture ? opts.worst_k : 0;
  out.threads = netgym::num_threads();
  netgym::Rng master(opts.seed);
  auto& recorder = netgym::flight::Recorder::instance();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    // Forked before any flight-recorder side effects: the scenario stream
    // depends only on (seed, scenario index).
    netgym::Rng scen_rng = master.fork();
    if (capture) {
      recorder.reset();
      recorder.enable(opts.worst_k);
    }
    ScenarioResult r =
        run_scenario(policy, scenarios[i], resolved[i], opts, scen_rng);
    if (capture) {
      r.flight_path = opts.out_dir + "/worst_" + scenarios[i].name + ".jsonl";
      recorder.write_jsonl(r.flight_path);
      r.flight_episodes =
          static_cast<std::int64_t>(recorder.episodes_seen());
      recorder.disable();
      recorder.reset();
    }
    out.sessions += r.sessions;
    out.steps += r.steps;
    netgym::telemetry::log_event(
        "fleet_scenario", static_cast<std::int64_t>(i),
        {{"name", r.name},
         {"sessions", r.sessions},
         {"steps", r.steps},
         {"duration_s", r.duration_s}});
    out.scenarios.push_back(std::move(r));
  }
  out.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  netgym::telemetry::Registry::instance().counter("fleet.sessions")
      .add(out.sessions);
  netgym::telemetry::Registry::instance().counter("fleet.steps")
      .add(out.steps);
  return out;
}

std::string canonical_digest(const FleetResult& result) {
  std::string out = "fleet-digest v1\n";
  char buf[512];
  const auto g = [&](double v) {
    char num[40];
    std::snprintf(num, sizeof(num), "%.17g", v);
    return std::string(num);
  };
  std::snprintf(buf, sizeof(buf),
                "seed=%" PRIu64 " shards=%d worst_k=%d sessions=%" PRId64
                " steps=%" PRId64 " scenarios=%zu\n",
                result.seed, result.shards, result.worst_k, result.sessions,
                result.steps, result.scenarios.size());
  out += buf;
  for (const ScenarioResult& r : result.scenarios) {
    std::snprintf(buf, sizeof(buf),
                  "scenario %s task=%s space=%d sessions=%" PRId64
                  " steps=%" PRId64 " trace_set=%s trace_prob=%s"
                  " flight_episodes=%" PRId64 "\n",
                  r.name.c_str(), r.task.c_str(), r.space_id, r.sessions,
                  r.steps, r.trace_set.empty() ? "-" : r.trace_set.c_str(),
                  g(r.trace_prob).c_str(), r.flight_episodes);
    out += buf;
    for (const MetricSummary& m : r.metrics) {
      const auto& s = m.stats;
      std::snprintf(buf, sizeof(buf),
                    "metric %s count=%" PRId64
                    " sum=%s min=%s max=%s p50=%s p90=%s p99=%s p999=%s"
                    " exact=%d dropped=%" PRId64 " saturated=%" PRId64 "\n",
                    m.name.c_str(), s.count, g(s.sum).c_str(),
                    g(s.min).c_str(), g(s.max).c_str(), g(s.p50).c_str(),
                    g(s.p90).c_str(), g(s.p99).c_str(), g(s.p999).c_str(),
                    s.exact ? 1 : 0, s.dropped, s.saturated);
      out += buf;
    }
    for (const SloResult& s : r.slos) {
      std::snprintf(buf, sizeof(buf),
                    "slo %s op=%s threshold=%s target=%s compliant=%" PRId64
                    " fraction=%s pass=%d\n",
                    s.spec.metric.c_str(), slo_op_name(s.spec.op),
                    g(s.spec.threshold).c_str(),
                    g(s.spec.target_fraction).c_str(), s.compliant,
                    g(s.fraction).c_str(), s.pass ? 1 : 0);
      out += buf;
    }
  }
  return out;
}

std::string write_regression_fixture(const std::string& dir) {
  // Fixed-seed random-init policy: the fixture pins the fleet plumbing
  // (sampling, lockstep replay, flight capture), not a trained model.
  netgym::Rng prng(4242);
  rl::MlpPolicy policy(task_obs_size("abr"), task_action_count("abr"),
                       {16, 16}, prng);
  Scenario sc;
  sc.name = "fixture_abr";
  sc.task = "abr";
  sc.space_id = 1;
  sc.sessions = 96;
  sc.max_steps = 64;
  sc.use_traces = true;
  sc.trace_set = traces::TraceSet::kFcc;
  sc.trace_prob = 0.5;
  sc.devices = default_scenarios("abr", 96, 0.5).front().devices;
  sc.slos = {{"rebuffer_s", SloOp::kAtMost, 0.25, 0.90}};
  FleetOptions opts;
  opts.seed = 7;
  opts.shards = 8;
  opts.worst_k = 4;
  opts.out_dir = dir;
  run_fleet(policy, {sc}, opts);
  return (std::filesystem::path(dir) / "worst_fixture_abr.jsonl").string();
}

}  // namespace fleet
