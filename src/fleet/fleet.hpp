#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netgym/telemetry.hpp"
#include "rl/policy.hpp"
#include "traces/tracesets.hpp"

namespace fleet {

// Fleet-scale evaluation (DESIGN.md S5h): replay one trained policy over
// millions of heterogeneous sessions and stream population percentiles
// (p50/p99/p99.9 rebuffer, slowdown, queue delay, episode reward) instead of
// storing per-episode data. A fleet run is a list of Scenarios; each scenario
// samples sessions from a ConfigSpace, optionally replays recorded traces,
// skews sampled configs per simulated device class, and scores online SLOs.
//
// Determinism contract: a scenario's sessions are partitioned into a FIXED
// number of shards (FleetOptions::shards, independent of thread count). Every
// shard gets an Rng forked serially from the scenario stream, every session
// forks its env/action streams serially from its shard stream, sessions run
// in lockstep groups of a fixed size through act_batch (bit-identical to
// scalar in strict math mode), and per-shard Histograms are merged in shard
// index order after the pool joins -- so every output number, including float
// sums, is bit-identical at any thread count. canonical_digest() serializes
// exactly the deterministic fields; ctest and CI pin the 1-vs-4-thread
// digests byte-for-byte.

/// A simulated device class: a sampling weight plus multiplicative skews of
/// named config dimensions (a phone has less bandwidth and buffer than a TV).
/// Scaled values are clamped back into the scenario's ConfigSpace and
/// re-rounded on integer dims.
struct DeviceProfile {
  std::string name;
  double weight = 1.0;
  std::vector<std::pair<std::string, double>> dim_scales;
};

enum class SloOp { kAtMost, kAtLeast };

/// "<=" or ">=".
const char* slo_op_name(SloOp op);

/// One service-level objective, evaluated online per session: at least
/// `target_fraction` of sessions must have `metric` op `threshold`
/// (e.g. 90% of sessions rebuffer at most 0.25 s per chunk).
struct SloSpec {
  std::string metric;
  SloOp op = SloOp::kAtMost;
  double threshold = 0.0;
  double target_fraction = 0.99;
};

/// One homogeneous slice of the fleet: a task, a config space to sample,
/// an optional recorded-trace mix, device diversity, and its SLOs.
struct Scenario {
  std::string name;
  std::string task;  ///< "abr", "cc", or "lb"
  int space_id = 1;  ///< RL1/RL2/RL3 ConfigSpace of the task (Tables 3-5)
  std::int64_t sessions = 0;
  int max_steps = 0;  ///< per-session step cap; 0 = effectively unbounded
  bool use_traces = false;  ///< replay recorded traces for some sessions
  traces::TraceSet trace_set = traces::TraceSet::kFcc;
  double trace_prob = 0.0;  ///< per-session probability of a recorded trace
  std::vector<DeviceProfile> devices;  ///< empty = no device skew
  std::vector<SloSpec> slos;
};

struct FleetOptions {
  std::uint64_t seed = 1;
  /// Fixed shard count -- part of the determinism contract, NOT a thread
  /// count. Clamped to the session count per scenario.
  int shards = 256;
  /// Worst-k sessions per scenario routed through the netgym::flight
  /// recorder (0 disables). Requires out_dir.
  int worst_k = 8;
  /// Directory for per-scenario worst-k JSONL dumps ("" disables flight
  /// capture entirely). run_fleet owns the process-wide flight recorder
  /// while a scenario with capture runs.
  std::string out_dir;
};

/// Population statistics of one per-session metric.
struct MetricSummary {
  std::string name;
  netgym::telemetry::Histogram::Snapshot stats;
};

struct SloResult {
  SloSpec spec;
  std::int64_t compliant = 0;
  double fraction = 0.0;
  bool pass = false;
};

struct ScenarioResult {
  std::string name;
  std::string task;
  int space_id = 0;
  std::int64_t sessions = 0;
  std::int64_t steps = 0;
  double duration_s = 0.0;  ///< wall clock; excluded from canonical_digest
  std::string trace_set;    ///< "" when the scenario is purely synthetic
  double trace_prob = 0.0;
  std::vector<MetricSummary> metrics;
  std::vector<SloResult> slos;
  std::string flight_path;  ///< worst-k JSONL ("" when capture was off)
  std::int64_t flight_episodes = 0;
};

struct FleetResult {
  std::uint64_t seed = 0;
  int shards = 0;
  int worst_k = 0;
  int threads = 0;          ///< thread count of the run; excluded from digest
  std::int64_t sessions = 0;
  std::int64_t steps = 0;
  double duration_s = 0.0;  ///< wall clock; excluded from canonical_digest
  std::vector<ScenarioResult> scenarios;
};

/// Per-session metric names streamed for a task, in recording order:
///   abr: episode_reward, rebuffer_s, bitrate_mbps
///   cc:  episode_reward, queue_delay_s, throughput_mbps
///   lb:  episode_reward, job_slowdown, job_delay_s
/// Throws std::invalid_argument on an unknown task.
const std::vector<std::string>& metric_names(const std::string& task);

int task_obs_size(const std::string& task);
int task_action_count(const std::string& task);

/// The default heterogeneous mix for a task: synthetic + recorded-trace
/// scenarios over RL1/RL2 spaces with per-task device profiles and SLOs,
/// splitting `sessions` across scenarios. `trace_prob` sets the recorded
/// share of trace-backed scenarios' sessions.
std::vector<Scenario> default_scenarios(const std::string& task,
                                        std::int64_t sessions,
                                        double trace_prob);

/// Replay `policy` (greedy; the caller's greedy flag is ignored -- fleet
/// evaluation is deployment evaluation) over every scenario sequentially,
/// sharding each scenario's sessions across the global ThreadPool. Validates
/// everything up front (policy/task shape, trace-set task compatibility,
/// device dims, SLO metric names) and throws std::invalid_argument on
/// misconfiguration. See the determinism contract above.
FleetResult run_fleet(const rl::MlpPolicy& policy,
                      const std::vector<Scenario>& scenarios,
                      const FleetOptions& opts);

/// Canonical text serialization of every deterministic field of a result
/// (doubles as %.17g bit-faithful decimals; wall-clock and thread count
/// excluded). Two runs of the same fleet at different thread counts must
/// produce byte-identical digests; ctest and bench_fleet compare these.
std::string canonical_digest(const FleetResult& result);

/// Deterministic tiny fleet (fixed-seed random-init ABR policy, 96 sessions,
/// synthetic + FCC trace mix, worst-4 flight capture) whose worst-k JSONL is
/// committed as a regression fixture. Writes `<dir>/worst_fixture_abr.jsonl`
/// and returns that path; tools/make_fleet_fixtures regenerates the committed
/// copy and fleet_test byte-compares a fresh run against it.
std::string write_regression_fixture(const std::string& dir);

}  // namespace fleet
