#include "fleet/report.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "netgym/telemetry.hpp"

namespace fleet {

namespace {

/// JSON string literal via the shared telemetry escaper.
std::string js(const std::string& s) {
  std::string out;
  netgym::telemetry::json::append_string(out, s);
  return out;
}

/// JSON number: %.17g keeps metric stats bit-faithful (same formatting as
/// the telemetry JSONL sinks); non-finite becomes null.
std::string jd(double v) {
  std::string out;
  netgym::telemetry::json::append_double(out, v);
  return out;
}

std::string ji(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

const char* jb(bool v) { return v ? "true" : "false"; }

void append_metric(std::string& out, const MetricSummary& m) {
  const auto& s = m.stats;
  out += "{\"name\":" + js(m.name);
  out += ",\"count\":" + ji(s.count);
  out += ",\"mean\":" +
         jd(s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0);
  out += ",\"min\":" + jd(s.min);
  out += ",\"max\":" + jd(s.max);
  out += ",\"p50\":" + jd(s.p50);
  out += ",\"p90\":" + jd(s.p90);
  out += ",\"p99\":" + jd(s.p99);
  out += ",\"p999\":" + jd(s.p999);
  out += ",\"exact\":";
  out += jb(s.exact);
  out += ",\"dropped\":" + ji(s.dropped);
  out += ",\"saturated\":" + ji(s.saturated);
  out += "}";
}

void append_slo(std::string& out, const SloResult& s) {
  out += "{\"metric\":" + js(s.spec.metric);
  out += ",\"op\":" + js(slo_op_name(s.spec.op));
  out += ",\"threshold\":" + jd(s.spec.threshold);
  out += ",\"target_fraction\":" + jd(s.spec.target_fraction);
  out += ",\"compliant\":" + ji(s.compliant);
  out += ",\"fraction\":" + jd(s.fraction);
  out += ",\"pass\":";
  out += jb(s.pass);
  out += "}";
}

}  // namespace

void write_fleet_json(const std::string& path, const FleetResult& r,
                      const BenchInfo& info) {
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"bench\": \"fleet\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"quick\": ";
  out += jb(info.quick);
  out += ",\n";
  out += "  \"seed\": " + ji(static_cast<std::int64_t>(r.seed)) + ",\n";
  out += "  \"threads\": " + ji(r.threads) + ",\n";
  out += "  \"shards\": " + ji(r.shards) + ",\n";
  out += "  \"worst_k\": " + ji(r.worst_k) + ",\n";
  out += "  \"sessions_total\": " + ji(r.sessions) + ",\n";
  out += "  \"steps_total\": " + ji(r.steps) + ",\n";
  out += "  \"duration_s\": " + jd(r.duration_s) + ",\n";
  const double dur = r.duration_s > 0.0 ? r.duration_s : 1e-9;
  out += "  \"sessions_per_s\": " +
         jd(static_cast<double>(r.sessions) / dur) + ",\n";
  out += "  \"steps_per_s\": " + jd(static_cast<double>(r.steps) / dur) +
         ",\n";
  out += "  \"determinism\": {\"checked\": ";
  out += jb(info.determinism_checked);
  out += ", \"threads_a\": " + ji(info.det_threads_a);
  out += ", \"threads_b\": " + ji(info.det_threads_b);
  out += ", \"identical\": ";
  out += jb(info.determinism_identical);
  out += "},\n";
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < r.scenarios.size(); ++i) {
    const ScenarioResult& sc = r.scenarios[i];
    out += "    {\"name\":" + js(sc.name);
    out += ",\"task\":" + js(sc.task);
    out += ",\"space\":" + ji(sc.space_id);
    out += ",\"sessions\":" + ji(sc.sessions);
    out += ",\"steps\":" + ji(sc.steps);
    out += ",\"duration_s\":" + jd(sc.duration_s);
    const double sdur = sc.duration_s > 0.0 ? sc.duration_s : 1e-9;
    out += ",\"sessions_per_s\":" +
           jd(static_cast<double>(sc.sessions) / sdur);
    out += ",\"trace_set\":" + js(sc.trace_set);
    out += ",\"trace_prob\":" + jd(sc.trace_prob);
    out += ",\"flight_path\":" + js(sc.flight_path);
    out += ",\"flight_episodes\":" + ji(sc.flight_episodes);
    out += ",\n     \"metrics\":[";
    for (std::size_t m = 0; m < sc.metrics.size(); ++m) {
      if (m > 0) out += ",";
      append_metric(out, sc.metrics[m]);
    }
    out += "],\n     \"slos\":[";
    for (std::size_t s = 0; s < sc.slos.size(); ++s) {
      if (s > 0) out += ",";
      append_slo(out, sc.slos[s]);
    }
    out += "]}";
    out += (i + 1 < r.scenarios.size()) ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_fleet_json: cannot open " + path);
  f << out;
  f.flush();
  if (!f) throw std::runtime_error("write_fleet_json: write failed: " + path);
}

std::string format_fleet_summary(const FleetResult& r) {
  std::string out;
  char line[256];
  const double dur = r.duration_s > 0.0 ? r.duration_s : 1e-9;
  std::snprintf(line, sizeof(line),
                "fleet: %" PRId64 " sessions, %" PRId64
                " steps in %.2fs (%.0f sessions/s, %d threads, %d shards)\n",
                r.sessions, r.steps, r.duration_s,
                static_cast<double>(r.sessions) / dur, r.threads, r.shards);
  out += line;
  for (const ScenarioResult& sc : r.scenarios) {
    std::snprintf(line, sizeof(line),
                  "\n[%s] task=%s space=RL%d sessions=%" PRId64 "%s%s\n",
                  sc.name.c_str(), sc.task.c_str(), sc.space_id, sc.sessions,
                  sc.trace_set.empty() ? "" : " traces=",
                  sc.trace_set.c_str());
    out += line;
    std::snprintf(line, sizeof(line), "  %-16s %10s %12s %12s %12s %12s %12s\n",
                  "metric", "count", "mean", "p50", "p99", "p99.9", "max");
    out += line;
    for (const MetricSummary& m : sc.metrics) {
      const auto& s = m.stats;
      std::snprintf(line, sizeof(line),
                    "  %-16s %10" PRId64 " %12.5g %12.5g %12.5g %12.5g "
                    "%12.5g\n",
                    m.name.c_str(), s.count,
                    s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0,
                    s.p50, s.p99, s.p999, s.max);
      out += line;
    }
    for (const SloResult& s : sc.slos) {
      std::snprintf(line, sizeof(line),
                    "  SLO %-14s %s %-10.4g target=%.3f measured=%.5f  %s\n",
                    s.spec.metric.c_str(), slo_op_name(s.spec.op),
                    s.spec.threshold, s.spec.target_fraction, s.fraction,
                    s.pass ? "PASS" : "FAIL");
      out += line;
    }
  }
  return out;
}

}  // namespace fleet
