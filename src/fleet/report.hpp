#pragma once

#include <string>

#include "fleet/fleet.hpp"

namespace fleet {

/// Extra header fields of a BENCH_fleet.json document beyond the FleetResult
/// itself. The determinism block records bench_fleet's re-assertion: the same
/// reduced fleet run at `threads_a` and `threads_b` with canonical_digest
/// compared byte-for-byte. A CLI run that skipped the re-assertion writes
/// checked=false (scripts/check_bench_json.py only requires identical=true
/// when checked).
struct BenchInfo {
  bool quick = false;
  bool determinism_checked = false;
  int det_threads_a = 1;
  int det_threads_b = 4;
  bool determinism_identical = false;
};

/// Write the "bench": "fleet" JSON document (schema_version 1) consumed by
/// scripts/check_bench_json.py, scripts/slo_report.py, and
/// scripts/bench_to_csv.py. Throws std::runtime_error when the file cannot
/// be written.
void write_fleet_json(const std::string& path, const FleetResult& result,
                      const BenchInfo& info);

/// Human-readable per-scenario summary (percentile rows + SLO pass/fail),
/// printed by bench_fleet and `genet fleet`.
std::string format_fleet_summary(const FleetResult& result);

}  // namespace fleet
