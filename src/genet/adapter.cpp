#include "genet/adapter.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>

#include "abr/baselines.hpp"
#include "netgym/parallel.hpp"
#include "netgym/tracing.hpp"
#include "rl/lockstep.hpp"
#include "abr/env.hpp"
#include "abr/optimal.hpp"
#include "cc/baselines.hpp"
#include "cc/env.hpp"
#include "cc/packet_sim.hpp"
#include "lb/baselines.hpp"
#include "lb/env.hpp"

namespace genet {

const netgym::Trace& matching_trace(const std::vector<netgym::Trace>& corpus,
                                    double max_bw_mbps, netgym::Rng& rng) {
  if (corpus.empty()) {
    // Without this guard the closest-trace fallback below would read
    // corpus[0] of an empty vector.
    throw std::invalid_argument("matching_trace: empty trace corpus");
  }
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const double mean = corpus[i].mean_bandwidth();
    if (mean <= max_bw_mbps && mean >= 0.02 * max_bw_mbps) {
      candidates.push_back(i);
    }
  }
  if (!candidates.empty()) {
    return corpus[candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(candidates.size()) - 1))]];
  }
  std::size_t best = 0;
  double best_dist = 1e300;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const double d = std::abs(corpus[i].mean_bandwidth() - max_bw_mbps);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return corpus[best];
}

namespace {

/// Shared engine of the evaluation helpers: serially pre-fork one RNG stream
/// per work item, evaluate every item — in parallel when `parallel_ok` —
/// and return per-item values in index order. Because each item consumes
/// only its own stream, the serial and parallel paths produce bit-identical
/// results.
std::vector<double> forked_map(
    int n, netgym::Rng& rng, bool parallel_ok,
    const std::function<double(std::size_t, netgym::Rng&)>& item) {
  std::vector<netgym::Rng> streams;
  streams.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) streams.push_back(rng.fork());
  std::vector<double> values(static_cast<std::size_t>(n));
  const auto traced_item = [&](std::size_t i) {
    netgym::tracing::TraceSpan span("eval", "genet",
                                    static_cast<std::int64_t>(i));
    values[i] = item(i, streams[i]);
  };
  if (parallel_ok) {
    netgym::parallel_for_each(values.size(), traced_item);
  } else {
    for (std::size_t i = 0; i < values.size(); ++i) traced_item(i);
  }
  return values;
}

double mean_of(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

/// Per-item view of a shared policy: workers use their own clone; policies
/// that cannot be cloned fall back to the shared instance, which is safe
/// because `forked_map` then runs serially.
netgym::Policy& local_policy(const std::unique_ptr<netgym::Policy>& local,
                             netgym::Policy& shared) {
  return local ? *local : shared;
}

bool cloneable(const netgym::Policy& policy) {
  return policy.clone() != nullptr;
}

/// Step cap of `netgym::run_episode`'s default, which the serial eval path
/// relies on; the lockstep path must bound episodes identically.
constexpr int kEvalMaxSteps = 100000;

/// One evaluation item prepared for lockstep batching: the environment the
/// RL policy rolls through, plus an optional `finish` hook that consumes the
/// RL episode's mean reward — running any baseline/oracle episode on the
/// item's stream — and returns the item's value. Everything `finish` needs
/// (reference env, baseline policy) is captured inside it; a null `finish`
/// means the item's value is the RL mean reward itself.
struct EvalPlan {
  std::unique_ptr<netgym::Env> rl_env;
  std::function<double(double rl_mean_reward, netgym::Rng& item_rng)> finish;
};

/// Lockstep-batched variant of `forked_map` for MLP policies: items are
/// grouped into jobs (one policy copy and one "eval" span per job), each
/// job's RL episodes advance together through batched forward passes, and
/// each item's `finish` hook then runs in item order on the item's own
/// stream. Stream discipline matches the serial path draw for draw — per
/// item: plan-time setup draws, then RL episode draws, then finish draws —
/// so in strict math mode the values are bit-identical to `forked_map`'s at
/// any group size or thread count. Policies that are not `rl::MlpPolicy`
/// fall back to `forked_map(serial_item)` unchanged.
std::vector<double> batched_map(
    int n, netgym::Rng& rng, netgym::Policy& policy,
    const std::function<EvalPlan(std::size_t, netgym::Rng&)>& plan,
    const std::function<double(std::size_t, netgym::Rng&)>& serial_item) {
  auto* mlp = dynamic_cast<rl::MlpPolicy*>(&policy);
  if (mlp == nullptr) {
    return forked_map(n, rng, cloneable(policy), serial_item);
  }
  std::vector<netgym::Rng> streams;
  streams.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) streams.push_back(rng.fork());
  const std::size_t count = static_cast<std::size_t>(n);
  std::vector<double> values(count);
  const std::size_t group = rl::lockstep_group_size(count);
  const std::size_t jobs = (count + group - 1) / group;
  netgym::parallel_for_each(jobs, [&](std::size_t g) {
    const std::size_t begin = g * group;
    const std::size_t end = std::min(begin + group, count);
    netgym::tracing::TraceSpan span("eval", "genet",
                                    static_cast<std::int64_t>(begin));
    rl::MlpPolicy local = *mlp;
    std::vector<EvalPlan> plans;
    std::vector<netgym::Env*> envs;
    std::vector<netgym::Rng*> rngs;
    plans.reserve(end - begin);
    envs.reserve(end - begin);
    rngs.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      plans.push_back(plan(i, streams[i]));
      envs.push_back(plans.back().rl_env.get());
      rngs.push_back(&streams[i]);
    }
    const std::vector<netgym::EpisodeStats> stats =
        rl::run_episodes_lockstep(local, envs, rngs, kEvalMaxSteps);
    for (std::size_t j = 0; j < plans.size(); ++j) {
      const std::size_t i = begin + j;
      values[i] = plans[j].finish
                      ? plans[j].finish(stats[j].mean_reward, streams[i])
                      : stats[j].mean_reward;
    }
  });
  return values;
}

GapEvalHook g_gap_eval_hook;

/// Route a gap evaluation through the distributed hook when the whole
/// computation is reconstructible worker-side; nullopt keeps the in-process
/// path. The item streams are forked here -- serially, in index order, the
/// same pre-fork the in-process paths do -- BEFORE anything ships, so the
/// hook's values depend only on the stream states and the request content:
/// worker count, assignment order, and worker death cannot change them.
std::optional<std::vector<double>> dist_gap_eval(
    const TaskAdapter& task, netgym::Policy& policy, const char* kind,
    const std::string& baseline, const netgym::Config& config, int n,
    netgym::Rng& rng) {
  if (!g_gap_eval_hook) return std::nullopt;
  const auto* mlp = dynamic_cast<const rl::MlpPolicy*>(&policy);
  if (mlp == nullptr) return std::nullopt;
  GapEvalRequest req;
  req.adapter_spec = task.dist_spec();
  if (req.adapter_spec.empty()) return std::nullopt;
  req.kind = kind;
  req.baseline = baseline;
  req.config = config.values;
  req.policy_params = mlp->snapshot();
  req.greedy = mlp->greedy();
  req.stream_states.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) req.stream_states.push_back(rng.fork().state());
  std::vector<double> values = g_gap_eval_hook(req);
  if (values.size() != static_cast<std::size_t>(n)) {
    throw std::runtime_error("gap eval hook returned " +
                             std::to_string(values.size()) + " values for " +
                             std::to_string(n) + " items");
  }
  return values;
}

}  // namespace

void set_gap_eval_hook(GapEvalHook hook) {
  g_gap_eval_hook = std::move(hook);
}

bool gap_eval_hook_installed() {
  return static_cast<bool>(g_gap_eval_hook);
}

double eval_gap_item(const TaskAdapter& task, netgym::Policy& policy,
                     const std::string& kind, const std::string& baseline,
                     const netgym::Config& config, netgym::Rng& item_rng) {
  // Both policies see the same environment instance (fresh copy each); the
  // draw order -- env fork, RL episode, then reference episode, all on the
  // item's stream -- must stay identical to the lockstep plan/finish split
  // in gap_to_baseline/gap_to_optimum above.
  netgym::Rng env_rng = item_rng.fork();
  netgym::Rng env_rng2 = env_rng;
  if (kind == "baseline") {
    auto env_rl = task.make_env(config, env_rng);
    auto env_rule = task.make_env(config, env_rng2);
    auto rule = task.make_baseline(baseline, *env_rule);
    const double r_rl =
        netgym::run_episode(*env_rl, policy, item_rng).mean_reward;
    const double r_rule =
        netgym::run_episode(*env_rule, *rule, item_rng).mean_reward;
    return r_rule - r_rl;
  }
  if (kind == "optimum") {
    auto env_rl = task.make_env(config, env_rng);
    auto env_opt = task.make_env(config, env_rng2);
    const double r_rl =
        netgym::run_episode(*env_rl, policy, item_rng).mean_reward;
    const double r_opt = task.optimal_mean_reward(*env_opt, item_rng);
    return r_opt - r_rl;
  }
  throw std::invalid_argument("eval_gap_item: unknown kind '" + kind + "'");
}

std::unique_ptr<TaskAdapter> make_adapter_from_spec(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  if (slash != std::string::npos && slash + 1 < spec.size()) {
    const std::string name = spec.substr(0, slash);
    const std::string id_text = spec.substr(slash + 1);
    bool digits = true;
    for (char c : id_text) digits = digits && c >= '0' && c <= '9';
    if (digits && id_text.size() <= 2) {
      const int space_id = std::stoi(id_text);
      if (space_id >= 1 && space_id <= 3) {
        if (name == "abr") return std::make_unique<AbrAdapter>(space_id);
        if (name == "cc") return std::make_unique<CcAdapter>(space_id);
        if (name == "lb") return std::make_unique<LbAdapter>(space_id);
      }
    }
  }
  throw std::invalid_argument("make_adapter_from_spec: unrecognized spec '" +
                              spec + "'");
}

std::unique_ptr<netgym::Env> TaskAdapter::make_env_from_trace(
    const netgym::Trace&, netgym::Rng&) const {
  throw std::logic_error(name() + ": task has no trace-driven environments");
}

double TaskAdapter::config_non_smoothness(const netgym::Config&,
                                          netgym::Rng&) const {
  return 0.0;
}

rl::EnvFactory TaskAdapter::factory_for(
    const netgym::ConfigDistribution& dist) const {
  return [this, &dist](netgym::Rng& rng) {
    return make_env(dist.sample(rng), rng);
  };
}

rl::EnvFactory TaskAdapter::factory_for(const netgym::Config& config) const {
  return [this, config](netgym::Rng& rng) { return make_env(config, rng); };
}

double test_on_config(const TaskAdapter& task, netgym::Policy& policy,
                      const netgym::Config& config, int n, netgym::Rng& rng) {
  if (n <= 0) throw std::invalid_argument("test_on_config: n must be > 0");
  return mean_of(batched_map(
      n, rng, policy,
      [&](std::size_t, netgym::Rng& item_rng) {
        EvalPlan p;
        p.rl_env = task.make_env(config, item_rng);
        return p;
      },
      [&](std::size_t, netgym::Rng& item_rng) {
        const std::unique_ptr<netgym::Policy> local = policy.clone();
        auto env = task.make_env(config, item_rng);
        return netgym::run_episode(*env, local_policy(local, policy), item_rng)
            .mean_reward;
      }));
}

double test_on_distribution(const TaskAdapter& task, netgym::Policy& policy,
                            const netgym::ConfigDistribution& dist, int n,
                            netgym::Rng& rng) {
  if (n <= 0) {
    throw std::invalid_argument("test_on_distribution: n must be > 0");
  }
  return mean_of(batched_map(
      n, rng, policy,
      [&](std::size_t, netgym::Rng& item_rng) {
        EvalPlan p;
        p.rl_env = task.make_env(dist.sample(item_rng), item_rng);
        return p;
      },
      [&](std::size_t, netgym::Rng& item_rng) {
        const std::unique_ptr<netgym::Policy> local = policy.clone();
        auto env = task.make_env(dist.sample(item_rng), item_rng);
        return netgym::run_episode(*env, local_policy(local, policy), item_rng)
            .mean_reward;
      }));
}

std::vector<double> test_per_trace(const TaskAdapter& task,
                                   netgym::Policy& policy,
                                   const std::vector<netgym::Trace>& corpus,
                                   netgym::Rng& rng) {
  return batched_map(
      static_cast<int>(corpus.size()), rng, policy,
      [&](std::size_t i, netgym::Rng& item_rng) {
        EvalPlan p;
        p.rl_env = task.make_env_from_trace(corpus[i], item_rng);
        return p;
      },
      [&](std::size_t i, netgym::Rng& item_rng) {
        const std::unique_ptr<netgym::Policy> local = policy.clone();
        auto env = task.make_env_from_trace(corpus[i], item_rng);
        return netgym::run_episode(*env, local_policy(local, policy), item_rng)
            .mean_reward;
      });
}

double gap_to_baseline(const TaskAdapter& task, netgym::Policy& rl_policy,
                       const std::string& baseline_name,
                       const netgym::Config& config, int n,
                       netgym::Rng& rng) {
  if (n <= 0) throw std::invalid_argument("gap_to_baseline: n must be > 0");
  if (const auto distributed = dist_gap_eval(task, rl_policy, "baseline",
                                             baseline_name, config, n, rng)) {
    return mean_of(*distributed);
  }
  return mean_of(batched_map(
      n, rng, rl_policy,
      [&](std::size_t, netgym::Rng& item_rng) {
        // Both policies see the same environment instance (fresh copy each).
        netgym::Rng env_rng = item_rng.fork();
        netgym::Rng env_rng2 = env_rng;
        EvalPlan p;
        p.rl_env = task.make_env(config, env_rng);
        std::shared_ptr<netgym::Env> env_rule =
            task.make_env(config, env_rng2);
        std::shared_ptr<netgym::Policy> baseline =
            task.make_baseline(baseline_name, *env_rule);
        p.finish = [env_rule, baseline](double r_rl, netgym::Rng& rng2) {
          const double r_rule =
              netgym::run_episode(*env_rule, *baseline, rng2).mean_reward;
          return r_rule - r_rl;
        };
        return p;
      },
      [&](std::size_t, netgym::Rng& item_rng) {
        const std::unique_ptr<netgym::Policy> local = rl_policy.clone();
        return eval_gap_item(task, local_policy(local, rl_policy), "baseline",
                             baseline_name, config, item_rng);
      }));
}

double gap_to_optimum(const TaskAdapter& task, netgym::Policy& rl_policy,
                      const netgym::Config& config, int n, netgym::Rng& rng) {
  if (n <= 0) throw std::invalid_argument("gap_to_optimum: n must be > 0");
  if (const auto distributed =
          dist_gap_eval(task, rl_policy, "optimum", "", config, n, rng)) {
    return mean_of(*distributed);
  }
  return mean_of(batched_map(
      n, rng, rl_policy,
      [&](std::size_t, netgym::Rng& item_rng) {
        netgym::Rng env_rng = item_rng.fork();
        netgym::Rng env_rng2 = env_rng;
        EvalPlan p;
        p.rl_env = task.make_env(config, env_rng);
        std::shared_ptr<netgym::Env> env_opt = task.make_env(config, env_rng2);
        p.finish = [&task, env_opt](double r_rl, netgym::Rng& rng2) {
          return task.optimal_mean_reward(*env_opt, rng2) - r_rl;
        };
        return p;
      },
      [&](std::size_t, netgym::Rng& item_rng) {
        const std::unique_ptr<netgym::Policy> local = rl_policy.clone();
        return eval_gap_item(task, local_policy(local, rl_policy), "optimum",
                             "", config, item_rng);
      }));
}

double gap_between(const TaskAdapter& task, netgym::Policy& policy,
                   netgym::Policy& reference, const netgym::Config& config,
                   int n, netgym::Rng& rng) {
  if (n <= 0) throw std::invalid_argument("gap_between: n must be > 0");
  // Deliberately not lockstep-batched: both episodes draw from the shared
  // item stream inside one expression whose operand order the compiler
  // chose, so splitting them across a plan/finish boundary could silently
  // reorder draws (and `reference` is often not an MLP anyway).
  const bool parallel_ok = cloneable(policy) && cloneable(reference);
  return mean_of(forked_map(
      n, rng, parallel_ok, [&](std::size_t, netgym::Rng& item_rng) {
        const std::unique_ptr<netgym::Policy> local = policy.clone();
        const std::unique_ptr<netgym::Policy> local_ref = reference.clone();
        netgym::Rng env_rng = item_rng.fork();
        netgym::Rng env_rng2 = env_rng;
        auto env_policy = task.make_env(config, env_rng);
        auto env_reference = task.make_env(config, env_rng2);
        return netgym::run_episode(*env_reference,
                                   local_policy(local_ref, reference),
                                   item_rng)
                   .mean_reward -
               netgym::run_episode(*env_policy, local_policy(local, policy),
                                   item_rng)
                   .mean_reward;
      }));
}

// ---------------------------------------------------------------------------
// ABR
// ---------------------------------------------------------------------------

AbrAdapter::AbrAdapter(int space_id, TraceMixOptions traces)
    : space_(abr::abr_config_space(space_id)),
      traces_(std::move(traces)),
      space_id_(space_id) {}

std::string AbrAdapter::dist_spec() const {
  // A loaded trace corpus cannot travel in a short spec; keep those local.
  if (!traces_.corpus.empty()) return "";
  return "abr/" + std::to_string(space_id_);
}

int AbrAdapter::obs_size() const { return abr::AbrEnv::kObsSize; }
int AbrAdapter::action_count() const { return abr::kBitrateCount; }

std::unique_ptr<netgym::Env> AbrAdapter::make_env(
    const netgym::Config& config, netgym::Rng& rng) const {
  const abr::AbrEnvConfig cfg = abr::abr_config_from_point(config);
  if (!traces_.corpus.empty() && rng.bernoulli(traces_.trace_prob)) {
    const netgym::Trace& trace =
        matching_trace(traces_.corpus, cfg.max_bw_mbps, rng);
    return abr::make_abr_env(cfg, trace, rng);
  }
  return abr::make_abr_env(cfg, rng);
}

std::unique_ptr<netgym::Env> AbrAdapter::make_env_from_trace(
    const netgym::Trace& trace, netgym::Rng& rng) const {
  return abr::make_abr_env(abr::AbrEnvConfig{}, trace, rng);
}

std::vector<std::string> AbrAdapter::baseline_names() const {
  return {"mpc", "bba", "oboe", "naive"};
}

std::unique_ptr<netgym::Policy> AbrAdapter::make_baseline(
    const std::string& name, const netgym::Env&) const {
  if (name == "mpc") return std::make_unique<abr::RobustMpcPolicy>();
  if (name == "bba") return std::make_unique<abr::BbaPolicy>();
  if (name == "oboe") return std::make_unique<abr::OboePolicy>();
  if (name == "naive") return std::make_unique<abr::NaiveAbrPolicy>();
  throw std::invalid_argument("AbrAdapter: unknown baseline '" + name + "'");
}

double AbrAdapter::optimal_mean_reward(netgym::Env& env, netgym::Rng&) const {
  auto* abr_env = dynamic_cast<abr::AbrEnv*>(&env);
  if (abr_env == nullptr) {
    throw std::invalid_argument("AbrAdapter: env is not an AbrEnv");
  }
  return abr::offline_optimal(*abr_env, /*beam_width=*/32).mean_reward;
}

double AbrAdapter::config_non_smoothness(const netgym::Config& config,
                                         netgym::Rng& rng) const {
  const abr::AbrEnvConfig cfg = abr::abr_config_from_point(config);
  double total = 0.0;
  constexpr int kSamples = 3;
  for (int i = 0; i < kSamples; ++i) {
    auto env = abr::make_abr_env(cfg, rng);
    total += env->trace().non_smoothness();
  }
  return total / kSamples;
}

std::unique_ptr<rl::ActorCriticBase> AbrAdapter::make_trainer(
    std::uint64_t seed) const {
  rl::TrainerOptions options;  // Pensieve trains with A3C; A2C here.
  return std::make_unique<rl::A2CTrainer>(obs_size(), action_count(), options,
                                          seed);
}

// ---------------------------------------------------------------------------
// CC
// ---------------------------------------------------------------------------

CcAdapter::CcAdapter(int space_id, TraceMixOptions traces,
                     bool use_packet_sim)
    : space_(cc::cc_config_space(space_id)),
      traces_(std::move(traces)),
      use_packet_sim_(use_packet_sim),
      space_id_(space_id) {}

std::string CcAdapter::dist_spec() const {
  if (!traces_.corpus.empty() || use_packet_sim_) return "";
  return "cc/" + std::to_string(space_id_);
}

int CcAdapter::obs_size() const { return cc::CcEnv::kObsSize; }
int CcAdapter::action_count() const { return cc::kRateActionCount; }

std::unique_ptr<netgym::Env> CcAdapter::make_env(const netgym::Config& config,
                                                 netgym::Rng& rng) const {
  const cc::CcEnvConfig cfg = cc::cc_config_from_point(config);
  if (!traces_.corpus.empty() && rng.bernoulli(traces_.trace_prob)) {
    const netgym::Trace& trace =
        matching_trace(traces_.corpus, cfg.max_bw_mbps, rng);
    if (use_packet_sim_) return cc::make_packet_cc_env(cfg, trace, rng);
    return cc::make_cc_env(cfg, trace, rng);
  }
  if (use_packet_sim_) return cc::make_packet_cc_env(cfg, rng);
  return cc::make_cc_env(cfg, rng);
}

std::unique_ptr<netgym::Env> CcAdapter::make_env_from_trace(
    const netgym::Trace& trace, netgym::Rng& rng) const {
  if (use_packet_sim_) {
    return cc::make_packet_cc_env(cc::CcEnvConfig{}, trace, rng);
  }
  return cc::make_cc_env(cc::CcEnvConfig{}, trace, rng);
}

std::vector<std::string> CcAdapter::baseline_names() const {
  return {"bbr", "cubic", "vivace", "copa"};
}

std::unique_ptr<netgym::Policy> CcAdapter::make_baseline(
    const std::string& name, const netgym::Env& env) const {
  if (name == "bbr") return std::make_unique<cc::BbrPolicy>();
  if (name == "cubic") return std::make_unique<cc::CubicPolicy>();
  if (name == "vivace") return std::make_unique<cc::VivacePolicy>();
  if (name == "copa") return std::make_unique<cc::CopaPolicy>();
  if (name == "oracle") {
    const auto* cc_env = dynamic_cast<const cc::CcEnv*>(&env);
    if (cc_env == nullptr) {
      throw std::invalid_argument("CcAdapter: env is not a CcEnv");
    }
    return std::make_unique<cc::OraclePolicy>(*cc_env);
  }
  throw std::invalid_argument("CcAdapter: unknown baseline '" + name + "'");
}

double CcAdapter::optimal_mean_reward(netgym::Env& env,
                                      netgym::Rng& rng) const {
  // The oracle reads the trace through a fluid CcEnv; gap-to-optimum is
  // only supported on the fluid backend.
  auto* cc_env = dynamic_cast<cc::CcEnv*>(&env);
  if (cc_env == nullptr) {
    throw std::invalid_argument(
        "CcAdapter: gap-to-optimum needs the fluid CcEnv backend");
  }
  cc::OraclePolicy oracle(*cc_env);
  return netgym::run_episode(*cc_env, oracle, rng).mean_reward;
}

double CcAdapter::config_non_smoothness(const netgym::Config& config,
                                        netgym::Rng& rng) const {
  const cc::CcEnvConfig cfg = cc::cc_config_from_point(config);
  double total = 0.0;
  constexpr int kSamples = 3;
  for (int i = 0; i < kSamples; ++i) {
    auto env = cc::make_cc_env(cfg, rng);
    total += env->trace().non_smoothness();
  }
  return total / kSamples;
}

std::unique_ptr<rl::ActorCriticBase> CcAdapter::make_trainer(
    std::uint64_t seed) const {
  rl::TrainerOptions options;  // Aurora trains with PPO.
  options.max_steps_per_episode = 300;
  return std::make_unique<rl::PPOTrainer>(obs_size(), action_count(), options,
                                          seed);
}

// ---------------------------------------------------------------------------
// LB
// ---------------------------------------------------------------------------

LbAdapter::LbAdapter(int space_id)
    : space_(lb::lb_config_space(space_id)), space_id_(space_id) {}

std::string LbAdapter::dist_spec() const {
  return "lb/" + std::to_string(space_id_);
}

int LbAdapter::obs_size() const { return lb::LbEnv::kObsSize; }
int LbAdapter::action_count() const { return lb::kNumServers; }

std::unique_ptr<netgym::Env> LbAdapter::make_env(const netgym::Config& config,
                                                 netgym::Rng& rng) const {
  return lb::make_lb_env(lb::lb_config_from_point(config), rng);
}

std::vector<std::string> LbAdapter::baseline_names() const {
  return {"llf", "shortest", "least_requests", "po2", "random", "naive"};
}

std::unique_ptr<netgym::Policy> LbAdapter::make_baseline(
    const std::string& name, const netgym::Env& env) const {
  if (name == "llf") return std::make_unique<lb::LlfPolicy>();
  if (name == "shortest") {
    return std::make_unique<lb::ShortestCompletionPolicy>();
  }
  if (name == "least_requests") {
    return std::make_unique<lb::LeastRequestsPolicy>();
  }
  if (name == "random") return std::make_unique<lb::RandomLbPolicy>();
  if (name == "po2") return std::make_unique<lb::PowerOfTwoPolicy>();
  if (name == "naive") return std::make_unique<lb::NaiveLbPolicy>();
  if (name == "oracle") {
    const auto* lb_env = dynamic_cast<const lb::LbEnv*>(&env);
    if (lb_env == nullptr) {
      throw std::invalid_argument("LbAdapter: env is not an LbEnv");
    }
    return std::make_unique<lb::OracleLbPolicy>(*lb_env);
  }
  throw std::invalid_argument("LbAdapter: unknown baseline '" + name + "'");
}

double LbAdapter::optimal_mean_reward(netgym::Env& env,
                                      netgym::Rng& rng) const {
  auto* lb_env = dynamic_cast<lb::LbEnv*>(&env);
  if (lb_env == nullptr) {
    throw std::invalid_argument("LbAdapter: env is not an LbEnv");
  }
  lb::OracleLbPolicy oracle(*lb_env);
  return netgym::run_episode(*lb_env, oracle, rng).mean_reward;
}

std::unique_ptr<rl::ActorCriticBase> LbAdapter::make_trainer(
    std::uint64_t seed) const {
  rl::TrainerOptions options;  // Park's LB example trains with A3C-style PG.
  return std::make_unique<rl::A2CTrainer>(obs_size(), action_count(), options,
                                          seed);
}

}  // namespace genet
