#include "genet/curriculum.hpp"

#include <algorithm>
#include <stdexcept>

#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"

namespace genet {

namespace {

/// FNV-1a hash of the (textual) RNG state: a compact fingerprint recording
/// which point of the random stream a BO trial's evaluations drew from,
/// without dumping the full mt19937_64 state into every provenance record.
std::int64_t rng_fingerprint(const netgym::Rng& rng) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : rng.state()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::int64_t>(h);
}

/// Run a BO search over the task's configuration space maximizing
/// `criterion`; returns the best configuration found and its criterion
/// value. This is the shared engine of every BO-driven scheme; Genet
/// restarts it per round (S4.2).
///
/// Provenance: with a RunLogger installed, every trial emits a
/// "bo_trial_provenance" record -- normalized and denormalized candidate,
/// the GP surrogate's predicted mean/variance and winning acquisition score
/// (gp_valid=0 during the initial random phase), the measured criterion
/// value, envs_per_eval, the running best, and an RNG-state fingerprint
/// identifying the evaluation's random stream. Emitted after each trial's
/// RNG use, so logging cannot change what the search explores.
template <typename Criterion>
CurriculumScheme::Selection bo_search(const TaskAdapter& task,
                                      const SearchOptions& options,
                                      netgym::Rng& rng, int round,
                                      const std::string& scheme,
                                      Criterion&& criterion) {
  namespace tel = netgym::telemetry;
  const netgym::ConfigSpace& space = task.space();
  bo::BayesianOptimizer optimizer(static_cast<int>(space.dims()),
                                  rng.engine()());
  for (int trial = 0; trial < options.bo_trials; ++trial) {
    netgym::tracing::TraceSpan span("bo_trial", "genet", trial);
    const std::int64_t fingerprint = rng_fingerprint(rng);
    const std::vector<double> unit = optimizer.propose();
    const bo::BayesianOptimizer::ProposalPrediction pred =
        optimizer.last_proposal_prediction();
    const netgym::Config config = space.denormalize(unit);
    const double measured = criterion(config);
    optimizer.update(unit, measured);
    if (tel::logging_enabled()) {
      tel::log_event(
          "bo_trial_provenance", trial,
          {{"round", static_cast<std::int64_t>(round)},
           {"scheme", scheme},
           {"unit", unit},
           {"config", config.values},
           {"measured_gap", measured},
           {"envs_per_eval", static_cast<std::int64_t>(options.envs_per_eval)},
           {"gp_valid", static_cast<std::int64_t>(pred.valid ? 1 : 0)},
           {"gp_mean", pred.mean},
           {"gp_variance", pred.variance},
           {"acquisition", pred.acquisition},
           {"best_value", optimizer.best_value()},
           {"rng_fingerprint", fingerprint}});
    }
  }
  return {space.denormalize(optimizer.best_point()), optimizer.best_value()};
}

}  // namespace

void CurriculumScheme::save_state(netgym::checkpoint::Snapshot&,
                                  const std::string&) const {}

void CurriculumScheme::load_state(const netgym::checkpoint::Snapshot&,
                                  const std::string&) {}

GenetScheme::GenetScheme(std::string baseline_name, SearchOptions options)
    : baseline_name_(std::move(baseline_name)), options_(options) {}

CurriculumScheme::Selection GenetScheme::select(
    const TaskAdapter& task, netgym::Policy& current_policy, int round,
    netgym::Rng& rng) {
  return bo_search(task, options_, rng, round, name(),
                   [&](const netgym::Config& config) {
                     return gap_to_baseline(task, current_policy,
                                            baseline_name_, config,
                                            options_.envs_per_eval, rng);
                   });
}

SelfPlayScheme::SelfPlayScheme(SearchOptions options) : options_(options) {}

CurriculumScheme::Selection SelfPlayScheme::select(
    const TaskAdapter& task, netgym::Policy& current_policy, int round,
    netgym::Rng& rng) {
  auto* mlp = dynamic_cast<rl::MlpPolicy*>(&current_policy);
  if (mlp == nullptr) {
    throw std::invalid_argument(
        "SelfPlayScheme: requires an rl::MlpPolicy current policy");
  }
  // Keep the best snapshot seen so far as the frozen reference.
  netgym::ConfigDistribution probe_dist(task.space());
  netgym::Rng probe_rng(rng.engine()());
  const double current_score =
      test_on_distribution(task, current_policy, probe_dist, 20, probe_rng);
  if (reference_params_.empty() || current_score >= reference_score_) {
    reference_params_ = mlp->snapshot();
    reference_score_ = current_score;
  }
  rl::TrainerOptions defaults;
  netgym::Rng init_rng(0);
  rl::MlpPolicy reference(task.obs_size(), task.action_count(),
                          defaults.hidden, init_rng);
  reference.restore(reference_params_);
  reference.set_greedy(true);

  return bo_search(task, options_, rng, round, name(),
                   [&](const netgym::Config& config) {
                     return gap_between(task, current_policy, reference,
                                        config, options_.envs_per_eval, rng);
                   });
}

void SelfPlayScheme::save_state(netgym::checkpoint::Snapshot& snap,
                                const std::string& prefix) const {
  snap.put_i64(prefix + "has_reference", reference_params_.empty() ? 0 : 1);
  snap.put_doubles(prefix + "reference_params", reference_params_);
  snap.put_double(prefix + "reference_score", reference_score_);
}

void SelfPlayScheme::load_state(const netgym::checkpoint::Snapshot& snap,
                                const std::string& prefix) {
  using netgym::checkpoint::CheckpointError;
  const std::int64_t has_reference = snap.get_i64(prefix + "has_reference");
  const std::vector<double>& params =
      snap.get_doubles(prefix + "reference_params");
  const double score = snap.get_double(prefix + "reference_score");
  if ((has_reference != 0) != !params.empty()) {
    throw CheckpointError(
        "SelfPlayScheme::load_state: has_reference inconsistent with stored "
        "parameters (" + prefix + ")");
  }
  reference_params_ = params;
  reference_score_ = score;
}

EnsembleGenetScheme::EnsembleGenetScheme(
    std::vector<std::string> baseline_names, SearchOptions options)
    : baseline_names_(std::move(baseline_names)), options_(options) {
  if (baseline_names_.empty()) {
    throw std::invalid_argument(
        "EnsembleGenetScheme: need at least one baseline");
  }
}

CurriculumScheme::Selection EnsembleGenetScheme::select(
    const TaskAdapter& task, netgym::Policy& current_policy, int round,
    netgym::Rng& rng) {
  return bo_search(
      task, options_, rng, round, name(), [&](const netgym::Config& config) {
        double max_gap = -1e300;
        for (const std::string& baseline : baseline_names_) {
          max_gap = std::max(
              max_gap, gap_to_baseline(task, current_policy, baseline, config,
                                       options_.envs_per_eval, rng));
        }
        return max_gap;
      });
}

HandcraftedScheme::HandcraftedScheme(std::string dimension, bool hard_is_low,
                                     int total_rounds)
    : dimension_(std::move(dimension)),
      hard_is_low_(hard_is_low),
      total_rounds_(std::max(total_rounds, 1)) {}

CurriculumScheme::Selection HandcraftedScheme::select(const TaskAdapter& task,
                                                      netgym::Policy&,
                                                      int round,
                                                      netgym::Rng&) {
  const netgym::ConfigSpace& space = task.space();
  const std::size_t dim = space.index_of(dimension_);
  // Progress 0 -> 1 over the rounds, from the easy end to the hard end; the
  // final round always lands exactly on the hard end (a one-round schedule
  // goes straight there).
  const double progress =
      total_rounds_ <= 1
          ? 1.0
          : std::clamp(static_cast<double>(round) /
                           static_cast<double>(total_rounds_ - 1),
                       0.0, 1.0);
  // Interpolate in the *normalized* unit cube, not in raw parameter space:
  // denormalize applies each dimension's log scaling and integer rounding, so
  // log-scale dims (e.g. max_bw_mbps, 2-1000) progress uniformly in log space
  // instead of being absurdly front-loaded, and the non-swept dims sit at the
  // true center (0.5) of the normalized box.
  std::vector<double> unit(space.dims(), 0.5);
  unit[dim] = hard_is_low_ ? 1.0 - progress : progress;
  return {space.denormalize(unit), progress};
}

BaselinePerformanceScheme::BaselinePerformanceScheme(std::string baseline_name,
                                                     SearchOptions options)
    : baseline_name_(std::move(baseline_name)), options_(options) {}

CurriculumScheme::Selection BaselinePerformanceScheme::select(
    const TaskAdapter& task, netgym::Policy&, int round, netgym::Rng& rng) {
  return bo_search(
      task, options_, rng, round, name(), [&](const netgym::Config& config) {
        // Maximize the *negated* baseline reward: environments where the rule
        // fares worst are considered hardest.
        double total = 0.0;
        for (int i = 0; i < options_.envs_per_eval; ++i) {
          auto env = task.make_env(config, rng);
          auto baseline = task.make_baseline(baseline_name_, *env);
          total += netgym::run_episode(*env, *baseline, rng).mean_reward;
        }
        return -total / options_.envs_per_eval;
      });
}

GapToOptimumScheme::GapToOptimumScheme(SearchOptions options)
    : options_(options) {}

CurriculumScheme::Selection GapToOptimumScheme::select(
    const TaskAdapter& task, netgym::Policy& current_policy, int round,
    netgym::Rng& rng) {
  return bo_search(task, options_, rng, round, name(),
                   [&](const netgym::Config& config) {
                     return gap_to_optimum(task, current_policy, config,
                                           options_.envs_per_eval, rng);
                   });
}

RobustifyScheme::RobustifyScheme(double rho, SearchOptions options)
    : rho_(rho), options_(options) {}

CurriculumScheme::Selection RobustifyScheme::select(
    const TaskAdapter& task, netgym::Policy& current_policy, int round,
    netgym::Rng& rng) {
  return bo_search(
      task, options_, rng, round, name(), [&](const netgym::Config& config) {
        const double regret = gap_to_optimum(task, current_policy, config,
                                             options_.envs_per_eval, rng);
        return regret - rho_ * task.config_non_smoothness(config, rng);
      });
}

CurriculumTrainer::CurriculumTrainer(const TaskAdapter& task,
                                     std::unique_ptr<CurriculumScheme> scheme,
                                     CurriculumOptions options)
    : task_(task),
      scheme_(std::move(scheme)),
      options_(options),
      trainer_(task.make_trainer(options.seed)),
      dist_(task.space()),
      rng_(options.seed ^ 0xc2b2ae3d27d4eb4fULL) {
  if (scheme_ == nullptr) {
    throw std::invalid_argument("CurriculumTrainer: scheme must not be null");
  }
  if (options_.rounds < 1 || options_.iters_per_round < 1) {
    throw std::invalid_argument("CurriculumTrainer: bad round counts");
  }
}

CurriculumRound CurriculumTrainer::run_round() {
  netgym::tracing::TraceSpan round_span("round", "genet", round_);
  CurriculumRound record;
  record.round = round_;

  // Step 1 (Algorithm 2 line 14): train on the current distribution.
  netgym::tracing::TraceSpan train_span("round.train", "genet", round_);
  const rl::EnvFactory factory = task_.factory_for(dist_);
  double reward_acc = 0.0;
  for (int i = 0; i < options_.iters_per_round; ++i) {
    reward_acc += trainer_->train_iteration(factory).mean_step_reward;
  }
  record.train_reward = reward_acc / options_.iters_per_round;
  train_span.end();

  // Step 2 (lines 5-11): search for the next configuration with the greedy
  // snapshot of the current policy.
  netgym::tracing::TraceSpan select_span("round.select", "genet", round_);
  rl::MlpPolicy& policy = trainer_->policy();
  const bool was_greedy = policy.greedy();
  policy.set_greedy(true);
  const CurriculumScheme::Selection selection =
      scheme_->select(task_, policy, round_, rng_);
  policy.set_greedy(was_greedy);
  select_span.end();
  record.promoted = selection.config;
  record.selection_score = selection.score;

  // Step 3 (line 13): promote the chosen configuration.
  dist_.promote(record.promoted, options_.promote_weight);
  ++round_;

  // Telemetry: one "round" event per curriculum round (the raw material of
  // Fig. 18-style training curves), emitted after all stochastic work so the
  // sink cannot perturb results.
  namespace tel = netgym::telemetry;
  tel::Registry::instance().counter("genet.rounds").add();
  tel::Registry::instance().gauge("genet.train_reward")
      .set(record.train_reward);
  if (tel::logging_enabled()) {
    // param_names gives readers of the JSONL stream the column labels for
    // the promoted/unit/config vectors, comma-joined (one per space dim).
    const netgym::ConfigSpace& space = task_.space();
    std::string param_names;
    for (std::size_t i = 0; i < space.dims(); ++i) {
      if (i > 0) param_names += ",";
      param_names += space.param(i).name;
    }
    tel::log_event("round", record.round,
                   {{"scheme", scheme_->name()},
                    {"train_reward", record.train_reward},
                    {"selection_score", record.selection_score},
                    {"promoted", record.promoted.values},
                    {"param_names", param_names},
                    {"uniform_weight", dist_.uniform_weight()}});
  }
  return record;
}

std::vector<CurriculumRound> CurriculumTrainer::run() {
  std::vector<CurriculumRound> records;
  if (round_ < options_.rounds) {
    records.reserve(static_cast<std::size_t>(options_.rounds - round_));
  }
  // Start from round_, not 0: a freshly constructed trainer runs the full
  // curriculum, a checkpoint-restored one runs exactly the remaining rounds.
  for (int r = round_; r < options_.rounds; ++r) {
    records.push_back(run_round());
  }
  return records;
}

void CurriculumTrainer::save_state(netgym::checkpoint::Snapshot& snap,
                                   const std::string& prefix) const {
  snap.put_string(prefix + "scheme", scheme_->name());
  snap.put_i64(prefix + "round", round_);
  snap.put_string(prefix + "rng", rng_.state());
  dist_.save_state(snap, prefix + "dist/");
  trainer_->save_state(snap, prefix + "trainer/");
  scheme_->save_state(snap, prefix + "scheme_state/");
}

void CurriculumTrainer::load_state(const netgym::checkpoint::Snapshot& snap,
                                   const std::string& prefix) {
  using netgym::checkpoint::CheckpointError;
  // Validation order puts everything fallible before the RL trainer's own
  // (internally transactional) load, so no mismatch can leave the trainer
  // partially updated.
  const std::string& scheme_name = snap.get_string(prefix + "scheme");
  if (scheme_name != scheme_->name()) {
    throw CheckpointError("CurriculumTrainer::load_state: snapshot is for "
                          "scheme '" + scheme_name + "', this trainer runs '" +
                          scheme_->name() + "'");
  }
  const std::int64_t round = snap.get_i64(prefix + "round");
  if (round < 0 || round > options_.rounds) {
    throw CheckpointError(
        "CurriculumTrainer::load_state: round index out of range (" + prefix +
        "round)");
  }
  netgym::Rng rng = rng_;
  try {
    rng.set_state(snap.get_string(prefix + "rng"));
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(std::string("CurriculumTrainer::load_state: ") +
                          e.what() + " (" + prefix + "rng)");
  }
  netgym::ConfigDistribution dist = dist_;
  dist.load_state(snap, prefix + "dist/");
  scheme_->load_state(snap, prefix + "scheme_state/");
  trainer_->load_state(snap, prefix + "trainer/");

  rng_ = rng;
  dist_ = std::move(dist);
  round_ = static_cast<int>(round);
}

void CurriculumTrainer::save_checkpoint(const std::string& path) const {
  netgym::checkpoint::Snapshot snap;
  save_state(snap, "");
  netgym::checkpoint::write_file(snap, path);
}

void CurriculumTrainer::load_checkpoint(const std::string& path) {
  const netgym::checkpoint::Snapshot snap = netgym::checkpoint::read_file(path);
  load_state(snap, "");
}

std::unique_ptr<rl::ActorCriticBase> train_traditional(
    const TaskAdapter& task, int iterations, std::uint64_t seed) {
  netgym::ConfigDistribution dist(task.space());
  return train_traditional(task, dist, iterations, seed);
}

std::unique_ptr<rl::ActorCriticBase> train_traditional(
    const TaskAdapter& task, const netgym::ConfigDistribution& dist,
    int iterations, std::uint64_t seed) {
  if (iterations < 1) {
    throw std::invalid_argument("train_traditional: iterations must be >= 1");
  }
  std::unique_ptr<rl::ActorCriticBase> trainer = task.make_trainer(seed);
  const rl::EnvFactory factory = task.factory_for(dist);
  for (int i = 0; i < iterations; ++i) {
    trainer->train_iteration(factory);
  }
  return trainer;
}

namespace {
TrainModelHook g_train_model_hook;
}  // namespace

void set_train_model_hook(TrainModelHook hook) {
  g_train_model_hook = std::move(hook);
}

bool train_model_hook_installed() {
  return static_cast<bool>(g_train_model_hook);
}

std::vector<std::vector<double>> run_train_model_hook(
    const std::vector<TrainModelRequest>& requests) {
  return g_train_model_hook(requests);
}

std::vector<double> train_model_for_request(const TrainModelRequest& request) {
  const std::unique_ptr<TaskAdapter> task =
      make_adapter_from_spec(request.adapter_spec);
  return train_traditional(*task, request.iterations, request.seed)
      ->policy()
      .snapshot();
}

}  // namespace genet
