#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bo/search.hpp"
#include "genet/adapter.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/config.hpp"
#include "rl/trainer.hpp"

namespace genet {

/// A curriculum scheme decides which environment configuration to promote
/// into the training distribution next. Genet's scheme and the paper's
/// alternative curricula (CL1/CL2/CL3, S5.5) and the Robustify-style BO
/// criterion (Fig. 19) all implement this interface, so the curriculum
/// trainer below can run any of them.
class CurriculumScheme {
 public:
  virtual ~CurriculumScheme() = default;
  virtual std::string name() const = 0;

  /// Result of a curriculum-selection step: the configuration to promote and
  /// the value of the scheme's criterion there (gap-to-baseline for Genet).
  struct Selection {
    netgym::Config config;
    double score = 0.0;
  };

  /// Choose the next configuration given the current RL policy. `round` is
  /// the 0-based curriculum round (used by schedule-based schemes).
  virtual Selection select(const TaskAdapter& task,
                           netgym::Policy& current_policy, int round,
                           netgym::Rng& rng) = 0;

  /// Checkpoint hooks for schemes that carry state across rounds (only
  /// SelfPlayScheme today). The defaults are no-ops so stateless schemes
  /// need nothing; CurriculumTrainer calls these under its "scheme_state/"
  /// prefix when saving/restoring a run.
  virtual void save_state(netgym::checkpoint::Snapshot& snap,
                          const std::string& prefix) const;
  virtual void load_state(const netgym::checkpoint::Snapshot& snap,
                          const std::string& prefix);
};

/// Knobs of the BO-driven schemes.
struct SearchOptions {
  int bo_trials = 15;    ///< Algorithm 2's NBoTrials
  int envs_per_eval = 10;  ///< Algorithm 2's NTests (k envs per gap estimate)
};

/// Genet's sequencing module (S4.2): restart a Bayesian-optimization search
/// over the configuration space and return the configuration with the
/// largest estimated gap-to-baseline for the current model.
class GenetScheme : public CurriculumScheme {
 public:
  GenetScheme(std::string baseline_name, SearchOptions options = {});

  std::string name() const override { return "genet"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

  const std::string& baseline_name() const { return baseline_name_; }

 private:
  std::string baseline_name_;
  SearchOptions options_;
};

/// The "ensemble of rule-based heuristics" refinement the paper proposes in
/// footnote 6 and S7: an environment's score is the MAXIMUM gap to any of a
/// set of baselines, so environments where the policy trails *any* known
/// rule get promoted. Mitigates the blind spot of a single weak baseline
/// (e.g. Cubic under random loss).
class EnsembleGenetScheme : public CurriculumScheme {
 public:
  EnsembleGenetScheme(std::vector<std::string> baseline_names,
                      SearchOptions options = {});

  std::string name() const override { return "genet_ensemble"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

 private:
  std::vector<std::string> baseline_names_;
  SearchOptions options_;
};

/// S7's third fallback when no rule-based baseline exists: treat a frozen
/// snapshot of the RL policy itself as the baseline (in the spirit of the
/// two-competing-models scheme of [12]). The scheme keeps the
/// best-performing snapshot seen so far as the reference and promotes
/// configurations where the current policy falls furthest behind it --
/// i.e. where training has regressed or never caught up.
class SelfPlayScheme : public CurriculumScheme {
 public:
  explicit SelfPlayScheme(SearchOptions options = {});

  std::string name() const override { return "selfplay"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

  /// Probe reward of the stored reference snapshot (for tests/diagnostics).
  double reference_score() const { return reference_score_; }

  /// Persist/restore the frozen reference snapshot and its probe score, so a
  /// resumed self-play curriculum keeps competing against the same opponent.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  SearchOptions options_;
  std::vector<double> reference_params_;
  double reference_score_ = -1e300;
};

/// CL1 (S5.5): handcrafted difficulty schedule. One designated dimension of
/// the configuration space moves from its easy end to its hard end over the
/// curriculum rounds (e.g. bandwidth-change interval from long to short);
/// all other dimensions stay at their midpoints.
class HandcraftedScheme : public CurriculumScheme {
 public:
  /// `hard_is_low`: the hard end of `dimension` is its lower bound.
  HandcraftedScheme(std::string dimension, bool hard_is_low, int total_rounds);

  std::string name() const override { return "cl1_handcrafted"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

 private:
  std::string dimension_;
  bool hard_is_low_;
  int total_rounds_;
};

/// CL2 (S5.5): promote environments where the rule-based baseline itself
/// performs badly (BO minimizes the baseline's reward). Knows nothing about
/// the current RL model.
class BaselinePerformanceScheme : public CurriculumScheme {
 public:
  BaselinePerformanceScheme(std::string baseline_name,
                            SearchOptions options = {});

  std::string name() const override { return "cl2_baseline_perf"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

 private:
  std::string baseline_name_;
  SearchOptions options_;
};

/// CL3 / Strawman 3 (S3, S5.5): promote environments with the largest gap
/// between the current RL model and the ground-truth optimum.
class GapToOptimumScheme : public CurriculumScheme {
 public:
  explicit GapToOptimumScheme(SearchOptions options = {});

  std::string name() const override { return "cl3_gap_to_optimum"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

 private:
  SearchOptions options_;
};

/// Robustify-style criterion (Fig. 19): BO maximizes
/// (optimal - RL reward) - rho * bandwidth non-smoothness, i.e. adversarial
/// regret penalized by trace roughness, following [19] as described in A.6.
class RobustifyScheme : public CurriculumScheme {
 public:
  explicit RobustifyScheme(double rho, SearchOptions options = {});

  std::string name() const override { return "robustify_bo"; }
  Selection select(const TaskAdapter& task, netgym::Policy& current_policy,
                   int round, netgym::Rng& rng) override;

 private:
  double rho_;
  SearchOptions options_;
};

/// Options of the curriculum training loop (Algorithm 2).
struct CurriculumOptions {
  int rounds = 9;              ///< paper: distribution changes 9 times
  int iters_per_round = 10;    ///< Train() iterations between selections
  double promote_weight = 0.3; ///< w: weight of each newly added config
  std::uint64_t seed = 1;
};

/// Reward trajectory entry: test reward of the greedy policy measured after
/// each training iteration block (for Fig. 18-style training curves).
struct CurriculumRound {
  int round = 0;
  netgym::Config promoted;
  double selection_score = 0.0;  ///< gap/criterion value of the chosen config
  double train_reward = 0.0;     ///< mean episode reward during training
};

/// Algorithm 2: alternate RL training on the current distribution with
/// curriculum selection and promotion. Works for any CurriculumScheme; with
/// GenetScheme this is Genet end-to-end.
class CurriculumTrainer : public netgym::checkpoint::Serializable {
 public:
  CurriculumTrainer(const TaskAdapter& task,
                    std::unique_ptr<CurriculumScheme> scheme,
                    CurriculumOptions options = {});

  /// Run the curriculum from the current round (0 for a fresh trainer, the
  /// snapshot's round after `load_checkpoint`) to `options.rounds`; returns
  /// the records of the rounds executed by this call.
  std::vector<CurriculumRound> run();

  /// Run one round (train + select + promote); exposed for step-by-step
  /// experiment harnesses.
  CurriculumRound run_round();

  rl::ActorCriticBase& trainer() { return *trainer_; }
  rl::MlpPolicy& policy() { return trainer_->policy(); }
  const netgym::ConfigDistribution& distribution() const { return dist_; }
  int rounds_completed() const { return round_; }

  /// Checkpoint hooks covering the whole curriculum run: scheme identity
  /// (validated on load), round index, curriculum RNG, training
  /// distribution, RL trainer, and scheme state. A defect anywhere throws
  /// CheckpointError with the RL trainer guaranteed untouched.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

  /// Write/read a whole-run snapshot via the crash-safe file format. A run
  /// killed between rounds resumes bit-identically: load the checkpoint into
  /// a freshly constructed trainer (same task/scheme/options) and call
  /// `run()` to execute the remaining rounds.
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

 private:
  const TaskAdapter& task_;
  std::unique_ptr<CurriculumScheme> scheme_;
  CurriculumOptions options_;
  std::unique_ptr<rl::ActorCriticBase> trainer_;
  netgym::ConfigDistribution dist_;
  netgym::Rng rng_;
  int round_ = 0;
};

/// Traditional RL training (Algorithm 1): uniform sampling from a fixed
/// configuration space for `iterations`. Returns the trainer for testing.
std::unique_ptr<rl::ActorCriticBase> train_traditional(
    const TaskAdapter& task, int iterations, std::uint64_t seed);

/// Traditional RL training over an explicit distribution (e.g. trace+synth
/// mixes for Fig. 12).
std::unique_ptr<rl::ActorCriticBase> train_traditional(
    const TaskAdapter& task, const netgym::ConfigDistribution& dist,
    int iterations, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Distributed baseline-training hook (DESIGN.md S5i)
// ---------------------------------------------------------------------------

/// Declarative form of one traditional-RL training run. The adapter spec,
/// iteration count, and seed fully determine the resulting parameters
/// (training is single-process deterministic and thread-count invariant),
/// so a worker process can recompute them anywhere.
struct TrainModelRequest {
  std::string adapter_spec;  ///< TaskAdapter::dist_spec()
  int iterations = 0;
  std::uint64_t seed = 1;
};

/// Parameter snapshots in request order; implementations throw on failure.
using TrainModelHook = std::function<std::vector<std::vector<double>>(
    const std::vector<TrainModelRequest>&)>;

/// Install (nullptr: remove) the process-wide distributed training hook;
/// ModelZoo::get_or_train_batch routes its cache misses through it.
/// dist::Coordinator::install_hooks is the only production caller.
void set_train_model_hook(TrainModelHook hook);
bool train_model_hook_installed();

/// Invoke the installed hook (precondition: train_model_hook_installed()).
std::vector<std::vector<double>> run_train_model_hook(
    const std::vector<TrainModelRequest>& requests);

/// Local / worker-side implementation of one request: rebuild the adapter
/// from its spec, run train_traditional, snapshot the trained policy. The
/// hook path and the local fallback both land here, so they cannot drift.
std::vector<double> train_model_for_request(const TrainModelRequest& request);

}  // namespace genet
