#include "genet/robustify.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "abr/env.hpp"
#include "abr/optimal.hpp"
#include "genet/curriculum.hpp"

namespace genet {

namespace {

using abr::AbrEnv;

constexpr double kRttS = 0.08;
constexpr double kMaxBufferS = 60.0;

double level_bw(const RobustifyOptions& options, int action) {
  const double u = options.bw_levels > 1
                       ? static_cast<double>(action) / (options.bw_levels - 1)
                       : 0.5;
  return options.min_bw_mbps *
         std::pow(options.max_bw_mbps / options.min_bw_mbps, u);
}

/// Co-simulation environment in which the AGENT is the adversary: each step
/// sets the link bandwidth for the next chunk, the frozen victim policy
/// picks a bitrate, and at the session's end the adversary is paid the
/// victim's regret against the offline optimal minus the smoothness
/// penalty (Appendix A.6).
class AdversaryEnv : public netgym::Env {
 public:
  static constexpr int kObsSize = 6;

  // The victim is copied, not referenced: envs are stepped concurrently by
  // the parallel rollout engine and MlpPolicy::act mutates the net's forward
  // cache. The victim's parameters are frozen while the adversary trains, so
  // a per-env copy behaves identically to the shared original.
  AdversaryEnv(const rl::MlpPolicy& victim, const RobustifyOptions& options,
               std::uint64_t seed)
      : victim_(victim),
        options_(options),
        video_(options.video_length_s, options.chunk_length_s, seed),
        video_seed_(seed),
        rng_(seed ^ 0x5851f42d4c957f2dULL) {}

  netgym::Observation reset() override {
    clock_s_ = 0.0;
    buffer_s_ = 0.0;
    chunk_ = 0;
    last_bitrate_ = 0;
    started_ = false;
    done_ = false;
    last_bw_ = 0.0;
    last_delay_s_ = 0.0;
    last_victim_reward_ = 0.0;
    victim_total_ = 0.0;
    smoothness_penalty_ = 0.0;
    thpt_hist_.assign(AbrEnv::kThroughputHistory, 0.0);
    delay_hist_.assign(AbrEnv::kThroughputHistory, 0.0);
    segment_starts_.clear();
    segment_bw_.clear();
    return make_observation();
  }

  StepResult step(int action) override {
    if (done_) throw std::logic_error("AdversaryEnv::step: episode finished");
    if (action < 0 || action >= options_.bw_levels) {
      throw std::invalid_argument("AdversaryEnv::step: action out of range");
    }
    const double bw = level_bw(options_, action);
    if (started_) smoothness_penalty_ += std::abs(bw - last_bw_);
    segment_starts_.push_back(clock_s_);
    segment_bw_.push_back(bw);

    // The frozen victim chooses the bitrate for this chunk.
    const int bitrate = victim_.act(victim_observation(), rng_);
    const double bits = video_.chunk_size_bits(chunk_, bitrate);
    const double delay = bits / (bw * 1e6) + kRttS;

    const double rebuffer = std::max(delay - buffer_s_, 0.0);
    buffer_s_ = std::max(buffer_s_ - delay, 0.0) + options_.chunk_length_s;
    clock_s_ += delay;
    if (buffer_s_ > kMaxBufferS) {
      clock_s_ += buffer_s_ - kMaxBufferS;
      buffer_s_ = kMaxBufferS;
    }
    const double change =
        started_ ? std::abs(abr::bitrate_mbps(bitrate) -
                            abr::bitrate_mbps(last_bitrate_))
                 : 0.0;
    last_victim_reward_ =
        abr::bitrate_mbps(bitrate) - 10.0 * rebuffer - change;
    victim_total_ += last_victim_reward_;

    // Update the victim's history features the way AbrEnv would.
    thpt_hist_.erase(thpt_hist_.begin());
    thpt_hist_.push_back(bits / 1e6 / std::max(delay, 1e-6));
    delay_hist_.erase(delay_hist_.begin());
    delay_hist_.push_back(delay);

    last_bw_ = bw;
    last_delay_s_ = delay;
    last_bitrate_ = bitrate;
    started_ = true;
    ++chunk_;
    done_ = chunk_ >= video_.num_chunks();

    StepResult result;
    result.done = done_;
    result.reward = done_ ? terminal_objective() : 0.0;
    result.observation = make_observation();
    return result;
  }

  int action_count() const override { return options_.bw_levels; }
  std::size_t observation_size() const override { return kObsSize; }

  /// The bandwidth trace the adversary produced this episode (valid after
  /// the episode finished).
  netgym::Trace built_trace() const {
    netgym::Trace trace;
    double last = -1.0;
    for (std::size_t i = 0; i < segment_starts_.size(); ++i) {
      const double stamp = std::max(segment_starts_[i], last + 1e-4);
      trace.timestamps_s.push_back(stamp);
      trace.bandwidth_mbps.push_back(segment_bw_[i]);
      last = stamp;
    }
    // Hold the final bandwidth well past the session so the offline optimal
    // never wraps around within its planning horizon.
    trace.timestamps_s.push_back(last + 2 * options_.video_length_s + 120.0);
    trace.bandwidth_mbps.push_back(segment_bw_.empty() ? 1.0
                                                       : segment_bw_.back());
    trace.validate();
    return trace;
  }

  double terminal_objective() const {
    // Offline optimal on the exact conditions the victim experienced.
    abr::AbrEnvConfig config;
    config.video_length_s = options_.video_length_s;
    config.chunk_length_s = options_.chunk_length_s;
    config.max_buffer_s = kMaxBufferS;
    config.min_rtt_ms = kRttS * 1000.0;
    AbrEnv env(config, built_trace(), video_seed_);
    const double optimal = abr::offline_optimal(env, 24).total_reward;
    const int chunks = video_.num_chunks();
    const double mean_unsmoothness =
        chunks > 1 ? smoothness_penalty_ / (chunks - 1) : 0.0;
    return (optimal - victim_total_) / chunks -
           options_.rho * mean_unsmoothness;
  }

 private:
  netgym::Observation victim_observation() const {
    netgym::Observation obs(AbrEnv::kObsSize, 0.0);
    obs[AbrEnv::kObsLastBitrate] =
        static_cast<double>(last_bitrate_) / (abr::kBitrateCount - 1);
    obs[AbrEnv::kObsBuffer] = buffer_s_ / 30.0;
    for (int i = 0; i < AbrEnv::kThroughputHistory; ++i) {
      obs[AbrEnv::kObsThroughputHist + i] = std::log10(1.0 + thpt_hist_[i]);
      obs[AbrEnv::kObsDelayHist + i] = std::log10(1.0 + delay_hist_[i]);
    }
    const int chunk = std::min(chunk_, video_.num_chunks() - 1);
    for (int b = 0; b < abr::kBitrateCount; ++b) {
      obs[AbrEnv::kObsNextSizes + b] = video_.chunk_size_bits(chunk, b) / 8e6;
    }
    obs[AbrEnv::kObsRemaining] =
        static_cast<double>(video_.num_chunks() - chunk_) /
        video_.num_chunks();
    obs[AbrEnv::kObsChunkLength] = options_.chunk_length_s / 10.0;
    obs[AbrEnv::kObsMinRtt] = kRttS;
    obs[AbrEnv::kObsMaxBuffer] = kMaxBufferS / 100.0;
    return obs;
  }

  netgym::Observation make_observation() const {
    netgym::Observation obs(kObsSize, 0.0);
    obs[0] = std::log10(1.0 + last_bw_);
    obs[1] = static_cast<double>(last_bitrate_) / (abr::kBitrateCount - 1);
    obs[2] = buffer_s_ / 30.0;
    obs[3] = static_cast<double>(video_.num_chunks() - chunk_) /
             video_.num_chunks();
    obs[4] = std::log10(1.0 + last_delay_s_);
    obs[5] = last_victim_reward_ / 5.0;
    return obs;
  }

  rl::MlpPolicy victim_;
  const RobustifyOptions options_;
  abr::Video video_;
  std::uint64_t video_seed_;
  mutable netgym::Rng rng_;
  double clock_s_ = 0.0;
  double buffer_s_ = 0.0;
  int chunk_ = 0;
  int last_bitrate_ = 0;
  bool started_ = false;
  bool done_ = true;
  double last_bw_ = 0.0;
  double last_delay_s_ = 0.0;
  double last_victim_reward_ = 0.0;
  double victim_total_ = 0.0;
  double smoothness_penalty_ = 0.0;
  std::vector<double> thpt_hist_;
  std::vector<double> delay_hist_;
  std::vector<double> segment_starts_;
  std::vector<double> segment_bw_;
};

}  // namespace

AbrAdversary::AbrAdversary(rl::MlpPolicy& victim, RobustifyOptions options,
                           std::uint64_t seed)
    : victim_(victim), options_(options) {
  if (options_.bw_levels < 2 || options_.min_bw_mbps <= 0 ||
      options_.max_bw_mbps <= options_.min_bw_mbps) {
    throw std::invalid_argument("AbrAdversary: invalid options");
  }
  rl::TrainerOptions trainer_options;
  trainer_options.hidden = {16, 16};
  trainer_options.gamma = 1.0;  // terminal-only objective
  trainer_options.episodes_per_iteration = 8;
  trainer_ = std::make_unique<rl::A2CTrainer>(AdversaryEnv::kObsSize,
                                              options_.bw_levels,
                                              trainer_options, seed);
}

void AbrAdversary::train() {
  const bool was_greedy = victim_.greedy();
  victim_.set_greedy(true);  // attack the deployed (greedy) behaviour
  const rl::EnvFactory factory = [this](netgym::Rng& rng) {
    return std::make_unique<AdversaryEnv>(victim_, options_, rng.engine()());
  };
  for (int i = 0; i < options_.adversary_iters; ++i) {
    const rl::IterationStats stats = trainer_->train_iteration(factory);
    last_objective_ = stats.mean_episode_reward;
  }
  victim_.set_greedy(was_greedy);
}

void AbrAdversary::save_state(netgym::checkpoint::Snapshot& snap,
                              const std::string& prefix) const {
  trainer_->save_state(snap, prefix + "trainer/");
  snap.put_double(prefix + "last_objective", last_objective_);
}

void AbrAdversary::load_state(const netgym::checkpoint::Snapshot& snap,
                              const std::string& prefix) {
  const double last_objective = snap.get_double(prefix + "last_objective");
  trainer_->load_state(snap, prefix + "trainer/");
  last_objective_ = last_objective;
}

netgym::Trace AbrAdversary::generate(netgym::Rng& rng) {
  const bool was_greedy = victim_.greedy();
  victim_.set_greedy(true);
  AdversaryEnv env(victim_, options_, rng.engine()());
  netgym::Observation obs = env.reset();
  bool done = false;
  while (!done) {
    // Sample (not argmax) so repeated calls yield diverse traces.
    const int action = trainer_->policy().act(obs, rng);
    const auto result = env.step(action);
    obs = result.observation;
    done = result.done;
  }
  victim_.set_greedy(was_greedy);
  return env.built_trace();
}

std::unique_ptr<rl::ActorCriticBase> robustify_train(
    int space_id, int pretrain_iters, int retrain_iters, int alternations,
    RobustifyOptions options, std::uint64_t seed) {
  if (alternations < 1) {
    throw std::invalid_argument("robustify_train: alternations must be >= 1");
  }
  AbrAdapter plain(space_id);
  auto trainer = genet::train_traditional(plain, pretrain_iters, seed);
  netgym::Rng rng(seed ^ 0x2545f4914f6cdd1dULL);

  for (int round = 0; round < alternations; ++round) {
    AbrAdversary adversary(trainer->policy(), options, seed + round);
    adversary.train();

    // Mix a batch of adversarial traces into the training distribution.
    TraceMixOptions mix;
    for (int i = 0; i < 20; ++i) mix.corpus.push_back(adversary.generate(rng));
    AbrAdapter mixed(space_id, std::move(mix));
    const netgym::ConfigDistribution dist(mixed.space());
    const rl::EnvFactory factory = mixed.factory_for(dist);
    for (int i = 0; i < retrain_iters; ++i) trainer->train_iteration(factory);
  }
  return trainer;
}

}  // namespace genet
