#pragma once

#include <memory>
#include <vector>

#include "genet/adapter.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/trace.hpp"
#include "rl/policy.hpp"
#include "rl/trainer.hpp"

namespace genet {

/// Reimplementation of "Robustifying network protocols with adversarial
/// examples" [19] as the paper describes it in Appendix A.6: a second RL
/// model (the adversary) generates bandwidth traces chunk by chunk while
/// observing the ABR agent's state, maximizing the gap between the offline
/// optimal and the agent's reward, penalized by trace non-smoothness. The
/// adversarial traces are then mixed into the agent's training.
struct RobustifyOptions {
  double rho = 1.0;           ///< non-smoothness penalty weight (A.6)
  int bw_levels = 12;         ///< discrete bandwidth actions (log-spaced)
  double min_bw_mbps = 0.2;
  double max_bw_mbps = 20.0;
  int adversary_iters = 150;  ///< trainer iterations for the generator
  double video_length_s = 120.0;
  double chunk_length_s = 4.0;
};

/// The adversarial bandwidth generator. Each episode co-simulates one video
/// session: per chunk, the adversary picks the link bandwidth the ABR agent
/// will see, the (frozen) agent picks a bitrate, and at the end of the
/// session the adversary receives
///     (optimal - agent reward) / chunks - rho * mean |delta bandwidth|.
class AbrAdversary : public netgym::checkpoint::Serializable {
 public:
  /// `victim` is the frozen ABR policy being attacked (greedy decisions).
  AbrAdversary(rl::MlpPolicy& victim, RobustifyOptions options,
               std::uint64_t seed);

  /// Train the generator against the frozen victim.
  void train();

  /// Sample one adversarial bandwidth trace from the trained generator (it
  /// replays a victim session internally to condition on agent state).
  netgym::Trace generate(netgym::Rng& rng);

  /// Mean terminal objective (regret minus smoothness penalty) over the
  /// last training iteration; exposed for tests and diagnostics.
  double last_objective() const { return last_objective_; }

  const RobustifyOptions& options() const { return options_; }

  /// Checkpoint hooks: the adversary's durable state is its generator
  /// trainer plus the last-objective diagnostic (the frozen victim is
  /// external and restored by whoever owns it).
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  rl::MlpPolicy& victim_;
  RobustifyOptions options_;
  std::unique_ptr<rl::A2CTrainer> trainer_;
  double last_objective_ = 0.0;
};

/// The full Robustify training pipeline (Fig. 19's "Robustify" bar):
/// pretrain the agent traditionally, then alternate adversary training and
/// agent retraining with adversarial traces mixed into the distribution.
/// Returns the retrained agent's trainer.
std::unique_ptr<rl::ActorCriticBase> robustify_train(
    int space_id, int pretrain_iters, int retrain_iters, int alternations,
    RobustifyOptions options, std::uint64_t seed);

}  // namespace genet
