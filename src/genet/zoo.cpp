#include "genet/zoo.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "genet/curriculum.hpp"

namespace genet {

namespace {

std::string default_directory() {
  if (const char* dir = std::getenv("GENET_MODEL_DIR")) return dir;
  return "genet_models";
}

std::string sanitize(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

ModelZoo::ModelZoo() : directory_(default_directory()) {}

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {}

std::string ModelZoo::path_for(const std::string& key) const {
  return directory_ + "/" + sanitize(key) + ".model";
}

bool ModelZoo::contains(const std::string& key) const {
  return std::filesystem::exists(path_for(key));
}

void ModelZoo::put(const std::string& key, const std::vector<double>& params) {
  std::filesystem::create_directories(directory_);
  const std::string path = path_for(key);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ModelZoo: cannot write " + path);
  out.precision(17);
  out << params.size() << "\n";
  for (double p : params) out << p << "\n";
}

std::vector<double> ModelZoo::get(const std::string& key) const {
  const std::string path = path_for(key);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ModelZoo: cannot read " + path);
  std::size_t n = 0;
  in >> n;
  std::vector<double> params(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(in >> params[i])) {
      throw std::runtime_error("ModelZoo: truncated model file " + path);
    }
  }
  return params;
}

std::vector<double> ModelZoo::get_or_train(
    const std::string& key,
    const std::function<std::vector<double>()>& train) {
  if (contains(key)) return get(key);
  std::vector<double> params = train();
  put(key, params);
  return params;
}

std::vector<std::vector<double>> ModelZoo::get_or_train_batch(
    const std::vector<TrainSpec>& specs) {
  std::vector<std::vector<double>> results(specs.size());
  std::vector<std::size_t> misses;
  std::vector<TrainModelRequest> requests;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (contains(specs[i].key)) {
      results[i] = get(specs[i].key);
    } else {
      misses.push_back(i);
      requests.push_back(TrainModelRequest{specs[i].adapter_spec,
                                           specs[i].iterations,
                                           specs[i].seed});
    }
  }
  if (misses.empty()) return results;
  std::vector<std::vector<double>> trained;
  if (train_model_hook_installed()) {
    trained = run_train_model_hook(requests);
    if (trained.size() != requests.size()) {
      throw std::runtime_error("ModelZoo: train hook returned " +
                               std::to_string(trained.size()) +
                               " results for " +
                               std::to_string(requests.size()) + " requests");
    }
  } else {
    trained.reserve(requests.size());
    for (const TrainModelRequest& request : requests) {
      trained.push_back(train_model_for_request(request));
    }
  }
  for (std::size_t j = 0; j < misses.size(); ++j) {
    put(specs[misses[j]].key, trained[j]);
    results[misses[j]] = std::move(trained[j]);
  }
  return results;
}

}  // namespace genet
