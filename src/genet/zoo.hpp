#pragma once

#include <functional>
#include <string>
#include <vector>

namespace genet {

/// Tiny on-disk cache of trained policy parameters, shared by the benchmark
/// harnesses so that, e.g., the Genet-trained ABR policy used by Fig. 9 is
/// trained once and reused by Figs. 10, 13, 15 and 17. Keys are canonical
/// strings (task + method + seed + budget); values are flat parameter
/// vectors. The directory defaults to ./genet_models and can be overridden
/// with the GENET_MODEL_DIR environment variable. Training is deterministic
/// from the seed, so a cold cache reproduces identical parameters.
class ModelZoo {
 public:
  ModelZoo();
  explicit ModelZoo(std::string directory);

  /// Load the cached parameters for `key`, or invoke `train`, cache its
  /// result, and return it.
  std::vector<double> get_or_train(
      const std::string& key,
      const std::function<std::vector<double>()>& train);

  bool contains(const std::string& key) const;
  void put(const std::string& key, const std::vector<double>& params);
  std::vector<double> get(const std::string& key) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string path_for(const std::string& key) const;
  std::string directory_;
};

}  // namespace genet
