#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace genet {

/// Tiny on-disk cache of trained policy parameters, shared by the benchmark
/// harnesses so that, e.g., the Genet-trained ABR policy used by Fig. 9 is
/// trained once and reused by Figs. 10, 13, 15 and 17. Keys are canonical
/// strings (task + method + seed + budget); values are flat parameter
/// vectors. The directory defaults to ./genet_models and can be overridden
/// with the GENET_MODEL_DIR environment variable. Training is deterministic
/// from the seed, so a cold cache reproduces identical parameters.
class ModelZoo {
 public:
  ModelZoo();
  explicit ModelZoo(std::string directory);

  /// Load the cached parameters for `key`, or invoke `train`, cache its
  /// result, and return it.
  std::vector<double> get_or_train(
      const std::string& key,
      const std::function<std::vector<double>()>& train);

  /// One spec-describable traditional-RL training: the cache key plus the
  /// declarative inputs (TaskAdapter::dist_spec(), iterations, seed) that
  /// fully determine the trained parameters.
  struct TrainSpec {
    std::string key;
    std::string adapter_spec;
    int iterations = 0;
    std::uint64_t seed = 1;
  };

  /// Batch form of get_or_train for spec-describable trainings: cached keys
  /// load from disk; the misses train -- through the distributed worker pool
  /// when a train-model hook is installed (genet::set_train_model_hook),
  /// in-process otherwise -- and are cached. Results are in spec order and
  /// identical either way, because workers and the local path share
  /// train_model_for_request.
  std::vector<std::vector<double>> get_or_train_batch(
      const std::vector<TrainSpec>& specs);

  bool contains(const std::string& key) const;
  void put(const std::string& key, const std::vector<double>& params);
  std::vector<double> get(const std::string& key) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string path_for(const std::string& key) const;
  std::string directory_;
};

}  // namespace genet
