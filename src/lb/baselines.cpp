#include "lb/baselines.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace lb {

namespace {

/// Index of the minimum over `kNumServers` observation entries starting at
/// `base`.
int argmin_slice(const netgym::Observation& obs, int base) {
  int best = 0;
  for (int i = 1; i < kNumServers; ++i) {
    if (obs[base + i] < obs[base + best]) best = i;
  }
  return best;
}

}  // namespace

int LlfPolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  return argmin_slice(obs, LbEnv::kObsWork);
}

int ShortestCompletionPolicy::act(const netgym::Observation& obs,
                                  netgym::Rng&) {
  const double job_bytes = obs[LbEnv::kObsJobSize] * 10000.0;
  int best = 0;
  double best_completion = 1e18;
  for (int i = 0; i < kNumServers; ++i) {
    const double work_s = obs[LbEnv::kObsWork + i] * 10.0;
    const double rate = std::max(obs[LbEnv::kObsRates + i] * 10000.0, 1e-6);
    const double completion = work_s + job_bytes / rate;
    if (completion < best_completion) {
      best_completion = completion;
      best = i;
    }
  }
  return best;
}

int LeastRequestsPolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  return argmin_slice(obs, LbEnv::kObsCount);
}

PowerOfTwoPolicy::PowerOfTwoPolicy(int d) : d_(d) {
  if (d < 1 || d > lb::kNumServers) {
    throw std::invalid_argument("PowerOfTwoPolicy: d out of range");
  }
}

int PowerOfTwoPolicy::act(const netgym::Observation& obs, netgym::Rng& rng) {
  // Sample d distinct servers (partial Fisher-Yates), pick the least loaded.
  std::array<int, kNumServers> ids{};
  for (int i = 0; i < kNumServers; ++i) ids[static_cast<std::size_t>(i)] = i;
  int best = -1;
  for (int i = 0; i < d_; ++i) {
    const int j = rng.uniform_int(i, kNumServers - 1);
    std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
    const int candidate = ids[static_cast<std::size_t>(i)];
    if (best < 0 ||
        obs[LbEnv::kObsWork + candidate] < obs[LbEnv::kObsWork + best]) {
      best = candidate;
    }
  }
  return best;
}

int RandomLbPolicy::act(const netgym::Observation&, netgym::Rng& rng) {
  return rng.uniform_int(0, kNumServers - 1);
}

int NaiveLbPolicy::act(const netgym::Observation& obs, netgym::Rng&) {
  int worst = 0;
  for (int i = 1; i < kNumServers; ++i) {
    if (obs[LbEnv::kObsWork + i] > obs[LbEnv::kObsWork + worst]) worst = i;
  }
  return worst;
}

int OracleLbPolicy::act(const netgym::Observation&, netgym::Rng&) {
  const double job_bytes = env_.current_job_bytes();
  int best = 0;
  double best_completion = 1e18;
  for (int i = 0; i < kNumServers; ++i) {
    const double completion = env_.true_queued_work_s(i) +
                              job_bytes / env_.server_rate_bytes_per_s(i);
    if (completion < best_completion) {
      best_completion = completion;
      best = i;
    }
  }
  return best;
}

}  // namespace lb
