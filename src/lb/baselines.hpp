#pragma once

#include <memory>

#include "lb/env.hpp"
#include "netgym/env.hpp"

namespace lb {

/// Least-load-first (LLF), the paper's rule-based LB baseline: assign the
/// job to the server with the least queued work as shown in the observation.
class LlfPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<LlfPolicy>(*this);
  }
};

/// Shortest-completion-first ("shortest-job-first" in S4.3): pick the server
/// minimizing this job's completion time, queued work + size / rate, using
/// the observed state.
class ShortestCompletionPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<ShortestCompletionPolicy>(*this);
  }
};

/// Fewest outstanding requests (join-shortest-queue by count).
class LeastRequestsPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<LeastRequestsPolicy>(*this);
  }
};

/// Power-of-d-choices (JSQ(d)): sample d servers uniformly and assign to
/// the least-loaded of them -- the classic randomized load balancer that
/// approaches join-shortest-queue at a fraction of the state inspection.
class PowerOfTwoPolicy : public netgym::Policy {
 public:
  explicit PowerOfTwoPolicy(int d = 2);
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<PowerOfTwoPolicy>(*this);
  }

 private:
  int d_;
};

/// Uniformly random assignment (reference point).
class RandomLbPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<RandomLbPolicy>(*this);
  }
};

/// The deliberately unreasonable baseline of S5.4 ("choosing the highest
/// loaded server"): assigns every job to the busiest server.
class NaiveLbPolicy : public netgym::Policy {
 public:
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;
  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<NaiveLbPolicy>(*this);
  }
};

/// Omniscient baseline: reads the environment's true (unshuffled) state and
/// picks the completion-time-optimal server. Upper reference for
/// gap-to-optimum comparisons.
class OracleLbPolicy : public netgym::Policy {
 public:
  explicit OracleLbPolicy(const LbEnv& env) : env_(env) {}
  int act(const netgym::Observation& obs, netgym::Rng& rng) override;

 private:
  const LbEnv& env_;
};

}  // namespace lb
