#include "lb/env.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "netgym/telemetry.hpp"

namespace lb {

namespace {
constexpr double kParetoShape = 2.0;
constexpr double kMaxJobFactor = 50.0;  // cap Pareto tail at 50x scale
}  // namespace

netgym::ConfigSpace lb_config_space(int which) {
  using P = netgym::ParamSpec;
  switch (which) {
    case 1:  // RL1 (Table 5)
      return netgym::ConfigSpace({P{"service_rate", 0.1, 2, false, true},
                                  P{"job_size_bytes", 100, 200, false, true},
                                  P{"job_interval_s", 0.01, 0.05, false, true},
                                  P{"num_jobs", 10, 100, true, true},
                                  P{"queue_shuffle_prob", 0.1, 0.2}});
    case 2:  // RL2
      return netgym::ConfigSpace({P{"service_rate", 0.1, 5, false, true},
                                  P{"job_size_bytes", 100, 10000, false, true},
                                  P{"job_interval_s", 0.01, 0.1, false, true},
                                  P{"num_jobs", 10, 1000, true, true},
                                  P{"queue_shuffle_prob", 0.1, 0.5}});
    case 3:  // RL3 (full ranges; see header note on the interval range)
      return netgym::ConfigSpace({P{"service_rate", 0.1, 10, false, true},
                                  P{"job_size_bytes", 1, 10000, false, true},
                                  P{"job_interval_s", 0.01, 1, false, true},
                                  P{"num_jobs", 10, 5000, true, true},
                                  P{"queue_shuffle_prob", 0.1, 1}});
    default:
      throw std::invalid_argument("lb_config_space: which must be 1..3");
  }
}

LbEnvConfig lb_config_from_point(const netgym::Config& point) {
  if (point.values.size() != 5) {
    throw std::invalid_argument("lb_config_from_point: expected 5 values");
  }
  LbEnvConfig cfg;
  cfg.service_rate = point.values[0];
  cfg.job_size_bytes = point.values[1];
  cfg.job_interval_s = point.values[2];
  cfg.num_jobs = point.values[3];
  cfg.queue_shuffle_prob = point.values[4];
  return cfg;
}

netgym::Config lb_point_from_config(const LbEnvConfig& cfg) {
  return netgym::Config{{cfg.service_rate, cfg.job_size_bytes,
                         cfg.job_interval_s, cfg.num_jobs,
                         cfg.queue_shuffle_prob}};
}

LbEnv::LbEnv(LbEnvConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.service_rate <= 0 || config_.job_size_bytes <= 0 ||
      config_.job_interval_s <= 0 || config_.num_jobs < 1) {
    throw std::invalid_argument("LbEnv: invalid config");
  }
}

double LbEnv::server_rate_bytes_per_s(int server) const {
  if (server < 0 || server >= kNumServers) {
    throw std::out_of_range("LbEnv: server index out of range");
  }
  return config_.service_rate * kServerSpread[server] *
         kServiceRateUnitBytesPerS;
}

double LbEnv::true_queued_work_s(int server) const {
  if (server < 0 || server >= kNumServers) {
    throw std::out_of_range("LbEnv: server index out of range");
  }
  return work_s_[static_cast<std::size_t>(server)];
}

int LbEnv::true_queued_jobs(int server) const {
  if (server < 0 || server >= kNumServers) {
    throw std::out_of_range("LbEnv: server index out of range");
  }
  return jobs_[static_cast<std::size_t>(server)];
}

void LbEnv::draw_job() {
  const double raw = rng_.pareto(kParetoShape, config_.job_size_bytes);
  job_bytes_ = std::min(raw, config_.job_size_bytes * kMaxJobFactor);
}

netgym::Observation LbEnv::reset() {
  // Cheap run telemetry: one relaxed atomic add per episode/step, no RNG.
  static netgym::telemetry::Counter& episodes =
      netgym::telemetry::Registry::instance().counter("lb.episodes");
  episodes.add();
  flight_ = netgym::flight::begin_episode(
      "lb", {"server_backlog_s", "job_delay_s"});
  work_s_.assign(kNumServers, 0.0);
  jobs_.assign(kNumServers, 0);
  totals_ = Totals{};
  jobs_done_ = 0;
  total_jobs_ = static_cast<int>(std::lround(config_.num_jobs));
  done_ = false;
  draw_job();
  return make_observation();
}

netgym::Env::StepResult LbEnv::step(int action) {
  if (done_) throw std::logic_error("LbEnv::step: episode already finished");
  static netgym::telemetry::Counter& steps =
      netgym::telemetry::Registry::instance().counter("lb.env_steps");
  steps.add();
  if (action < 0 || action >= kNumServers) {
    throw std::invalid_argument("LbEnv::step: server index out of range");
  }
  const auto s = static_cast<std::size_t>(action);
  const double processing_s =
      job_bytes_ / server_rate_bytes_per_s(action);
  const double waiting_s = work_s_[s];
  const double delay_s = std::min(waiting_s + processing_s, kMaxDelayS);
  work_s_[s] += processing_s;
  jobs_[s] += 1;

  // Advance time to the next arrival; queues drain in wall-clock seconds.
  const double dt = rng_.exponential(1.0 / config_.job_interval_s);
  for (int i = 0; i < kNumServers; ++i) {
    const auto si = static_cast<std::size_t>(i);
    const double old_work = work_s_[si];
    const double remaining = old_work - dt;
    if (remaining <= 0) {
      work_s_[si] = 0.0;
      jobs_[si] = 0;
    } else {
      work_s_[si] = remaining;
      // Approximate completed-job accounting: jobs leave in FIFO order at a
      // uniform per-job share of the queued work.
      const double fraction = remaining / std::max(old_work, 1e-9);
      jobs_[si] = std::max(1, static_cast<int>(
                                  std::ceil(jobs_[si] * fraction)));
    }
  }

  ++jobs_done_;
  done_ = jobs_done_ >= total_jobs_;
  draw_job();

  // Job slowdown (total delay over pure processing time, >= 1): the
  // env-internal tail distribution behind Fig. 17's LB panel.
  static netgym::telemetry::Histogram& slowdown =
      netgym::telemetry::Registry::instance().histogram("lb.job_slowdown");
  const double job_slowdown = delay_s / std::max(processing_s, 1e-9);
  slowdown.record(job_slowdown);
  totals_.delay_s_sum += delay_s;
  totals_.slowdown_sum += job_slowdown;
  totals_.jobs += 1;
  if (flight_ != nullptr) {
    flight_->add(action, -delay_s, {waiting_s, delay_s});
  }
  if (done_) netgym::flight::submit(std::move(flight_));

  StepResult result;
  result.reward = -delay_s;
  result.done = done_;
  result.observation = make_observation();
  return result;
}

netgym::Observation LbEnv::make_observation() {
  perm_.resize(kNumServers);
  std::iota(perm_.begin(), perm_.end(), 0);
  if (rng_.bernoulli(config_.queue_shuffle_prob)) {
    std::shuffle(perm_.begin(), perm_.end(), rng_.engine());
  }
  netgym::Observation obs(kObsSize, 0.0);
  for (int i = 0; i < kNumServers; ++i) {
    const auto src = static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)]);
    obs[kObsWork + i] = work_s_[src] / 10.0;
    obs[kObsCount + i] = jobs_[src] / 10.0;
    obs[kObsRates + i] = server_rate_bytes_per_s(perm_[static_cast<std::size_t>(i)]) / 10000.0;
  }
  obs[kObsJobSize] = job_bytes_ / 10000.0;
  obs[kObsInterval] = config_.job_interval_s;
  return obs;
}

std::unique_ptr<LbEnv> make_lb_env(const LbEnvConfig& config,
                                   netgym::Rng& rng) {
  return std::make_unique<LbEnv>(config, rng.engine()());
}

}  // namespace lb
