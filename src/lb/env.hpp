#pragma once

#include <memory>
#include <vector>

#include "netgym/config.hpp"
#include "netgym/env.hpp"
#include "netgym/flight.hpp"

namespace lb {

/// Number of backend servers, with heterogeneous service-rate multipliers
/// (the Park load-balancer environment uses a fixed heterogeneous fleet;
/// Table 5's default column lists per-server rates).
inline constexpr int kNumServers = 8;
inline constexpr double kServerSpread[kNumServers] = {0.5, 0.7, 0.9, 1.1,
                                                      1.3, 1.5, 1.8, 2.2};
/// Bytes/second processed by a server with `service_rate * spread == 1`.
inline constexpr double kServiceRateUnitBytesPerS = 5000.0;

/// Environment parameters of the LB simulator (Table 5 / Appendix A.2).
/// Jobs arrive as a Poisson process (exponential inter-arrival times with
/// mean `job_interval_s`); job sizes are Pareto(shape 2, scale `job_size`).
/// `queue_shuffle_prob` is the probability that the *observation* presents
/// the per-server state in a random permutation while actions keep
/// addressing physical servers — an observation-corruption knob that makes
/// environments harder as it grows.
struct LbEnvConfig {
  double service_rate = 1.0;
  double job_size_bytes = 2000.0;
  double job_interval_s = 0.1;
  double num_jobs = 500.0;
  double queue_shuffle_prob = 0.5;
};

/// The 5-dimensional LB configuration space of Table 5. (Table 5 prints the
/// RL3 job-interval range as [0.1, 1], which would not contain RL1/RL2; we
/// use [0.01, 1] to preserve the paper's nested RL1 c RL2 c RL3 structure.)
netgym::ConfigSpace lb_config_space(int which);

LbEnvConfig lb_config_from_point(const netgym::Config& point);
netgym::Config lb_point_from_config(const LbEnvConfig& cfg);

/// Load-balancing simulator in the style of Park's: each step assigns the
/// newly arrived job to one of `kNumServers` FIFO servers; the reward is the
/// negative completion delay (queueing + processing) of that job in seconds
/// (Table 1's  -sum Delay_i / n), capped at `kMaxDelayS` -- an SLA-timeout
/// bound that keeps rewards finite on overloaded configurations (the RL3
/// ranges of Table 5 include arrival rates far above total service
/// capacity, where uncapped delays would grow without bound and swamp every
/// comparison). Between arrivals every server drains its queue at its own
/// service rate.
///
/// Observation layout (k = kNumServers):
///   [0 .. k-1]    queued work per server, seconds / 10  (possibly shuffled)
///   [k .. 2k-1]   queued job count per server / 10       (same permutation)
///   [2k .. 3k-1]  server service rate, bytes/s / 10000   (same permutation)
///   [3k]          current job size, bytes / 10000
///   [3k+1]        mean job inter-arrival time, seconds
class LbEnv : public netgym::Env {
 public:
  static constexpr double kMaxDelayS = 30.0;
  static constexpr int kObsSize = 3 * kNumServers + 2;
  static constexpr int kObsWork = 0;
  static constexpr int kObsCount = kNumServers;
  static constexpr int kObsRates = 2 * kNumServers;
  static constexpr int kObsJobSize = 3 * kNumServers;
  static constexpr int kObsInterval = 3 * kNumServers + 1;

  LbEnv(LbEnvConfig config, std::uint64_t seed);

  netgym::Observation reset() override;
  StepResult step(int action) override;
  int action_count() const override { return kNumServers; }
  std::size_t observation_size() const override { return kObsSize; }

  const LbEnvConfig& config() const { return config_; }

  /// Per-episode aggregates (reset() clears them), mirroring AbrEnv::Totals /
  /// CcEnv::Totals so fleet-scale evaluation can stream one slowdown/delay
  /// sample per session without storing per-job data.
  struct Totals {
    double delay_s_sum = 0.0;    ///< capped completion delays, seconds
    double slowdown_sum = 0.0;   ///< delay over pure processing time (>= 1)
    int jobs = 0;
    double mean_delay_s() const {
      return jobs > 0 ? delay_s_sum / jobs : 0.0;
    }
    double mean_slowdown() const {
      return jobs > 0 ? slowdown_sum / jobs : 0.0;
    }
  };
  const Totals& totals() const { return totals_; }

  /// True per-server state (bypasses the shuffled observation); used only by
  /// the omniscient oracle baseline and by tests.
  double true_queued_work_s(int server) const;
  int true_queued_jobs(int server) const;
  double server_rate_bytes_per_s(int server) const;
  double current_job_bytes() const { return job_bytes_; }

 private:
  void draw_job();
  netgym::Observation make_observation();

  LbEnvConfig config_;
  netgym::Rng rng_;
  std::vector<double> work_s_;   // queued + in-progress work, seconds
  std::vector<int> jobs_;        // outstanding job count
  double job_bytes_ = 0.0;
  int jobs_done_ = 0;
  int total_jobs_ = 0;
  Totals totals_;
  bool done_ = true;
  std::vector<int> perm_;        // observation permutation of the last obs
  std::unique_ptr<netgym::flight::EpisodeCapture> flight_;
};

std::unique_ptr<LbEnv> make_lb_env(const LbEnvConfig& config,
                                   netgym::Rng& rng);

}  // namespace lb
