#include "netgym/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"

namespace netgym::checkpoint {

namespace {

constexpr std::string_view kMagic = "genet-checkpoint";

void require_valid_key(const std::string& key) {
  if (key.empty()) {
    throw std::invalid_argument("checkpoint: empty key");
  }
  for (unsigned char c : key) {
    if (std::isspace(c) != 0 || std::iscntrl(c) != 0) {
      throw std::invalid_argument("checkpoint: key '" + key +
                                  "' contains whitespace or control bytes");
    }
  }
}

void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  out.append(buf, 16);
}

std::uint64_t parse_hex_u64(std::string_view hex, const std::string& key) {
  if (hex.size() != 16) {
    throw CheckpointError("checkpoint: key '" + key +
                          "': expected 16 hex digits, got '" +
                          std::string(hex) + "'");
  }
  std::uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw CheckpointError("checkpoint: key '" + key +
                            "': invalid hex digit in '" + std::string(hex) +
                            "'");
    }
  }
  return v;
}

void append_hex_bytes(std::string& out, std::string_view bytes) {
  static const char digits[] = "0123456789abcdef";
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
}

std::string parse_hex_bytes(std::string_view hex, std::size_t len,
                            const std::string& key) {
  if (hex.size() != 2 * len) {
    throw CheckpointError("checkpoint: key '" + key + "': string length " +
                          std::to_string(len) + " needs " +
                          std::to_string(2 * len) + " hex digits, got " +
                          std::to_string(hex.size()));
  }
  auto nibble = [&](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw CheckpointError("checkpoint: key '" + key +
                          "': invalid hex digit in string payload");
  };
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>((nibble(hex[2 * i]) << 4) |
                                    nibble(hex[2 * i + 1])));
  }
  return out;
}

/// Strict decimal parser: the whole token must be consumed.
template <typename Int>
Int parse_decimal(std::string_view token, const std::string& key) {
  if (token.empty()) {
    throw CheckpointError("checkpoint: key '" + key + "': empty number");
  }
  Int v{};
  std::string owned(token);
  std::size_t consumed = 0;
  try {
    if constexpr (std::is_signed_v<Int>) {
      const long long parsed = std::stoll(owned, &consumed);
      v = static_cast<Int>(parsed);
    } else {
      if (owned.front() == '-') throw std::invalid_argument("negative");
      const unsigned long long parsed = std::stoull(owned, &consumed);
      v = static_cast<Int>(parsed);
    }
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != owned.size()) {
    throw CheckpointError("checkpoint: key '" + key + "': bad number '" +
                          owned + "'");
  }
  return v;
}

/// Split a payload line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table;
}

/// RAII stdio handle so every error path closes (and optionally removes) the
/// temp file.
struct FileCloser {
  std::FILE* f = nullptr;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

Snapshot::Entry& Snapshot::slot_for(const std::string& key) {
  require_valid_key(key);
  return entries_[key];
}

void Snapshot::put_i64(const std::string& key, std::int64_t v) {
  Entry& e = slot_for(key);
  e = Entry{};
  e.kind = Kind::kI64;
  e.i = v;
}

void Snapshot::put_u64(const std::string& key, std::uint64_t v) {
  Entry& e = slot_for(key);
  e = Entry{};
  e.kind = Kind::kU64;
  e.u = v;
}

void Snapshot::put_double(const std::string& key, double v) {
  Entry& e = slot_for(key);
  e = Entry{};
  e.kind = Kind::kDouble;
  e.d = v;
}

void Snapshot::put_string(const std::string& key, std::string v) {
  Entry& e = slot_for(key);
  e = Entry{};
  e.kind = Kind::kString;
  e.s = std::move(v);
}

void Snapshot::put_doubles(const std::string& key, std::vector<double> v) {
  Entry& e = slot_for(key);
  e = Entry{};
  e.kind = Kind::kDoubles;
  e.dv = std::move(v);
}

void Snapshot::put_i64s(const std::string& key,
                        std::vector<std::int64_t> v) {
  Entry& e = slot_for(key);
  e = Entry{};
  e.kind = Kind::kI64s;
  e.iv = std::move(v);
}

const Snapshot::Entry& Snapshot::entry_of(const std::string& key, Kind kind,
                                          const char* kind_name) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw CheckpointError("checkpoint: missing key '" + key + "'");
  }
  if (it->second.kind != kind) {
    throw CheckpointError("checkpoint: key '" + key + "' is not of type " +
                          kind_name);
  }
  return it->second;
}

std::int64_t Snapshot::get_i64(const std::string& key) const {
  return entry_of(key, Kind::kI64, "i64").i;
}

std::uint64_t Snapshot::get_u64(const std::string& key) const {
  return entry_of(key, Kind::kU64, "u64").u;
}

double Snapshot::get_double(const std::string& key) const {
  return entry_of(key, Kind::kDouble, "double").d;
}

const std::string& Snapshot::get_string(const std::string& key) const {
  return entry_of(key, Kind::kString, "string").s;
}

const std::vector<double>& Snapshot::get_doubles(
    const std::string& key) const {
  return entry_of(key, Kind::kDoubles, "doubles").dv;
}

const std::vector<std::int64_t>& Snapshot::get_i64s(
    const std::string& key) const {
  return entry_of(key, Kind::kI64s, "i64s").iv;
}

bool Snapshot::has(const std::string& key) const {
  return entries_.find(key) != entries_.end();
}

std::vector<std::string> Snapshot::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::string Snapshot::encode() const {
  std::string out;
  for (const auto& [key, e] : entries_) {
    out += key;
    switch (e.kind) {
      case Kind::kI64:
        out += " i ";
        out += std::to_string(e.i);
        break;
      case Kind::kU64:
        out += " u ";
        out += std::to_string(e.u);
        break;
      case Kind::kDouble:
        out += " d ";
        append_hex_u64(out, std::bit_cast<std::uint64_t>(e.d));
        break;
      case Kind::kString:
        out += " s ";
        out += std::to_string(e.s.size());
        if (!e.s.empty()) {
          out += ' ';
          append_hex_bytes(out, e.s);
        }
        break;
      case Kind::kDoubles:
        out += " dv ";
        out += std::to_string(e.dv.size());
        for (double v : e.dv) {
          out += ' ';
          append_hex_u64(out, std::bit_cast<std::uint64_t>(v));
        }
        break;
      case Kind::kI64s:
        out += " iv ";
        out += std::to_string(e.iv.size());
        for (std::int64_t v : e.iv) {
          out += ' ';
          out += std::to_string(v);
        }
        break;
    }
    out += '\n';
  }
  return out;
}

Snapshot Snapshot::decode(std::string_view payload) {
  Snapshot snap;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) {
      throw CheckpointError("checkpoint: payload ends without newline");
    }
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      throw CheckpointError("checkpoint: blank payload line");
    }
    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.size() < 2) {
      throw CheckpointError("checkpoint: malformed entry '" +
                            std::string(line) + "'");
    }
    const std::string key(tokens[0]);
    if (snap.has(key)) {
      throw CheckpointError("checkpoint: duplicate key '" + key + "'");
    }
    const std::string_view type = tokens[1];
    const std::size_t n_args = tokens.size() - 2;
    if (type == "i") {
      if (n_args != 1) {
        throw CheckpointError("checkpoint: key '" + key + "': i wants 1 arg");
      }
      snap.put_i64(key, parse_decimal<std::int64_t>(tokens[2], key));
    } else if (type == "u") {
      if (n_args != 1) {
        throw CheckpointError("checkpoint: key '" + key + "': u wants 1 arg");
      }
      snap.put_u64(key, parse_decimal<std::uint64_t>(tokens[2], key));
    } else if (type == "d") {
      if (n_args != 1) {
        throw CheckpointError("checkpoint: key '" + key + "': d wants 1 arg");
      }
      snap.put_double(key,
                      std::bit_cast<double>(parse_hex_u64(tokens[2], key)));
    } else if (type == "s") {
      if (n_args != 1 && n_args != 2) {
        throw CheckpointError("checkpoint: key '" + key +
                              "': s wants a length and a hex body");
      }
      const auto len = parse_decimal<std::uint64_t>(tokens[2], key);
      const std::string_view hex = n_args == 2 ? tokens[3] : "";
      snap.put_string(key,
                      parse_hex_bytes(hex, static_cast<std::size_t>(len), key));
    } else if (type == "dv") {
      if (n_args < 1) {
        throw CheckpointError("checkpoint: key '" + key + "': dv wants a count");
      }
      const auto count = parse_decimal<std::uint64_t>(tokens[2], key);
      if (n_args != 1 + count) {
        throw CheckpointError("checkpoint: key '" + key + "': dv count " +
                              std::to_string(count) + " but " +
                              std::to_string(n_args - 1) + " values");
      }
      std::vector<double> values;
      values.reserve(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        values.push_back(
            std::bit_cast<double>(parse_hex_u64(tokens[3 + i], key)));
      }
      snap.put_doubles(key, std::move(values));
    } else if (type == "iv") {
      if (n_args < 1) {
        throw CheckpointError("checkpoint: key '" + key + "': iv wants a count");
      }
      const auto count = parse_decimal<std::uint64_t>(tokens[2], key);
      if (n_args != 1 + count) {
        throw CheckpointError("checkpoint: key '" + key + "': iv count " +
                              std::to_string(count) + " but " +
                              std::to_string(n_args - 1) + " values");
      }
      std::vector<std::int64_t> values;
      values.reserve(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        values.push_back(parse_decimal<std::int64_t>(tokens[3 + i], key));
      }
      snap.put_i64s(key, std::move(values));
    } else {
      throw CheckpointError("checkpoint: key '" + key +
                            "': unknown entry type '" + std::string(type) +
                            "'");
    }
  }
  return snap;
}

std::string encode_file_bytes(const Snapshot& snap) {
  const std::string payload = snap.encode();
  std::string contents;
  contents.reserve(payload.size() + 64);
  contents += kMagic;
  contents += ' ';
  contents += std::to_string(kFormatVersion);
  contents += '\n';
  contents += "payload ";
  contents += std::to_string(payload.size());
  contents += " crc32 ";
  {
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc32(payload));
    contents.append(crc_hex, 8);
  }
  contents += '\n';
  contents += payload;
  return contents;
}

Snapshot decode_file_bytes(std::string_view bytes, const std::string& what) {
  // Header line 1: magic + version.
  std::size_t eol = bytes.find('\n');
  if (eol == std::string_view::npos) {
    throw CheckpointError("checkpoint: " + what + " is truncated (no header)");
  }
  {
    std::istringstream header{std::string(bytes.substr(0, eol))};
    std::string magic;
    int version = -1;
    if (!(header >> magic >> version) || magic != kMagic) {
      throw CheckpointError("checkpoint: " + what +
                            " is not a checkpoint file");
    }
    if (version < 1 || version > kFormatVersion) {
      throw CheckpointError("checkpoint: " + what + " has schema version " +
                            std::to_string(version) +
                            "; this build supports up to " +
                            std::to_string(kFormatVersion));
    }
  }

  // Header line 2: payload length + CRC.
  const std::size_t line2_start = eol + 1;
  eol = bytes.find('\n', line2_start);
  if (eol == std::string_view::npos) {
    throw CheckpointError("checkpoint: " + what +
                          " is truncated (no payload header)");
  }
  std::uint64_t expected_bytes = 0;
  std::uint32_t expected_crc = 0;
  {
    std::istringstream header{
        std::string(bytes.substr(line2_start, eol - line2_start))};
    std::string payload_word, crc_word, crc_hex;
    if (!(header >> payload_word >> expected_bytes >> crc_word >> crc_hex) ||
        payload_word != "payload" || crc_word != "crc32" ||
        crc_hex.size() != 8) {
      throw CheckpointError("checkpoint: " + what +
                            " has a malformed payload header");
    }
    expected_crc =
        static_cast<std::uint32_t>(parse_hex_u64("00000000" + crc_hex, what));
  }

  const std::string_view payload = bytes.substr(eol + 1);
  if (payload.size() != expected_bytes) {
    throw CheckpointError(
        "checkpoint: " + what + " is truncated or padded: header claims " +
        std::to_string(expected_bytes) + " payload bytes, file has " +
        std::to_string(payload.size()));
  }
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != expected_crc) {
    char actual_hex[9];
    std::snprintf(actual_hex, sizeof actual_hex, "%08x", actual_crc);
    throw CheckpointError("checkpoint: " + what +
                          " is corrupt: CRC mismatch (payload " + actual_hex +
                          ")");
  }
  return Snapshot::decode(payload);
}

void write_file(const Snapshot& snap, const std::string& path) {
  netgym::tracing::TraceSpan span("checkpoint.save", "checkpoint");
  namespace tel = netgym::telemetry;
  tel::ScopedTimer timing(tel::Registry::instance().timer("checkpoint.save"));

  const std::string contents = encode_file_bytes(snap);

  const std::string tmp = path + ".tmp";
  {
    FileCloser file{std::fopen(tmp.c_str(), "wb")};
    if (file.f == nullptr) {
      throw CheckpointError("checkpoint: cannot open '" + tmp +
                            "' for writing: " + std::strerror(errno));
    }
    if (std::fwrite(contents.data(), 1, contents.size(), file.f) !=
            contents.size() ||
        std::fflush(file.f) != 0 || ::fsync(::fileno(file.f)) != 0) {
      std::remove(tmp.c_str());
      throw CheckpointError("checkpoint: short write to '" + tmp +
                            "': " + std::strerror(errno));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename '" + tmp + "' to '" +
                          path + "': " + std::strerror(errno));
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }

  tel::Registry::instance().counter("checkpoint.saves").add();
  tel::Registry::instance()
      .counter("checkpoint.bytes_written")
      .add(static_cast<std::int64_t>(contents.size()));
  if (tel::logging_enabled()) {
    tel::log_event("checkpoint_save", 0,
                   {{"path", path},
                    {"bytes", static_cast<std::int64_t>(contents.size())},
                    {"keys", static_cast<std::int64_t>(snap.size())}});
  }
}

Snapshot read_file(const std::string& path) {
  netgym::tracing::TraceSpan span("checkpoint.load", "checkpoint");
  namespace tel = netgym::telemetry;
  tel::ScopedTimer timing(tel::Registry::instance().timer("checkpoint.load"));

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  Snapshot snap = decode_file_bytes(contents, "'" + path + "'");
  tel::Registry::instance().counter("checkpoint.loads").add();
  if (tel::logging_enabled()) {
    tel::log_event("checkpoint_load", 0,
                   {{"path", path},
                    {"bytes", static_cast<std::int64_t>(contents.size())},
                    {"keys", static_cast<std::int64_t>(snap.size())}});
  }
  return snap;
}

}  // namespace netgym::checkpoint
