#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace netgym::checkpoint {

// Durable-state layer (DESIGN.md S5d): a versioned, crash-safe snapshot
// format plus the Serializable hook every stateful component implements.
//
// A checkpoint file is
//
//   genet-checkpoint <version>\n
//   payload <bytes> crc32 <8 lowercase hex>\n
//   <payload: exactly <bytes> bytes>
//
// where the payload is a newline-separated sequence of typed entries,
//
//   <key> i  <int64 decimal>
//   <key> u  <uint64 decimal>
//   <key> d  <16 hex digits>            (IEEE-754 bit pattern)
//   <key> s  <len> <2*len hex digits>   (raw bytes, hex-encoded)
//   <key> dv <n> <16 hex digits> ...    (n bit patterns)
//   <key> iv <n> <int64 decimal> ...
//
// sorted by key, so encoding the same state always yields the same bytes.
// Doubles travel as their exact bit patterns -- a snapshot round-trips NaN
// payloads, signed zeros, and denormals bit-for-bit, which is what makes
// resumed training runs bit-identical to uninterrupted ones.
//
// Crash safety: write_file serializes to `<path>.tmp`, fsyncs the file,
// atomically renames it over `path`, and fsyncs the containing directory. A
// process killed mid-write leaves at worst a stale `.tmp` next to the intact
// previous snapshot; read_file rejects truncated, corrupted (CRC mismatch),
// and wrong-version files with a CheckpointError *before* any caller state
// is touched, so there are no partial loads.

/// Raised for every malformed-snapshot condition: unreadable file, bad magic,
/// unsupported version, truncation, CRC mismatch, unparseable payload,
/// missing keys, wrong entry types, or state-shape mismatches during load.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Schema version written by this build; read_file rejects anything newer.
/// Bump when the payload layout of an existing component changes shape (new
/// keys are backward-compatible and do not need a bump).
inline constexpr int kFormatVersion = 1;

/// Typed key/value store, the in-memory form of one checkpoint. Keys are
/// path-like strings ("trainer/actor_opt/m"); whitespace and control
/// characters are rejected. Getters throw CheckpointError when the key is
/// absent or holds another type, so load hooks fail loudly instead of
/// silently defaulting.
class Snapshot {
 public:
  void put_i64(const std::string& key, std::int64_t v);
  void put_u64(const std::string& key, std::uint64_t v);
  void put_double(const std::string& key, double v);
  void put_string(const std::string& key, std::string v);
  void put_doubles(const std::string& key, std::vector<double> v);
  void put_i64s(const std::string& key, std::vector<std::int64_t> v);

  std::int64_t get_i64(const std::string& key) const;
  std::uint64_t get_u64(const std::string& key) const;
  double get_double(const std::string& key) const;
  const std::string& get_string(const std::string& key) const;
  const std::vector<double>& get_doubles(const std::string& key) const;
  const std::vector<std::int64_t>& get_i64s(const std::string& key) const;

  bool has(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  std::vector<std::string> keys() const;

  /// Payload text (no header); deterministic for given contents.
  std::string encode() const;

  /// Inverse of encode; throws CheckpointError on any malformed entry.
  static Snapshot decode(std::string_view payload);

 private:
  enum class Kind { kI64, kU64, kDouble, kString, kDoubles, kI64s };

  struct Entry {
    Kind kind = Kind::kI64;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0.0;
    std::string s;
    std::vector<double> dv;
    std::vector<std::int64_t> iv;
  };

  const Entry& entry_of(const std::string& key, Kind kind,
                        const char* kind_name) const;
  Entry& slot_for(const std::string& key);

  std::map<std::string, Entry> entries_;
};

/// Save/load hook implemented by every stateful layer (nn::Mlp, nn::Adam,
/// rl::RunningNorm, rl::ActorCriticBase, bo::GaussianProcess,
/// bo::BayesianOptimizer, netgym::ConfigDistribution,
/// genet::CurriculumTrainer, ...). `prefix` namespaces the component's keys
/// inside a shared snapshot ("trainer/", "dist/", ...), so owners compose
/// children by delegating with an extended prefix.
///
/// load_state contract: validate *everything* (presence, types, shapes)
/// against the component's current configuration before mutating any member,
/// and throw CheckpointError on mismatch -- a failed load must leave the
/// component exactly as it was.
class Serializable {
 public:
  virtual ~Serializable() = default;

  virtual void save_state(Snapshot& snap, const std::string& prefix) const = 0;
  virtual void load_state(const Snapshot& snap, const std::string& prefix) = 0;
};

/// Serialize `snap` with the versioned CRC header and atomically replace
/// `path` (write `<path>.tmp` + fsync + rename + directory fsync). Emits a
/// "checkpoint.save" trace span and bumps the checkpoint.saves /
/// checkpoint.bytes_written telemetry counters. Throws CheckpointError on
/// I/O failure; `path` is never left half-written.
void write_file(const Snapshot& snap, const std::string& path);

/// Read and fully validate a checkpoint: magic, version (<= kFormatVersion),
/// exact payload length, CRC, and payload syntax. Emits a "checkpoint.load"
/// trace span and bumps checkpoint.loads. Throws CheckpointError on any
/// defect -- callers only see complete, checksum-verified snapshots.
Snapshot read_file(const std::string& path);

/// Serialize `snap` into the exact byte sequence write_file puts on disk
/// (versioned header + CRC line + payload) without touching the filesystem.
/// The distributed-training wire protocol (src/dist/) ships these blobs
/// inside frames, so every message body carries the same version and CRC
/// protection as a checkpoint file.
std::string encode_file_bytes(const Snapshot& snap);

/// Inverse of encode_file_bytes: validate magic, version, exact payload
/// length, CRC, and payload syntax before returning -- a malformed blob
/// throws CheckpointError with no partial result. `what` names the byte
/// source in error messages (read_file passes "'<path>'", the dist layer
/// passes things like "dist hello frame").
Snapshot decode_file_bytes(std::string_view bytes, const std::string& what);

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`; exposed so tests and
/// external validators (scripts/check_checkpoint.py via Python's zlib) can
/// agree with the writer byte-for-byte.
std::uint32_t crc32(std::string_view data);

}  // namespace netgym::checkpoint
