#include "netgym/config.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netgym {

namespace {
constexpr double kRangeTolerance = 1e-9;
}

ConfigSpace::ConfigSpace(std::vector<ParamSpec> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    if (p.lo > p.hi) {
      throw std::invalid_argument("ConfigSpace: parameter '" + p.name +
                                  "' has lo > hi");
    }
    if (p.log_scale && p.lo <= 0) {
      throw std::invalid_argument("ConfigSpace: log-scale parameter '" +
                                  p.name + "' needs lo > 0");
    }
  }
}

const ParamSpec& ConfigSpace::param(std::size_t i) const {
  if (i >= params_.size()) {
    throw std::out_of_range("ConfigSpace::param: index out of range");
  }
  return params_[i];
}

std::size_t ConfigSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return i;
  }
  throw std::invalid_argument("ConfigSpace: no parameter named '" + name + "'");
}

bool ConfigSpace::contains(const Config& c) const {
  if (c.values.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (c.values[i] < params_[i].lo - kRangeTolerance ||
        c.values[i] > params_[i].hi + kRangeTolerance) {
      return false;
    }
  }
  return true;
}

Config ConfigSpace::clamp(const Config& c) const {
  if (c.values.size() != params_.size()) {
    throw std::invalid_argument("ConfigSpace::clamp: arity mismatch");
  }
  Config out = c;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out.values[i] = std::clamp(out.values[i], params_[i].lo, params_[i].hi);
    if (params_[i].integer) out.values[i] = std::round(out.values[i]);
  }
  return out;
}

Config ConfigSpace::sample(Rng& rng) const {
  Config c;
  c.values.reserve(params_.size());
  for (const auto& p : params_) {
    double v = p.log_scale
                   ? std::exp(rng.uniform(std::log(p.lo), std::log(p.hi)))
                   : rng.uniform(p.lo, p.hi);
    if (p.integer) v = std::round(v);
    c.values.push_back(v);
  }
  return c;
}

Config ConfigSpace::midpoint() const {
  // Defined as the center of the *normalized* box so every caller (the
  // handcrafted curriculum's non-swept dims, eval harnesses) agrees with
  // normalize/denormalize: geometric center for log-scale dims, arithmetic
  // otherwise, with integer rounding applied.
  return denormalize(std::vector<double>(params_.size(), 0.5));
}

std::vector<double> ConfigSpace::normalize(const Config& c) const {
  if (c.values.size() != params_.size()) {
    throw std::invalid_argument("ConfigSpace::normalize: arity mismatch");
  }
  std::vector<double> unit(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const ParamSpec& p = params_[i];
    double u;
    if (p.log_scale) {
      const double span = std::log(p.hi) - std::log(p.lo);
      u = span > 0
              ? (std::log(std::max(c.values[i], p.lo)) - std::log(p.lo)) / span
              : 0.5;
    } else {
      const double span = p.hi - p.lo;
      u = span > 0 ? (c.values[i] - p.lo) / span : 0.5;
    }
    unit[i] = std::clamp(u, 0.0, 1.0);
  }
  return unit;
}

Config ConfigSpace::denormalize(const std::vector<double>& unit) const {
  if (unit.size() != params_.size()) {
    throw std::invalid_argument("ConfigSpace::denormalize: arity mismatch");
  }
  Config c;
  c.values.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const ParamSpec& p = params_[i];
    const double u = std::clamp(unit[i], 0.0, 1.0);
    double v = p.log_scale
                   ? std::exp(std::log(p.lo) +
                              u * (std::log(p.hi) - std::log(p.lo)))
                   : p.lo + u * (p.hi - p.lo);
    if (p.integer) v = std::round(v);
    c.values.push_back(v);
  }
  return c;
}

ConfigDistribution::ConfigDistribution(ConfigSpace space)
    : space_(std::move(space)) {}

Config ConfigDistribution::sample(Rng& rng) const {
  if (!points_.empty()) {
    std::vector<double> weights;
    weights.reserve(points_.size() + 1);
    weights.push_back(uniform_weight_);
    for (const auto& [config, w] : points_) weights.push_back(w);
    const std::size_t pick = rng.categorical(weights);
    if (pick > 0) return points_[pick - 1].first;
  }
  return space_.sample(rng);
}

void ConfigDistribution::promote(const Config& config, double w) {
  if (!(w > 0.0 && w < 1.0)) {
    throw std::invalid_argument("ConfigDistribution::promote: w must be in (0,1)");
  }
  if (config.values.size() != space_.dims()) {
    throw std::invalid_argument("ConfigDistribution::promote: arity mismatch");
  }
  uniform_weight_ *= (1.0 - w);
  for (auto& [c, weight] : points_) weight *= (1.0 - w);
  points_.emplace_back(space_.clamp(config), w);
}

double ConfigDistribution::uniform_weight() const { return uniform_weight_; }

void ConfigDistribution::save_state(checkpoint::Snapshot& snap,
                                    const std::string& prefix) const {
  snap.put_double(prefix + "uniform_weight", uniform_weight_);
  snap.put_i64(prefix + "num_points",
               static_cast<std::int64_t>(points_.size()));
  for (std::size_t k = 0; k < points_.size(); ++k) {
    const std::string base = prefix + "point" + std::to_string(k) + "/";
    snap.put_doubles(base + "values", points_[k].first.values);
    snap.put_double(base + "weight", points_[k].second);
  }
}

void ConfigDistribution::load_state(const checkpoint::Snapshot& snap,
                                    const std::string& prefix) {
  using checkpoint::CheckpointError;
  const double uniform_weight = snap.get_double(prefix + "uniform_weight");
  const std::int64_t num_points = snap.get_i64(prefix + "num_points");
  if (!(uniform_weight >= 0.0 && uniform_weight <= 1.0)) {
    throw CheckpointError(
        "ConfigDistribution::load_state: uniform weight outside [0,1] (" +
        prefix + "uniform_weight)");
  }
  if (num_points < 0) {
    throw CheckpointError(
        "ConfigDistribution::load_state: negative point count (" + prefix +
        "num_points)");
  }
  std::vector<std::pair<Config, double>> points;
  points.reserve(static_cast<std::size_t>(num_points));
  for (std::int64_t k = 0; k < num_points; ++k) {
    const std::string base = prefix + "point" + std::to_string(k) + "/";
    const std::vector<double>& values = snap.get_doubles(base + "values");
    const double weight = snap.get_double(base + "weight");
    if (values.size() != space_.dims()) {
      throw CheckpointError(
          "ConfigDistribution::load_state: promoted config arity mismatch (" +
          base + "values)");
    }
    if (!(weight >= 0.0)) {
      throw CheckpointError(
          "ConfigDistribution::load_state: negative component weight (" +
          base + "weight)");
    }
    points.emplace_back(Config{values}, weight);
  }
  uniform_weight_ = uniform_weight;
  points_ = std::move(points);
}

}  // namespace netgym
