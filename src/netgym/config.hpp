#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"

namespace netgym {

/// One dimension of an environment configuration space (a row of the paper's
/// Tables 3-5): a named numeric parameter with an inclusive range.
/// S4.2: the initial training distribution is "uniform or exponential along
/// each parameter" -- scale-like dimensions (bandwidth, RTT, job size) set
/// `log_scale` and are sampled/normalized uniformly in log space, which is
/// the exponential-style option; the rest stay linear.
struct ParamSpec {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  bool integer = false;    ///< round sampled values to the nearest integer
  bool log_scale = false;  ///< sample/normalize uniformly in log space
};

/// A point in a configuration space: one value per dimension, in the same
/// order as the owning `ConfigSpace`'s parameters. A configuration seeds an
/// environment generator; individual environments add their own randomness
/// (Appendix A.1's "N random envs per config").
struct Config {
  std::vector<double> values;

  bool operator==(const Config&) const = default;
};

/// A box-shaped space of environment configurations (one of the paper's
/// RL1/RL2/RL3 ranges). Provides uniform sampling, normalization to the unit
/// cube (used by the Bayesian-optimization search), and named access.
class ConfigSpace {
 public:
  ConfigSpace() = default;
  explicit ConfigSpace(std::vector<ParamSpec> params);

  std::size_t dims() const { return params_.size(); }
  const std::vector<ParamSpec>& params() const { return params_; }
  const ParamSpec& param(std::size_t i) const;

  /// Index of the dimension with the given name; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// True if the config has the right arity and every value is in range
  /// (with a small tolerance for floating-point round-trips).
  bool contains(const Config& c) const;

  /// Clamp each value of `c` into this space's ranges.
  Config clamp(const Config& c) const;

  /// Uniform sample over the box.
  Config sample(Rng& rng) const;

  /// Config at the center of the normalized box (`denormalize` of 0.5 in
  /// every dimension): the geometric midpoint for log-scale dims, the
  /// arithmetic midpoint otherwise, rounded for integer dims.
  Config midpoint() const;

  /// Map a config to the unit cube [0,1]^d (degenerate dims map to 0.5).
  std::vector<double> normalize(const Config& c) const;

  /// Inverse of `normalize`; unit-cube coordinates are clamped to [0,1].
  Config denormalize(const std::vector<double>& unit) const;

 private:
  std::vector<ParamSpec> params_;
};

/// A probability distribution over configurations: a mixture of (a) the
/// uniform distribution over a base space and (b) point configurations
/// promoted by the curriculum. Genet's update rule (S4.2) is
/// `dist <- (1-w) * dist + w * {new config}`.
class ConfigDistribution : public checkpoint::Serializable {
 public:
  explicit ConfigDistribution(ConfigSpace space);

  const ConfigSpace& space() const { return space_; }

  /// Draw a configuration: pick a mixture component by weight; the uniform
  /// component samples the box, a point component returns its config.
  Config sample(Rng& rng) const;

  /// Add a point component with weight `w` in (0,1), scaling all existing
  /// component weights by `1 - w`.
  void promote(const Config& config, double w);

  /// Weight currently held by the original uniform-over-space component.
  double uniform_weight() const;

  /// Number of promoted point components.
  std::size_t num_promoted() const { return points_.size(); }

  const std::vector<std::pair<Config, double>>& promoted() const {
    return points_;
  }

  /// Checkpoint hooks: persist the mixture (uniform weight plus every
  /// promoted config and its weight). The space itself is rebuilt from the
  /// experiment definition, not the snapshot; load validates each promoted
  /// config's arity against this distribution's space before mutating.
  void save_state(checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  ConfigSpace space_;
  double uniform_weight_ = 1.0;
  std::vector<std::pair<Config, double>> points_;
};

}  // namespace netgym
