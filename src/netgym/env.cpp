#include "netgym/env.hpp"

#include <stdexcept>

#include "netgym/tracing.hpp"

namespace netgym {

EpisodeStats run_episode(Env& env, Policy& policy, Rng& rng, int max_steps) {
  if (max_steps <= 0) {
    throw std::invalid_argument("run_episode: max_steps must be > 0");
  }
  tracing::TraceSpan span("episode", "env");
  EpisodeStats stats;
  policy.begin_episode();
  Observation obs = env.reset();
  for (int i = 0; i < max_steps; ++i) {
    const int action = policy.act(obs, rng);
    if (action < 0 || action >= env.action_count()) {
      throw std::logic_error("run_episode: policy produced an invalid action");
    }
    Env::StepResult result = env.step(action);
    stats.total_reward += result.reward;
    ++stats.steps;
    if (result.done) break;
    obs = std::move(result.observation);
  }
  stats.mean_reward =
      stats.steps > 0 ? stats.total_reward / stats.steps : 0.0;
  return stats;
}

}  // namespace netgym
