#pragma once

#include <memory>
#include <vector>

#include "netgym/rng.hpp"

namespace netgym {

/// Observation vector handed to policies. Each environment documents the
/// layout of its observation; rule-based baselines read the named slices they
/// need, while RL policies consume the whole vector.
using Observation = std::vector<double>;

/// A sequential decision-making environment with a discrete action space
/// (bitrate index for ABR, rate-change level for CC, server index for LB).
/// The contract mirrors the usual RL gym interface:
///   obs = env.reset();  while (!done) { step(action) -> {obs, reward, done} }
class Env {
 public:
  virtual ~Env() = default;

  /// Start a new episode and return the initial observation.
  virtual Observation reset() = 0;

  struct StepResult {
    Observation observation;
    double reward = 0.0;
    bool done = false;
  };

  /// Apply an action (in [0, action_count())) and advance the environment.
  /// Must not be called after an episode has finished.
  virtual StepResult step(int action) = 0;

  virtual int action_count() const = 0;
  virtual std::size_t observation_size() const = 0;
};

/// A decision-making policy: RL models and rule-based baselines share this
/// interface so that Genet's Train/Test API (Fig. 8) is agnostic to which is
/// being evaluated.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Reset any per-episode internal state (e.g. Cubic's congestion window).
  virtual void begin_episode() {}

  /// Choose an action for the given observation. `rng` supplies any sampling
  /// randomness (deterministic policies ignore it).
  virtual int act(const Observation& obs, Rng& rng) = 0;

  /// Deep copy for parallel evaluation: workers hand each episode its own
  /// clone so `act`'s internal state (an MLP's forward cache, MPC's error
  /// tracker) is never shared across threads. Returns nullptr when the
  /// policy cannot be copied (e.g. oracles bound to one environment), in
  /// which case evaluation helpers fall back to a serial loop — with the
  /// same per-item RNG streams, so results do not change.
  virtual std::unique_ptr<Policy> clone() const { return nullptr; }
};

/// Outcome of rolling a policy through one episode.
struct EpisodeStats {
  double total_reward = 0.0;
  double mean_reward = 0.0;  ///< Table 1 rewards are per-step averages
  int steps = 0;
};

/// Run `policy` on `env` for one full episode (bounded by `max_steps` as a
/// safety net against non-terminating environments).
EpisodeStats run_episode(Env& env, Policy& policy, Rng& rng,
                         int max_steps = 100000);

}  // namespace netgym
