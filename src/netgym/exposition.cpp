#include "netgym/exposition.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace netgym::telemetry {

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; registry names use
/// dots ("serve.phase.forward_s"), so map every illegal character to '_'.
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

void append_value(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // Prometheus 0.0.4 spells non-finite values out; also keeps the integer
    // fast path below from casting NaN/Inf to i64 (undefined behavior).
    out += std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[40];
  if (std::abs(v) < 1e15 &&
      v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_sample(std::string& out, const std::string& name,
                   const char* labels, double v) {
  out += name;
  out += labels;
  out += ' ';
  append_value(out, v);
  out += '\n';
}

void append_summary(std::string& out, const std::string& name,
                    const Histogram::Snapshot& h) {
  out += "# TYPE " + name + " summary\n";
  if (h.count > 0) {
    append_sample(out, name, "{quantile=\"0.5\"}", h.p50);
    append_sample(out, name, "{quantile=\"0.9\"}", h.p90);
    append_sample(out, name, "{quantile=\"0.99\"}", h.p99);
    append_sample(out, name, "{quantile=\"0.999\"}", h.p999);
  }
  append_sample(out, name + "_sum", "", h.count > 0 ? h.sum : 0.0);
  append_sample(out, name + "_count", "",
                static_cast<double>(h.count > 0 ? h.count : 0));
}

}  // namespace

std::string render_prometheus(const std::vector<Registry::Entry>& entries) {
  std::string out;
  out.reserve(64 + 128 * entries.size());
  for (const auto& e : entries) {
    const std::string name = sanitize_name(e.name);
    switch (e.kind) {
      case Registry::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        append_sample(out, name, "", e.value);
        break;
      case Registry::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        append_sample(out, name, "", e.value);
        break;
      case Registry::Kind::kTimer:
        // A timer is (total seconds, op count): a quantile-less summary.
        out += "# TYPE " + name + " summary\n";
        append_sample(out, name + "_sum", "", e.value);
        append_sample(out, name + "_count", "",
                      static_cast<double>(e.count));
        break;
      case Registry::Kind::kHistogram:
        append_summary(out, name, e.hist);
        break;
    }
  }
  return out;
}

std::string scrape_prometheus() {
  return render_prometheus(Registry::instance().snapshot());
}

void MetricsEndpoint::start(int port) {
  if (running()) throw std::runtime_error("metrics endpoint already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("metrics endpoint: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost-only, always
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(
        std::string("metrics endpoint: cannot listen on 127.0.0.1:") +
        std::to_string(port) + ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("metrics endpoint: getsockname() failed");
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(fd);
    throw std::runtime_error("metrics endpoint: pipe() failed");
  }
  fd_ = fd;
  stop_fd_ = pipe_fds[1];
  port_ = ntohs(bound.sin_port);
  const int wake_fd = pipe_fds[0];
  thread_ = std::thread([this, wake_fd] {
    serve_loop(wake_fd);
    ::close(wake_fd);
  });
}

void MetricsEndpoint::stop() {
  if (!running()) return;
  // Wake the poll() and let the accept loop exit before closing the socket.
  const char byte = 0;
  (void)!::write(stop_fd_, &byte, 1);
  thread_.join();
  ::close(stop_fd_);
  ::close(fd_);
  stop_fd_ = -1;
  fd_ = -1;
  port_ = 0;
}

void MetricsEndpoint::serve_loop(int wake_fd) {
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound every read/write on the connection: a client that connects and
    // then stalls must not wedge the single serving thread (and with it
    // stop(), which joins this thread) -- it gets timed out and dropped.
    timeval io_timeout{};
    io_timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    // Drain the request head (best-effort: stop at the blank line or once
    // 4 KiB arrived); the response is the same regardless of path or verb.
    char buf[4096];
    std::size_t got = 0;
    while (got < sizeof(buf)) {
      const ssize_t n = ::read(conn, buf + got, sizeof(buf) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
      if (std::string_view(buf, got).find("\r\n\r\n") !=
          std::string_view::npos) {
        break;
      }
    }
    const std::string body = scrape_prometheus();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < resp.size()) {
      // MSG_NOSIGNAL, never raw write: the host may be `genet train`, which
      // does not ignore SIGPIPE, and a scraper hanging up mid-response must
      // not kill a training run.
      const ssize_t n = ::send(conn, resp.data() + sent, resp.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

}  // namespace netgym::telemetry
