#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "netgym/telemetry.hpp"

namespace netgym::telemetry {

// Live metrics exposition (DESIGN.md S5j): a read-only, localhost-only ops
// endpoint rendering the telemetry Registry in Prometheus text exposition
// format, so a long training run or the serving daemon can be scraped
// mid-flight without touching log files.
//
// Threat model / contract: the listener binds 127.0.0.1 only, never parses
// request bodies beyond discarding the header block, and answers every
// request with the same read-only snapshot rendering -- there is no write
// surface. Strictly observational: serving a scrape takes Registry::snapshot
// (already concurrency-safe), never draws RNG and never touches training or
// serving state, so runs with the endpoint enabled are bit-identical to runs
// without it at any thread or worker count.

/// Render Registry entries as Prometheus text exposition: `# TYPE` comments
/// followed by samples. Metric names are sanitized ('.' and '-' become '_');
/// counters and gauges map directly, timers and histograms render as
/// summaries (quantile-labelled samples plus `_sum`/`_count`).
std::string render_prometheus(const std::vector<Registry::Entry>& entries);

/// render_prometheus(Registry::instance().snapshot()).
std::string scrape_prometheus();

/// Minimal HTTP/1.0 listener serving scrape_prometheus() on every request.
class MetricsEndpoint {
 public:
  MetricsEndpoint() = default;
  ~MetricsEndpoint() { stop(); }

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start the accept
  /// thread. Throws std::runtime_error if the socket cannot be bound.
  void start(int port);

  /// Close the listener and join the accept thread. Idempotent.
  void stop();

  /// The bound TCP port (resolves the ephemeral port when started with 0);
  /// 0 when not running.
  int port() const { return port_; }

  bool running() const { return fd_ >= 0; }

 private:
  void serve_loop(int wake_fd);

  int fd_ = -1;
  int stop_fd_ = -1;  ///< write end of the self-pipe waking the accept loop
  int port_ = 0;
  std::thread thread_;
};

}  // namespace netgym::telemetry
