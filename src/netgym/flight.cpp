#include "netgym/flight.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <tuple>

#include "netgym/parse.hpp"
#include "netgym/telemetry.hpp"

namespace netgym::flight {

namespace {

/// Submission-order-independent ranking: worse episodes sort first.
bool worse_than(const EpisodeRecord& a, const EpisodeRecord& b) {
  return std::tie(a.mean_reward, a.total_reward, a.steps, a.task) <
         std::tie(b.mean_reward, b.total_reward, b.steps, b.task);
}

void append_jsonl_line(std::string& out, const EpisodeRecord& rec) {
  char buf[96];
  out += "{\"task\":";
  telemetry::json::append_string(out, rec.task);
  out += ",\"total_reward\":";
  telemetry::json::append_double(out, rec.total_reward);
  out += ",\"mean_reward\":";
  telemetry::json::append_double(out, rec.mean_reward);
  std::snprintf(buf, sizeof(buf), ",\"steps\":%" PRId64 ",\"truncated\":%s",
                rec.steps, rec.truncated ? "true" : "false");
  out += buf;
  out += ",\"actions\":[";
  for (std::size_t i = 0; i < rec.actions.size(); ++i) {
    if (i > 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf), "%d", rec.actions[i]);
    out += buf;
  }
  out += "],\"rewards\":[";
  for (std::size_t i = 0; i < rec.rewards.size(); ++i) {
    if (i > 0) out.push_back(',');
    telemetry::json::append_double(out, rec.rewards[i]);
  }
  out += "],\"fields\":{";
  for (std::size_t f = 0; f < rec.field_names.size(); ++f) {
    if (f > 0) out.push_back(',');
    telemetry::json::append_string(out, rec.field_names[f]);
    out += ":[";
    const auto& vals = rec.fields[f];
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (i > 0) out.push_back(',');
      telemetry::json::append_double(out, vals[i]);
    }
    out += "]";
  }
  out += "}}\n";
}

}  // namespace

EpisodeCapture::EpisodeCapture(const char* task,
                               std::initializer_list<const char*> fields) {
  rec_.task = task;
  rec_.field_names.reserve(fields.size());
  for (const char* name : fields) rec_.field_names.emplace_back(name);
  rec_.fields.resize(rec_.field_names.size());
}

void EpisodeCapture::add(int action, double reward,
                         std::initializer_list<double> values) {
  rec_.total_reward += reward;
  ++rec_.steps;
  if (static_cast<std::size_t>(rec_.steps) > kMaxStepsCaptured) {
    rec_.truncated = true;
    return;
  }
  rec_.actions.push_back(action);
  rec_.rewards.push_back(reward);
  std::size_t f = 0;
  for (double v : values) {
    if (f < rec_.fields.size()) rec_.fields[f].push_back(v);
    ++f;
  }
}

EpisodeRecord EpisodeCapture::finish() {
  rec_.mean_reward =
      rec_.steps > 0 ? rec_.total_reward / static_cast<double>(rec_.steps)
                     : 0.0;
  return std::move(rec_);
}

Recorder& Recorder::instance() {
  // Immortal for the same reason as the trace registry: the atexit dump hook
  // and late env teardown must never observe a destroyed recorder.
  static Recorder* recorder = new Recorder;
  return *recorder;
}

void Recorder::enable(int worst_k) {
  std::lock_guard<std::mutex> lock(mu_);
  worst_k_ = std::max(worst_k, 1);
  enabled_.store(true, std::memory_order_relaxed);
}

void Recorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Recorder::submit(EpisodeRecord rec) {
  if (!enabled()) return;
  seen_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos =
      std::upper_bound(worst_.begin(), worst_.end(), rec, worse_than);
  if (worst_.size() >= static_cast<std::size_t>(worst_k_) &&
      pos == worst_.end()) {
    return;  // not worse than anything retained
  }
  worst_.insert(pos, std::move(rec));
  if (worst_.size() > static_cast<std::size_t>(worst_k_)) worst_.pop_back();
}

std::vector<EpisodeRecord> Recorder::worst() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worst_;
}

void Recorder::write_jsonl(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("flight: cannot open output file " + path);
  }
  std::string line;
  for (const EpisodeRecord& rec : worst()) {
    line.clear();
    append_jsonl_line(line, rec);
    std::fwrite(line.data(), 1, line.size(), out);
  }
  std::fclose(out);
}

void Recorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  worst_.clear();
  seen_.store(0, std::memory_order_relaxed);
}

std::unique_ptr<EpisodeCapture> begin_episode(
    const char* task, std::initializer_list<const char*> fields) {
  if (!Recorder::instance().enabled()) return nullptr;
  return std::make_unique<EpisodeCapture>(task, fields);
}

void submit(std::unique_ptr<EpisodeCapture> capture) {
  if (capture == nullptr) return;
  Recorder::instance().submit(capture->finish());
}

namespace {
std::string* g_atexit_path = nullptr;
}  // namespace

void install(const std::string& path, int worst_k) {
  Recorder::instance();  // constructed before the atexit hook registers
  if (g_atexit_path == nullptr) {
    g_atexit_path = new std::string(path);
    std::atexit([] {
      try {
        Recorder::instance().write_jsonl(*g_atexit_path);
      } catch (const std::exception&) {
        // Nothing useful to do with an I/O failure during process exit.
      }
    });
  } else {
    *g_atexit_path = path;
  }
  Recorder::instance().enable(worst_k);
}

bool install_from_env() {
  Recorder& recorder = Recorder::instance();
  if (recorder.enabled()) return true;
  const char* path = std::getenv("GENET_FLIGHT");
  if (path == nullptr || path[0] == '\0') return false;
  // Strict parse: GENET_FLIGHT_K must be a positive integer or unset.
  // Garbage, zero, or negative values used to slide through atoi and hand
  // install() an invalid worst_k; now they throw std::invalid_argument.
  const int worst_k = static_cast<int>(env_i64("GENET_FLIGHT_K", 8, 1, 1u << 20));
  install(path, worst_k);
  return true;
}

}  // namespace netgym::flight
