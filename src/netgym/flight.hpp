#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace netgym::flight {

// Episode flight recorder: behind a flag, environments capture step-level
// records (action, reward, and a few named env internals -- buffer level,
// queue delay, server backlog) and the worst-k episodes by mean reward are
// dumped as JSONL for tail debugging. Off by default: when disabled,
// begin_episode returns null and environments pay one pointer check per step.
//
// Determinism contract: the recorder never draws from an netgym::Rng, never
// reorders or skips work, and only *copies* values the env already computed,
// so enabling it cannot change any simulated or trained number at any thread
// count (pinned in parallel_determinism_test). Ranking ties are broken by
// (mean reward, total reward, steps, task) so the retained set itself is
// independent of submission order.

/// Everything captured for one episode. Step-level vectors are truncated at
/// kMaxStepsCaptured (`truncated` set, `steps` still counts every step).
struct EpisodeRecord {
  std::string task;                      ///< "abr" / "cc" / "lb"
  std::vector<std::string> field_names;  ///< env-internal channel names
  std::vector<int> actions;
  std::vector<double> rewards;
  std::vector<std::vector<double>> fields;  ///< one vector per field name
  double total_reward = 0.0;
  double mean_reward = 0.0;
  std::int64_t steps = 0;
  bool truncated = false;
};

inline constexpr std::size_t kMaxStepsCaptured = 4096;

/// Per-episode capture buffer owned by an env between reset() and the done
/// step. Not thread-safe (an env runs an episode on one thread).
class EpisodeCapture {
 public:
  EpisodeCapture(const char* task, std::initializer_list<const char*> fields);

  /// Append one step. `values` must match the field list length.
  void add(int action, double reward, std::initializer_list<double> values);

  /// Finalize totals and hand the record off.
  EpisodeRecord finish();

 private:
  EpisodeRecord rec_;
};

/// Process-wide worst-k sink.
class Recorder {
 public:
  static Recorder& instance();

  /// Start retaining the `worst_k` lowest-mean-reward episodes.
  void enable(int worst_k);
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void submit(EpisodeRecord rec);

  /// Retained episodes, worst (lowest mean reward) first.
  std::vector<EpisodeRecord> worst() const;

  std::uint64_t episodes_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }

  /// One JSON object per line, worst episode first; throws std::runtime_error
  /// if the file cannot be opened.
  void write_jsonl(const std::string& path) const;

  /// Drop retained episodes and the seen count (keeps enabled state).
  void reset();

 private:
  Recorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seen_{0};
  int worst_k_ = 8;
  mutable std::mutex mu_;
  std::vector<EpisodeRecord> worst_;  ///< sorted, worst first
};

/// Null when the recorder is disabled; envs call this from reset().
std::unique_ptr<EpisodeCapture> begin_episode(
    const char* task, std::initializer_list<const char*> fields);

/// Finish `capture` and submit it; no-op on null. Envs call this on the done
/// step; the pointer is consumed either way.
void submit(std::unique_ptr<EpisodeCapture> capture);

/// enable(worst_k) now and register an atexit hook dumping JSONL to `path`.
void install(const std::string& path, int worst_k = 8);

/// `install(getenv("GENET_FLIGHT"), getenv("GENET_FLIGHT_K") or 8)` when the
/// path variable is set and the recorder is not already enabled. Returns true
/// if the recorder is enabled after the call.
bool install_from_env();

}  // namespace netgym::flight
