#include "netgym/health.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "netgym/telemetry.hpp"

namespace netgym::health {

Watchdog& Watchdog::instance() {
  static Watchdog watchdog;
  return watchdog;
}

void Watchdog::enable(Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  enabled_ = true;
  // Test-only hook (pinned by the cli_health_fail_fast ctest): pretend every
  // observed update carried a NaN, without touching any training state, so
  // the alert path and the fail-fast abort can be exercised cheaply.
  const char* inject = std::getenv("GENET_HEALTH_INJECT_NAN");
  inject_non_finite_ = inject != nullptr && inject[0] != '\0';
}

void Watchdog::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
}

bool Watchdog::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

Options Watchdog::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

std::uint64_t Watchdog::checks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_;
}

std::uint64_t Watchdog::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

void Watchdog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  checks_ = 0;
  alerts_ = 0;
  below_entropy_floor_ = false;
  reward_stalled_ = false;
  has_best_reward_ = false;
  best_reward_ = 0.0;
  last_improvement_step_ = 0;
  grad_history_.clear();
  grad_history_sum_ = 0.0;
}

void Watchdog::emit_alert(const IterationHealth& h, const std::string& kind,
                          const std::string& message, double value,
                          double threshold) {
  // Called with mu_ held. The counter/log writes are the observational part;
  // nothing here reads back into training.
  ++alerts_;
  namespace tel = netgym::telemetry;
  tel::Registry::instance().counter("health.alerts").add();
  tel::Registry::instance().counter("health.alert." + kind).add();
  if (tel::logging_enabled()) {
    tel::log_event("alert", h.step,
                   {{"kind", kind},
                    {"message", message},
                    {"value", value},
                    {"threshold", threshold}});
  }
}

void Watchdog::observe(const IterationHealth& input) {
  namespace tel = netgym::telemetry;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  ++checks_;

  IterationHealth h = input;
  if (inject_non_finite_ && !h.non_finite) {
    h.non_finite = true;
    h.non_finite_what = "injected by GENET_HEALTH_INJECT_NAN (test hook)";
  }

  // Publish the raw statistics first, so even a fail-fast abort leaves the
  // evidence behind. Registry metrics are cached once per process.
  static tel::Histogram& actor_norms =
      tel::Registry::instance().histogram("rl.actor_grad_norm");
  static tel::Histogram& critic_norms =
      tel::Registry::instance().histogram("rl.critic_grad_norm");
  static tel::Histogram& kls =
      tel::Registry::instance().histogram("rl.approx_kl");
  static tel::Histogram& evs =
      tel::Registry::instance().histogram("rl.explained_variance");
  static tel::Gauge& entropy_gauge =
      tel::Registry::instance().gauge("health.mean_entropy");
  static tel::Gauge& best_reward_gauge =
      tel::Registry::instance().gauge("health.best_reward");
  static tel::Counter& check_counter =
      tel::Registry::instance().counter("health.checks");
  actor_norms.record(h.actor_grad_norm);
  critic_norms.record(h.critic_grad_norm);
  kls.record(h.approx_kl);
  evs.record(h.explained_variance);
  entropy_gauge.set(h.mean_entropy);
  check_counter.add();
  if (tel::logging_enabled()) {
    tel::log_event(
        "health", h.step,
        {{"mean_entropy", h.mean_entropy},
         {"mean_episode_reward", h.mean_episode_reward},
         {"actor_grad_norm", h.actor_grad_norm},
         {"actor_grad_norm_clipped", h.actor_grad_norm_clipped},
         {"critic_grad_norm", h.critic_grad_norm},
         {"critic_grad_norm_clipped", h.critic_grad_norm_clipped},
         {"approx_kl", h.approx_kl},
         {"explained_variance", h.explained_variance},
         {"non_finite", static_cast<std::int64_t>(h.non_finite ? 1 : 0)}});
  }

  // Rule 1: non-finite sentinels. Fatal under fail-fast -- a NaN in the
  // losses or parameters never recovers; every later update is garbage.
  if (h.non_finite) {
    tel::Registry::instance().counter("health.non_finite").add();
    emit_alert(h, "non_finite",
               "non-finite value detected: " + h.non_finite_what,
               std::numeric_limits<double>::quiet_NaN(), 0.0);
    if (options_.fail_fast) {
      throw HealthError("health watchdog: non-finite value at iteration " +
                        std::to_string(h.step) + " (" + h.non_finite_what +
                        "); aborting under fail-fast");
    }
  }

  // Rule 2: entropy collapse. Fires on the transition below the floor, once
  // per excursion.
  const bool below_floor = h.mean_entropy < options_.entropy_floor;
  if (below_floor && !below_entropy_floor_) {
    emit_alert(h, "entropy_collapse",
               "mean policy entropy fell below the floor", h.mean_entropy,
               options_.entropy_floor);
  }
  below_entropy_floor_ = below_floor;

  // Rule 3: reward stall. Tracks the best mean episode reward seen and fires
  // once when it has not improved for reward_stall_iters iterations.
  if (options_.reward_stall_iters > 0) {
    if (!has_best_reward_ || h.mean_episode_reward > best_reward_) {
      has_best_reward_ = true;
      best_reward_ = h.mean_episode_reward;
      last_improvement_step_ = h.step;
      reward_stalled_ = false;
      best_reward_gauge.set(best_reward_);
    } else if (!reward_stalled_ &&
               h.step - last_improvement_step_ >= options_.reward_stall_iters) {
      reward_stalled_ = true;
      emit_alert(h, "reward_stalled",
                 "best mean episode reward unimproved for " +
                     std::to_string(h.step - last_improvement_step_) +
                     " iterations",
                 h.mean_episode_reward, best_reward_);
    }
  }

  // Rule 4: gradient spike. Compares the pre-clip actor norm to its rolling
  // mean; the spike itself still enters the window (a run that jumps to a
  // new regime alerts once, not forever).
  if (options_.grad_spike_factor > 0 && options_.grad_window > 0 &&
      std::isfinite(h.actor_grad_norm)) {
    if (static_cast<int>(grad_history_.size()) >= options_.grad_window) {
      const double mean =
          grad_history_sum_ / static_cast<double>(grad_history_.size());
      if (mean > 0.0 &&
          h.actor_grad_norm > options_.grad_spike_factor * mean) {
        emit_alert(h, "grad_spike",
                   "actor gradient norm spiked above its rolling mean",
                   h.actor_grad_norm, options_.grad_spike_factor * mean);
      }
      grad_history_sum_ -= grad_history_.front();
      grad_history_.pop_front();
    }
    grad_history_.push_back(h.actor_grad_norm);
    grad_history_sum_ += h.actor_grad_norm;
  }
}

bool enabled() { return Watchdog::instance().enabled(); }

bool install_from_env() {
  if (Watchdog::instance().enabled()) return true;
  const char* path = std::getenv("GENET_HEALTH");
  if (path == nullptr || path[0] == '\0') return false;
  Options options;
  const char* fail_fast = std::getenv("GENET_HEALTH_FAIL_FAST");
  options.fail_fast = fail_fast != nullptr && fail_fast[0] != '\0' &&
                      fail_fast[0] != '0';
  Watchdog::instance().enable(options);
  open_logger_from_env();
  return true;
}

bool open_logger_from_env() {
  if (netgym::telemetry::logging_enabled()) return true;
  const char* path = std::getenv("GENET_HEALTH");
  if (path == nullptr || path[0] == '\0') return false;
  netgym::telemetry::open_global_logger(path);
  return true;
}

}  // namespace netgym::health
