#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>

namespace netgym::health {

// Training-health watchdog: the semantic layer on top of the telemetry
// registry and JSONL RunLogger. The tracing/histogram layers record *where
// time goes*; this module records *whether learning is working*: per-update
// gradient norms, approximate update-KL, value-function explained variance,
// and NaN/Inf sentinels, evaluated against a small rule set (entropy floor,
// reward stall, gradient spike, non-finite anywhere). Rule violations become
// structured `alert` JSONL records; with fail-fast enabled a non-finite
// sentinel aborts the run (HealthError) instead of training on garbage.
//
// Determinism contract (DESIGN.md S5e): the watchdog is strictly
// observational. It never draws from an netgym::Rng, is only fed from serial
// trainer sections after the gradient update, and the extra statistics the
// trainer computes for it (forward passes for the update-KL, parameter
// scans for the sentinels) read but never write training state -- so
// enabling health monitoring leaves trained parameters bit-identical to a
// run with it disabled, at any thread count (pinned in
// parallel_determinism_test).

/// Thresholds of the watchdog rules. Defaults are loose on purpose: they are
/// meant to catch divergence (entropy collapse, exploding gradients, NaN),
/// not to grade a healthy run.
struct Options {
  /// Alert when the mean policy entropy drops below this floor (a policy
  /// frozen into near-deterministic actions long before the entropy-bonus
  /// schedule ends has usually collapsed).
  double entropy_floor = 0.01;
  /// Alert when the best mean episode reward has not improved for this many
  /// iterations (0 disables the rule).
  int reward_stall_iters = 200;
  /// Alert when the pre-clip actor gradient norm exceeds this multiple of
  /// its rolling mean (0 disables the rule).
  double grad_spike_factor = 10.0;
  /// Window of the rolling gradient-norm mean backing the spike rule.
  int grad_window = 50;
  /// Abort the run (throw HealthError) on any non-finite sentinel instead of
  /// continuing to train on garbage.
  bool fail_fast = false;
};

/// Per-update health statistics, computed by rl::ActorCriticBase only while
/// the watchdog is enabled (they cost extra forward passes and parameter
/// scans -- none of which consume RNG or mutate training state).
struct IterationHealth {
  std::int64_t step = 0;            ///< train_iteration index
  double mean_entropy = 0.0;        ///< mean policy entropy over the batch
  double mean_episode_reward = 0.0;
  double actor_grad_norm = 0.0;          ///< pre-clip L2 norm
  double actor_grad_norm_clipped = 0.0;  ///< after Adam's max-norm rescale
  double critic_grad_norm = 0.0;
  double critic_grad_norm_clipped = 0.0;
  /// Approximate KL(old || new) on the batch: mean over taken actions of
  /// log p_old(a|s) - log p_new(a|s), old = pre-update parameters.
  double approx_kl = 0.0;
  /// 1 - Var(returns - values) / Var(returns); near 1 when the critic
  /// explains the return signal, near 0 (or negative) when it does not.
  double explained_variance = 0.0;
  bool non_finite = false;          ///< any NaN/Inf in losses/grads/params
  std::string non_finite_what;      ///< which sentinel fired
};

/// Thrown by the watchdog under fail-fast when a non-finite sentinel fires.
class HealthError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide health watchdog. `observe` evaluates the rules on one
/// iteration's statistics, publishes them to the telemetry Registry
/// (histograms + gauges) and the JSONL stream (one `health` record per
/// update, one `alert` record per rule violation), and throws HealthError
/// under fail-fast on non-finite input. Call `observe` from serial sections
/// only (it is mutex-guarded, but the determinism contract assumes the
/// trainer's post-update position).
class Watchdog {
 public:
  static Watchdog& instance();

  void enable(Options options = {});
  void disable();
  bool enabled() const;
  Options options() const;

  /// Evaluate rules on one update's statistics; no-op while disabled.
  void observe(const IterationHealth& h);

  std::uint64_t checks() const;  ///< observe calls since enable/reset
  std::uint64_t alerts() const;  ///< rule violations since enable/reset

  /// Clear rule state and counters (the options stay).
  void reset();

 private:
  Watchdog() = default;

  void emit_alert(const IterationHealth& h, const std::string& kind,
                  const std::string& message, double value, double threshold);

  mutable std::mutex mu_;
  bool enabled_ = false;
  bool inject_non_finite_ = false;  // GENET_HEALTH_INJECT_NAN test hook
  Options options_;
  std::uint64_t checks_ = 0;
  std::uint64_t alerts_ = 0;
  // Rule state: alerts fire on the *transition* into a bad regime, not on
  // every iteration spent there, so a long collapse is one record.
  bool below_entropy_floor_ = false;
  bool reward_stalled_ = false;
  bool has_best_reward_ = false;
  double best_reward_ = 0.0;
  std::int64_t last_improvement_step_ = 0;
  std::deque<double> grad_history_;
  double grad_history_sum_ = 0.0;
};

/// True when the process-wide watchdog is enabled (lets trainers skip the
/// extra health statistics entirely when nobody is watching).
bool enabled();

/// Enable the watchdog from the environment if GENET_HEALTH is set and the
/// watchdog is not enabled yet (GENET_HEALTH also names the JSONL sink --
/// see open_logger_from_env below). GENET_HEALTH_FAIL_FAST=1 turns on
/// fail-fast. Returns true when the watchdog is enabled after the call.
bool install_from_env();

/// If GENET_HEALTH names a path and no global telemetry logger is installed
/// yet, open one there so health/alert/provenance records have somewhere to
/// land. Returns true if a logger is installed after the call.
bool open_logger_from_env();

}  // namespace netgym::health
