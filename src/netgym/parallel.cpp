#include "netgym/parallel.hpp"

#include <memory>

#include "netgym/parse.hpp"
#include "netgym/tracing.hpp"

namespace netgym {

namespace {

/// True on any thread currently executing pool items — both threads owned by
/// a ThreadPool and a caller participating in its own job. Nested for_each
/// calls from such a thread run inline instead of re-entering the pool,
/// which would deadlock (caller) or corrupt the in-flight job (worker).
thread_local bool t_inside_pool_worker = false;

/// Scoped setter for t_inside_pool_worker (exception-safe restore).
struct InsidePoolScope {
  InsidePoolScope() { t_inside_pool_worker = true; }
  ~InsidePoolScope() { t_inside_pool_worker = false; }
};

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int t = 0; t < threads_ - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_items(const std::function<void(std::size_t)>& fn,
                           std::size_t n) {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      // Per-item span in the *worker's* thread-local ring: the trace shows
      // which thread ran which item index.
      tracing::TraceSpan span("pool.item", "pool",
                              static_cast<std::int64_t>(i));
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  std::uint64_t last_job = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || job_id_ != last_job; });
    if (shutdown_) return;
    last_job = job_id_;
    const std::function<void(std::size_t)>* fn = job_fn_;
    const std::size_t n = job_n_;
    lock.unlock();
    {
      tracing::TraceSpan span("pool.job", "pool",
                              static_cast<std::int64_t>(n));
      run_items(*fn, n);
    }
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial fallback: one-thread pool, trivial jobs, and nested calls from a
  // worker all run inline on the calling thread.
  if (threads_ == 1 || n == 1 || t_inside_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One job at a time: a second non-worker caller blocks here until the
  // current job fully drains, instead of overwriting its state.
  std::lock_guard<std::mutex> job_lock(job_serial_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = static_cast<int>(workers_.size());
    ++job_id_;
  }
  work_cv_.notify_all();
  {
    // The caller is a full participant; while it runs items, nested for_each
    // calls from those items must go inline like on any other worker.
    InsidePoolScope inside;
    tracing::TraceSpan span("pool.job", "pool", static_cast<std::int64_t>(n));
    run_items(fn, n);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  job_fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;   // guarded by g_pool_mu
int g_requested_threads = 0;          // 0 = unset, fall back to the default

/// Worker-thread ceiling for the GENET_THREADS knob: far above any sane pool
/// size, but low enough to catch a pasted timestamp or byte count.
constexpr std::int64_t kMaxThreads = 4096;

int default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  // Strict parse: GENET_THREADS=abc or =2x throws instead of silently
  // falling back to hardware concurrency (the pre-strict atoi behaviour).
  return static_cast<int>(env_i64("GENET_THREADS", hw_threads, 1, kMaxThreads));
}

/// The global pool, created on first use; call with g_pool_mu held.
ThreadPool& global_pool_locked() {
  if (!g_pool) {
    const int threads =
        g_requested_threads >= 1 ? g_requested_threads : default_thread_count();
    g_pool = std::make_unique<ThreadPool>(threads);
  }
  return *g_pool;
}

}  // namespace

int num_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return global_pool_locked().threads();
}

void set_num_threads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = n < 1 ? 0 : n;
  g_pool.reset();  // next parallel_for_each rebuilds at the new size
}

void parallel_for_each(std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    pool = &global_pool_locked();
  }
  pool->for_each(n, fn);
}

}  // namespace netgym
