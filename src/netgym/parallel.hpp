#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netgym {

/// A small fixed-size pool of worker threads used by every hot loop in the
/// library (rollout collection, Genet's gap evaluations, the bench sweeps).
///
/// The pool executes index-based jobs: `for_each(n, fn)` runs `fn(i)` for
/// every `i` in `[0, n)`, distributing indices across the workers plus the
/// calling thread, and blocks until all items finished. Work items must only
/// touch per-index state (their own result slot, their own pre-forked Rng);
/// under that contract the execution schedule is invisible and parallel
/// results are bit-identical to serial ones (see DESIGN.md, "Threading
/// model").
///
/// Nested `for_each` calls issued from inside a worker run inline on that
/// worker, so composed parallel loops (a bench sweep whose body trains a
/// policy) never deadlock and never oversubscribe.
class ThreadPool {
 public:
  /// Creates `threads - 1` workers (the caller is the remaining thread);
  /// values below 1 are clamped to 1, which makes the pool fully serial.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a job, including the caller (>= 1).
  int threads() const { return threads_; }

  /// Run `fn(0) .. fn(n-1)`, possibly in parallel; blocks until every item
  /// completed. The first exception thrown by any item is rethrown here
  /// (remaining items still run). Safe to call from inside a running item
  /// (the nested call runs inline) and from concurrent non-worker threads
  /// (their jobs serialize).
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_items(const std::function<void(std::size_t)>& fn, std::size_t n);

  int threads_;
  std::vector<std::thread> workers_;

  /// Held by the publishing caller for a job's whole lifetime, so two
  /// non-worker threads submitting jobs concurrently serialize instead of
  /// clobbering each other's job state.
  std::mutex job_serial_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job, published under mu_ with a fresh job_id_; workers latch the
  // id so each job is executed exactly once per worker.
  std::uint64_t job_id_ = 0;
  std::size_t job_n_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::atomic<std::size_t> next_index_{0};
  int active_workers_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// Number of threads the global pool uses (>= 1). Resolution order: the last
/// `set_num_threads` call, else the `GENET_THREADS` environment variable,
/// else the hardware concurrency.
int num_threads();

/// Resize the global pool: `n >= 1` pins it to exactly `n` threads, `n <= 0`
/// resets to the default (GENET_THREADS or hardware concurrency). Takes
/// effect immediately; must not race with an in-flight parallel_for_each.
void set_num_threads(int n);

/// Run `fn(i)` for `i` in `[0, n)` on the global pool. Serial when the pool
/// has one thread, when `n <= 1`, or when called from inside a pool worker;
/// parallel otherwise. Blocks until all items finish and rethrows the first
/// exception. Items must only touch per-index state.
void parallel_for_each(std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace netgym
