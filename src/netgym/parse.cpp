#include "netgym/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace netgym {

bool parse_i64(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  // strtoll silently skips leading whitespace; " 12" is not a valid knob.
  if (text.front() != '+' && text.front() != '-' &&
      (text.front() < '0' || text.front() > '9')) {
    return false;
  }
  // strtoll needs a NUL-terminated buffer; string_views into larger buffers
  // (flag values, env vars) are short, so one small copy is fine here.
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return false;
  if (end != buf.c_str() + buf.size()) return false;  // trailing junk / empty
  out = static_cast<std::int64_t>(value);
  return true;
}

std::int64_t parse_i64_in_range(const char* what, std::string_view text,
                                std::int64_t lo, std::int64_t hi) {
  std::int64_t value = 0;
  if (!parse_i64(text, value)) {
    throw std::invalid_argument(std::string(what) + ": expected an integer, got '" +
                                std::string(text) + "'");
  }
  if (value < lo || value > hi) {
    throw std::invalid_argument(std::string(what) + ": value " +
                                std::to_string(value) + " out of range [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                "]");
  }
  return value;
}

std::int64_t env_i64(const char* name, std::int64_t fallback, std::int64_t lo,
                     std::int64_t hi) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return fallback;
  return parse_i64_in_range(name, text, lo, hi);
}

bool parse_f64(std::string_view text, double& out) {
  if (text.empty()) return false;
  // strtod skips leading whitespace and accepts "inf"/"nan"; a knob value
  // must start with a digit, sign, or decimal point.
  const char first = text.front();
  if (first != '+' && first != '-' && first != '.' &&
      (first < '0' || first > '9')) {
    return false;
  }
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return false;  // overflow or denormal underflow
  if (end != buf.c_str() + buf.size()) return false;  // trailing junk / empty
  if (!std::isfinite(value)) return false;  // "+inf", "-nan", ...
  out = value;
  return true;
}

double parse_f64_in_range(const char* what, std::string_view text, double lo,
                          double hi) {
  double value = 0.0;
  if (!parse_f64(text, value)) {
    throw std::invalid_argument(std::string(what) + ": expected a number, got '" +
                                std::string(text) + "'");
  }
  if (value < lo || value > hi) {
    throw std::invalid_argument(std::string(what) + ": value " +
                                std::to_string(value) + " out of range [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                "]");
  }
  return value;
}

double env_f64(const char* name, double fallback, double lo, double hi) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return fallback;
  return parse_f64_in_range(name, text, lo, hi);
}

}  // namespace netgym
