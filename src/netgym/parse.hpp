#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace netgym {

// Strict numeric parsing shared by every knob surface (CLI flags, environment
// variables, daemon options). The contract, matching genet_cli's validated
// flag parsing: the *entire* string must be consumed (trailing junk like
// "2x" is an error, leading whitespace follows strtoll's rules), overflow is
// an error, and range violations are errors -- never a silent fallback.
// Environment-variable knobs configure long-lived processes (genet_serve), so
// a typo'd value must kill the process with a clear message, not quietly
// select a default.

/// Parse `text` as a base-10 signed 64-bit integer, requiring the whole
/// string to be consumed. Returns false on empty input, garbage, trailing
/// characters, or overflow; `out` is untouched on failure.
bool parse_i64(std::string_view text, std::int64_t& out);

/// Parse `text` into [lo, hi], throwing std::invalid_argument naming `what`
/// (a flag or variable name, used verbatim in the message) on garbage or
/// out-of-range values.
std::int64_t parse_i64_in_range(const char* what, std::string_view text,
                                std::int64_t lo, std::int64_t hi);

/// Read environment variable `name` as an integer in [lo, hi]. Unset or
/// empty returns `fallback`; anything else must strict-parse into range or
/// this throws std::invalid_argument naming the variable -- garbage in an
/// env knob fails loudly instead of silently picking the default.
std::int64_t env_i64(const char* name, std::int64_t fallback, std::int64_t lo,
                     std::int64_t hi);

/// Parse `text` as a finite double, requiring the whole string to be
/// consumed (mirrors parse_i64: no leading whitespace, trailing junk is an
/// error). Overflow/underflow (ERANGE) and non-finite results ("inf", "nan")
/// are errors; `out` is untouched on failure.
bool parse_f64(std::string_view text, double& out);

/// Parse `text` into [lo, hi], throwing std::invalid_argument naming `what`
/// on garbage or out-of-range values (float analogue of parse_i64_in_range).
double parse_f64_in_range(const char* what, std::string_view text, double lo,
                          double hi);

/// Read environment variable `name` as a double in [lo, hi]. Unset or empty
/// returns `fallback`; anything else must strict-parse into range or this
/// throws std::invalid_argument naming the variable.
double env_f64(const char* name, double fallback, double lo, double hi);

}  // namespace netgym
