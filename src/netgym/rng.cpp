#include "netgym/rng.hpp"

#include <algorithm>
#include <cmath>
#include <locale>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace netgym {

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::gaussian(double mean, double sd) {
  if (sd < 0) throw std::invalid_argument("Rng::gaussian: sd < 0");
  if (sd == 0) return mean;
  return std::normal_distribution<double>(mean, sd)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::pareto(double shape, double scale) {
  if (shape <= 0 || scale <= 0) {
    throw std::invalid_argument("Rng::pareto: shape and scale must be > 0");
  }
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  // Inverse-CDF sampling; 1-u avoids u == 0 producing infinity.
  return scale / std::pow(1.0 - u, 1.0 / shape);
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(clamped)(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("Rng::categorical: all weights zero");
  }
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  return Rng(engine_());
}

std::string Rng::state() const {
  // The classic locale pins the textual form (plain space-separated decimal
  // words) regardless of any global locale the host application installed.
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << engine_;
  return out.str();
}

void Rng::set_state(const std::string& state) {
  std::istringstream in(state);
  in.imbue(std::locale::classic());
  std::mt19937_64 parsed;
  if (!(in >> parsed)) {
    throw std::invalid_argument("Rng::set_state: malformed engine state");
  }
  engine_ = parsed;
}

}  // namespace netgym
