#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace netgym {

/// Seeded random-number generator used by every stochastic component in the
/// library. There is deliberately no global RNG: each simulator, trainer, and
/// search procedure receives (or owns) an `Rng`, which makes every experiment
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform real in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Gaussian sample with the given mean and standard deviation (sd >= 0).
  double gaussian(double mean, double sd);

  /// Exponential sample with the given rate (rate > 0).
  double exponential(double rate);

  /// Pareto sample with the given shape and scale (both > 0).
  double pareto(double shape, double scale);

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Index sampled from a discrete distribution with the given non-negative
  /// weights. Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derive an independent child generator; used to hand each parallel
  /// component its own stream.
  Rng fork();

  /// Full engine state as a portable text string (the standard mt19937_64
  /// stream representation), used by the checkpoint subsystem to make
  /// resumed runs draw the exact same stream as uninterrupted ones.
  std::string state() const;

  /// Restore a state captured by `state()`. Parses into a temporary first,
  /// so a malformed string throws std::invalid_argument without perturbing
  /// the current stream.
  void set_state(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace netgym
