#include "netgym/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netgym {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile_sorted(const std::vector<double>& xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double percentile(const std::vector<double>& xs, double p) {
  if (std::is_sorted(xs.begin(), xs.end())) return percentile_sorted(xs, p);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double median(const std::vector<double>& xs) { return percentile(xs, 50.0); }

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("pearson: need at least 2 points");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double win_fraction(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("win_fraction: length mismatch");
  }
  if (xs.empty()) return 0.0;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > ys[i]) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(xs.size());
}

}  // namespace netgym
