#pragma once

#include <vector>

namespace netgym {

/// Small statistics toolkit used by the evaluation harnesses (means,
/// percentiles for Fig. 17's 90th-percentile metrics, Pearson correlation for
/// Fig. 6). All functions take their input by const reference and do not
/// modify it.

double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& xs);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
/// Already-sorted input is detected (one O(n) scan) and served without the
/// copy + O(n log n) sort; callers holding sorted data can skip even the scan
/// with `percentile_sorted`.
double percentile(const std::vector<double>& xs, double p);

/// `percentile` for input the caller guarantees is ascending-sorted: no copy,
/// no sort, no sortedness scan. Same interpolation, same exceptions.
double percentile_sorted(const std::vector<double>& xs, double p);

double median(const std::vector<double>& xs);

/// Pearson correlation coefficient; 0 when either series is constant.
/// Throws if the series differ in length or have fewer than 2 points.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fraction of entries for which `xs[i] > ys[i]` (Fig. 15's win fraction).
double win_fraction(const std::vector<double>& xs,
                    const std::vector<double>& ys);

}  // namespace netgym
