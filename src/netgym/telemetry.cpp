#include "netgym/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <stdexcept>

#include "netgym/stats.hpp"

namespace netgym::telemetry {

namespace json {

void append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace json

namespace {

void append_json_value(std::string& out, const FieldValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, *i);
    out += buf;
  } else if (const auto* d = std::get_if<double>(&value)) {
    json::append_double(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    json::append_string(out, *s);
  } else {
    const auto& vec = std::get<std::vector<double>>(value);
    out.push_back('[');
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (i > 0) out.push_back(',');
      json::append_double(out, vec[i]);
    }
    out.push_back(']');
  }
}

/// Relaxed CAS update of an atomic double towards the smaller/larger value.
template <typename Cmp>
void atomic_update_extreme(std::atomic<double>& slot, double v, Cmp better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::mutex g_logger_mu;
std::shared_ptr<RunLogger> g_logger;

}  // namespace

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      pos_(new std::atomic<std::int64_t>[kBucketsPerSign]),
      neg_(new std::atomic<std::int64_t>[kBucketsPerSign]),
      exact_(new std::atomic<double>[kExactCap]) {
  for (int i = 0; i < kBucketsPerSign; ++i) {
    pos_[i].store(0, std::memory_order_relaxed);
    neg_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kExactCap; ++i) {
    exact_[i].store(0.0, std::memory_order_relaxed);
  }
}

int Histogram::bucket_index(double abs_v) {
  // log2(|v| / kMinAbs) scaled to kSubBuckets buckets per octave.
  const int idx =
      static_cast<int>(std::floor(std::log2(abs_v / kMinAbs) * kSubBuckets));
  return std::clamp(idx, 0, kBucketsPerSign - 1);
}

double Histogram::bucket_rep(int index) {
  // Geometric midpoint of the bucket's [lower, upper) magnitude range.
  return kMinAbs *
         std::exp2((static_cast<double>(index) + 0.5) / kSubBuckets);
}

void Histogram::record(double v) {
  if (!std::isfinite(v)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto slot =
      static_cast<std::uint64_t>(n_.fetch_add(1, std::memory_order_relaxed));
  if (slot < kExactCap) exact_[slot].store(v, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_update_extreme(min_, v, std::less<double>());
  atomic_update_extreme(max_, v, std::greater<double>());
  const double abs_v = std::fabs(v);
  if (abs_v < kMinAbs) {
    zero_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // log2(abs_v) - log2(kMinAbs), not log2(abs_v / kMinAbs): the quotient
    // overflows to inf for abs_v near DBL_MAX, which would turn the int cast
    // into UB and file the sample under bucket 0 instead of the saturated
    // tail.
    const int raw = static_cast<int>(
        std::floor((std::log2(abs_v) - std::log2(kMinAbs)) * kSubBuckets));
    if (raw >= kBucketsPerSign) {
      saturated_.fetch_add(1, std::memory_order_relaxed);
    }
    const int idx = std::clamp(raw, 0, kBucketsPerSign - 1);
    (v > 0.0 ? pos_ : neg_)[idx].fetch_add(1, std::memory_order_relaxed);
  }
}

void Histogram::merge(const Histogram& other) {
  // Serial-section operation (see header): plain relaxed loads/stores are
  // enough, and doing the adds in the caller's merge order keeps float sums
  // bit-identical across thread counts.
  dropped_.fetch_add(other.dropped_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  saturated_.fetch_add(other.saturated_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  const std::int64_t add = other.n_.load(std::memory_order_relaxed);
  if (add <= 0) return;
  const std::int64_t self_n = n_.load(std::memory_order_relaxed);
  // Append other's exact samples while slots remain. If the merged count ends
  // up within kExactCap, both inputs were fully exact, so the union is the
  // complete sample set; past the cap snapshot() switches to buckets anyway.
  const std::int64_t take =
      std::min(add, static_cast<std::int64_t>(kExactCap));
  for (std::int64_t i = 0; i < take; ++i) {
    const std::int64_t dst = self_n + i;
    if (dst >= static_cast<std::int64_t>(kExactCap)) break;
    exact_[dst].store(other.exact_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  n_.store(self_n + add, std::memory_order_relaxed);
  sum_.store(sum_.load(std::memory_order_relaxed) +
                 other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  atomic_update_extreme(min_, other.min_.load(std::memory_order_relaxed),
                        std::less<double>());
  atomic_update_extreme(max_, other.max_.load(std::memory_order_relaxed),
                        std::greater<double>());
  zero_.fetch_add(other.zero_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  for (int i = 0; i < kBucketsPerSign; ++i) {
    pos_[i].fetch_add(other.pos_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    neg_[i].fetch_add(other.neg_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = n_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.saturated = saturated_.load(std::memory_order_relaxed);
  if (s.count <= 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  if (static_cast<std::uint64_t>(s.count) <= kExactCap) {
    std::vector<double> xs(static_cast<std::size_t>(s.count));
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = exact_[i].load(std::memory_order_relaxed);
    }
    std::sort(xs.begin(), xs.end());
    s.p50 = percentile_sorted(xs, 50.0);
    s.p90 = percentile_sorted(xs, 90.0);
    s.p99 = percentile_sorted(xs, 99.0);
    s.p999 = percentile_sorted(xs, 99.9);
    s.exact = true;
    return s;
  }
  // Past the exact cap: estimate from the log buckets. Lay the buckets out in
  // ascending value order (negatives from large magnitude to small, the zero
  // bucket, positives from small magnitude to large) and pick the
  // representative value of the bucket containing each target rank. Bucket
  // counts are order-independent sums, so this is deterministic regardless of
  // which threads recorded which samples.
  s.exact = false;
  std::vector<std::pair<double, std::int64_t>> cells;
  cells.reserve(2 * kBucketsPerSign + 1);
  for (int i = kBucketsPerSign - 1; i >= 0; --i) {
    const std::int64_t c = neg_[i].load(std::memory_order_relaxed);
    if (c > 0) cells.emplace_back(-bucket_rep(i), c);
  }
  if (const std::int64_t c = zero_.load(std::memory_order_relaxed); c > 0) {
    cells.emplace_back(0.0, c);
  }
  for (int i = 0; i < kBucketsPerSign; ++i) {
    const std::int64_t c = pos_[i].load(std::memory_order_relaxed);
    if (c > 0) cells.emplace_back(bucket_rep(i), c);
  }
  std::int64_t total = 0;
  for (const auto& [rep, c] : cells) total += c;
  const auto estimate = [&](double p) {
    const auto target = static_cast<std::int64_t>(
        p / 100.0 * static_cast<double>(total - 1));
    std::int64_t cum = 0;
    for (const auto& [rep, c] : cells) {
      cum += c;
      if (cum > target) return std::clamp(rep, s.min, s.max);
    }
    return s.max;
  };
  s.p50 = estimate(50.0);
  s.p90 = estimate(90.0);
  s.p99 = estimate(99.0);
  s.p999 = estimate(99.9);
  return s;
}

void Histogram::reset() {
  n_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  zero_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  saturated_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kBucketsPerSign; ++i) {
    pos_[i].store(0, std::memory_order_relaxed);
    neg_[i].store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

TimerStat& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<TimerStat>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<Registry::Entry> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  entries.reserve(counters_.size() + gauges_.size() + timers_.size());
  for (const auto& [name, c] : counters_) {
    entries.push_back({name, Kind::kCounter,
                       static_cast<double>(c->value()), 0, {}});
  }
  for (const auto& [name, g] : gauges_) {
    entries.push_back({name, Kind::kGauge, g->value(), 0, {}});
  }
  for (const auto& [name, t] : timers_) {
    entries.push_back({name, Kind::kTimer, t->total_seconds(), t->count(), {}});
  }
  for (const auto& [name, h] : histograms_) {
    Entry e;
    e.name = name;
    e.kind = Kind::kHistogram;
    e.hist = h->snapshot();
    e.value = e.hist.sum;
    e.count = e.hist.count;
    entries.push_back(std::move(e));
  }
  // The per-kind maps are each sorted; a full sort keeps the merged snapshot
  // name-ordered regardless of kind.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string format_metrics_table() {
  const auto entries = Registry::instance().snapshot();
  std::string out;
  out.reserve(128 + 96 * entries.size());
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %-9s %10s %14s %12s %12s %12s %12s\n",
                "metric", "kind", "count", "value", "p50", "p90", "p99", "max");
  out += line;
  for (const auto& e : entries) {
    switch (e.kind) {
      case Registry::Kind::kCounter:
        std::snprintf(line, sizeof(line), "%-32s %-9s %10s %14.0f\n",
                      e.name.c_str(), "counter", "", e.value);
        break;
      case Registry::Kind::kGauge:
        std::snprintf(line, sizeof(line), "%-32s %-9s %10s %14.6g\n",
                      e.name.c_str(), "gauge", "", e.value);
        break;
      case Registry::Kind::kTimer:
        std::snprintf(line, sizeof(line), "%-32s %-9s %10" PRId64 " %13.3fs\n",
                      e.name.c_str(), "timer", e.count, e.value);
        break;
      case Registry::Kind::kHistogram:
        std::snprintf(line, sizeof(line),
                      "%-32s %-9s %10" PRId64 " %14.6g %12.6g %12.6g %12.6g "
                      "%12.6g\n",
                      e.name.c_str(), "histogram", e.hist.count,
                      e.hist.count > 0 ? e.hist.sum /
                                             static_cast<double>(e.hist.count)
                                       : 0.0,
                      e.hist.p50, e.hist.p90, e.hist.p99, e.hist.max);
        break;
    }
    out += line;
  }
  return out;
}

RunLogger::RunLogger(std::string path) : path_(std::move(path)) {
  out_ = std::fopen(path_.c_str(), "w");
  if (out_ == nullptr) {
    throw std::runtime_error("RunLogger: cannot open log file " + path_);
  }
}

RunLogger::~RunLogger() {
  if (out_ != nullptr) std::fclose(out_);
}

void RunLogger::event(std::string_view type, std::int64_t step,
                      const Field* begin, const Field* end) {
  std::string line;
  line.reserve(128);
  line += "{\"type\":";
  json::append_string(line, type);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"step\":%" PRId64, step);
  line += buf;
  const auto ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  for (const Field* f = begin; f != end; ++f) {
    line.push_back(',');
    json::append_string(line, f->first);
    line.push_back(':');
    append_json_value(line, f->second);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t seq = events_.fetch_add(1, std::memory_order_relaxed);
    std::snprintf(buf, sizeof(buf),
                  ",\"seq\":%" PRIu64 ",\"ts_ms\":%" PRId64 "}\n", seq,
                  static_cast<std::int64_t>(ts_ms));
    line += buf;
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);  // crash-safe: at most the in-flight line is lost
  }
}

void set_global_logger(std::shared_ptr<RunLogger> logger) {
  std::lock_guard<std::mutex> lock(g_logger_mu);
  g_logger = std::move(logger);
}

void open_global_logger(const std::string& path) {
  set_global_logger(std::make_shared<RunLogger>(path));
}

bool open_global_logger_from_env() {
  {
    std::lock_guard<std::mutex> lock(g_logger_mu);
    if (g_logger != nullptr) return true;
  }
  const char* path = std::getenv("GENET_LOG");
  if (path == nullptr || path[0] == '\0') return false;
  open_global_logger(path);
  return true;
}

std::shared_ptr<RunLogger> global_logger() {
  std::lock_guard<std::mutex> lock(g_logger_mu);
  return g_logger;
}

bool logging_enabled() {
  std::lock_guard<std::mutex> lock(g_logger_mu);
  return g_logger != nullptr;
}

void log_event(std::string_view type, std::int64_t step,
               std::initializer_list<Field> fields) {
  if (auto logger = global_logger()) logger->event(type, step, fields);
}

void log_event(std::string_view type, std::int64_t step,
               const std::vector<Field>& fields) {
  if (auto logger = global_logger()) logger->event(type, step, fields);
}

}  // namespace netgym::telemetry
