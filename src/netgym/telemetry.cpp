#include "netgym/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace netgym::telemetry {

namespace {

/// Append `s` to `out` as a JSON string literal (quotes included).
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Append a double as a JSON number; non-finite values become null (JSON has
/// no NaN/Infinity literals, and a half-written log must stay parseable).
void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_value(std::string& out, const FieldValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, *i);
    out += buf;
  } else if (const auto* d = std::get_if<double>(&value)) {
    append_json_double(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    append_json_string(out, *s);
  } else {
    const auto& vec = std::get<std::vector<double>>(value);
    out.push_back('[');
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (i > 0) out.push_back(',');
      append_json_double(out, vec[i]);
    }
    out.push_back(']');
  }
}

std::mutex g_logger_mu;
std::shared_ptr<RunLogger> g_logger;

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

TimerStat& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<TimerStat>())
             .first;
  }
  return *it->second;
}

std::vector<Registry::Entry> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  entries.reserve(counters_.size() + gauges_.size() + timers_.size());
  for (const auto& [name, c] : counters_) {
    entries.push_back({name, Kind::kCounter,
                       static_cast<double>(c->value()), 0});
  }
  for (const auto& [name, g] : gauges_) {
    entries.push_back({name, Kind::kGauge, g->value(), 0});
  }
  for (const auto& [name, t] : timers_) {
    entries.push_back({name, Kind::kTimer, t->total_seconds(), t->count()});
  }
  // The three maps are each sorted; a full sort keeps the merged snapshot
  // name-ordered regardless of kind.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return entries;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

RunLogger::RunLogger(std::string path) : path_(std::move(path)) {
  out_ = std::fopen(path_.c_str(), "w");
  if (out_ == nullptr) {
    throw std::runtime_error("RunLogger: cannot open log file " + path_);
  }
}

RunLogger::~RunLogger() {
  if (out_ != nullptr) std::fclose(out_);
}

void RunLogger::event(std::string_view type, std::int64_t step,
                      const Field* begin, const Field* end) {
  std::string line;
  line.reserve(128);
  line += "{\"type\":";
  append_json_string(line, type);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"step\":%" PRId64, step);
  line += buf;
  const auto ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  for (const Field* f = begin; f != end; ++f) {
    line.push_back(',');
    append_json_string(line, f->first);
    line.push_back(':');
    append_json_value(line, f->second);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t seq = events_.fetch_add(1, std::memory_order_relaxed);
    std::snprintf(buf, sizeof(buf),
                  ",\"seq\":%" PRIu64 ",\"ts_ms\":%" PRId64 "}\n", seq,
                  static_cast<std::int64_t>(ts_ms));
    line += buf;
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);  // crash-safe: at most the in-flight line is lost
  }
}

void set_global_logger(std::shared_ptr<RunLogger> logger) {
  std::lock_guard<std::mutex> lock(g_logger_mu);
  g_logger = std::move(logger);
}

void open_global_logger(const std::string& path) {
  set_global_logger(std::make_shared<RunLogger>(path));
}

bool open_global_logger_from_env() {
  {
    std::lock_guard<std::mutex> lock(g_logger_mu);
    if (g_logger != nullptr) return true;
  }
  const char* path = std::getenv("GENET_LOG");
  if (path == nullptr || path[0] == '\0') return false;
  open_global_logger(path);
  return true;
}

std::shared_ptr<RunLogger> global_logger() {
  std::lock_guard<std::mutex> lock(g_logger_mu);
  return g_logger;
}

bool logging_enabled() {
  std::lock_guard<std::mutex> lock(g_logger_mu);
  return g_logger != nullptr;
}

void log_event(std::string_view type, std::int64_t step,
               std::initializer_list<Field> fields) {
  if (auto logger = global_logger()) logger->event(type, step, fields);
}

void log_event(std::string_view type, std::int64_t step,
               const std::vector<Field>& fields) {
  if (auto logger = global_logger()) logger->event(type, step, fields);
}

}  // namespace netgym::telemetry
