#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace netgym::telemetry {

// Run telemetry: a process-wide registry of named counters/gauges/timers plus
// a structured JSONL event sink (RunLogger). Every layer of the stack emits
// through here -- per-iteration training stats, per-round curriculum records,
// per-trial BO proposals, and cheap environment step/episode counters -- so a
// training or bench run leaves a machine-readable trajectory behind.
//
// Determinism contract (DESIGN.md, "Run telemetry"): telemetry NEVER draws
// from an netgym::Rng, never reorders or skips work, and metric updates are
// single relaxed atomic operations, so enabling or disabling it cannot change
// any simulated or trained number, at any thread count. Structured events are
// only emitted from serial sections (post-update trainer code, curriculum
// rounds, BO updates on the proposing thread), while the hot-path counters
// are safe to bump from pool workers.

// Minimal JSON fragment builders shared by the RunLogger, the span tracer
// (netgym/tracing.*), and the flight recorder (netgym/flight.*): every sink
// in the process escapes strings and formats doubles the same way.
namespace json {

/// Append `s` to `out` as a JSON string literal (quotes included).
void append_string(std::string& out, std::string_view s);

/// Append a double as a JSON number; non-finite values become null (JSON has
/// no NaN/Infinity literals, and a half-written log must stay parseable).
void append_double(std::string& out, double v);

}  // namespace json

/// Monotonic event count (env steps, episodes, BO trials, ...).
class Counter {
 public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written instantaneous value (current reward, entropy coefficient...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated wall-clock time of a named code region.
class TimerStat {
 public:
  void record_ns(std::int64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
};

/// RAII wall-clock timer: records the elapsed time into a TimerStat on
/// destruction. `seconds_so_far()` reads the running value without stopping.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat)
      : stat_(stat), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    stat_.record_ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double seconds_so_far() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  TimerStat& stat_;
  std::chrono::steady_clock::time_point start_;
};

/// Distribution of a sample stream (episode rewards, per-MI queue delays...)
/// with percentile-grade read-out. `record` is lock-free and order-independent:
/// a handful of relaxed atomic ops, safe from pool workers. Two storage tiers
/// back `snapshot()`:
///
///  - the first `kExactCap` samples land in a fixed slot array (slot index
///    from one fetch_add), so runs below the cap get *exact* percentiles that
///    do not depend on the order workers recorded in;
///  - every sample also lands in sign-split log-spaced buckets (growth
///    2^(1/4), ~9% max relative error), which serve percentile estimates past
///    the cap. Bucket counts are order-independent sums, so estimates are
///    deterministic at any thread count too.
///
/// Non-finite samples are dropped (and counted in `Snapshot::dropped`).
/// Magnitudes below 1e-9 share the zero bucket; magnitudes above ~1.8e10
/// saturate into the top bucket (counted in `Snapshot::saturated`; exact
/// min/max are still tracked separately via CAS).
///
/// Error bound past the cap: a bucket spans a 2^(1/kSubBuckets) magnitude
/// ratio and reports its geometric midpoint, so any estimated percentile is
/// within a factor of 2^(1/(2*kSubBuckets)) of the true sample — with
/// kSubBuckets = 4 that is a max relative error of 2^(1/8) - 1 ~= 9.05%.
/// Within the exact cap percentiles are exact (0% error).
class Histogram {
 public:
  Histogram();

  void record(double v);

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    bool exact = true;  ///< percentiles from exact samples, not bucket interp
    std::int64_t dropped = 0;    ///< non-finite samples rejected by record()
    std::int64_t saturated = 0;  ///< samples clamped into the top log bucket
  };

  /// Call from serial sections (after parallel work has joined) for a
  /// consistent view; see the determinism note at the top of this header.
  Snapshot snapshot() const;

  /// Fold `other`'s samples into this histogram: counts, sums, extremes,
  /// bucket counts, and drop/saturation counters all add; as many of
  /// `other`'s exact samples as still fit below kExactCap are appended, so a
  /// merge whose combined count stays within the cap yields percentiles
  /// identical to recording the same samples into a single histogram (the
  /// snapshot sorts, so shard order does not matter below the cap). Past the
  /// cap the merged log buckets give the same <=9% bounded estimates as a
  /// single stream. Serial-section only: neither histogram may be receiving
  /// concurrent record() calls. Merging shard-local histograms in a fixed
  /// shard order makes every Snapshot field — including the float `sum` —
  /// bit-identical at any thread count (the fleet simulator relies on this).
  void merge(const Histogram& other);

  void reset();

  std::int64_t count() const { return n_.load(std::memory_order_relaxed); }

  /// Samples beyond this many fall back to log-bucket percentile estimates.
  static constexpr std::size_t kExactCap = 4096;

 private:
  static constexpr int kSubBuckets = 4;        // buckets per power of two
  static constexpr int kBucketsPerSign = 256;  // covers |v| in [1e-9, ~1.8e10]
  static constexpr double kMinAbs = 1e-9;

  static int bucket_index(double abs_v);
  static double bucket_rep(int index);

  std::atomic<std::int64_t> n_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  std::atomic<std::int64_t> zero_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> saturated_{0};
  std::unique_ptr<std::atomic<std::int64_t>[]> pos_;
  std::unique_ptr<std::atomic<std::int64_t>[]> neg_;
  std::unique_ptr<std::atomic<double>[]> exact_;
};

/// Process-wide metric registry. Lookup creates the metric on first use and
/// returns a reference that stays valid for the process lifetime (metrics are
/// heap-allocated and never erased; `reset_all` only zeroes values), so hot
/// paths can cache `Counter&` in a function-local static and pay one relaxed
/// atomic add per event afterwards.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimerStat& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  enum class Kind { kCounter, kGauge, kTimer, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;        ///< count / gauge value / total seconds / sum
    std::int64_t count = 0;    ///< timer/histogram sample count (0 otherwise)
    Histogram::Snapshot hist;  ///< populated for kHistogram entries only
  };

  /// Consistent name-sorted snapshot of every registered metric.
  std::vector<Entry> snapshot() const;

  /// Zero every metric; references handed out earlier stay valid.
  void reset_all();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Fixed-width human-readable table of every registered metric (one row per
/// Registry entry; histogram rows carry p50/p90/p99/max). Backs the CLI
/// `--metrics-out` dump; ends with a trailing newline.
std::string format_metrics_table();

/// One key/value pair of a structured event. Doubles that are not finite are
/// serialized as JSON null.
using FieldValue =
    std::variant<std::int64_t, double, std::string, std::vector<double>>;
using Field = std::pair<std::string, FieldValue>;

/// Structured JSONL event sink. Every event becomes one line
///   {"type":"...","step":N,"seq":K,"ts_ms":...,<fields...>}
/// written and flushed under a mutex, so concurrent emitters interleave at
/// line granularity and a crash loses at most the line being written.
class RunLogger {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit RunLogger(std::string path);
  ~RunLogger();

  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  void event(std::string_view type, std::int64_t step,
             std::initializer_list<Field> fields) {
    event(type, step, fields.begin(), fields.end());
  }
  void event(std::string_view type, std::int64_t step,
             const std::vector<Field>& fields) {
    event(type, step, fields.data(), fields.data() + fields.size());
  }

  const std::string& path() const { return path_; }
  std::uint64_t events_written() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  void event(std::string_view type, std::int64_t step, const Field* begin,
             const Field* end);

  std::string path_;
  std::mutex mu_;
  std::FILE* out_ = nullptr;
  std::atomic<std::uint64_t> events_{0};
};

// Global sink management. When no logger is installed (the default) every
// log_event call is a cheap no-op, so instrumented code needs no flags.

/// Install `logger` as the process-wide sink (nullptr uninstalls).
void set_global_logger(std::shared_ptr<RunLogger> logger);

/// Open `path` and install it as the global sink; throws on I/O failure.
void open_global_logger(const std::string& path);

/// Install a sink from the GENET_LOG environment variable if it is set and
/// no sink is installed yet. Returns true if a logger is installed after the
/// call.
bool open_global_logger_from_env();

/// Currently installed sink (may be null).
std::shared_ptr<RunLogger> global_logger();

/// Emit an event through the global sink; no-op when none is installed.
void log_event(std::string_view type, std::int64_t step,
               std::initializer_list<Field> fields);
void log_event(std::string_view type, std::int64_t step,
               const std::vector<Field>& fields);

/// True when a global sink is installed (lets callers skip building field
/// vectors for dropped events).
bool logging_enabled();

}  // namespace netgym::telemetry
