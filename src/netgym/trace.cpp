#include "netgym/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace netgym {

double Trace::duration_s() const {
  return timestamps_s.empty() ? 0.0 : timestamps_s.back();
}

double Trace::bandwidth_at(double t) const {
  if (empty()) throw std::logic_error("Trace::bandwidth_at: empty trace");
  // First timestamp whose value exceeds t; the sample before it is in effect.
  const auto it =
      std::upper_bound(timestamps_s.begin(), timestamps_s.end(), t);
  if (it == timestamps_s.begin()) return bandwidth_mbps.front();
  const auto idx =
      static_cast<std::size_t>(std::distance(timestamps_s.begin(), it)) - 1;
  return bandwidth_mbps[idx];
}

double Trace::mean_bandwidth() const {
  if (empty()) return 0.0;
  double sum = 0.0;
  for (double b : bandwidth_mbps) sum += b;
  return sum / static_cast<double>(bandwidth_mbps.size());
}

double Trace::bandwidth_variance() const {
  if (bandwidth_mbps.size() < 2) return 0.0;
  const double mean = mean_bandwidth();
  double acc = 0.0;
  for (double b : bandwidth_mbps) acc += (b - mean) * (b - mean);
  return acc / static_cast<double>(bandwidth_mbps.size() - 1);
}

double Trace::min_bandwidth() const {
  if (empty()) return 0.0;
  return *std::min_element(bandwidth_mbps.begin(), bandwidth_mbps.end());
}

double Trace::max_bandwidth() const {
  if (empty()) return 0.0;
  return *std::max_element(bandwidth_mbps.begin(), bandwidth_mbps.end());
}

double Trace::non_smoothness() const {
  if (bandwidth_mbps.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < bandwidth_mbps.size(); ++i) {
    acc += std::abs(bandwidth_mbps[i] - bandwidth_mbps[i - 1]);
  }
  return acc / static_cast<double>(bandwidth_mbps.size() - 1);
}

void Trace::validate() const {
  if (timestamps_s.size() != bandwidth_mbps.size()) {
    throw std::invalid_argument("Trace: timestamp/bandwidth size mismatch");
  }
  for (std::size_t i = 0; i < timestamps_s.size(); ++i) {
    if (i > 0 && timestamps_s[i] <= timestamps_s[i - 1]) {
      throw std::invalid_argument("Trace: timestamps not strictly increasing");
    }
    if (!(bandwidth_mbps[i] >= 0.0) || !std::isfinite(bandwidth_mbps[i])) {
      throw std::invalid_argument("Trace: bandwidth must be finite and >= 0");
    }
  }
}

Trace generate_abr_trace(const AbrTraceParams& params, Rng& rng) {
  if (params.min_bw_mbps < 0 || params.max_bw_mbps < params.min_bw_mbps) {
    throw std::invalid_argument("generate_abr_trace: bad bandwidth range");
  }
  if (params.duration_s <= 0) {
    throw std::invalid_argument("generate_abr_trace: duration must be > 0");
  }
  Trace trace;
  double t = 0.0;
  double bw = rng.uniform(params.min_bw_mbps, params.max_bw_mbps);
  // Time until the next bandwidth change; the interval itself is noisy.
  double until_change =
      std::max(0.5, params.bw_change_interval_s + rng.uniform(1.0, 3.0));
  double last_t = -1e-3;  // first stamp ends up >= 0
  while (t <= params.duration_s) {
    // One-second ticks with uniform [-0.5, 0.5] jitter, kept increasing.
    double stamp = t + rng.uniform(-0.5, 0.5);
    stamp = std::max(stamp, last_t + 1e-3);
    trace.timestamps_s.push_back(stamp);
    trace.bandwidth_mbps.push_back(bw);
    last_t = stamp;
    t += 1.0;
    until_change -= 1.0;
    if (until_change <= 0.0) {
      bw = rng.uniform(params.min_bw_mbps, params.max_bw_mbps);
      until_change =
          std::max(0.5, params.bw_change_interval_s + rng.uniform(1.0, 3.0));
    }
  }
  trace.validate();
  return trace;
}

Trace generate_cc_trace(const CcTraceParams& params, Rng& rng) {
  if (params.max_bw_mbps <= 0) {
    throw std::invalid_argument("generate_cc_trace: max bandwidth must be > 0");
  }
  if (params.duration_s <= 0) {
    throw std::invalid_argument("generate_cc_trace: duration must be > 0");
  }
  constexpr double kStep = 0.1;  // Appendix A.2: 0.1 s timestamp step.
  const double bw_lo = std::min(1.0, params.max_bw_mbps);
  Trace trace;
  double bw = rng.uniform(bw_lo, params.max_bw_mbps);
  double until_change = std::max(kStep, params.bw_change_interval_s);
  for (double t = 0.0; t <= params.duration_s + 1e-9; t += kStep) {
    trace.timestamps_s.push_back(t + 1e-4);  // keep strictly positive steps
    trace.bandwidth_mbps.push_back(bw);
    until_change -= kStep;
    if (until_change <= 0.0) {
      bw = rng.uniform(bw_lo, params.max_bw_mbps);
      until_change = std::max(kStep, params.bw_change_interval_s);
    }
  }
  trace.validate();
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  trace.validate();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot write " + path);
  out.precision(9);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    out << trace.timestamps_s[i] << " " << trace.bandwidth_mbps[i] << "\n";
  }
  if (!out) throw std::runtime_error("save_trace: write failed on " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot read " + path);
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    double t = 0.0, bw = 0.0;
    if (!(fields >> t >> bw)) {
      throw std::runtime_error("load_trace: malformed line " +
                               std::to_string(line_no) + " in " + path);
    }
    trace.timestamps_s.push_back(t);
    trace.bandwidth_mbps.push_back(bw);
  }
  if (trace.empty()) {
    throw std::runtime_error("load_trace: no samples in " + path);
  }
  trace.validate();
  return trace;
}

}  // namespace netgym
