#pragma once

#include <string>
#include <vector>

#include "netgym/rng.hpp"

namespace netgym {

/// A bandwidth trace: a step function of link throughput over time, in the
/// `[timestamp (s), throughput (Mbps)]` format of the paper's Appendix A.2.
/// Timestamps are strictly increasing and start at or near zero; the last
/// bandwidth value is held beyond the final timestamp.
struct Trace {
  std::vector<double> timestamps_s;
  std::vector<double> bandwidth_mbps;

  std::size_t size() const { return timestamps_s.size(); }
  bool empty() const { return timestamps_s.empty(); }

  /// Total time span covered by the trace (last timestamp).
  double duration_s() const;

  /// Bandwidth in effect at time `t` (step function; clamps at both ends).
  double bandwidth_at(double t) const;

  double mean_bandwidth() const;
  double bandwidth_variance() const;
  double min_bandwidth() const;
  double max_bandwidth() const;

  /// Mean absolute difference between consecutive bandwidth samples; the
  /// "non-smoothness" measure used by the Robustify comparison (S5.5).
  double non_smoothness() const;

  /// Validate the invariants above; throws std::invalid_argument on failure.
  void validate() const;
};

/// Parameters of the ABR synthetic trace generator (Appendix A.2): timestamps
/// advance one second at a time with uniform [-0.5, 0.5] noise; each
/// throughput value is uniform in [min_bw, max_bw]; the throughput is held for
/// `bw_change_interval` seconds (plus uniform [1, 3] noise) before changing.
struct AbrTraceParams {
  double min_bw_mbps = 0.2;
  double max_bw_mbps = 5.0;
  double bw_change_interval_s = 5.0;
  double duration_s = 200.0;
};

Trace generate_abr_trace(const AbrTraceParams& params, Rng& rng);

/// Parameters of the CC synthetic trace generator (Appendix A.2): timestamps
/// advance in 0.1 s steps; each bandwidth value is uniform in [1, max_bw]
/// (Mbps, lower bound clamped below max); the bandwidth changes every
/// `bw_change_interval` seconds.
struct CcTraceParams {
  double max_bw_mbps = 3.16;
  double bw_change_interval_s = 7.5;
  double duration_s = 30.0;
};

Trace generate_cc_trace(const CcTraceParams& params, Rng& rng);

/// Serialize a trace in the Appendix-A.2 text format: one
/// "<timestamp_s> <bandwidth_mbps>" pair per line. This is also the format
/// of the Pensieve/Pantheon trace files the paper's artifact ships, so real
/// recorded traces can be dropped in.
void save_trace(const Trace& trace, const std::string& path);

/// Parse a trace file saved by `save_trace` (or a Pensieve-format trace).
/// Ignores blank lines; throws std::runtime_error on malformed content and
/// validates the result.
Trace load_trace(const std::string& path);

}  // namespace netgym
