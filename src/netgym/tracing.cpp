#include "netgym/tracing.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "netgym/telemetry.hpp"

namespace netgym::tracing {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Per-thread bounded ring of completed spans. Single writer (the owning
/// thread); the flusher reads it from serial sections only, synchronized by
/// the release store of `written_` and by the fact that no spans are in
/// flight while flushing (see the serial-section contract in the header).
class SpanBuffer {
 public:
  SpanBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), ring_(std::max<std::size_t>(capacity, 1)) {}

  void push(const SpanRecord& r) {
    const std::uint64_t w = written_.load(std::memory_order_relaxed);
    ring_[w % ring_.size()] = r;
    written_.store(w + 1, std::memory_order_release);
  }

  std::uint32_t tid() const { return tid_; }

  std::uint64_t written() const {
    return written_.load(std::memory_order_acquire);
  }
  std::uint64_t held() const { return std::min<std::uint64_t>(written(), ring_.size()); }
  std::uint64_t dropped() const {
    const std::uint64_t w = written();
    return w > ring_.size() ? w - ring_.size() : 0;
  }

  /// Oldest-to-newest records currently held. Serial sections only.
  std::vector<SpanRecord> collect() const {
    const std::uint64_t w = written();
    const std::uint64_t n = std::min<std::uint64_t>(w, ring_.size());
    std::vector<SpanRecord> out;
    out.reserve(n);
    for (std::uint64_t seq = w - n; seq < w; ++seq) {
      out.push_back(ring_[seq % ring_.size()]);
    }
    return out;
  }

  /// Drop held records and adopt a new capacity. Serial sections only.
  void reset(std::size_t capacity) {
    ring_.assign(std::max<std::size_t>(capacity, 1), SpanRecord{});
    written_.store(0, std::memory_order_relaxed);
  }

 private:
  std::uint32_t tid_;
  std::vector<SpanRecord> ring_;
  std::atomic<std::uint64_t> written_{0};
};

/// One remote process's lane in the merged trace: the pid it reported plus
/// the spans shipped from it, in arrival order (per remote thread that is
/// completion order: rings push at span end and batches arrive in dispatch
/// order over one FIFO socket).
struct RemoteLane {
  std::int64_t pid = 0;
  std::string label;
  std::vector<RemoteSpan> spans;
};

struct TraceRegistry {
  std::mutex mu;
  // Buffers live for the process lifetime (worker threads may die before the
  // trace is flushed; their spans must survive them). Ring storage is only
  // allocated for threads that emit while tracing is enabled.
  std::vector<std::unique_ptr<SpanBuffer>> buffers;
  std::size_t capacity = kDefaultBufferCapacity;
  std::int64_t start_ns = 0;
  std::vector<RemoteLane> remote;  ///< keyed by (pid, label), append order
};

TraceRegistry& registry() {
  // Immortal: never destroyed, so the atexit flush installed by install()
  // and spans emitted by late-exiting threads can never touch a dead object.
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

SpanBuffer& local_buffer() {
  thread_local SpanBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(std::make_unique<SpanBuffer>(
        static_cast<std::uint32_t>(r.buffers.size()), r.capacity));
    t_buffer = r.buffers.back().get();
  }
  return *t_buffer;
}

}  // namespace

namespace detail {

void emit(const SpanRecord& record) { local_buffer().push(record); }

}  // namespace detail

void start(std::size_t buffer_capacity) {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.capacity = buffer_capacity;
  for (auto& buffer : r.buffers) buffer->reset(buffer_capacity);
  r.remote.clear();
  r.start_ns = now_ns();
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void stop() { detail::g_enabled.store(false, std::memory_order_relaxed); }

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> g_next{1};
  return g_next.fetch_add(1, std::memory_order_relaxed);
}

CollectedSpans collect_and_reset() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  CollectedSpans out;
  for (auto& buffer : r.buffers) {
    out.dropped += buffer->dropped();
    for (const SpanRecord& rec : buffer->collect()) {
      RemoteSpan span;
      span.name = rec.name != nullptr ? rec.name : "span";
      span.cat = rec.cat != nullptr ? rec.cat : "task";
      span.tid = static_cast<std::int64_t>(buffer->tid());
      span.start_ns = rec.start_ns;
      span.dur_ns = rec.dur_ns;
      span.index = rec.index;
      span.span_id = rec.span_id;
      span.parent_id = rec.parent_id;
      out.spans.push_back(std::move(span));
    }
    buffer->reset(r.capacity);
  }
  return out;
}

void add_remote_spans(std::int64_t pid, const std::string& label,
                      std::vector<RemoteSpan> spans) {
  if (spans.empty()) return;
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& lane : r.remote) {
    if (lane.pid == pid && lane.label == label) {
      lane.spans.insert(lane.spans.end(),
                        std::make_move_iterator(spans.begin()),
                        std::make_move_iterator(spans.end()));
      return;
    }
  }
  r.remote.push_back(RemoteLane{pid, label, std::move(spans)});
}

std::uint64_t remote_span_count() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& lane : r.remote) total += lane.spans.size();
  return total;
}

std::uint64_t dropped_spans() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& buffer : r.buffers) total += buffer->dropped();
  return total;
}

std::uint64_t recorded_spans() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& buffer : r.buffers) total += buffer->held();
  return total;
}

namespace {

/// Append the optional args object ({"index":..,"span_id":..,"parent":..})
/// shared by local and remote span events. Emits nothing when no arg is set.
void append_span_args(std::string& line, std::int64_t index,
                      std::uint64_t span_id, std::uint64_t parent_id) {
  if (index < 0 && span_id == 0 && parent_id == 0) return;
  char buf[96];
  line += ",\"args\":{";
  bool first = true;
  if (index >= 0) {
    std::snprintf(buf, sizeof(buf), "\"index\":%lld",
                  static_cast<long long>(index));
    line += buf;
    first = false;
  }
  if (span_id != 0) {
    std::snprintf(buf, sizeof(buf), "%s\"span_id\":%llu", first ? "" : ",",
                  static_cast<unsigned long long>(span_id));
    line += buf;
    first = false;
  }
  if (parent_id != 0) {
    std::snprintf(buf, sizeof(buf), "%s\"parent\":%llu", first ? "" : ",",
                  static_cast<unsigned long long>(parent_id));
    line += buf;
  }
  line += '}';
}

void append_meta(std::vector<std::string>& events, std::int64_t pid,
                 const char* meta_name, std::int64_t tid,
                 const std::string& value) {
  char buf[96];
  std::string meta = "{\"ph\":\"M\"";
  std::snprintf(buf, sizeof(buf), ",\"pid\":%lld,\"name\":\"%s\"",
                static_cast<long long>(pid), meta_name);
  meta += buf;
  if (tid >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"tid\":%lld",
                  static_cast<long long>(tid));
    meta += buf;
  }
  meta += ",\"args\":{\"name\":";
  telemetry::json::append_string(meta, value);
  meta += "}}";
  events.push_back(std::move(meta));
}

}  // namespace

std::uint64_t write_chrome_trace(const std::string& path) {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("tracing: cannot open trace file " + path);
  }

  // One event per line keeps the file trivially greppable and line-parseable
  // while staying a single valid JSON document. Each process gets its own
  // pid lane: the local process under its real pid, every remote lane under
  // the pid it reported in its hello.
  const auto local_pid = static_cast<std::int64_t>(::getpid());
  std::vector<std::string> events;
  std::uint64_t span_events = 0;
  char buf[160];
  append_meta(events, local_pid, "process_name", -1, "genet");
  for (const auto& buffer : r.buffers) {
    append_meta(events, local_pid, "thread_name",
                static_cast<std::int64_t>(buffer->tid()),
                "thread-" + std::to_string(buffer->tid()));
    for (const SpanRecord& rec : buffer->collect()) {
      std::string line = "{\"ph\":\"X\"";
      std::snprintf(buf, sizeof(buf), ",\"pid\":%lld,\"tid\":%u,\"name\":",
                    static_cast<long long>(local_pid), buffer->tid());
      line += buf;
      telemetry::json::append_string(line, rec.name != nullptr ? rec.name
                                                               : "span");
      line += ",\"cat\":";
      telemetry::json::append_string(line, rec.cat != nullptr ? rec.cat
                                                              : "task");
      // Chrome trace timestamps are microseconds; keep ns precision in the
      // fraction. Timestamps are relative to start() so traces begin at 0.
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                    static_cast<double>(rec.start_ns - r.start_ns) * 1e-3,
                    static_cast<double>(rec.dur_ns) * 1e-3);
      line += buf;
      append_span_args(line, rec.index, rec.span_id, rec.parent_id);
      line += '}';
      events.push_back(std::move(line));
      ++span_events;
    }
  }
  for (const auto& lane : r.remote) {
    append_meta(events, lane.pid, "process_name", -1, lane.label);
    std::vector<std::int64_t> named_tids;
    for (const RemoteSpan& rec : lane.spans) {
      if (std::find(named_tids.begin(), named_tids.end(), rec.tid) ==
          named_tids.end()) {
        named_tids.push_back(rec.tid);
        append_meta(events, lane.pid, "thread_name", rec.tid,
                    lane.label + "-thread-" + std::to_string(rec.tid));
      }
      std::string line = "{\"ph\":\"X\"";
      std::snprintf(buf, sizeof(buf), ",\"pid\":%lld,\"tid\":%lld,\"name\":",
                    static_cast<long long>(lane.pid),
                    static_cast<long long>(rec.tid));
      line += buf;
      telemetry::json::append_string(line, rec.name);
      line += ",\"cat\":";
      telemetry::json::append_string(line, rec.cat);
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                    static_cast<double>(rec.start_ns - r.start_ns) * 1e-3,
                    static_cast<double>(rec.dur_ns) * 1e-3);
      line += buf;
      append_span_args(line, rec.index, rec.span_id, rec.parent_id);
      line += '}';
      events.push_back(std::move(line));
      ++span_events;
    }
  }

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::fputs(events[i].c_str(), out);
    std::fputs(i + 1 < events.size() ? ",\n" : "\n", out);
  }
  std::fputs("]}\n", out);
  std::fclose(out);
  return span_events;
}

namespace {
std::string* g_atexit_path = nullptr;
}  // namespace

void install(const std::string& path, std::size_t buffer_capacity) {
  registry();  // constructed before the atexit hook registers -> outlives it
  if (g_atexit_path == nullptr) {
    g_atexit_path = new std::string(path);
    std::atexit([] {
      try {
        write_chrome_trace(*g_atexit_path);
      } catch (const std::exception&) {
        // Nothing useful to do with an I/O failure during process exit.
      }
    });
  } else {
    *g_atexit_path = path;
  }
  start(buffer_capacity);
}

bool install_from_env() {
  if (enabled()) return true;
  const char* path = std::getenv("GENET_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  install(path);
  return true;
}

}  // namespace netgym::tracing
