#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace netgym::tracing {

// Hierarchical span tracer. RAII TraceSpan objects time a code region and
// append one fixed-size record to a per-thread bounded ring buffer on
// destruction; the buffers are flushed to a Chrome trace-event JSON file
// (loadable in chrome://tracing or https://ui.perfetto.dev) when the run
// ends. This module is distinct from netgym/trace.* -- that one holds
// *bandwidth* traces (the paper's network traces); this one holds *execution*
// spans.
//
// Hot-path cost and threading: when tracing is disabled a TraceSpan is two
// relaxed atomic loads and no clock reads. When enabled, each span is two
// steady_clock reads plus one store into a thread-local ring (single writer,
// no locks, no allocation after the ring exists). On overflow the ring
// overwrites its oldest record and counts the drop -- tracing can never block
// or grow without bound.
//
// Determinism contract (DESIGN.md, "Run telemetry"): tracing never draws from
// an netgym::Rng, never reorders or skips work, and only observes
// wall-clock time, so traced and untraced runs produce bit-identical results
// at any thread count (pinned in parallel_determinism_test).
//
// Serial-section contract: start(), stop(), and write_chrome_trace() must be
// called while no pool work is in flight (CLI setup/teardown, test
// setup/teardown). Span emission itself is safe from any thread at any time.

/// One completed span. `name`/`cat` must be string literals (or otherwise
/// outlive the flush) -- the ring stores only the pointers.
struct SpanRecord {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t start_ns = 0;  ///< steady_clock, relative to process start
  std::int64_t dur_ns = 0;
  std::int64_t index = -1;  ///< item/round/trial index; -1 = none
  std::uint64_t span_id = 0;    ///< cross-process correlation id; 0 = none
  std::uint64_t parent_id = 0;  ///< span_id of the logical parent; 0 = none
};

/// A span collected from (or destined for) another process: same shape as
/// SpanRecord but with owned strings (a remote process's string literals do
/// not survive the trip) and an explicit thread id.
struct RemoteSpan {
  std::string name;
  std::string cat;
  std::int64_t tid = 0;
  std::int64_t start_ns = 0;  ///< absolute steady_clock ns (CLOCK_MONOTONIC
                              ///< is system-wide on Linux, so directly
                              ///< comparable across processes)
  std::int64_t dur_ns = 0;
  std::int64_t index = -1;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace detail {
extern std::atomic<bool> g_enabled;
void emit(const SpanRecord& record);
}  // namespace detail

/// True while the tracer is collecting spans.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline constexpr std::size_t kDefaultBufferCapacity = 1 << 16;

/// Enable span collection. Clears previously collected spans and (re)sizes
/// every thread's ring to `buffer_capacity` records. Serial sections only.
void start(std::size_t buffer_capacity = kDefaultBufferCapacity);

/// Stop collecting; already-collected spans stay flushable. Serial only.
void stop();

/// Write every thread's collected spans -- plus any remote spans registered
/// via add_remote_spans -- as Chrome trace-event JSON (one event per line
/// inside `traceEvents`; "X" complete events plus "M" process-name and
/// thread-name metadata). Each process gets its own `pid` lane (the local
/// process uses its real pid), so a merged multi-process trace renders as
/// one timeline per process in Perfetto. Returns the number of span events
/// written; throws std::runtime_error if the file cannot be opened. Serial
/// sections only.
std::uint64_t write_chrome_trace(const std::string& path);

/// Spans lost to ring overflow across all threads since the last start().
std::uint64_t dropped_spans();

/// Spans currently held in the rings (i.e. what write_chrome_trace would
/// emit), across all threads.
std::uint64_t recorded_spans();

/// Monotonically increasing span id for cross-process parent/child links
/// (never returns 0, the "no id" sentinel). Safe from any thread.
std::uint64_t next_span_id();

/// Drain every thread's ring into owned copies (tid filled in, absolute
/// timestamps preserved) and reset the rings, accumulating overflow drops
/// into `dropped`. The shipping side of distributed trace propagation
/// (DESIGN.md S5j): workers call this after each work unit and piggyback the
/// batch on the result frame. Serial sections only.
struct CollectedSpans {
  std::vector<RemoteSpan> spans;
  std::uint64_t dropped = 0;
};
CollectedSpans collect_and_reset();

/// Register spans shipped from another process under a `pid` lane labelled
/// `label` (e.g. "worker-2"). write_chrome_trace emits them alongside the
/// local process's spans, giving one merged multi-process trace file.
/// Cleared by start(). Safe from any thread.
void add_remote_spans(std::int64_t pid, const std::string& label,
                      std::vector<RemoteSpan> spans);

/// Remote spans currently registered for the merged flush.
std::uint64_t remote_span_count();

/// start() now and register an atexit hook writing to `path`, so mains need
/// no explicit teardown path (benches, the CLI).
void install(const std::string& path,
             std::size_t buffer_capacity = kDefaultBufferCapacity);

/// `install(getenv("GENET_TRACE"))` when the variable is set and tracing is
/// not already enabled. Returns true if tracing is enabled after the call.
bool install_from_env();

/// Record a span with explicit timestamps (from `now_ns()`). For code that
/// interleaves logical regions on one thread — e.g. lockstepped episodes,
/// which start and finish at different ticks of a shared loop — and so
/// cannot scope an RAII TraceSpan per region. No-op while tracing is off.
inline void emit_span(const char* name, const char* cat, std::int64_t start_ns,
                      std::int64_t dur_ns, std::int64_t index = -1,
                      std::uint64_t span_id = 0, std::uint64_t parent_id = 0) {
  if (!enabled()) return;
  detail::emit({name, cat, start_ns, dur_ns, index, span_id, parent_id});
}

/// RAII span. Records [construction, destruction) of the enclosing scope
/// under `name`, categorized by `cat` (rl / genet / env / pool / cli --
/// Perfetto colors and filters by category), optionally tagged with an item
/// index rendered into the event's args. Enabled-ness is sampled at
/// construction: spans open across a stop() are simply not recorded.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "task",
                     std::int64_t index = -1, std::uint64_t span_id = 0)
      : name_(name),
        cat_(cat),
        index_(index),
        span_id_(span_id),
        active_(enabled()) {
    if (active_) start_ns_ = now_ns();
  }
  ~TraceSpan() { end(); }

  /// Close the span before scope exit (phase spans inside one function);
  /// idempotent, and the destructor becomes a no-op afterwards.
  void end() {
    if (!active_) return;
    active_ = false;
    if (!enabled()) return;
    detail::emit(
        {name_, cat_, start_ns_, now_ns() - start_ns_, index_, span_id_, 0});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t index_;
  std::uint64_t span_id_;
  bool active_;
  std::int64_t start_ns_ = 0;
};

}  // namespace netgym::tracing
