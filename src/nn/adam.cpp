#include "nn/adam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nn {

Adam::Adam(std::size_t num_params, Options options)
    : options_(options), m_(num_params, 0.0), v_(num_params, 0.0) {
  if (options_.lr <= 0) throw std::invalid_argument("Adam: lr must be > 0");
  if (options_.beta1 < 0 || options_.beta1 >= 1 || options_.beta2 < 0 ||
      options_.beta2 >= 1) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
}

void Adam::step(std::vector<double>& params,
                const std::vector<double>& grads) {
  if (params.size() != m_.size() || grads.size() != m_.size()) {
    throw std::invalid_argument("Adam::step: size mismatch");
  }
  // The norm is always computed (not only when clipping is on): it feeds the
  // last_grad_norm diagnostics and costs one pass either way.
  double norm_sq = 0.0;
  for (double g : grads) norm_sq += g * g;
  const double norm = std::sqrt(norm_sq);
  double scale = 1.0;
  if (options_.max_grad_norm > 0 && norm > options_.max_grad_norm) {
    scale = options_.max_grad_norm / norm;
  }
  last_grad_norm_ = norm;
  last_clip_scale_ = scale;
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grads[i] * scale;
    m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * g;
    v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.epsilon);
  }
}

void Adam::reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
  t_ = 0;
}

void Adam::save_state(netgym::checkpoint::Snapshot& snap,
                      const std::string& prefix) const {
  snap.put_doubles(prefix + "m", m_);
  snap.put_doubles(prefix + "v", v_);
  snap.put_i64(prefix + "t", static_cast<std::int64_t>(t_));
  snap.put_double(prefix + "lr", options_.lr);
}

void Adam::load_state(const netgym::checkpoint::Snapshot& snap,
                      const std::string& prefix) {
  const std::vector<double>& m = snap.get_doubles(prefix + "m");
  const std::vector<double>& v = snap.get_doubles(prefix + "v");
  const std::int64_t t = snap.get_i64(prefix + "t");
  const double lr = snap.get_double(prefix + "lr");
  if (m.size() != m_.size() || v.size() != v_.size()) {
    throw netgym::checkpoint::CheckpointError(
        "Adam::load_state: moment vector size mismatch (" + prefix + ")");
  }
  if (t < 0) {
    throw netgym::checkpoint::CheckpointError(
        "Adam::load_state: negative step counter (" + prefix + "t)");
  }
  if (!(lr > 0)) {
    throw netgym::checkpoint::CheckpointError(
        "Adam::load_state: lr must be > 0 (" + prefix + "lr)");
  }
  m_ = m;
  v_ = v;
  t_ = static_cast<long>(t);
  options_.lr = lr;
}

}  // namespace nn
