#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"

namespace nn {

/// Adam optimizer over a flat parameter vector (Kingma & Ba, 2015), the
/// update rule used by both of our policy-gradient trainers. One `Adam`
/// instance is bound to one parameter vector's size; `step` applies a single
/// update from the accumulated gradients.
class Adam : public netgym::checkpoint::Serializable {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// Gradients with L2 norm above this are rescaled (0 disables clipping).
    double max_grad_norm = 5.0;
  };

  explicit Adam(std::size_t num_params) : Adam(num_params, Options{}) {}
  Adam(std::size_t num_params, Options options);

  /// Apply one Adam update: params -= lr * mhat / (sqrt(vhat) + eps).
  /// `params` and `grads` must both match the constructor's size.
  void step(std::vector<double>& params, const std::vector<double>& grads);

  /// Reset first/second moment estimates and the step counter.
  void reset();

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.lr = lr; }

  /// Checkpoint hooks: persist the moment estimates, step counter, and the
  /// (mutable) learning rate; load validates moment-vector sizes first so a
  /// mismatched snapshot leaves the optimizer untouched.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  Options options_;
  std::vector<double> m_;
  std::vector<double> v_;
  long t_ = 0;
};

}  // namespace nn
