#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"

namespace nn {

/// Adam optimizer over a flat parameter vector (Kingma & Ba, 2015), the
/// update rule used by both of our policy-gradient trainers. One `Adam`
/// instance is bound to one parameter vector's size; `step` applies a single
/// update from the accumulated gradients.
class Adam : public netgym::checkpoint::Serializable {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// Gradients with L2 norm above this are rescaled (0 disables clipping).
    double max_grad_norm = 5.0;
  };

  explicit Adam(std::size_t num_params) : Adam(num_params, Options{}) {}
  Adam(std::size_t num_params, Options options);

  /// Apply one Adam update: params -= lr * mhat / (sqrt(vhat) + eps).
  /// `params` and `grads` must both match the constructor's size.
  void step(std::vector<double>& params, const std::vector<double>& grads);

  /// Reset first/second moment estimates and the step counter.
  void reset();

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.lr = lr; }

  /// L2 norm of the gradient vector passed to the most recent `step` call,
  /// before and after the max-norm rescale. Observational diagnostics for
  /// the health watchdog: they never influence the update and are not part
  /// of checkpoint state (a resumed optimizer reports 0 until its next
  /// step). 0 before the first step.
  double last_grad_norm() const { return last_grad_norm_; }
  double last_clipped_grad_norm() const {
    return last_grad_norm_ * last_clip_scale_;
  }

  /// Checkpoint hooks: persist the moment estimates, step counter, and the
  /// (mutable) learning rate; load validates moment-vector sizes first so a
  /// mismatched snapshot leaves the optimizer untouched.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  Options options_;
  std::vector<double> m_;
  std::vector<double> v_;
  long t_ = 0;
  double last_grad_norm_ = 0.0;
  double last_clip_scale_ = 1.0;
};

}  // namespace nn
