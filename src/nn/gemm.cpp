#include "nn/gemm.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace nn {

namespace {

MathMode resolve_initial_mode() {
  const char* env = std::getenv("GENET_MATH");
  if (env == nullptr || *env == '\0') return MathMode::kStrict;
  try {
    return parse_math_mode(env);
  } catch (const std::invalid_argument&) {
    // A typo in an environment variable must not silently change numerics;
    // fail loudly instead of guessing.
    throw std::invalid_argument(std::string("GENET_MATH: unknown mode '") +
                                env + "' (want strict or fast)");
  }
}

std::atomic<int>& mode_storage() {
  // -1 = unresolved; lazily resolved from GENET_MATH on first read so library
  // users who never touch the knob pay one getenv, ever.
  static std::atomic<int> mode{-1};
  return mode;
}

bool runtime_cpu_supports_avx2_fma() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

MathMode math_mode() {
  std::atomic<int>& mode = mode_storage();
  int current = mode.load(std::memory_order_relaxed);
  if (current < 0) {
    const MathMode resolved = resolve_initial_mode();
    int expected = -1;
    // Another thread may resolve concurrently; both compute the same value.
    mode.compare_exchange_strong(expected, static_cast<int>(resolved),
                                 std::memory_order_relaxed);
    current = mode.load(std::memory_order_relaxed);
  }
  return static_cast<MathMode>(current);
}

void set_math_mode(MathMode mode) {
  mode_storage().store(static_cast<int>(mode), std::memory_order_relaxed);
}

MathMode parse_math_mode(const std::string& name) {
  if (name == "strict") return MathMode::kStrict;
  if (name == "fast") return MathMode::kFast;
  throw std::invalid_argument("parse_math_mode: unknown mode '" + name +
                              "' (want strict or fast)");
}

const char* math_mode_name(MathMode mode) {
  return mode == MathMode::kFast ? "fast" : "strict";
}

bool cpu_has_avx2_fma() {
  static const bool supported =
      detail::avx2_kernels_compiled() && runtime_cpu_supports_avx2_fma();
  return supported;
}

const char* active_kernel_name() {
  if (!cpu_has_avx2_fma()) return "scalar-tiled";
  return math_mode() == MathMode::kFast ? "avx2-fma" : "avx2-strict";
}

namespace detail {

// Tile width of the n (output-column) dimension: 8 doubles is one cache line
// and maps onto 4 SSE2 / 2 AVX registers, so the accumulator block below
// stays enregistered at any vector width the compiler targets.
constexpr int kNTile = 8;

void gemm_nn_scalar(int M, int N, int K, const double* A, const double* B,
                    double* C) {
  for (int m = 0; m < M; ++m) {
    const double* a = A + static_cast<std::size_t>(m) * K;
    double* c = C + static_cast<std::size_t>(m) * N;
    int n0 = 0;
    for (; n0 + kNTile <= N; n0 += kNTile) {
      // k-outer with a register-resident C tile: each acc[t] still receives
      // its addends in ascending-k order, so this is bit-identical to the
      // naive per-element dot product while giving the compiler kNTile
      // independent accumulation chains to vectorize across.
      double acc[kNTile];
      for (int t = 0; t < kNTile; ++t) acc[t] = c[n0 + t];
      for (int k = 0; k < K; ++k) {
        const double f = a[k];
        const double* b = B + static_cast<std::size_t>(k) * N + n0;
        for (int t = 0; t < kNTile; ++t) acc[t] += f * b[t];
      }
      for (int t = 0; t < kNTile; ++t) c[n0 + t] = acc[t];
    }
    for (; n0 < N; ++n0) {
      double acc = c[n0];
      for (int k = 0; k < K; ++k) {
        acc += a[k] * B[static_cast<std::size_t>(k) * N + n0];
      }
      c[n0] = acc;
    }
  }
}

void gemm_tn_scalar(int M, int N, int K, const double* A, const double* B,
                    double* C) {
  for (int m = 0; m < M; ++m) {
    double* c = C + static_cast<std::size_t>(m) * N;
    int n0 = 0;
    for (; n0 + kNTile <= N; n0 += kNTile) {
      double acc[kNTile];
      for (int t = 0; t < kNTile; ++t) acc[t] = c[n0 + t];
      for (int k = 0; k < K; ++k) {
        const double f = A[static_cast<std::size_t>(k) * M + m];
        const double* b = B + static_cast<std::size_t>(k) * N + n0;
        for (int t = 0; t < kNTile; ++t) acc[t] += f * b[t];
      }
      for (int t = 0; t < kNTile; ++t) c[n0 + t] = acc[t];
    }
    for (; n0 < N; ++n0) {
      double acc = c[n0];
      for (int k = 0; k < K; ++k) {
        acc += A[static_cast<std::size_t>(k) * M + m] *
               B[static_cast<std::size_t>(k) * N + n0];
      }
      c[n0] = acc;
    }
  }
}

}  // namespace detail

void gemm_nn(int M, int N, int K, const double* A, const double* B,
             double* C) {
  if (cpu_has_avx2_fma()) {
    if (math_mode() == MathMode::kFast) {
      detail::gemm_nn_avx2(M, N, K, A, B, C);
    } else {
      // Bit-identical to the scalar kernel (multiply-then-add, ascending k).
      detail::gemm_nn_avx2_strict(M, N, K, A, B, C);
    }
    return;
  }
  detail::gemm_nn_scalar(M, N, K, A, B, C);
}

void gemm_tn(int M, int N, int K, const double* A, const double* B,
             double* C) {
  if (cpu_has_avx2_fma()) {
    if (math_mode() == MathMode::kFast) {
      detail::gemm_tn_avx2(M, N, K, A, B, C);
    } else {
      detail::gemm_tn_avx2_strict(M, N, K, A, B, C);
    }
    return;
  }
  detail::gemm_tn_scalar(M, N, K, A, B, C);
}

void transpose(int rows, int cols, const double* src, double* dst) {
  for (int r = 0; r < rows; ++r) {
    const double* s = src + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) {
      dst[static_cast<std::size_t>(c) * rows + r] = s[c];
    }
  }
}

}  // namespace nn
