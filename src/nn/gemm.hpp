#pragma once

#include <string>

namespace nn {

/// Floating-point contract of the batched math kernels (DESIGN.md, "Batched
/// math layer").
///
/// - `kStrict` (the default): every output element is accumulated in exactly
///   the order the original per-sample scalar loops used (reduction index
///   ascending, no fused multiply-add), so batched results are bit-identical
///   to per-sample ones regardless of batch size, tiling, or thread count.
///   All determinism and golden-checkpoint guarantees assume this mode.
///   Strict mode may still dispatch to vector kernels that multiply then add
///   across independent output columns — elementwise IEEE operations in the
///   same order produce the same bits, so this is an implementation detail,
///   not a numerics change.
/// - `kFast`: kernels may contract multiply+add into FMA and use wider
///   vector arithmetic. Results are reproducible for a fixed batch shape but
///   are NOT bit-identical to strict mode (they differ by rounding), and the
///   lockstep rollout batch shape depends on the thread count, so fast-mode
///   training is validated statistically rather than bit-for-bit.
enum class MathMode { kStrict, kFast };

/// Active mode. Resolution order: the last `set_math_mode` call, else the
/// `GENET_MATH` environment variable ("strict" / "fast"), else strict. The
/// environment variable is read once, on first use.
MathMode math_mode();
void set_math_mode(MathMode mode);

/// Parses "strict" / "fast"; throws std::invalid_argument otherwise.
MathMode parse_math_mode(const std::string& name);
const char* math_mode_name(MathMode mode);

/// True when this binary carries the AVX2+FMA kernels (compiler supported
/// -mavx2 -mfma at build time) AND the running CPU reports both features.
/// Both modes dispatch through this at runtime: fast selects the FMA
/// kernels, strict the bit-identical multiply-then-add vector kernels.
bool cpu_has_avx2_fma();

/// Human-readable name of the kernel the current mode would dispatch to
/// ("scalar-tiled", "avx2-strict" or "avx2-fma"); recorded in
/// BENCH_throughput.json.
const char* active_kernel_name();

// ---------------------------------------------------------------------------
// Batched GEMM primitives. All matrices are dense row-major with no padding
// (leading dimension == column count). All routines ACCUMULATE into C; the
// caller initializes C (with zeros, or with a broadcast bias row).
// ---------------------------------------------------------------------------

/// C (M x N) += A (M x K) · B (K x N).
///
/// Strict contract: element C[m][n] receives its K addends in ascending-k
/// order, matching `acc = C0; for k: acc += A[m][k] * B[k][n]`. Each row of
/// C depends only on the matching row of A, so results are invariant to how
/// a batch is split across calls.
void gemm_nn(int M, int N, int K, const double* A, const double* B, double* C);

/// C (M x N) += Aᵀ · B where A is K x M and B is K x N, i.e.
/// C[m][n] += sum_k A[k][m] * B[k][n].
///
/// Strict contract: the k (sample) dimension is accumulated in ascending
/// order into C, reproducing bit-for-bit the per-sample rank-1 updates
/// `for k: C[m][n] += A[k][m] * B[k][n]` of the scalar backward pass.
void gemm_tn(int M, int N, int K, const double* A, const double* B, double* C);

/// dst (cols x rows) = srcᵀ for src (rows x cols). Used to pre-transpose
/// weight matrices once per batched forward so the inner kernels stream
/// contiguous rows.
void transpose(int rows, int cols, const double* src, double* dst);

namespace detail {
// Reference scalar kernels (always strict-ordered); exposed for tests and as
// the fallback the runtime dispatcher uses when AVX2+FMA is unavailable.
void gemm_nn_scalar(int M, int N, int K, const double* A, const double* B,
                    double* C);
void gemm_tn_scalar(int M, int N, int K, const double* A, const double* B,
                    double* C);
// AVX2 kernels, compiled only when the toolchain supports the flags (they
// degrade to the scalar kernels otherwise — see gemm_avx2.cpp). Never call
// directly without a cpu_has_avx2_fma() check. The _strict variants use
// multiply-then-add and are bit-identical to the scalar kernels; the plain
// variants use FMA (fast mode only).
void gemm_nn_avx2(int M, int N, int K, const double* A, const double* B,
                  double* C);
void gemm_tn_avx2(int M, int N, int K, const double* A, const double* B,
                  double* C);
void gemm_nn_avx2_strict(int M, int N, int K, const double* A, const double* B,
                         double* C);
void gemm_tn_avx2_strict(int M, int N, int K, const double* A, const double* B,
                         double* C);
bool avx2_kernels_compiled();
}  // namespace detail

}  // namespace nn
