// AVX2 GEMM kernels. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/nn/CMakeLists.txt), so AVX2 instructions can never
// leak into code that runs unconditionally; gemm.cpp dispatches here only
// after a runtime __builtin_cpu_supports check. When the toolchain cannot
// target AVX2, GENET_AVX2_BUILD stays undefined and the entry points degrade
// to the scalar kernels (and avx2_kernels_compiled() reports false, so they
// are never selected).
//
// Two kernel families share one loop structure (k-outer, n-tiled, each
// output element accumulated in ascending-k order):
//
//   strict — 256-bit multiply then add, two rounding steps per term, exactly
//            the operation the scalar kernels perform. Vector lanes are
//            independent accumulation chains, so results are bit-identical
//            to the scalar kernels (and to the pre-batching per-sample
//            code); strict mode may therefore use these freely.
//   fast   — 256-bit FMA, one rounding step per term. Reproducible for a
//            fixed batch shape but not bit-identical to strict.
//
// -ffp-contract=off is set globally (top-level CMakeLists.txt), so the
// scalar tails here do not silently contract to FMA even though -mfma is on;
// the fast tail opts into FMA explicitly via __builtin_fma.

#include "nn/gemm.hpp"

#if defined(GENET_AVX2_BUILD)
#include <immintrin.h>
#endif

namespace nn {
namespace detail {

#if defined(GENET_AVX2_BUILD)

bool avx2_kernels_compiled() { return true; }

namespace {

// 16 columns = 4 ymm accumulators: enough independent chains to hide the
// ~4-cycle FMA/add latency while leaving registers for the broadcast and
// the B-row loads.
constexpr int kVecTile = 16;

/// One multiply-accumulate term. UseFma selects fused (fast mode, one
/// rounding) or separate multiply-then-add (strict mode, bit-identical to
/// the scalar kernels).
template <bool UseFma>
inline __m256d mac(__m256d f, __m256d b, __m256d acc) {
  if constexpr (UseFma) return _mm256_fmadd_pd(f, b, acc);
  return _mm256_add_pd(acc, _mm256_mul_pd(f, b));
}

template <bool UseFma>
inline void accumulate_row_block(int N, int K, int n0, const double* f_src,
                                 long f_stride, const double* B, double* c) {
  __m256d acc0 = _mm256_loadu_pd(c + n0);
  __m256d acc1 = _mm256_loadu_pd(c + n0 + 4);
  __m256d acc2 = _mm256_loadu_pd(c + n0 + 8);
  __m256d acc3 = _mm256_loadu_pd(c + n0 + 12);
  for (int k = 0; k < K; ++k) {
    const __m256d f = _mm256_set1_pd(f_src[static_cast<long>(k) * f_stride]);
    const double* b = B + static_cast<std::size_t>(k) * N + n0;
    acc0 = mac<UseFma>(f, _mm256_loadu_pd(b), acc0);
    acc1 = mac<UseFma>(f, _mm256_loadu_pd(b + 4), acc1);
    acc2 = mac<UseFma>(f, _mm256_loadu_pd(b + 8), acc2);
    acc3 = mac<UseFma>(f, _mm256_loadu_pd(b + 12), acc3);
  }
  _mm256_storeu_pd(c + n0, acc0);
  _mm256_storeu_pd(c + n0 + 4, acc1);
  _mm256_storeu_pd(c + n0 + 8, acc2);
  _mm256_storeu_pd(c + n0 + 12, acc3);
}

template <bool UseFma>
inline void accumulate_row_quad(int N, int K, int n0, const double* f_src,
                                long f_stride, const double* B, double* c) {
  __m256d acc = _mm256_loadu_pd(c + n0);
  for (int k = 0; k < K; ++k) {
    const __m256d f = _mm256_set1_pd(f_src[static_cast<long>(k) * f_stride]);
    acc = mac<UseFma>(
        f, _mm256_loadu_pd(B + static_cast<std::size_t>(k) * N + n0), acc);
  }
  _mm256_storeu_pd(c + n0, acc);
}

template <bool UseFma>
inline void accumulate_row_tail(int N, int K, int n0, const double* f_src,
                                long f_stride, const double* B, double* c) {
  for (; n0 < N; ++n0) {
    double acc = c[n0];
    for (int k = 0; k < K; ++k) {
      const double f = f_src[static_cast<long>(k) * f_stride];
      const double b = B[static_cast<std::size_t>(k) * N + n0];
      if constexpr (UseFma) {
        // Matches the FMA rounding of the vector lanes, keeping one row's
        // result independent of which lane width processed it.
        acc = __builtin_fma(f, b, acc);
      } else {
        acc += f * b;  // two roundings, same as the vector lanes above
      }
    }
    c[n0] = acc;
  }
}

template <bool UseFma>
inline void gemm_rows(int M, int N, int K, const double* A, long a_row_stride,
                      long a_k_stride, const double* B, double* C) {
  for (int m = 0; m < M; ++m) {
    const double* f_src = A + static_cast<long>(m) * a_row_stride;
    double* c = C + static_cast<std::size_t>(m) * N;
    int n0 = 0;
    for (; n0 + kVecTile <= N; n0 += kVecTile) {
      accumulate_row_block<UseFma>(N, K, n0, f_src, a_k_stride, B, c);
    }
    for (; n0 + 4 <= N; n0 += 4) {
      accumulate_row_quad<UseFma>(N, K, n0, f_src, a_k_stride, B, c);
    }
    accumulate_row_tail<UseFma>(N, K, n0, f_src, a_k_stride, B, c);
  }
}

}  // namespace

void gemm_nn_avx2(int M, int N, int K, const double* A, const double* B,
                  double* C) {
  // A[m][k] walks row m contiguously: row stride K, k stride 1.
  gemm_rows<true>(M, N, K, A, /*a_row_stride=*/K, /*a_k_stride=*/1, B, C);
}

void gemm_tn_avx2(int M, int N, int K, const double* A, const double* B,
                  double* C) {
  // A[k][m] walks column m of a K x M matrix: row stride 1, k stride M.
  gemm_rows<true>(M, N, K, A, /*a_row_stride=*/1, /*a_k_stride=*/M, B, C);
}

void gemm_nn_avx2_strict(int M, int N, int K, const double* A, const double* B,
                         double* C) {
  gemm_rows<false>(M, N, K, A, /*a_row_stride=*/K, /*a_k_stride=*/1, B, C);
}

void gemm_tn_avx2_strict(int M, int N, int K, const double* A, const double* B,
                         double* C) {
  gemm_rows<false>(M, N, K, A, /*a_row_stride=*/1, /*a_k_stride=*/M, B, C);
}

#else  // !GENET_AVX2_BUILD

bool avx2_kernels_compiled() { return false; }

void gemm_nn_avx2(int M, int N, int K, const double* A, const double* B,
                  double* C) {
  gemm_nn_scalar(M, N, K, A, B, C);
}

void gemm_tn_avx2(int M, int N, int K, const double* A, const double* B,
                  double* C) {
  gemm_tn_scalar(M, N, K, A, B, C);
}

void gemm_nn_avx2_strict(int M, int N, int K, const double* A,
                         const double* B, double* C) {
  gemm_nn_scalar(M, N, K, A, B, C);
}

void gemm_tn_avx2_strict(int M, int N, int K, const double* A,
                         const double* B, double* C) {
  gemm_tn_scalar(M, N, K, A, B, C);
}

#endif  // GENET_AVX2_BUILD

}  // namespace detail
}  // namespace nn
