#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/gemm.hpp"

namespace nn {

namespace {

double activate(Activation act, double z) {
  switch (act) {
    case Activation::kTanh:
      return std::tanh(z);
    case Activation::kRelu:
      return z > 0 ? z : 0.0;
  }
  return z;
}

/// Derivative of the activation expressed in terms of a = activate(z), the
/// value the forward pass already cached. For tanh this reuses the exact
/// tanh(z) computed forward (grad = 1 - a^2), so it is bit-identical to
/// recomputing from z while skipping a second std::tanh per element — the
/// backward pass stays free of transcendentals. For ReLU, a > 0 iff z > 0.
double activate_grad_from_act(Activation act, double a) {
  switch (act) {
    case Activation::kTanh:
      return 1.0 - a * a;
    case Activation::kRelu:
      return a > 0 ? 1.0 : 0.0;
  }
  return 1.0;
}

}  // namespace

Mlp::Mlp(std::vector<int> sizes, Activation activation, netgym::Rng& rng)
    : sizes_(std::move(sizes)), activation_(activation) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output layers");
  }
  for (int s : sizes_) {
    if (s <= 0) throw std::invalid_argument("Mlp: layer sizes must be > 0");
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    weight_offsets_.push_back(total);
    total += static_cast<std::size_t>(sizes_[l]) * sizes_[l + 1];
    bias_offsets_.push_back(total);
    total += static_cast<std::size_t>(sizes_[l + 1]);
  }
  params_.resize(total);
  grads_.assign(total, 0.0);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const int n_in = sizes_[l];
    const int n_out = sizes_[l + 1];
    const double scale = std::sqrt(2.0 / (n_in + n_out));  // Xavier
    double* w = params_.data() + weight_offsets_[l];
    for (int i = 0; i < n_out * n_in; ++i) w[i] = rng.gaussian(0.0, scale);
    double* b = params_.data() + bias_offsets_[l];
    for (int i = 0; i < n_out; ++i) b[i] = 0.0;
  }
  acts_.resize(sizes_.size());
  zs_.resize(sizes_.size() - 1);
}

Mlp::Mlp(const Mlp& other)
    : netgym::checkpoint::Serializable(other),
      sizes_(other.sizes_),
      activation_(other.activation_),
      params_(other.params_),
      grads_(other.grads_),
      weight_offsets_(other.weight_offsets_),
      bias_offsets_(other.bias_offsets_) {
  // Scratch and the forward cache are deliberately not copied (class comment):
  // a fresh copy starts with an empty cache and allocates scratch on first
  // use, sized to its own batches.
  acts_.resize(sizes_.size());
  zs_.resize(sizes_.size() - 1);
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  sizes_ = other.sizes_;
  activation_ = other.activation_;
  params_ = other.params_;
  grads_ = other.grads_;
  weight_offsets_ = other.weight_offsets_;
  bias_offsets_ = other.bias_offsets_;
  acts_.assign(sizes_.size(), {});
  zs_.assign(sizes_.size() - 1, {});
  wt_scratch_.clear();
  delta_.clear();
  prev_delta_.clear();
  cached_rows_ = 0;
  return *this;
}

const std::vector<double>& Mlp::forward(const std::vector<double>& input) {
  if (static_cast<int>(input.size()) != sizes_.front()) {
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  }
  return forward_batch(input.data(), 1);
}

void Mlp::backward(const std::vector<double>& grad_output) {
  if (cached_rows_ == 0) {
    throw std::logic_error("Mlp::backward: no cached forward pass");
  }
  if (static_cast<int>(grad_output.size()) != sizes_.back()) {
    throw std::invalid_argument("Mlp::backward: grad size mismatch");
  }
  backward_batch(grad_output.data(), 1);
}

const std::vector<double>& Mlp::forward_batch(const double* inputs,
                                              std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("Mlp::forward_batch: empty batch");
  }
  const std::size_t num_layers = sizes_.size() - 1;
  std::vector<double>& in = acts_[0];
  in.resize(n * static_cast<std::size_t>(sizes_.front()));
  std::copy(inputs, inputs + in.size(), in.begin());
  for (std::size_t l = 0; l < num_layers; ++l) {
    const int n_in = sizes_[l];
    const int n_out = sizes_[l + 1];
    const double* w = params_.data() + weight_offsets_[l];
    const double* b = params_.data() + bias_offsets_[l];
    const std::vector<double>& a = acts_[l];
    std::vector<double>& z = zs_[l];
    z.resize(n * static_cast<std::size_t>(n_out));
    if (n == 1) {
      // Single-sample fast path: a plain dot product per output avoids the
      // weight transpose, which would dominate at M=1. Bit-identical to the
      // batched path in strict mode (both accumulate b[i] then ascending-j
      // products, one rounding per step).
      for (int i = 0; i < n_out; ++i) {
        const double* wrow = w + static_cast<std::size_t>(i) * n_in;
        double acc = b[i];
        for (int j = 0; j < n_in; ++j) acc += wrow[j] * a[j];
        z[static_cast<std::size_t>(i)] = acc;
      }
    } else {
      // z starts as n copies of the bias row, so the accumulating GEMM
      // reproduces the per-sample `acc = b[i]; acc += ...` seeding exactly.
      for (std::size_t m = 0; m < n; ++m) {
        std::copy(b, b + n_out, z.begin() + m * n_out);
      }
      wt_scratch_.resize(static_cast<std::size_t>(n_in) * n_out);
      transpose(n_out, n_in, w, wt_scratch_.data());
      gemm_nn(static_cast<int>(n), n_out, n_in, a.data(), wt_scratch_.data(),
              z.data());
    }
    std::vector<double>& out = acts_[l + 1];
    out.resize(z.size());
    if (l + 1 == num_layers) {
      std::copy(z.begin(), z.end(), out.begin());
    } else {
      for (std::size_t i = 0; i < z.size(); ++i) {
        out[i] = activate(activation_, z[i]);
      }
    }
  }
  cached_rows_ = n;
  return acts_.back();
}

void Mlp::backward_batch(const double* grad_outputs, std::size_t n) {
  if (cached_rows_ == 0) {
    throw std::logic_error("Mlp::backward_batch: no cached forward pass");
  }
  if (n != cached_rows_) {
    throw std::invalid_argument(
        "Mlp::backward_batch: batch size does not match cached forward pass");
  }
  const std::size_t num_layers = sizes_.size() - 1;
  // delta_ and prev_delta_ ping-pong through std::swap below, so size both
  // for the widest layer up front; otherwise their capacities alternate and
  // a later pass can still allocate despite a same-sized warm-up.
  const std::size_t widest = static_cast<std::size_t>(
      *std::max_element(sizes_.begin(), sizes_.end()));
  delta_.reserve(n * widest);
  prev_delta_.reserve(n * widest);
  delta_.resize(n * static_cast<std::size_t>(sizes_.back()));
  std::copy(grad_outputs, grad_outputs + delta_.size(), delta_.begin());
  for (std::size_t li = num_layers; li-- > 0;) {
    const int n_in = sizes_[li];
    const int n_out = sizes_[li + 1];
    const double* w = params_.data() + weight_offsets_[li];
    double* gw = grads_.data() + weight_offsets_[li];
    double* gb = grads_.data() + bias_offsets_[li];
    const std::vector<double>& a = acts_[li];
    // Bias gradients, sample-outer: each gb[i] receives its per-sample
    // addends in ascending row order, matching a loop of per-sample
    // backward calls.
    for (std::size_t m = 0; m < n; ++m) {
      const double* d = delta_.data() + m * n_out;
      for (int i = 0; i < n_out; ++i) gb[i] += d[i];
    }
    // Weight gradients: gw[i][j] += sum_m delta[m][i] * a[m][j]. gemm_tn
    // accumulates into gw in ascending-sample order — a rank-1 update per
    // row — which is what keeps batched gradient accumulation bit-identical
    // to the sequential per-sample updates (gw may already hold prior
    // batches' gradients, so ordering relative to that seed matters).
    gemm_tn(n_out, n_in, static_cast<int>(n), delta_.data(), a.data(), gw);
    if (li == 0) break;
    prev_delta_.resize(n * static_cast<std::size_t>(n_in));
    std::fill(prev_delta_.begin(), prev_delta_.end(), 0.0);
    // prev_delta[m][j] = sum_i delta[m][i] * w[i][j], ascending i, seeded
    // from 0 — the per-sample code's dot across output units.
    gemm_nn(static_cast<int>(n), n_in, n_out, delta_.data(), w,
            prev_delta_.data());
    const std::vector<double>& a_prev = acts_[li];  // activate(zs_[li-1])
    for (std::size_t i = 0; i < prev_delta_.size(); ++i) {
      prev_delta_[i] *= activate_grad_from_act(activation_, a_prev[i]);
    }
    std::swap(delta_, prev_delta_);
  }
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::save_state(netgym::checkpoint::Snapshot& snap,
                     const std::string& prefix) const {
  std::vector<std::int64_t> sizes(sizes_.begin(), sizes_.end());
  snap.put_i64s(prefix + "sizes", std::move(sizes));
  snap.put_i64(prefix + "activation", static_cast<std::int64_t>(activation_));
  snap.put_doubles(prefix + "params", params_);
}

void Mlp::load_state(const netgym::checkpoint::Snapshot& snap,
                     const std::string& prefix) {
  const std::vector<std::int64_t>& sizes = snap.get_i64s(prefix + "sizes");
  const std::int64_t activation = snap.get_i64(prefix + "activation");
  const std::vector<double>& params = snap.get_doubles(prefix + "params");
  if (sizes.size() != sizes_.size() ||
      !std::equal(sizes.begin(), sizes.end(), sizes_.begin())) {
    throw netgym::checkpoint::CheckpointError(
        "Mlp::load_state: layer sizes in snapshot do not match this network (" +
        prefix + "sizes)");
  }
  if (activation != static_cast<std::int64_t>(activation_)) {
    throw netgym::checkpoint::CheckpointError(
        "Mlp::load_state: activation mismatch (" + prefix + "activation)");
  }
  if (params.size() != params_.size()) {
    throw netgym::checkpoint::CheckpointError(
        "Mlp::load_state: parameter count mismatch (" + prefix + "params)");
  }
  params_ = params;
  cached_rows_ = 0;
}

void Mlp::set_params(const std::vector<double>& params) {
  if (params.size() != params_.size()) {
    throw std::invalid_argument("Mlp::set_params: size mismatch");
  }
  params_ = params;
}

std::vector<double> softmax(const std::vector<double>& logits) {
  if (logits.empty()) throw std::invalid_argument("softmax: empty input");
  std::vector<double> probs(logits.size());
  softmax_row(logits.data(), static_cast<int>(logits.size()), probs.data());
  return probs;
}

void softmax_row(const double* logits, int width, double* probs) {
  const double mx = *std::max_element(logits, logits + width);
  double total = 0.0;
  for (int i = 0; i < width; ++i) {
    probs[i] = std::exp(logits[i] - mx);
    total += probs[i];
  }
  for (int i = 0; i < width; ++i) probs[i] /= total;
}

double log_softmax_at(const std::vector<double>& logits, int index) {
  if (index < 0 || static_cast<std::size_t>(index) >= logits.size()) {
    throw std::invalid_argument("log_softmax_at: index out of range");
  }
  return log_softmax_row_at(logits.data(), static_cast<int>(logits.size()),
                            index);
}

double log_softmax_row_at(const double* logits, int width, int index) {
  const double mx = *std::max_element(logits, logits + width);
  double total = 0.0;
  for (int i = 0; i < width; ++i) total += std::exp(logits[i] - mx);
  return logits[index] - mx - std::log(total);
}

}  // namespace nn
