#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nn {

namespace {

double activate(Activation act, double z) {
  switch (act) {
    case Activation::kTanh:
      return std::tanh(z);
    case Activation::kRelu:
      return z > 0 ? z : 0.0;
  }
  return z;
}

/// Derivative of the activation expressed in terms of z (pre-activation).
double activate_grad(Activation act, double z) {
  switch (act) {
    case Activation::kTanh: {
      const double t = std::tanh(z);
      return 1.0 - t * t;
    }
    case Activation::kRelu:
      return z > 0 ? 1.0 : 0.0;
  }
  return 1.0;
}

}  // namespace

Mlp::Mlp(std::vector<int> sizes, Activation activation, netgym::Rng& rng)
    : sizes_(std::move(sizes)), activation_(activation) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output layers");
  }
  for (int s : sizes_) {
    if (s <= 0) throw std::invalid_argument("Mlp: layer sizes must be > 0");
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    weight_offsets_.push_back(total);
    total += static_cast<std::size_t>(sizes_[l]) * sizes_[l + 1];
    bias_offsets_.push_back(total);
    total += static_cast<std::size_t>(sizes_[l + 1]);
  }
  params_.resize(total);
  grads_.assign(total, 0.0);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const int n_in = sizes_[l];
    const int n_out = sizes_[l + 1];
    const double scale = std::sqrt(2.0 / (n_in + n_out));  // Xavier
    double* w = params_.data() + weight_offsets_[l];
    for (int i = 0; i < n_out * n_in; ++i) w[i] = rng.gaussian(0.0, scale);
    double* b = params_.data() + bias_offsets_[l];
    for (int i = 0; i < n_out; ++i) b[i] = 0.0;
  }
  activations_.resize(sizes_.size());
  pre_activations_.resize(sizes_.size() - 1);
}

std::vector<double> Mlp::forward(const std::vector<double>& input) {
  if (static_cast<int>(input.size()) != sizes_.front()) {
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  }
  activations_[0] = input;
  const std::size_t num_layers = sizes_.size() - 1;
  for (std::size_t l = 0; l < num_layers; ++l) {
    const int n_in = sizes_[l];
    const int n_out = sizes_[l + 1];
    const double* w = params_.data() + weight_offsets_[l];
    const double* b = params_.data() + bias_offsets_[l];
    const std::vector<double>& a = activations_[l];
    std::vector<double>& z = pre_activations_[l];
    z.assign(static_cast<std::size_t>(n_out), 0.0);
    for (int i = 0; i < n_out; ++i) {
      const double* wrow = w + static_cast<std::size_t>(i) * n_in;
      double acc = b[i];
      for (int j = 0; j < n_in; ++j) acc += wrow[j] * a[j];
      z[i] = acc;
    }
    std::vector<double>& out = activations_[l + 1];
    out.resize(static_cast<std::size_t>(n_out));
    const bool last = (l + 1 == num_layers);
    for (int i = 0; i < n_out; ++i) {
      out[i] = last ? z[i] : activate(activation_, z[i]);
    }
  }
  has_forward_cache_ = true;
  return activations_.back();
}

void Mlp::backward(const std::vector<double>& grad_output) {
  if (!has_forward_cache_) {
    throw std::logic_error("Mlp::backward: no cached forward pass");
  }
  if (static_cast<int>(grad_output.size()) != sizes_.back()) {
    throw std::invalid_argument("Mlp::backward: grad size mismatch");
  }
  const std::size_t num_layers = sizes_.size() - 1;
  // delta holds dL/dz for the current layer (output layer is linear).
  std::vector<double> delta = grad_output;
  for (std::size_t li = num_layers; li-- > 0;) {
    const int n_in = sizes_[li];
    const int n_out = sizes_[li + 1];
    const double* w = params_.data() + weight_offsets_[li];
    double* gw = grads_.data() + weight_offsets_[li];
    double* gb = grads_.data() + bias_offsets_[li];
    const std::vector<double>& a = activations_[li];
    for (int i = 0; i < n_out; ++i) {
      gb[i] += delta[i];
      double* gwrow = gw + static_cast<std::size_t>(i) * n_in;
      for (int j = 0; j < n_in; ++j) gwrow[j] += delta[i] * a[j];
    }
    if (li == 0) break;
    std::vector<double> prev_delta(static_cast<std::size_t>(n_in), 0.0);
    for (int j = 0; j < n_in; ++j) {
      double acc = 0.0;
      for (int i = 0; i < n_out; ++i) {
        acc += w[static_cast<std::size_t>(i) * n_in + j] * delta[i];
      }
      // a[j] of this layer is the post-activation of layer li-1.
      acc *= activate_grad(activation_, pre_activations_[li - 1][j]);
      prev_delta[j] = acc;
    }
    delta = std::move(prev_delta);
  }
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::save_state(netgym::checkpoint::Snapshot& snap,
                     const std::string& prefix) const {
  std::vector<std::int64_t> sizes(sizes_.begin(), sizes_.end());
  snap.put_i64s(prefix + "sizes", std::move(sizes));
  snap.put_i64(prefix + "activation", static_cast<std::int64_t>(activation_));
  snap.put_doubles(prefix + "params", params_);
}

void Mlp::load_state(const netgym::checkpoint::Snapshot& snap,
                     const std::string& prefix) {
  const std::vector<std::int64_t>& sizes = snap.get_i64s(prefix + "sizes");
  const std::int64_t activation = snap.get_i64(prefix + "activation");
  const std::vector<double>& params = snap.get_doubles(prefix + "params");
  if (sizes.size() != sizes_.size() ||
      !std::equal(sizes.begin(), sizes.end(), sizes_.begin())) {
    throw netgym::checkpoint::CheckpointError(
        "Mlp::load_state: layer sizes in snapshot do not match this network (" +
        prefix + "sizes)");
  }
  if (activation != static_cast<std::int64_t>(activation_)) {
    throw netgym::checkpoint::CheckpointError(
        "Mlp::load_state: activation mismatch (" + prefix + "activation)");
  }
  if (params.size() != params_.size()) {
    throw netgym::checkpoint::CheckpointError(
        "Mlp::load_state: parameter count mismatch (" + prefix + "params)");
  }
  params_ = params;
  has_forward_cache_ = false;
}

void Mlp::set_params(const std::vector<double>& params) {
  if (params.size() != params_.size()) {
    throw std::invalid_argument("Mlp::set_params: size mismatch");
  }
  params_ = params;
}

std::vector<double> softmax(const std::vector<double>& logits) {
  if (logits.empty()) throw std::invalid_argument("softmax: empty input");
  const double mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - mx);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

double log_softmax_at(const std::vector<double>& logits, int index) {
  if (index < 0 || static_cast<std::size_t>(index) >= logits.size()) {
    throw std::invalid_argument("log_softmax_at: index out of range");
  }
  const double mx = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double z : logits) total += std::exp(z - mx);
  return logits[static_cast<std::size_t>(index)] - mx - std::log(total);
}

}  // namespace nn
