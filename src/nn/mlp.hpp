#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"

namespace nn {

/// Hidden-layer activation of an `Mlp`. The output layer is always linear
/// (policy heads apply softmax themselves; value heads are scalar).
enum class Activation { kTanh, kRelu };

/// A small fully-connected network with flat parameter storage and a batched
/// compute core.
///
/// All weights and biases live in one contiguous vector (`params()`), with a
/// parallel gradient vector (`grads()`), so optimizers operate on flat arrays
/// and snapshotting a policy is a vector copy. The layout per layer `l`
/// (input width `n_in`, output width `n_out`) is a row-major `n_out x n_in`
/// weight block followed by `n_out` biases.
///
/// The batched entry points (`forward_batch` / `backward_batch`) run N
/// samples through the cache-blocked GEMM kernels in nn/gemm.hpp and reuse
/// member scratch buffers, so steady-state calls perform no heap
/// allocations. The per-sample `forward` / `backward` are thin N=1 wrappers
/// over the same machinery. Under the default strict math mode (see
/// nn::MathMode) a batched pass is bit-identical to looping the per-sample
/// one, for both outputs and accumulated gradients.
///
/// `forward_batch` caches the batch's per-layer activations; `backward_batch`
/// consumes that cache, so the call pattern is forward -> backward with a
/// matching batch size. Gradients accumulate across calls until
/// `zero_grad()`.
///
/// Copying an `Mlp` copies topology, parameters, and gradients but not the
/// transient forward cache or scratch buffers (a copy cannot call `backward`
/// before its own `forward`); rollout workers clone policies per job, so
/// keeping multi-megabyte batch scratch out of the copy matters.
class Mlp : public netgym::checkpoint::Serializable {
 public:
  /// `sizes` lists the widths of every layer, e.g. {10, 32, 32, 6} is a net
  /// with 10 inputs, two hidden layers of 32, and 6 outputs. Weights are
  /// Xavier-initialized from `rng`.
  Mlp(std::vector<int> sizes, Activation activation, netgym::Rng& rng);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  int input_size() const { return sizes_.front(); }
  int output_size() const { return sizes_.back(); }

  /// Run the network on one sample; returns the (linear) output layer
  /// values. The reference points into member scratch and is valid until the
  /// next forward/backward call on this network (copy it to keep it).
  const std::vector<double>& forward(const std::vector<double>& input);

  /// Backpropagate `dL/doutput` through the cached forward pass, accumulating
  /// parameter gradients. Must follow a `forward` call.
  void backward(const std::vector<double>& grad_output);

  /// Run `n` samples (row-major `n x input_size`) through the network in one
  /// batched pass. Returns the `n x output_size` output matrix, which points
  /// into member scratch and is valid until the next forward/backward call.
  const std::vector<double>& forward_batch(const double* inputs,
                                           std::size_t n);

  /// Backpropagate a batch of output gradients (row-major
  /// `n x output_size`) through the cached batched forward pass,
  /// accumulating parameter gradients exactly as if the samples had been
  /// processed one by one in row order. `n` must match the cached batch.
  void backward_batch(const double* grad_outputs, std::size_t n);

  void zero_grad();

  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& grads() { return grads_; }
  const std::vector<double>& grads() const { return grads_; }

  /// Replace all parameters (sizes must match); used to restore snapshots.
  void set_params(const std::vector<double>& params);

  std::size_t num_params() const { return params_.size(); }

  /// Checkpoint hooks: saves the topology (sizes, activation) alongside the
  /// exact parameter bit patterns; load validates the topology against this
  /// network before touching `params_` (gradients and the forward cache are
  /// transient and deliberately not persisted).
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  std::vector<int> sizes_;
  Activation activation_;
  std::vector<double> params_;
  std::vector<double> grads_;
  std::vector<std::size_t> weight_offsets_;  // per layer
  std::vector<std::size_t> bias_offsets_;    // per layer

  // Batched forward-pass cache, reused across calls (buffers only grow):
  // acts_[0] is the n x input batch, acts_[l+1] the n x width post-activation
  // output of layer l; zs_[l] the layer's n x width pre-activation.
  std::vector<std::vector<double>> acts_;
  std::vector<std::vector<double>> zs_;
  std::vector<double> wt_scratch_;     // transposed weights of one layer
  std::vector<double> delta_;          // n x width, dL/dz of current layer
  std::vector<double> prev_delta_;     // n x width of the layer below
  std::size_t cached_rows_ = 0;        // 0 = no valid forward cache
};

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<double>& logits);

/// Softmax of one `width`-wide row into `probs` (may not alias `logits`).
/// Identical arithmetic to `softmax`, allocation-free.
void softmax_row(const double* logits, int width, double* probs);

/// log(softmax(logits)[index]) computed stably.
double log_softmax_at(const std::vector<double>& logits, int index);

/// Row variant of `log_softmax_at`, identical arithmetic.
double log_softmax_row_at(const double* logits, int width, int index);

}  // namespace nn
