#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"

namespace nn {

/// Hidden-layer activation of an `Mlp`. The output layer is always linear
/// (policy heads apply softmax themselves; value heads are scalar).
enum class Activation { kTanh, kRelu };

/// A small fully-connected network with flat parameter storage.
///
/// All weights and biases live in one contiguous vector (`params()`), with a
/// parallel gradient vector (`grads()`), so optimizers operate on flat arrays
/// and snapshotting a policy is a vector copy. The layout per layer `l`
/// (input width `n_in`, output width `n_out`) is a row-major `n_out x n_in`
/// weight block followed by `n_out` biases.
///
/// `forward` caches per-layer activations; `backward` consumes that cache, so
/// the call pattern per sample is forward -> backward. Gradients accumulate
/// across samples until `zero_grad()`.
class Mlp : public netgym::checkpoint::Serializable {
 public:
  /// `sizes` lists the widths of every layer, e.g. {10, 32, 32, 6} is a net
  /// with 10 inputs, two hidden layers of 32, and 6 outputs. Weights are
  /// Xavier-initialized from `rng`.
  Mlp(std::vector<int> sizes, Activation activation, netgym::Rng& rng);

  int input_size() const { return sizes_.front(); }
  int output_size() const { return sizes_.back(); }

  /// Run the network; returns the (linear) output layer values.
  std::vector<double> forward(const std::vector<double>& input);

  /// Backpropagate `dL/doutput` through the cached forward pass, accumulating
  /// parameter gradients. Must follow a `forward` call.
  void backward(const std::vector<double>& grad_output);

  void zero_grad();

  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& grads() { return grads_; }
  const std::vector<double>& grads() const { return grads_; }

  /// Replace all parameters (sizes must match); used to restore snapshots.
  void set_params(const std::vector<double>& params);

  std::size_t num_params() const { return params_.size(); }

  /// Checkpoint hooks: saves the topology (sizes, activation) alongside the
  /// exact parameter bit patterns; load validates the topology against this
  /// network before touching `params_` (gradients and the forward cache are
  /// transient and deliberately not persisted).
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  std::vector<int> sizes_;
  Activation activation_;
  std::vector<double> params_;
  std::vector<double> grads_;
  std::vector<std::size_t> weight_offsets_;  // per layer
  std::vector<std::size_t> bias_offsets_;    // per layer
  // Forward-pass cache: activations_[0] is the input, activations_[l+1] the
  // post-activation output of layer l; pre_activations_[l] the layer's z.
  std::vector<std::vector<double>> activations_;
  std::vector<std::vector<double>> pre_activations_;
  bool has_forward_cache_ = false;
};

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<double>& logits);

/// log(softmax(logits)[index]) computed stably.
double log_softmax_at(const std::vector<double>& logits, int index);

}  // namespace nn
