#include "rl/lockstep.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "netgym/parallel.hpp"
#include "netgym/tracing.hpp"

namespace rl {

std::size_t lockstep_group_size(std::size_t items) {
  const std::size_t threads =
      static_cast<std::size_t>(std::max(netgym::num_threads(), 1));
  const std::size_t share = items / (2 * threads);
  return std::clamp<std::size_t>(share, 1, 32);
}

std::vector<netgym::EpisodeStats> run_episodes_lockstep(
    MlpPolicy& policy, const std::vector<netgym::Env*>& envs,
    const std::vector<netgym::Rng*>& rngs, int max_steps,
    std::vector<std::vector<Transition>>* transitions) {
  if (max_steps <= 0) {
    throw std::invalid_argument("run_episodes_lockstep: max_steps must be > 0");
  }
  if (envs.size() != rngs.size()) {
    throw std::invalid_argument(
        "run_episodes_lockstep: envs/rngs size mismatch");
  }
  const std::size_t n = envs.size();
  std::vector<netgym::EpisodeStats> stats(n);
  if (transitions != nullptr) {
    transitions->clear();
    transitions->resize(n);
  }
  if (n == 0) return stats;

  const int obs_size = policy.obs_size();

  // Per-episode state. Episodes start in index order (each env's reset draws
  // only from its own stream, so start order is unobservable) and drop out of
  // the active set as they finish.
  std::vector<netgym::Observation> obs(n);
  std::vector<int> steps_taken(n, 0);
  std::vector<std::size_t> active;
  active.reserve(n);
  // Episodes interleave on this thread, so RAII spans cannot scope them;
  // each episode's [reset, last step] window is emitted manually instead,
  // keeping per-episode spans in traces at any group size.
  const bool traced = netgym::tracing::enabled();
  std::vector<std::int64_t> span_start(traced ? n : 0, 0);
  for (std::size_t i = 0; i < n; ++i) {
    policy.begin_episode();
    if (traced) span_start[i] = netgym::tracing::now_ns();
    obs[i] = envs[i]->reset();
    active.push_back(i);
  }

  std::vector<double> obs_rows;
  std::vector<netgym::Rng*> row_rngs;
  std::vector<int> actions;
  while (!active.empty()) {
    const std::size_t rows = active.size();
    obs_rows.resize(rows * static_cast<std::size_t>(obs_size));
    row_rngs.resize(rows);
    actions.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = active[r];
      std::copy(obs[i].begin(), obs[i].end(),
                obs_rows.begin() + r * obs_size);
      row_rngs[r] = rngs[i];
    }
    policy.act_batch(obs_rows.data(), rows, row_rngs.data(), actions.data());

    // Step every active env, compacting finished episodes out in place.
    std::size_t keep = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = active[r];
      const int action = actions[r];
      if (action < 0 || action >= envs[i]->action_count()) {
        throw std::logic_error(
            "run_episodes_lockstep: policy produced an invalid action");
      }
      netgym::Env::StepResult result = envs[i]->step(action);
      stats[i].total_reward += result.reward;
      ++stats[i].steps;
      const int s = steps_taken[i]++;
      const bool hit_cap = (s + 1 == max_steps);
      if (transitions != nullptr) {
        // Same record as collect_batch's loop: the step that hits the cap is
        // marked done even if the env would have continued.
        (*transitions)[i].push_back(Transition{
            std::move(obs[i]), action, result.reward, result.done || hit_cap});
      }
      if (result.done || hit_cap) {  // episode i leaves the batch
        if (traced) {
          const std::int64_t now = netgym::tracing::now_ns();
          netgym::tracing::emit_span("episode", "env", span_start[i],
                                     now - span_start[i],
                                     static_cast<std::int64_t>(i));
        }
        continue;
      }
      obs[i] = std::move(result.observation);
      active[keep++] = i;
    }
    active.resize(keep);
  }

  for (std::size_t i = 0; i < n; ++i) {
    stats[i].mean_reward =
        stats[i].steps > 0 ? stats[i].total_reward / stats[i].steps : 0.0;
  }
  return stats;
}

}  // namespace rl
