#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "netgym/env.hpp"
#include "rl/policy.hpp"
#include "rl/rollout.hpp"

namespace rl {

/// How many episodes one lockstep job should step together: enough to feed
/// the batched forward pass (up to 32 rows), but no more than half the
/// per-thread share of `items`, so the thread pool still load-balances
/// across jobs of uneven episode length. Always >= 1.
std::size_t lockstep_group_size(std::size_t items);

/// Step a group of environments through full episodes in lockstep under one
/// shared policy, evaluating all still-active episodes' observations in a
/// single batched forward pass per tick.
///
/// `envs[i]` is rolled with `*rngs[i]` supplying its action-sampling draws,
/// for at most `max_steps` steps, exactly like `netgym::run_episode` /
/// `collect_batch`'s per-episode loop; episode `i`'s stats land in slot `i`
/// of the result, and when `transitions` is non-null its slot `i` receives
/// the episode's transitions (same `done`-forcing at the step cap as
/// `collect_batch`).
///
/// Determinism: every episode draws only from its own RNG stream and its own
/// environment, and in strict math mode each row of a batched forward is
/// bit-identical to a scalar forward, so the results are bit-identical to
/// running the episodes one at a time — independent of group size and
/// therefore of thread count. (In fast math mode the batched kernels' FMA
/// rounding makes results group-size-dependent; see DESIGN.md.)
std::vector<netgym::EpisodeStats> run_episodes_lockstep(
    MlpPolicy& policy, const std::vector<netgym::Env*>& envs,
    const std::vector<netgym::Rng*>& rngs, int max_steps,
    std::vector<std::vector<Transition>>* transitions = nullptr);

}  // namespace rl
