#include "rl/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace rl {

namespace {
std::vector<int> make_sizes(int obs_size, int action_count,
                            const std::vector<int>& hidden) {
  if (obs_size <= 0 || action_count <= 0) {
    throw std::invalid_argument("MlpPolicy: sizes must be > 0");
  }
  std::vector<int> sizes;
  sizes.push_back(obs_size);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(action_count);
  return sizes;
}
}  // namespace

MlpPolicy::MlpPolicy(int obs_size, int action_count,
                     const std::vector<int>& hidden, netgym::Rng& rng)
    : net_(make_sizes(obs_size, action_count, hidden), nn::Activation::kTanh,
           rng) {}

int MlpPolicy::act(const netgym::Observation& obs, netgym::Rng& rng) {
  const std::vector<double> z = net_.forward(obs);
  if (greedy_) {
    return static_cast<int>(
        std::distance(z.begin(), std::max_element(z.begin(), z.end())));
  }
  const std::vector<double> p = nn::softmax(z);
  return static_cast<int>(rng.categorical(p));
}

std::vector<double> MlpPolicy::logits(const netgym::Observation& obs) {
  return net_.forward(obs);
}

std::vector<double> MlpPolicy::probs(const netgym::Observation& obs) {
  return nn::softmax(net_.forward(obs));
}

}  // namespace rl
