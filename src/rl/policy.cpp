#include "rl/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace rl {

namespace {
std::vector<int> make_sizes(int obs_size, int action_count,
                            const std::vector<int>& hidden) {
  if (obs_size <= 0 || action_count <= 0) {
    throw std::invalid_argument("MlpPolicy: sizes must be > 0");
  }
  std::vector<int> sizes;
  sizes.push_back(obs_size);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(action_count);
  return sizes;
}
}  // namespace

MlpPolicy::MlpPolicy(int obs_size, int action_count,
                     const std::vector<int>& hidden, netgym::Rng& rng)
    : net_(make_sizes(obs_size, action_count, hidden), nn::Activation::kTanh,
           rng) {}

int MlpPolicy::sample_row(const double* logits_row, netgym::Rng& rng) {
  const int k = net_.output_size();
  if (greedy_) {
    // std::max_element keeps the first maximum on ties, so greedy actions
    // are deterministic and independent of how the logits were computed.
    return static_cast<int>(std::distance(
        logits_row, std::max_element(logits_row, logits_row + k)));
  }
  probs_scratch_.resize(static_cast<std::size_t>(k));
  nn::softmax_row(logits_row, k, probs_scratch_.data());
  return static_cast<int>(rng.categorical(probs_scratch_));
}

int MlpPolicy::act(const netgym::Observation& obs, netgym::Rng& rng) {
  const std::vector<double>& z = net_.forward(obs);
  return sample_row(z.data(), rng);
}

std::vector<double> MlpPolicy::logits(const netgym::Observation& obs) {
  return net_.forward(obs);
}

std::vector<double> MlpPolicy::probs(const netgym::Observation& obs) {
  return nn::softmax(net_.forward(obs));
}

const std::vector<double>& MlpPolicy::logits_batch(const double* obs,
                                                   std::size_t n) {
  return net_.forward_batch(obs, n);
}

void MlpPolicy::act_batch(const double* obs, std::size_t n,
                          netgym::Rng* const* rngs, int* actions) {
  const std::vector<double>& z = net_.forward_batch(obs, n);
  const int k = net_.output_size();
  for (std::size_t m = 0; m < n; ++m) {
    actions[m] = sample_row(z.data() + m * k, *rngs[m]);
  }
}

}  // namespace rl
