#pragma once

#include <memory>
#include <vector>

#include "netgym/env.hpp"
#include "netgym/rng.hpp"
#include "nn/mlp.hpp"

namespace rl {

/// A categorical (softmax) policy over a discrete action space, backed by an
/// MLP that maps observations to logits. This is the DNN policy shape used by
/// all three use cases (bitrate index for ABR, rate-change level for CC,
/// server index for LB).
///
/// `act` samples from the softmax distribution (training / stochastic
/// evaluation); `set_greedy(true)` switches to argmax actions (deployment
/// evaluation, the mode used by every test harness).
class MlpPolicy : public netgym::Policy {
 public:
  MlpPolicy(int obs_size, int action_count, const std::vector<int>& hidden,
            netgym::Rng& rng);

  int act(const netgym::Observation& obs, netgym::Rng& rng) override;

  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<MlpPolicy>(*this);
  }

  /// Logits for an observation (runs a forward pass).
  std::vector<double> logits(const netgym::Observation& obs);

  /// Action probabilities for an observation.
  std::vector<double> probs(const netgym::Observation& obs);

  bool greedy() const { return greedy_; }
  void set_greedy(bool greedy) { greedy_ = greedy; }

  int action_count() const { return net_.output_size(); }
  int obs_size() const { return net_.input_size(); }

  nn::Mlp& net() { return net_; }
  const nn::Mlp& net() const { return net_; }

  /// Copy of all network parameters (for model snapshots / restarts).
  std::vector<double> snapshot() const { return net_.params(); }
  void restore(const std::vector<double>& params) { net_.set_params(params); }

 private:
  nn::Mlp net_;
  bool greedy_ = false;
};

}  // namespace rl
