#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "netgym/env.hpp"
#include "netgym/rng.hpp"
#include "nn/mlp.hpp"

namespace rl {

/// A categorical (softmax) policy over a discrete action space, backed by an
/// MLP that maps observations to logits. This is the DNN policy shape used by
/// all three use cases (bitrate index for ABR, rate-change level for CC,
/// server index for LB).
///
/// `act` samples from the softmax distribution (training / stochastic
/// evaluation); `set_greedy(true)` switches to argmax actions (deployment
/// evaluation, the mode used by every test harness).
///
/// The `_batch` entry points push many observations through one batched
/// forward pass (see nn::Mlp); in strict math mode their results are
/// bit-identical to looping the per-observation calls.
class MlpPolicy : public netgym::Policy {
 public:
  MlpPolicy(int obs_size, int action_count, const std::vector<int>& hidden,
            netgym::Rng& rng);

  int act(const netgym::Observation& obs, netgym::Rng& rng) override;

  std::unique_ptr<netgym::Policy> clone() const override {
    return std::make_unique<MlpPolicy>(*this);
  }

  /// Logits for an observation (runs a forward pass).
  std::vector<double> logits(const netgym::Observation& obs);

  /// Action probabilities for an observation.
  std::vector<double> probs(const netgym::Observation& obs);

  /// Logits for `n` observations packed row-major (`n x obs_size`); returns
  /// the `n x action_count` logit matrix. The reference points into the
  /// network's scratch and is valid until its next forward/backward call.
  const std::vector<double>& logits_batch(const double* obs, std::size_t n);

  /// One action per packed observation row, sampled from that row's softmax
  /// using the row's own RNG stream (or argmax when greedy). Writes
  /// `actions[0..n)`. Each row consumes exactly the RNG draws of a scalar
  /// `act` call on `*rngs[i]`, so lockstepped rollouts stay stream-for-stream
  /// identical to sequential ones.
  void act_batch(const double* obs, std::size_t n, netgym::Rng* const* rngs,
                 int* actions);

  bool greedy() const { return greedy_; }
  void set_greedy(bool greedy) { greedy_ = greedy; }

  int action_count() const { return net_.output_size(); }
  int obs_size() const { return net_.input_size(); }

  nn::Mlp& net() { return net_; }
  const nn::Mlp& net() const { return net_; }

  /// Copy of all network parameters (for model snapshots / restarts).
  std::vector<double> snapshot() const { return net_.params(); }
  void restore(const std::vector<double>& params) { net_.set_params(params); }

 private:
  int sample_row(const double* logits_row, netgym::Rng& rng);

  nn::Mlp net_;
  bool greedy_ = false;
  std::vector<double> probs_scratch_;
};

}  // namespace rl
