#include "rl/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rl {

double RolloutBatch::total_reward() const {
  double sum = 0.0;
  for (const Transition& t : transitions) sum += t.reward;
  return sum;
}

int RolloutBatch::num_episodes() const {
  int n = 0;
  bool open = false;
  for (const Transition& t : transitions) {
    open = true;
    if (t.done) {
      ++n;
      open = false;
    }
  }
  if (open) ++n;
  return n;
}

double RolloutBatch::mean_episode_reward() const {
  const int n = num_episodes();
  return n > 0 ? total_reward() / n : 0.0;
}

std::vector<double> discounted_returns(const RolloutBatch& batch,
                                       double gamma) {
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("discounted_returns: gamma must be in [0,1]");
  }
  std::vector<double> returns(batch.size());
  double acc = 0.0;
  for (std::size_t i = batch.size(); i-- > 0;) {
    const Transition& t = batch.transitions[i];
    if (t.done) acc = 0.0;
    acc = t.reward + gamma * acc;
    returns[i] = acc;
  }
  return returns;
}

std::vector<double> gae_advantages(const RolloutBatch& batch,
                                   const std::vector<double>& values,
                                   double gamma, double lambda,
                                   double last_value) {
  if (values.size() != batch.size()) {
    throw std::invalid_argument("gae_advantages: values size mismatch");
  }
  std::vector<double> adv(batch.size());
  double acc = 0.0;
  for (std::size_t i = batch.size(); i-- > 0;) {
    const Transition& t = batch.transitions[i];
    double next_value;
    if (t.done) {
      next_value = 0.0;
      acc = 0.0;  // do not leak advantage across episode boundaries
    } else if (i + 1 < batch.size()) {
      next_value = values[i + 1];
    } else {
      next_value = last_value;
    }
    const double delta = t.reward + gamma * next_value - values[i];
    acc = delta + gamma * lambda * acc;
    adv[i] = acc;
  }
  return adv;
}

void normalize(std::vector<double>& xs) {
  if (xs.size() < 2) return;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  const double sd = std::sqrt(var);
  if (sd < 1e-12) return;
  for (double& x : xs) x = (x - mean) / sd;
}

void RunningNorm::update(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningNorm::stddev() const {
  if (count_ < 2) return 1.0;
  return std::sqrt(std::max(m2_ / static_cast<double>(count_ - 1), 1e-12));
}

double RunningNorm::normalize(double x) const {
  return (x - mean_) / stddev();
}

void RunningNorm::save_state(netgym::checkpoint::Snapshot& snap,
                             const std::string& prefix) const {
  snap.put_i64(prefix + "count", static_cast<std::int64_t>(count_));
  snap.put_double(prefix + "mean", mean_);
  snap.put_double(prefix + "m2", m2_);
}

void RunningNorm::load_state(const netgym::checkpoint::Snapshot& snap,
                             const std::string& prefix) {
  const std::int64_t count = snap.get_i64(prefix + "count");
  const double mean = snap.get_double(prefix + "mean");
  const double m2 = snap.get_double(prefix + "m2");
  if (count < 0) {
    throw netgym::checkpoint::CheckpointError(
        "RunningNorm::load_state: negative count (" + prefix + "count)");
  }
  count_ = static_cast<long>(count);
  mean_ = mean;
  m2_ = m2;
}

}  // namespace rl
