#pragma once

#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"
#include "netgym/env.hpp"

namespace rl {

/// One environment step recorded during rollout collection.
struct Transition {
  netgym::Observation obs;
  int action = 0;
  double reward = 0.0;
  bool done = false;  ///< true if this step ended the episode
};

/// A batch of transitions from one or more episodes, in time order. Episode
/// boundaries are marked by `done` flags (return computation never leaks
/// credit across them).
struct RolloutBatch {
  std::vector<Transition> transitions;

  std::size_t size() const { return transitions.size(); }
  bool empty() const { return transitions.empty(); }
  void clear() { transitions.clear(); }

  double total_reward() const;
  /// Mean per-episode total reward (requires at least one `done`; a trailing
  /// unfinished episode counts as an episode).
  double mean_episode_reward() const;
  int num_episodes() const;
};

/// Discounted returns G_t = r_t + gamma * G_{t+1}, reset at episode ends.
std::vector<double> discounted_returns(const RolloutBatch& batch,
                                       double gamma);

/// Generalized Advantage Estimation over the batch. `values` must align with
/// the transitions; the value after a terminal step is treated as zero, and a
/// trailing unfinished episode bootstraps from `last_value`.
std::vector<double> gae_advantages(const RolloutBatch& batch,
                                   const std::vector<double>& values,
                                   double gamma, double lambda,
                                   double last_value = 0.0);

/// In-place standardization to zero mean / unit variance (no-op for constant
/// or single-element input).
void normalize(std::vector<double>& xs);

/// Running mean/variance tracker (Welford); used to normalize returns so the
/// same trainer hyperparameters work across reward scales that differ by
/// orders of magnitude between the three use cases.
class RunningNorm : public netgym::checkpoint::Serializable {
 public:
  void update(double x);
  double normalize(double x) const;
  double mean() const { return mean_; }
  double stddev() const;
  long count() const { return count_; }

  /// Checkpoint hooks: the tracker is three numbers (count, mean, M2); both
  /// directions preserve the exact bit patterns so a resumed trainer scales
  /// rewards identically to an uninterrupted one.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 private:
  long count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace rl
