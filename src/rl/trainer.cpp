#include "rl/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "netgym/health.hpp"
#include "netgym/parallel.hpp"
#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"
#include "rl/lockstep.hpp"

namespace rl {

namespace {

/// Transitions' observations packed row-major into an `n x obs_size` matrix,
/// ready for the batched forward passes below.
std::vector<double> pack_observations(const RolloutBatch& batch,
                                      int obs_size) {
  std::vector<double> rows(batch.size() * static_cast<std::size_t>(obs_size));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const netgym::Observation& obs = batch.transitions[i].obs;
    std::copy(obs.begin(), obs.end(),
              rows.begin() + i * static_cast<std::size_t>(obs_size));
  }
  return rows;
}

std::vector<int> critic_sizes(int obs_size, const std::vector<int>& hidden) {
  std::vector<int> sizes;
  sizes.push_back(obs_size);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}

bool all_finite(const std::vector<double>& xs) {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// 1 - Var(targets - values) / Var(targets); 0 when the target variance is
/// (numerically) zero, so a degenerate constant-return batch reads as "the
/// critic explains nothing" instead of dividing by zero.
double explained_variance_of(const std::vector<double>& targets,
                             const std::vector<double>& values) {
  if (targets.empty() || targets.size() != values.size()) return 0.0;
  const double n = static_cast<double>(targets.size());
  double mean = 0.0;
  for (double t : targets) mean += t;
  mean /= n;
  double var = 0.0, residual_var = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    var += (targets[i] - mean) * (targets[i] - mean);
    const double r = targets[i] - values[i];
    residual_var += r * r;
  }
  // Residual variance around zero (not its own mean): a critic with a
  // constant bias should not score as fully explanatory.
  if (var < 1e-12) return 0.0;
  return 1.0 - residual_var / var;
}

}  // namespace

double entropy_of(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 1e-12) h -= p * std::log(p);
  }
  return h;
}

RolloutBatch collect_batch(MlpPolicy& policy, const EnvFactory& factory,
                           netgym::Rng& rng, int episodes,
                           int max_steps_per_episode) {
  if (episodes <= 0) {
    throw std::invalid_argument("collect_batch: episodes must be > 0");
  }
  // Determinism by construction: each episode gets its own RNG stream,
  // forked serially up front, so nothing an episode samples can depend on
  // scheduling. Episodes are grouped into lockstep jobs — one policy copy
  // per job, all of the job's still-running episodes advanced through a
  // single batched forward per tick — and each job's environments are
  // constructed in episode index order from the episodes' own streams.
  // Because every episode touches only its own stream and its own env, and
  // (in strict math mode) a batched forward is bit-identical per row to a
  // scalar one, the batch is bit-identical at any group size and therefore
  // at any thread count.
  std::vector<netgym::Rng> streams;
  streams.reserve(static_cast<std::size_t>(episodes));
  for (int e = 0; e < episodes; ++e) streams.push_back(rng.fork());

  const std::size_t n_episodes = static_cast<std::size_t>(episodes);
  const std::size_t group = lockstep_group_size(n_episodes);
  const std::size_t jobs = (n_episodes + group - 1) / group;
  std::vector<std::vector<Transition>> per_episode(n_episodes);
  netgym::parallel_for_each(jobs, [&](std::size_t g) {
    const std::size_t begin = g * group;
    const std::size_t end = std::min(begin + group, n_episodes);
    netgym::tracing::TraceSpan span("episode.block", "rl",
                                    static_cast<std::int64_t>(g));
    MlpPolicy local = policy;
    std::vector<std::unique_ptr<netgym::Env>> envs;
    std::vector<netgym::Env*> env_ptrs;
    std::vector<netgym::Rng*> rng_ptrs;
    envs.reserve(end - begin);
    env_ptrs.reserve(end - begin);
    rng_ptrs.reserve(end - begin);
    for (std::size_t e = begin; e < end; ++e) {
      envs.push_back(factory(streams[e]));
      env_ptrs.push_back(envs.back().get());
      rng_ptrs.push_back(&streams[e]);
    }
    std::vector<std::vector<Transition>> transitions;
    run_episodes_lockstep(local, env_ptrs, rng_ptrs, max_steps_per_episode,
                          &transitions);
    for (std::size_t j = 0; j < transitions.size(); ++j) {
      per_episode[begin + j] = std::move(transitions[j]);
    }
  });

  RolloutBatch batch;
  std::size_t total = 0;
  for (const auto& episode : per_episode) total += episode.size();
  batch.transitions.reserve(total);
  for (auto& episode : per_episode) {
    for (Transition& t : episode) batch.transitions.push_back(std::move(t));
  }
  return batch;
}

ActorCriticBase::ActorCriticBase(int obs_size, int action_count,
                                 TrainerOptions options, std::uint64_t seed)
    : options_(std::move(options)),
      rng_(seed),
      policy_(obs_size, action_count, options_.hidden, rng_),
      critic_(critic_sizes(obs_size, options_.hidden), nn::Activation::kTanh,
              rng_),
      actor_opt_(policy_.net().num_params(), {.lr = options_.actor_lr}),
      critic_opt_(critic_.num_params(), {.lr = options_.critic_lr}) {}

void ActorCriticBase::observe_returns(const std::vector<double>& returns) {
  for (double g : returns) return_norm_.update(g);
}

void ActorCriticBase::save_state(netgym::checkpoint::Snapshot& snap,
                                 const std::string& prefix) const {
  policy_.net().save_state(snap, prefix + "policy/");
  critic_.save_state(snap, prefix + "critic/");
  actor_opt_.save_state(snap, prefix + "actor_opt/");
  critic_opt_.save_state(snap, prefix + "critic_opt/");
  return_norm_.save_state(snap, prefix + "return_norm/");
  snap.put_string(prefix + "rng", rng_.state());
  snap.put_i64(prefix + "iterations_done",
               static_cast<std::int64_t>(iterations_done_));
  snap.put_i64(prefix + "iteration_count",
               static_cast<std::int64_t>(iteration_count_));
}

void ActorCriticBase::load_state(const netgym::checkpoint::Snapshot& snap,
                                 const std::string& prefix) {
  using netgym::checkpoint::CheckpointError;
  // Load into copies first: every sub-component validates and fills a
  // throwaway, so a defect anywhere (missing key, shape mismatch, malformed
  // RNG stream) throws before the commit block and the trainer is untouched.
  nn::Mlp policy_net = policy_.net();
  nn::Mlp critic = critic_;
  nn::Adam actor_opt = actor_opt_;
  nn::Adam critic_opt = critic_opt_;
  RunningNorm return_norm = return_norm_;
  netgym::Rng rng = rng_;

  policy_net.load_state(snap, prefix + "policy/");
  critic.load_state(snap, prefix + "critic/");
  actor_opt.load_state(snap, prefix + "actor_opt/");
  critic_opt.load_state(snap, prefix + "critic_opt/");
  return_norm.load_state(snap, prefix + "return_norm/");
  try {
    rng.set_state(snap.get_string(prefix + "rng"));
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(std::string("ActorCriticBase::load_state: ") +
                          e.what() + " (" + prefix + "rng)");
  }
  const std::int64_t iterations_done = snap.get_i64(prefix + "iterations_done");
  const std::int64_t iteration_count = snap.get_i64(prefix + "iteration_count");
  if (iterations_done < 0 || iteration_count < 0) {
    throw CheckpointError(
        "ActorCriticBase::load_state: negative iteration counter (" + prefix +
        ")");
  }

  // Commit: nothing below throws.
  policy_.net() = std::move(policy_net);
  critic_ = std::move(critic);
  actor_opt_ = std::move(actor_opt);
  critic_opt_ = std::move(critic_opt);
  return_norm_ = return_norm;
  rng_ = rng;
  iterations_done_ = static_cast<long>(iterations_done);
  iteration_count_ = static_cast<long>(iteration_count);
}

double ActorCriticBase::critic_value(const netgym::Observation& obs) {
  return critic_.forward(obs)[0];
}

RolloutBatch ActorCriticBase::collect_timed(const EnvFactory& factory,
                                            IterationStats& stats) {
  netgym::tracing::TraceSpan span("rollout", "rl");
  const auto start = std::chrono::steady_clock::now();
  RolloutBatch batch =
      collect_batch(policy_, factory, rng_, options_.episodes_per_iteration,
                    options_.max_steps_per_episode);
  stats.rollout_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return batch;
}

void ActorCriticBase::record_episode_rewards(const RolloutBatch& batch) {
  namespace tel = netgym::telemetry;
  static tel::Histogram& rewards =
      tel::Registry::instance().histogram("rl.episode_reward");
  double total = 0.0;
  for (const Transition& t : batch.transitions) {
    total += t.reward;
    if (t.done) {  // collect_batch forces done on each episode's last step
      rewards.record(total);
      total = 0.0;
    }
  }
}

void ActorCriticBase::finish_health_stats(const RolloutBatch& batch,
                                          const std::vector<double>& old_logp,
                                          const std::vector<double>& targets,
                                          const std::vector<double>& values,
                                          IterationStats& stats) {
  if (!netgym::health::enabled() || old_logp.size() != batch.size() ||
      batch.empty()) {
    return;
  }
  UpdateHealth& h = stats.health;
  h.computed = true;
  h.actor_grad_norm = actor_opt_.last_grad_norm();
  h.actor_grad_norm_clipped = actor_opt_.last_clipped_grad_norm();
  h.critic_grad_norm = critic_opt_.last_grad_norm();
  h.critic_grad_norm_clipped = critic_opt_.last_clipped_grad_norm();
  h.explained_variance = explained_variance_of(targets, values);

  // Approximate update-KL: one post-update batched forward pass (reads
  // parameters, consumes no RNG; the forward cache it clobbers is rebuilt by
  // the next forward->backward pair anyway).
  const std::size_t n = batch.size();
  const int actions = policy_.action_count();
  const std::vector<double> obs_rows =
      pack_observations(batch, policy_.obs_size());
  const std::vector<double>& logit_rows =
      policy_.net().forward_batch(obs_rows.data(), n);
  double kl_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double new_logp = nn::log_softmax_row_at(
        logit_rows.data() + i * actions, actions, batch.transitions[i].action);
    kl_sum += old_logp[i] - new_logp;
  }
  h.approx_kl = kl_sum / static_cast<double>(n);

  // Non-finite sentinels: scalar loss ingredients first (cheap, most
  // diagnostic), then full parameter scans.
  if (!std::isfinite(stats.mean_entropy)) {
    h.non_finite = true;
    h.non_finite_what = "mean policy entropy";
  } else if (!std::isfinite(h.actor_grad_norm) ||
             !std::isfinite(h.critic_grad_norm)) {
    h.non_finite = true;
    h.non_finite_what = "gradient norm";
  } else if (!std::isfinite(h.approx_kl)) {
    h.non_finite = true;
    h.non_finite_what = "approximate update-KL";
  } else if (!std::isfinite(stats.mean_episode_reward)) {
    h.non_finite = true;
    h.non_finite_what = "mean episode reward";
  } else if (!all_finite(policy_.net().params())) {
    h.non_finite = true;
    h.non_finite_what = "actor parameters";
  } else if (!all_finite(critic_.params())) {
    h.non_finite = true;
    h.non_finite_what = "critic parameters";
  }
}

IterationStats ActorCriticBase::train_iteration(const EnvFactory& factory) {
  namespace tel = netgym::telemetry;
  IterationStats stats;
  const auto start = std::chrono::steady_clock::now();
  {
    netgym::tracing::TraceSpan span("iteration", "rl", iteration_count_);
    stats = run_iteration(factory);
  }
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.update_seconds = std::max(total - stats.rollout_seconds, 0.0);

  // Registry metrics are cached once: lookups lock the registry, updates are
  // single relaxed atomics.
  static tel::Counter& iterations =
      tel::Registry::instance().counter("rl.iterations");
  static tel::Counter& env_steps =
      tel::Registry::instance().counter("rl.env_steps");
  static tel::TimerStat& rollout_timer =
      tel::Registry::instance().timer("rl.rollout");
  static tel::TimerStat& update_timer =
      tel::Registry::instance().timer("rl.update");
  static tel::Histogram& rollout_hist =
      tel::Registry::instance().histogram("rl.rollout_seconds");
  static tel::Histogram& update_hist =
      tel::Registry::instance().histogram("rl.update_seconds");
  iterations.add();
  env_steps.add(stats.steps);
  rollout_timer.record_ns(
      static_cast<std::int64_t>(stats.rollout_seconds * 1e9));
  update_timer.record_ns(
      static_cast<std::int64_t>(stats.update_seconds * 1e9));
  rollout_hist.record(stats.rollout_seconds);
  update_hist.record(stats.update_seconds);

  if (tel::logging_enabled()) {
    tel::log_event(
        "iteration", iteration_count_,
        {{"mean_episode_reward", stats.mean_episode_reward},
         {"mean_step_reward", stats.mean_step_reward},
         {"mean_entropy", stats.mean_entropy},
         {"episodes", static_cast<std::int64_t>(stats.episodes)},
         {"steps", static_cast<std::int64_t>(stats.steps)},
         {"rollout_seconds", stats.rollout_seconds},
         {"update_seconds", stats.update_seconds}});
  }
  // Health watchdog: strictly observational rule evaluation on the stats the
  // update just produced. Runs after all stochastic work; under fail-fast a
  // non-finite sentinel throws HealthError out of this call.
  if (stats.health.computed) {
    netgym::health::IterationHealth h;
    h.step = iteration_count_;
    h.mean_entropy = stats.mean_entropy;
    h.mean_episode_reward = stats.mean_episode_reward;
    h.actor_grad_norm = stats.health.actor_grad_norm;
    h.actor_grad_norm_clipped = stats.health.actor_grad_norm_clipped;
    h.critic_grad_norm = stats.health.critic_grad_norm;
    h.critic_grad_norm_clipped = stats.health.critic_grad_norm_clipped;
    h.approx_kl = stats.health.approx_kl;
    h.explained_variance = stats.health.explained_variance;
    h.non_finite = stats.health.non_finite;
    h.non_finite_what = stats.health.non_finite_what;
    ++iteration_count_;
    netgym::health::Watchdog::instance().observe(h);
    return stats;
  }
  ++iteration_count_;
  return stats;
}

double ActorCriticBase::next_entropy_coef() {
  const long t = iterations_done_++;
  if (options_.entropy_decay_iters <= 0) return options_.entropy_coef_final;
  const double progress = std::min(
      static_cast<double>(t) / options_.entropy_decay_iters, 1.0);
  return options_.entropy_coef +
         progress * (options_.entropy_coef_final - options_.entropy_coef);
}

IterationStats A2CTrainer::run_iteration(const EnvFactory& factory) {
  IterationStats stats;
  RolloutBatch batch = collect_timed(factory, stats);
  stats.episodes = batch.num_episodes();
  stats.steps = static_cast<int>(batch.size());
  stats.mean_episode_reward = batch.mean_episode_reward();
  stats.mean_step_reward =
      batch.empty() ? 0.0 : batch.total_reward() / batch.size();
  if (batch.empty()) return stats;
  record_episode_rewards(batch);

  netgym::tracing::TraceSpan advantage_span("advantage", "rl");
  // Scale rewards by the running return magnitude so actor/critic step sizes
  // are task-independent, then recompute returns on the scaled rewards.
  std::vector<double> raw_returns = discounted_returns(batch, options_.gamma);
  observe_returns(raw_returns);
  const double scale = reward_scale();
  std::vector<double> returns(raw_returns.size());
  for (std::size_t i = 0; i < returns.size(); ++i) {
    returns[i] = raw_returns[i] / scale;
  }

  const std::size_t n = batch.size();
  const std::vector<double> obs_rows =
      pack_observations(batch, policy_.obs_size());

  // Critic values in one batched pass (row-identical to per-sample forwards
  // in strict mode). The forward cache this leaves behind is reused by the
  // critic update below.
  const std::vector<double>& value_rows = critic_.forward_batch(
      obs_rows.data(), n);
  std::vector<double> values(value_rows.begin(), value_rows.end());
  std::vector<double> adv(n);
  for (std::size_t i = 0; i < n; ++i) {
    adv[i] = returns[i] - values[i];
  }
  normalize(adv);
  advantage_span.end();

  netgym::tracing::TraceSpan update_span("update", "rl");
  const double inv_n = 1.0 / static_cast<double>(n);
  const double ent_coef = next_entropy_coef();
  double entropy_sum = 0.0;
  const int actions = policy_.action_count();

  // Pre-update log-probs for the update-KL health stat. The actor pass runs
  // before the optimizer step, so capturing them there is free; only
  // allocated when the watchdog wants them.
  std::vector<double> old_logp;
  const bool capture_health = netgym::health::enabled();
  if (capture_health) old_logp.resize(n);

  // Actor: dL/dz_j = [-A * (1[a=j] - p_j) + c * p_j (log p_j + H)] / N.
  // One batched forward for all logits, per-row grads assembled in sample
  // order, one batched backward; gradient accumulation order matches the
  // old per-sample forward/backward interleave exactly.
  policy_.net().zero_grad();
  const std::vector<double>& logit_rows =
      policy_.net().forward_batch(obs_rows.data(), n);
  std::vector<double> grad_rows(n * static_cast<std::size_t>(actions));
  std::vector<double> p(static_cast<std::size_t>(actions));
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = batch.transitions[i];
    const double* logits = logit_rows.data() + i * actions;
    nn::softmax_row(logits, actions, p.data());
    if (capture_health) {
      old_logp[i] = nn::log_softmax_row_at(logits, actions, t.action);
    }
    const double h = entropy_of(p);
    entropy_sum += h;
    double* grad = grad_rows.data() + i * actions;
    for (int j = 0; j < actions; ++j) {
      const double onehot = (j == t.action) ? 1.0 : 0.0;
      const double pg = -adv[i] * (onehot - p[j]);
      const double eg =
          ent_coef * p[j] * (std::log(std::max(p[j], 1e-12)) + h);
      grad[j] = (pg + eg) * inv_n;
    }
  }
  policy_.net().backward_batch(grad_rows.data(), n);
  actor_opt_.step(policy_.net().params(), policy_.net().grads());

  // Critic: MSE against scaled returns. The critic's parameters have not
  // changed since the value pass above, so its cached batched forward (and
  // `values`) are exactly what a fresh per-sample pass would recompute —
  // the old code's second critic forward sweep is folded away.
  critic_.zero_grad();
  std::vector<double> critic_grads(n);
  for (std::size_t i = 0; i < n; ++i) {
    critic_grads[i] = 2.0 * (values[i] - returns[i]) * inv_n;
  }
  critic_.backward_batch(critic_grads.data(), n);
  critic_opt_.step(critic_.params(), critic_.grads());

  stats.mean_entropy = entropy_sum * inv_n;
  finish_health_stats(batch, old_logp, returns, values, stats);
  return stats;
}

IterationStats PPOTrainer::run_iteration(const EnvFactory& factory) {
  IterationStats stats;
  RolloutBatch batch = collect_timed(factory, stats);
  stats.episodes = batch.num_episodes();
  stats.steps = static_cast<int>(batch.size());
  stats.mean_episode_reward = batch.mean_episode_reward();
  stats.mean_step_reward =
      batch.empty() ? 0.0 : batch.total_reward() / batch.size();
  if (batch.empty()) return stats;
  record_episode_rewards(batch);

  netgym::tracing::TraceSpan advantage_span("advantage", "rl");
  std::vector<double> raw_returns = discounted_returns(batch, options_.gamma);
  observe_returns(raw_returns);
  const double scale = reward_scale();
  RolloutBatch scaled = batch;
  for (Transition& t : scaled.transitions) t.reward /= scale;

  const std::size_t n = batch.size();
  const std::vector<double> obs_rows =
      pack_observations(batch, policy_.obs_size());

  const std::vector<double>& value_rows =
      critic_.forward_batch(obs_rows.data(), n);
  std::vector<double> values(value_rows.begin(), value_rows.end());
  std::vector<double> adv = gae_advantages(scaled, values, options_.gamma,
                                           options_.gae_lambda);
  // Critic regression target: advantage + value (the lambda-return).
  std::vector<double> targets(n);
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = adv[i] + values[i];
  }
  normalize(adv);
  advantage_span.end();

  netgym::tracing::TraceSpan update_span("update", "rl");
  const int actions = policy_.action_count();
  std::vector<double> old_logp(n);
  {
    const std::vector<double>& logit_rows =
        policy_.net().forward_batch(obs_rows.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      old_logp[i] = nn::log_softmax_row_at(logit_rows.data() + i * actions,
                                           actions,
                                           batch.transitions[i].action);
    }
  }

  const double inv_n = 1.0 / static_cast<double>(n);
  const double eps = options_.clip_epsilon;
  const double ent_coef = next_entropy_coef();
  double entropy_sum = 0.0;
  long entropy_count = 0;

  std::vector<double> grad_rows(n * static_cast<std::size_t>(actions));
  std::vector<double> p(static_cast<std::size_t>(actions));
  std::vector<double> critic_grads(n);
  for (int epoch = 0; epoch < options_.ppo_epochs; ++epoch) {
    // Actor parameters change every epoch, so each epoch re-runs one batched
    // forward over the whole batch, assembles per-row surrogate gradients in
    // sample order, and backpropagates them in one batched pass.
    policy_.net().zero_grad();
    const std::vector<double>& logit_rows =
        policy_.net().forward_batch(obs_rows.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const Transition& t = batch.transitions[i];
      const double* logits = logit_rows.data() + i * actions;
      nn::softmax_row(logits, actions, p.data());
      const double logp = nn::log_softmax_row_at(logits, actions, t.action);
      const double ratio = std::exp(logp - old_logp[i]);
      const double h = entropy_of(p);
      entropy_sum += h;
      ++entropy_count;
      // Clipped surrogate: gradient is zero when the clip is active and
      // moving further would only increase the clipped-away ratio.
      const bool clipped = (adv[i] > 0 && ratio > 1.0 + eps) ||
                           (adv[i] < 0 && ratio < 1.0 - eps);
      double* grad = grad_rows.data() + i * actions;
      for (int j = 0; j < actions; ++j) {
        const double onehot = (j == t.action) ? 1.0 : 0.0;
        double pg = 0.0;
        if (!clipped) pg = -adv[i] * ratio * (onehot - p[j]);
        const double eg =
            ent_coef * p[j] * (std::log(std::max(p[j], 1e-12)) + h);
        grad[j] = (pg + eg) * inv_n;
      }
    }
    policy_.net().backward_batch(grad_rows.data(), n);
    actor_opt_.step(policy_.net().params(), policy_.net().grads());

    // The critic also moves every epoch, so (unlike A2C's single update) its
    // values must be recomputed per epoch before regressing onto targets.
    critic_.zero_grad();
    const std::vector<double>& epoch_values =
        critic_.forward_batch(obs_rows.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      critic_grads[i] = 2.0 * (epoch_values[i] - targets[i]) * inv_n;
    }
    critic_.backward_batch(critic_grads.data(), n);
    critic_opt_.step(critic_.params(), critic_.grads());
  }

  stats.mean_entropy =
      entropy_count > 0 ? entropy_sum / static_cast<double>(entropy_count)
                        : 0.0;
  if (netgym::health::enabled()) {
    finish_health_stats(batch, old_logp, targets, values, stats);
  }
  return stats;
}

}  // namespace rl
