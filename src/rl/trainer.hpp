#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netgym/env.hpp"
#include "nn/adam.hpp"
#include "rl/policy.hpp"
#include "rl/rollout.hpp"

namespace rl {

/// Produces a fresh training environment. Genet's task adapters build one of
/// these from a configuration distribution: each call samples a config and
/// instantiates a simulator for it (Appendix A.1's K x N env sampling).
using EnvFactory =
    std::function<std::unique_ptr<netgym::Env>(netgym::Rng& rng)>;

/// Hyperparameters shared by the A2C and PPO trainers. Per the paper (S4.1)
/// these stay fixed across all experiments; only the training environment
/// distribution changes.
struct TrainerOptions {
  std::vector<int> hidden{32, 32};
  double gamma = 0.95;
  double actor_lr = 1e-3;
  double critic_lr = 2e-3;
  /// Entropy-bonus weight decays linearly from `entropy_coef` to
  /// `entropy_coef_final` over `entropy_decay_iters` training iterations
  /// (the schedule Pensieve's A3C uses to avoid premature collapse into a
  /// constant policy).
  double entropy_coef = 0.5;
  double entropy_coef_final = 0.03;
  int entropy_decay_iters = 1500;
  int episodes_per_iteration = 8;
  int max_steps_per_episode = 400;
  // PPO-only knobs (ignored by A2C):
  double clip_epsilon = 0.2;
  int ppo_epochs = 4;
  double gae_lambda = 0.95;
};

/// Per-update training-health statistics, filled by the trainers only while
/// the netgym::health watchdog is enabled (they cost extra forward passes
/// and parameter scans; none of it consumes RNG or mutates training state,
/// so enabling them leaves the trained parameters bit-identical).
struct UpdateHealth {
  bool computed = false;
  double actor_grad_norm = 0.0;          ///< pre-clip L2 norm
  double actor_grad_norm_clipped = 0.0;  ///< after Adam's max-norm rescale
  double critic_grad_norm = 0.0;
  double critic_grad_norm_clipped = 0.0;
  double approx_kl = 0.0;           ///< mean(logp_old - logp_new), taken actions
  double explained_variance = 0.0;  ///< 1 - Var(ret - v) / Var(ret)
  bool non_finite = false;          ///< NaN/Inf in losses or parameters
  std::string non_finite_what;
};

/// Summary of one training iteration.
struct IterationStats {
  double mean_episode_reward = 0.0;
  double mean_step_reward = 0.0;
  double mean_entropy = 0.0;
  int episodes = 0;
  int steps = 0;
  double rollout_seconds = 0.0;  ///< wall clock spent collecting the batch
  double update_seconds = 0.0;   ///< wall clock spent in gradient updates
  UpdateHealth health;           ///< filled only when health::enabled()
};

/// Shannon entropy of a probability vector in nats. Entries at (numerically)
/// zero probability contribute exactly 0, never NaN: lim p->0 of -p log p
/// is 0, and the 1e-12 guard keeps the log call off p = 0.
double entropy_of(const std::vector<double>& probs);

/// Roll the (stochastic) policy through `episodes` fresh environments drawn
/// from `factory`, returning all transitions in time order.
RolloutBatch collect_batch(MlpPolicy& policy, const EnvFactory& factory,
                           netgym::Rng& rng, int episodes,
                           int max_steps_per_episode);

/// Common machinery of the actor-critic trainers: actor/critic networks,
/// their optimizers, and a running return scale that keeps gradients
/// comparable across the three tasks' very different reward magnitudes.
class ActorCriticBase : public netgym::checkpoint::Serializable {
 public:
  ActorCriticBase(int obs_size, int action_count, TrainerOptions options,
                  std::uint64_t seed);
  ~ActorCriticBase() override = default;

  /// Run one training iteration (collect + update) on envs from `factory`,
  /// then publish run telemetry: registry counters/timers (`rl.iterations`,
  /// `rl.env_steps`, `rl.rollout`, `rl.update`) and an "iteration" event on
  /// the global RunLogger, if one is installed. Telemetry is observational
  /// only -- it consumes no RNG draws and runs after the update -- so the
  /// trained parameters are bit-identical with and without a sink.
  IterationStats train_iteration(const EnvFactory& factory);

  MlpPolicy& policy() { return policy_; }
  const MlpPolicy& policy() const { return policy_; }
  const TrainerOptions& options() const { return options_; }

  std::vector<double> snapshot() const { return policy_.snapshot(); }
  void restore(const std::vector<double>& params) { policy_.restore(params); }

  /// Total train_iteration calls so far (survives checkpoint/resume; used by
  /// resuming callers to know how many iterations remain).
  long iterations() const { return iteration_count_; }

  /// Checkpoint hooks covering *all* trainer state: actor and critic
  /// networks, both Adam optimizers, the return normalizer, the entropy and
  /// telemetry iteration clocks, and the RNG stream. load_state validates
  /// every shape against this trainer's configuration up front, so a
  /// mismatched or corrupted snapshot throws CheckpointError without
  /// mutating anything.
  void save_state(netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) const override;
  void load_state(const netgym::checkpoint::Snapshot& snap,
                  const std::string& prefix) override;

 protected:
  /// Algorithm-specific collect + update step; implementations fill the
  /// reward/entropy/size fields of the returned stats and time the rollout
  /// phase via `collect_timed`. `train_iteration` wraps this with telemetry.
  virtual IterationStats run_iteration(const EnvFactory& factory) = 0;

  /// `collect_batch` plus wall-clock accounting into `stats.rollout_seconds`.
  RolloutBatch collect_timed(const EnvFactory& factory, IterationStats& stats);

  /// Feed each episode's total reward into the `rl.episode_reward` histogram
  /// (implementations call this right after collecting a batch).
  void record_episode_rewards(const RolloutBatch& batch);

  /// Fill `stats.health` from the just-finished update: gradient norms read
  /// off both optimizers, approximate update-KL of the post-update policy
  /// against the pre-update log-probs in `old_logp`, explained variance of
  /// `values` against the regression `targets`, and non-finite sentinels
  /// over the losses and all parameters. No-op unless the health watchdog is
  /// enabled and `old_logp` was captured (implementations gate that capture
  /// on netgym::health::enabled()). Consumes no RNG and mutates nothing but
  /// `stats` and the policy net's transient forward cache.
  void finish_health_stats(const RolloutBatch& batch,
                           const std::vector<double>& old_logp,
                           const std::vector<double>& targets,
                           const std::vector<double>& values,
                           IterationStats& stats);

  /// Scale factor applied to rewards before returns/advantages: the running
  /// standard deviation of observed episode-discounted returns.
  double reward_scale() const { return return_norm_.stddev(); }
  void observe_returns(const std::vector<double>& returns);

  /// Current entropy-bonus weight under the linear decay schedule; also
  /// advances the iteration counter (call once per train_iteration).
  double next_entropy_coef();

  double critic_value(const netgym::Observation& obs);

  TrainerOptions options_;
  netgym::Rng rng_;
  MlpPolicy policy_;
  nn::Mlp critic_;
  nn::Adam actor_opt_;
  nn::Adam critic_opt_;
  RunningNorm return_norm_;
  long iterations_done_ = 0;    ///< entropy-decay clock (non-empty batches)
  long iteration_count_ = 0;    ///< train_iteration calls (telemetry step)
};

/// Advantage actor-critic (the paper's Pensieve/Park codebases use A3C; A2C
/// is its synchronous, single-worker equivalent).
class A2CTrainer : public ActorCriticBase {
 public:
  using ActorCriticBase::ActorCriticBase;

 protected:
  IterationStats run_iteration(const EnvFactory& factory) override;
};

/// Proximal Policy Optimization with clipped surrogate objective and GAE
/// (the algorithm used by the paper's Aurora CC codebase).
class PPOTrainer : public ActorCriticBase {
 public:
  using ActorCriticBase::ActorCriticBase;

 protected:
  IterationStats run_iteration(const EnvFactory& factory) override;
};

}  // namespace rl
