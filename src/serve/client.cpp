#include "serve/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace serve {

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("connect(127.0.0.1:" + std::to_string(port) +
                             ") failed: " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("connect(" + path +
                             ") failed: " + std::strerror(errno));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("serve::Client: server closed the connection");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_frame() {
  for (;;) {
    if (auto body = reader_.next()) return std::move(*body);
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("serve::Client: connection closed by server");
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

HelloResponse Client::hello() {
  std::string out;
  encode_hello(out);
  send_raw(out);
  const std::string body = read_frame();
  if (type_of(body) == MsgType::kError) {
    throw ProtocolError("server error: " + decode_error(body));
  }
  return decode_hello_ok(body);
}

ActResponse Client::act(std::uint64_t session_id, const double* obs,
                        std::size_t n) {
  std::string out;
  encode_act(out, session_id, obs, n);
  send_raw(out);
  const std::string body = read_frame();
  if (type_of(body) == MsgType::kError) {
    throw ProtocolError("server error: " + decode_error(body));
  }
  return decode_act_ok(body);
}

void Client::close_session(std::uint64_t session_id) {
  std::string out;
  encode_close(out, session_id);
  send_raw(out);
  const std::string body = read_frame();
  if (type_of(body) == MsgType::kError) {
    throw ProtocolError("server error: " + decode_error(body));
  }
  decode_close_ok(body);
}

}  // namespace serve
