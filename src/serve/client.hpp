#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/frame.hpp"

namespace serve {

/// Minimal blocking client for the genet_serve protocol, shared by the load
/// generator, the protocol tests, and ad-hoc tooling. One Client is one
/// connection; it is not thread-safe (the load bench runs one per thread).
///
/// Two usage styles:
///  - request/response: hello() / act() / close_session() block for the
///    matching reply;
///  - pipelined: queue frames with encode_* into one buffer, push it with
///    send_raw(), then pull replies with read_frame() -- replies to one
///    connection may interleave across batching shards, so match them by
///    session id.
class Client {
 public:
  /// Connect to 127.0.0.1:port; throws std::runtime_error on failure.
  static Client connect_tcp(int port);

  /// Connect to a Unix socket path; throws std::runtime_error on failure.
  static Client connect_unix(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  HelloResponse hello();

  /// One blocking action request. Throws ProtocolError if the server answers
  /// with an error frame (the message is included).
  ActResponse act(std::uint64_t session_id, const double* obs, std::size_t n);

  /// Drop the session's server-side state.
  void close_session(std::uint64_t session_id);

  /// Write raw pre-encoded frames (loops over short sends, MSG_NOSIGNAL).
  /// Throws std::runtime_error when the server hung up.
  void send_raw(std::string_view bytes);

  /// Next complete frame body from the server; blocks. Throws
  /// std::runtime_error on EOF and ProtocolError on a malformed stream.
  std::string read_frame();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace serve
