#include "serve/frame.hpp"

#include <cstring>

namespace serve {

namespace {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Sequential little-endian reads over one frame body; every getter throws
/// ProtocolError on truncation so decoders cannot read past the body.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint32_t u32() {
    const unsigned char* p = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::uint64_t u64() {
    const unsigned char* p = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string_view bytes(std::size_t n) {
    const unsigned char* p = take(n);
    return {reinterpret_cast<const char*>(p), n};
  }

  std::size_t remaining() const { return body_.size() - pos_; }

  /// A decoder calls this last: leftover bytes mean the body does not match
  /// the advertised type's layout.
  void expect_end(const char* what) const {
    if (pos_ != body_.size()) {
      throw ProtocolError(std::string(what) + ": trailing bytes in frame body");
    }
  }

 private:
  const unsigned char* take(std::size_t n) {
    if (body_.size() - pos_ < n) {
      throw ProtocolError("truncated frame body");
    }
    const auto* p = reinterpret_cast<const unsigned char*>(body_.data()) + pos_;
    pos_ += n;
    return p;
  }

  std::string_view body_;
  std::size_t pos_ = 0;
};

void begin_frame(std::string& out, std::size_t& len_at, MsgType type) {
  len_at = out.size();
  put_u32(out, 0);  // patched by end_frame
  put_u8(out, static_cast<std::uint8_t>(type));
}

void end_frame(std::string& out, std::size_t len_at) {
  const std::size_t body = out.size() - len_at - 4;
  const auto len = static_cast<std::uint32_t>(body);
  for (int i = 0; i < 4; ++i) {
    out[len_at + static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

}  // namespace

void encode_hello(std::string& out) {
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kHello);
  put_u8(out, kProtocolVersion);
  end_frame(out, at);
}

void encode_act(std::string& out, std::uint64_t session_id, const double* obs,
                std::size_t n) {
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kAct);
  put_u64(out, session_id);
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) put_double(out, obs[i]);
  end_frame(out, at);
}

void encode_close(std::string& out, std::uint64_t session_id) {
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kClose);
  put_u64(out, session_id);
  end_frame(out, at);
}

void encode_hello_ok(std::string& out, const HelloResponse& r) {
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kHelloOk);
  put_u8(out, r.protocol);
  put_u32(out, r.obs_size);
  put_u32(out, r.action_count);
  put_u32(out, r.policy_version);
  end_frame(out, at);
}

void encode_act_ok(std::string& out, const ActResponse& r) {
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kActOk);
  put_u64(out, r.session_id);
  put_u32(out, static_cast<std::uint32_t>(r.action));
  put_u32(out, r.policy_version);
  end_frame(out, at);
}

void encode_close_ok(std::string& out, std::uint64_t session_id) {
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kCloseOk);
  put_u64(out, session_id);
  end_frame(out, at);
}

void encode_error(std::string& out, std::string_view message) {
  // Clip so an error frame always fits the frame ceiling.
  if (message.size() > 1024) message = message.substr(0, 1024);
  std::size_t at = 0;
  begin_frame(out, at, MsgType::kError);
  put_u32(out, static_cast<std::uint32_t>(message.size()));
  out.append(message);
  end_frame(out, at);
}

void encode_payload_frame(std::string& out, MsgType type,
                          std::string_view payload,
                          std::uint32_t max_frame_bytes) {
  if (payload.size() + 1 > max_frame_bytes) {
    throw ProtocolError("payload of " + std::to_string(payload.size()) +
                        " bytes exceeds the " +
                        std::to_string(max_frame_bytes) + "-byte frame limit");
  }
  std::size_t at = 0;
  begin_frame(out, at, type);
  out.append(payload);
  end_frame(out, at);
}

std::string_view payload_of(std::string_view body, MsgType expected) {
  if (body.empty()) throw ProtocolError("empty frame body");
  if (static_cast<MsgType>(static_cast<std::uint8_t>(body[0])) != expected) {
    throw ProtocolError("payload_of: wrong message type " +
                        std::to_string(static_cast<std::uint8_t>(body[0])));
  }
  return body.substr(1);
}

MsgType type_of(std::string_view body) {
  if (body.empty()) throw ProtocolError("empty frame body");
  const auto type = static_cast<std::uint8_t>(body[0]);
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
    case MsgType::kAct:
    case MsgType::kClose:
    case MsgType::kHelloOk:
    case MsgType::kActOk:
    case MsgType::kCloseOk:
    case MsgType::kError:
    case MsgType::kDistHello:
    case MsgType::kDistEval:
    case MsgType::kDistItems:
    case MsgType::kDistTrain:
    case MsgType::kDistShutdown:
    case MsgType::kDistHelloOk:
    case MsgType::kDistItemsOk:
    case MsgType::kDistTrainOk:
      return static_cast<MsgType>(type);
  }
  throw ProtocolError("unknown message type " + std::to_string(type));
}

ActRequest decode_act(std::string_view body) {
  BodyReader r(body);
  if (static_cast<MsgType>(r.u8()) != MsgType::kAct) {
    throw ProtocolError("decode_act: wrong message type");
  }
  ActRequest req;
  req.session_id = r.u64();
  const std::uint32_t n = r.u32();
  // The count must be consistent with the bytes actually present; a huge
  // count with a short body is caught here, before any allocation.
  if (static_cast<std::size_t>(n) * 8 != r.remaining()) {
    throw ProtocolError("act: observation count does not match body length");
  }
  req.obs.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) req.obs[i] = r.f64();
  r.expect_end("act");
  return req;
}

std::uint64_t decode_close(std::string_view body) {
  BodyReader r(body);
  if (static_cast<MsgType>(r.u8()) != MsgType::kClose) {
    throw ProtocolError("decode_close: wrong message type");
  }
  const std::uint64_t session = r.u64();
  r.expect_end("close");
  return session;
}

HelloResponse decode_hello_ok(std::string_view body) {
  BodyReader r(body);
  if (static_cast<MsgType>(r.u8()) != MsgType::kHelloOk) {
    throw ProtocolError("decode_hello_ok: wrong message type");
  }
  HelloResponse resp;
  resp.protocol = r.u8();
  resp.obs_size = r.u32();
  resp.action_count = r.u32();
  resp.policy_version = r.u32();
  r.expect_end("hello_ok");
  return resp;
}

ActResponse decode_act_ok(std::string_view body) {
  BodyReader r(body);
  if (static_cast<MsgType>(r.u8()) != MsgType::kActOk) {
    throw ProtocolError("decode_act_ok: wrong message type");
  }
  ActResponse resp;
  resp.session_id = r.u64();
  resp.action = static_cast<std::int32_t>(r.u32());
  resp.policy_version = r.u32();
  r.expect_end("act_ok");
  return resp;
}

std::uint64_t decode_close_ok(std::string_view body) {
  BodyReader r(body);
  if (static_cast<MsgType>(r.u8()) != MsgType::kCloseOk) {
    throw ProtocolError("decode_close_ok: wrong message type");
  }
  const std::uint64_t session = r.u64();
  r.expect_end("close_ok");
  return session;
}

std::string decode_error(std::string_view body) {
  BodyReader r(body);
  if (static_cast<MsgType>(r.u8()) != MsgType::kError) {
    throw ProtocolError("decode_error: wrong message type");
  }
  const std::uint32_t n = r.u32();
  if (n != r.remaining()) {
    throw ProtocolError("error frame: message length mismatch");
  }
  const std::string_view text = r.bytes(n);
  r.expect_end("error");
  return std::string(text);
}

void FrameReader::feed(const char* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<std::string> FrameReader::next() {
  if (buf_.size() - pos_ < 4) return std::nullopt;  // torn length prefix
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | p[i];
  if (len == 0) throw ProtocolError("zero-length frame");
  if (len > max_frame_bytes_) {
    throw ProtocolError("frame of " + std::to_string(len) +
                        " bytes exceeds the " +
                        std::to_string(max_frame_bytes_) + "-byte limit");
  }
  if (buf_.size() - pos_ - 4 < len) return std::nullopt;  // partial body
  std::string body = buf_.substr(pos_ + 4, len);
  pos_ += 4 + static_cast<std::size_t>(len);
  return body;
}

}  // namespace serve
