#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace serve {

// Wire protocol of genet_serve (DESIGN.md S5g): length-prefixed binary
// frames over a byte stream (localhost TCP or a Unix socket).
//
// Every frame is
//
//   <u32 body length, little-endian> <body, exactly that many bytes>
//
// and every body starts with a one-byte message type. Integers are
// little-endian; observations travel as IEEE-754 double bit patterns, so a
// served action is computed on exactly the doubles the client held (the same
// bit-exactness rule the checkpoint format follows).
//
// The length prefix is the only framing state a reader needs, which is what
// makes the malformed-input story small enough to test exhaustively: a torn
// prefix or a partial body just means "wait for more bytes"; a zero-length
// or oversized prefix is a protocol error and the server drops the
// connection after an error frame. Requests carry a client-chosen session id
// so responses can be matched under pipelining (responses to one connection
// may interleave across batching shards in any order).

/// Hard ceiling on one frame body; an advertised length above this is a
/// ProtocolError, not an allocation. Generous for any MLP observation row
/// (128 KiB is ~16k doubles) while keeping a malicious or corrupt prefix
/// from ballooning server memory.
inline constexpr std::uint32_t kMaxFrameBytes = 128u * 1024;

/// Ceiling for distributed-training frames (src/dist/), which carry whole
/// checkpoint-encoded Snapshot blobs -- policy parameter vectors plus textual
/// mt19937_64 stream states -- rather than single observation rows. The
/// serving daemon keeps the tight default; a dist endpoint constructs its
/// FrameReader with this larger cap.
inline constexpr std::uint32_t kMaxDistFrameBytes = 8u * 1024 * 1024;

/// Bumped on any incompatible wire change; exchanged in hello.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// First body byte of every frame. Client->server types are < 0x80;
/// responses have the top bit set.
enum class MsgType : std::uint8_t {
  kHello = 0x01,    ///< negotiate; learn the served policy's shape & version
  kAct = 0x02,      ///< one observation for one session -> one action
  kClose = 0x03,    ///< forget a session's server-side state
  kHelloOk = 0x81,
  kActOk = 0x82,
  kCloseOk = 0x83,
  kError = 0x7f,    ///< server->client diagnostic; connection closes after
  // Distributed-training messages (src/dist/): the body after the type byte
  // is one checkpoint-encoded Snapshot blob (versioned + CRC-checked), so
  // the dist layer never invents a second field codec.
  kDistHello = 0x10,     ///< coordinator->worker: math mode, threads, version
  kDistEval = 0x11,      ///< coordinator->worker: gap-eval setup (policy etc.)
  kDistItems = 0x12,     ///< coordinator->worker: RNG streams of work items
  kDistTrain = 0x13,     ///< coordinator->worker: train-from-spec request
  kDistShutdown = 0x14,  ///< coordinator->worker: exit cleanly
  kDistHelloOk = 0x90,
  kDistItemsOk = 0x92,
  kDistTrainOk = 0x93,
};

/// Raised by the decoder on malformed bytes: bad length prefix, unknown
/// message type, or a body that does not match its type's layout.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ActRequest {
  std::uint64_t session_id = 0;
  std::vector<double> obs;
};

struct ActResponse {
  std::uint64_t session_id = 0;
  std::int32_t action = 0;
  std::uint32_t policy_version = 0;
};

struct HelloResponse {
  std::uint8_t protocol = kProtocolVersion;
  std::uint32_t obs_size = 0;
  std::uint32_t action_count = 0;
  std::uint32_t policy_version = 0;
};

// Encoders append one complete frame (length prefix included) to `out`;
// callers batch several frames into one buffer to pipeline.
void encode_hello(std::string& out);
void encode_act(std::string& out, std::uint64_t session_id, const double* obs,
                std::size_t n);
void encode_close(std::string& out, std::uint64_t session_id);
void encode_hello_ok(std::string& out, const HelloResponse& r);
void encode_act_ok(std::string& out, const ActResponse& r);
void encode_close_ok(std::string& out, std::uint64_t session_id);
void encode_error(std::string& out, std::string_view message);

/// Append one frame whose body is `type` followed by `payload` verbatim (the
/// dist message shape). Throws ProtocolError when the resulting body would
/// exceed `max_frame_bytes`, so a writer can never emit a frame its peer's
/// reader is bound to reject.
void encode_payload_frame(std::string& out, MsgType type,
                          std::string_view payload,
                          std::uint32_t max_frame_bytes = kMaxFrameBytes);

/// The body minus its leading type byte; throws ProtocolError on an empty
/// body or when the type byte is not `expected`.
std::string_view payload_of(std::string_view body, MsgType expected);

/// Message type of a decoded body; throws ProtocolError on an empty body or
/// a type byte no decoder knows.
MsgType type_of(std::string_view body);

// Body decoders; each throws ProtocolError when the body is truncated,
// oversized for its layout, or internally inconsistent.
ActRequest decode_act(std::string_view body);
std::uint64_t decode_close(std::string_view body);
HelloResponse decode_hello_ok(std::string_view body);
ActResponse decode_act_ok(std::string_view body);
std::uint64_t decode_close_ok(std::string_view body);
std::string decode_error(std::string_view body);

/// Incremental frame reassembly for one connection. Feed whatever recv()
/// returned; `next()` yields complete frame bodies in order, or nullopt when
/// the buffered bytes end mid-prefix or mid-body (the partial-read and
/// torn-length-prefix cases). Throws ProtocolError on a zero-length or
/// oversized prefix -- the connection is unrecoverable past that point
/// because resynchronization inside a byte stream is impossible.
class FrameReader {
 public:
  /// The frame-size ceiling is per-endpoint: the serving daemon keeps the
  /// default kMaxFrameBytes, dist endpoints pass kMaxDistFrameBytes.
  explicit FrameReader(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t n);

  std::optional<std::string> next();

  /// Bytes buffered but not yet returned as frames.
  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::uint32_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
};

}  // namespace serve
