#include "serve/policy_store.hpp"

#include <stdexcept>
#include <utility>

#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"
#include "netgym/telemetry.hpp"

namespace serve {

namespace ckpt = netgym::checkpoint;

std::unique_ptr<rl::MlpPolicy> PolicyVersion::instantiate() const {
  netgym::Rng init(0);  // Xavier init is overwritten by restore() below
  auto policy = std::make_unique<rl::MlpPolicy>(obs_size(), action_count(),
                                                hidden(), init);
  policy->restore(params);
  policy->set_greedy(true);
  return policy;
}

void write_policy_checkpoint(const rl::MlpPolicy& policy,
                             const std::string& task,
                             const std::string& path) {
  ckpt::Snapshot snap;
  policy.net().save_state(snap, "policy/");
  if (!task.empty()) snap.put_string("meta/task", task);
  ckpt::write_file(snap, path);
}

PolicyVersion load_policy_checkpoint(const std::string& path) {
  const ckpt::Snapshot snap = ckpt::read_file(path);
  const std::vector<std::int64_t>& sizes = snap.get_i64s("policy/sizes");
  if (sizes.size() < 2) {
    throw std::invalid_argument(path + ": policy/sizes needs >= 2 layers");
  }
  PolicyVersion v;
  std::size_t params_needed = 0;
  for (std::size_t l = 0; l < sizes.size(); ++l) {
    if (sizes[l] < 1 || sizes[l] > 65536) {
      throw std::invalid_argument(path + ": policy/sizes[" +
                                  std::to_string(l) + "] = " +
                                  std::to_string(sizes[l]) + " out of range");
    }
    v.sizes.push_back(static_cast<int>(sizes[l]));
    if (l > 0) {
      params_needed += static_cast<std::size_t>(sizes[l - 1] * sizes[l]) +
                       static_cast<std::size_t>(sizes[l]);
    }
  }
  // MlpPolicy networks are tanh by construction; reject anything else here
  // rather than letting instantiate() throw per-shard later.
  if (snap.get_i64("policy/activation") != 0) {
    throw std::invalid_argument(path +
                                ": serve requires a tanh policy network");
  }
  v.params = snap.get_doubles("policy/params");
  if (v.params.size() != params_needed) {
    throw std::invalid_argument(
        path + ": policy/params holds " + std::to_string(v.params.size()) +
        " values, topology needs " + std::to_string(params_needed));
  }
  if (snap.has("meta/task")) v.task = snap.get_string("meta/task");
  v.source = path;
  return v;
}

std::string PolicyStore::latest_checkpoint(const std::string& dir) {
  std::string best;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".ckpt";
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    if (best.empty() ||
        name > std::filesystem::path(best).filename().string()) {
      best = entry.path().string();
    }
  }
  return best;
}

void PolicyStore::install(PolicyVersion&& loaded, const std::string& path) {
  SourceStamp stamp;
  stamp.path = path;
  std::error_code ec;
  stamp.mtime = std::filesystem::last_write_time(path, ec);
  stamp.size = std::filesystem::file_size(path, ec);

  std::lock_guard<std::mutex> lock(mu_);
  loaded.version = ++loads_;
  current_ = std::make_shared<const PolicyVersion>(std::move(loaded));
  stamp_ = std::move(stamp);
}

void PolicyStore::load_file(const std::string& path) {
  PolicyVersion loaded = load_policy_checkpoint(path);
  install(std::move(loaded), path);
  netgym::telemetry::Registry::instance().counter("serve.policy_loads").add();
}

std::string PolicyStore::load_latest(const std::string& dir) {
  const std::string path = latest_checkpoint(dir);
  if (path.empty()) {
    throw std::invalid_argument("no .ckpt checkpoint found in " + dir);
  }
  load_file(path);
  return path;
}

bool PolicyStore::poll(const std::string& dir) {
  const std::string path = latest_checkpoint(dir);
  if (path.empty()) return false;
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return false;  // raced a rename; next tick sees a settled file
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Same file as the serving (or last-failed) one and unchanged on disk:
    // nothing to do. The rewrite-in-place case (same name, new mtime/size)
    // falls through to a reload.
    if (current_ != nullptr && path == stamp_.path &&
        mtime == stamp_.mtime && size == stamp_.size) {
      return false;
    }
    if (path == failed_stamp_.path && mtime == failed_stamp_.mtime &&
        size == failed_stamp_.size) {
      return false;
    }
  }
  try {
    load_file(path);
  } catch (const std::exception& e) {
    // A torn copy or bad checkpoint must not take the daemon down: the old
    // policy keeps serving and the failure is counted + logged (once per
    // distinct bad file, not once per tick).
    {
      std::lock_guard<std::mutex> lock(mu_);
      failed_stamp_ = SourceStamp{path, mtime, size};
    }
    netgym::telemetry::Registry::instance()
        .counter("serve.swap_failures")
        .add();
    netgym::telemetry::log_event("serve_swap_failed", 0,
                                 {{"path", path}, {"error", e.what()}});
    return false;
  }
  auto now = current();
  netgym::telemetry::Registry::instance().counter("serve.swaps").add();
  netgym::telemetry::log_event(
      "serve_swap", 0,
      {{"path", path},
       {"version", static_cast<std::int64_t>(now->version)}});
  return true;
}

std::shared_ptr<const PolicyVersion> PolicyStore::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace serve
