#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rl/policy.hpp"

namespace serve {

// Versioned policy source for the serving daemon (DESIGN.md S5g). A
// PolicyStore owns an immutable view of "the policy being served" and
// refreshes it from a watched checkpoint directory. The checkpoint writer's
// atomic-rename contract (netgym/checkpoint.hpp) does the heavy lifting: a
// file that exists under a `.ckpt` name is always a complete, CRC-valid
// snapshot or it fails read_file loudly -- so hot-swapping reduces to "poll
// for a newer file, try to load it, keep the old policy on any failure".

/// One fully-loaded, immutable policy. Batching workers keep their own
/// executable rl::MlpPolicy built from `sizes`/`params` (the Mlp's forward
/// scratch is mutable, so sharing one network between shards would race) and
/// rebuild it only when `version` moves.
struct PolicyVersion {
  std::vector<int> sizes;       ///< full MLP topology, obs -> hidden -> acts
  std::vector<double> params;   ///< flat parameter vector for sizes
  std::uint32_t version = 0;    ///< 1-based successful-load counter
  std::string source;           ///< checkpoint path this was loaded from
  std::string task;             ///< "meta/task" if the checkpoint carried it

  int obs_size() const { return sizes.front(); }
  int action_count() const { return sizes.back(); }
  std::vector<int> hidden() const {
    return {sizes.begin() + 1, sizes.end() - 1};
  }

  /// Build a greedy executable policy from this version's parameters.
  std::unique_ptr<rl::MlpPolicy> instantiate() const;
};

/// Serve-checkpoint convention: the policy MLP under "policy/" (the standard
/// nn::Mlp save_state layout: sizes, activation, exact param bit patterns)
/// plus an optional "meta/task" provenance string. `genet export` writes
/// this; tests and the load bench write it directly.
void write_policy_checkpoint(const rl::MlpPolicy& policy,
                             const std::string& task, const std::string& path);

/// Read + validate a serve checkpoint. Throws netgym::checkpoint's
/// CheckpointError on file/CRC/format defects and std::invalid_argument on a
/// well-formed snapshot whose policy shape is unusable (bad layer sizes,
/// wrong activation, parameter-count mismatch). `version` is set by the
/// caller (the store's load counter), not stored in the file.
PolicyVersion load_policy_checkpoint(const std::string& path);

class PolicyStore {
 public:
  /// Load `path` as the new current policy; throws on any defect, leaving
  /// the previous policy (if any) serving.
  void load_file(const std::string& path);

  /// Load the latest `.ckpt` in `dir` (lexicographically greatest name, the
  /// convention for versioned names like policy_v0007.ckpt). Throws if the
  /// directory has no checkpoint or the latest one fails to load.
  /// Returns the path loaded.
  std::string load_latest(const std::string& dir);

  /// One watch tick: if `dir` now holds a checkpoint newer than what is
  /// serving (later name, or same file rewritten in place -- mtime/size
  /// moved), try to swap to it. A load failure keeps the old policy and
  /// bumps the serve.swap_failures counter. Returns true when a swap
  /// happened.
  bool poll(const std::string& dir);

  /// The policy being served; null until the first successful load. The
  /// returned snapshot stays valid (and immutable) for as long as the caller
  /// holds it, across any number of later swaps.
  std::shared_ptr<const PolicyVersion> current() const;

 private:
  struct SourceStamp {
    std::string path;
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
  };

  /// Latest .ckpt path in `dir`, or "" when none. Skips the writer's
  /// in-flight `.tmp` files by construction (suffix match on ".ckpt").
  static std::string latest_checkpoint(const std::string& dir);

  void install(PolicyVersion&& loaded, const std::string& path);

  mutable std::mutex mu_;
  std::shared_ptr<const PolicyVersion> current_;
  SourceStamp stamp_;         ///< file behind current_
  SourceStamp failed_stamp_;  ///< last file that failed to load (retry gate)
  std::uint32_t loads_ = 0;
};

}  // namespace serve
