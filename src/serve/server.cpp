#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "netgym/rng.hpp"
#include "netgym/telemetry.hpp"

namespace serve {

namespace telemetry = netgym::telemetry;

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options) : opt_(std::move(options)) {
  if (opt_.shards < 1) throw std::invalid_argument("Server: shards must be >= 1");
  if (opt_.batch_max < 1) {
    throw std::invalid_argument("Server: batch_max must be >= 1");
  }
  if (opt_.batch_window_us < 0 || opt_.watch_poll_ms < 1) {
    throw std::invalid_argument("Server: bad batching/watch options");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) throw std::runtime_error("Server: already started");
  if (store_.current() == nullptr) {
    throw std::runtime_error("Server: no policy loaded (load a checkpoint "
                             "into store() before start)");
  }
  stop_.store(false);

  if (!opt_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("unix socket path too long: " + opt_.unix_path);
    }
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opt_.unix_path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("bind(" + opt_.unix_path +
                               ") failed: " + std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("bind(127.0.0.1:" +
                               std::to_string(opt_.tcp_port) +
                               ") failed: " + std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 512) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("listen failed: ") +
                             std::strerror(errno));
  }

  shards_.clear();
  for (int s = 0; s < opt_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, &shard] { shard_loop(*shard); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (!opt_.watch_dir.empty()) {
    watch_thread_ = std::thread([this] { watch_loop(); });
  }
  if (opt_.metrics_interval_s > 0) {
    export_thread_ = std::thread([this] { export_loop(); });
  }
  running_.store(true);
}

void Server::stop() {
  // One caller performs the teardown; concurrent callers (e.g. a signal
  // handler path racing the destructor) block here until it is complete.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stop_.exchange(true)) return;

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake blocked readers; their recv() returns 0/-1 and they exit.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->open.load()) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  tick_cv_.notify_all();
  for (auto& shard : shards_) shard->cv.notify_all();

  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // All reader threads must be gone before the shard workers drain, so no
    // new request can arrive behind a worker's final pass.
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait(lock, [this] {
      return live_conns_.load(std::memory_order_relaxed) == 0;
    });
  }
  for (auto& shard : shards_) shard->cv.notify_all();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (watch_thread_.joinable()) watch_thread_.join();
  if (export_thread_.joinable()) export_thread_.join();
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  running_.store(false);
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener broken; stop() tears the rest down
    }
    if (opt_.unix_path.empty()) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    telemetry::Registry::instance().counter("serve.connections").add();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stop_.load()) return;  // conn's destructor closes the socket
      conns_.push_back(conn);
      live_conns_.fetch_add(1, std::memory_order_relaxed);
    }
    // Detached: connection_loop unregisters itself on exit, and stop()
    // blocks until live_conns_ drains, so no detached thread outlives the
    // Server.
    std::thread([this, conn = std::move(conn)]() mutable {
      connection_loop(std::move(conn));
    }).detach();
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  FrameReader reader;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // disconnect (0) or error; either way we are done
    reader.feed(buf, static_cast<std::size_t>(n));
    try {
      while (auto body = reader.next()) {
        handle_frame(conn, *body);
      }
    } catch (const ProtocolError& e) {
      // The byte stream is unrecoverable (bad prefix / unknown type):
      // explain, then hang up. Semantic errors never land here.
      telemetry::Registry::instance().counter("serve.protocol_errors").add();
      std::string out;
      encode_error(out, e.what());
      send_all(*conn, out);
      break;
    }
  }
  conn->open.store(false);
  // Shut down but do NOT close: shard workers may still hold this
  // Connection for in-flight responses (their sends fail with EPIPE, which
  // send_all absorbs). The fd closes in ~Connection when the last
  // shared_ptr drops, so a write can never land on a recycled descriptor.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (it->get() == conn.get()) {
        conns_.erase(it);
        break;
      }
    }
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
    // Notify under the lock: stop() may destroy the Server the moment it
    // observes zero live connections, so this thread must touch no member
    // after releasing conns_mu_.
    conns_cv_.notify_all();
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          std::string_view body) {
  switch (type_of(body)) {
    case MsgType::kHello: {
      const auto policy = store_.current();
      HelloResponse resp;
      resp.obs_size = static_cast<std::uint32_t>(policy->obs_size());
      resp.action_count = static_cast<std::uint32_t>(policy->action_count());
      resp.policy_version = policy->version;
      std::string out;
      encode_hello_ok(out, resp);
      send_all(*conn, out);
      return;
    }
    case MsgType::kAct: {
      ActRequest req = decode_act(body);
      Pending item;
      item.conn = conn;
      item.session_id = req.session_id;
      item.obs = std::move(req.obs);
      item.arrival = std::chrono::steady_clock::now();
      enqueue(std::move(item));
      return;
    }
    case MsgType::kClose: {
      Pending item;
      item.conn = conn;
      item.session_id = decode_close(body);
      item.close_session = true;
      item.arrival = std::chrono::steady_clock::now();
      enqueue(std::move(item));
      return;
    }
    default:
      throw ProtocolError("unexpected server-bound message type");
  }
}

void Server::enqueue(Pending&& item) {
  // Sessions are pinned to shards by their id, so one shard owns all of a
  // session's state and requests for it stay FIFO.
  const std::size_t s =
      std::hash<std::uint64_t>{}(item.session_id) % shards_.size();
  Shard& shard = *shards_[s];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.queue.push_back(std::move(item));
  }
  shard.cv.notify_one();
}

void Server::shard_loop(Shard& shard) {
  // Cached per-shard metric handles: one relaxed atomic op per event.
  telemetry::Registry& reg = telemetry::Registry::instance();
  telemetry::Counter& requests = reg.counter("serve.requests");
  telemetry::Counter& batches = reg.counter("serve.batches");
  telemetry::Counter& rejects = reg.counter("serve.rejected_requests");
  telemetry::Histogram& latency = reg.histogram("serve.request_s");
  telemetry::Histogram& batch_size = reg.histogram("serve.batch_size");
  // Per-request latency attribution (DESIGN.md S5j): the end-to-end time of
  // every acted request splits exactly into queue wait (arrival -> drained
  // from the shard queue), batch formation (drained -> forward start),
  // forward (the fused act_batch call), and write-back (forward end -> the
  // response handed to the socket). The four phase durations sum to
  // serve.phase.total_s per request by construction.
  telemetry::Histogram& phase_queue = reg.histogram("serve.phase.queue_s");
  telemetry::Histogram& phase_batch = reg.histogram("serve.phase.batch_s");
  telemetry::Histogram& phase_forward = reg.histogram("serve.phase.forward_s");
  telemetry::Histogram& phase_write = reg.histogram("serve.phase.write_s");
  telemetry::Histogram& phase_total = reg.histogram("serve.phase.total_s");

  // act_batch samples through an Rng stream per row; greedy serving ignores
  // the draw, but the signature still wants valid pointers.
  netgym::Rng greedy_rng(0);

  std::unique_ptr<rl::MlpPolicy> policy;
  std::uint32_t policy_version = 0;
  std::vector<Pending> batch;
  std::vector<Pending*> acts;
  std::vector<double> rows;
  std::vector<netgym::Rng*> rngs;
  std::vector<int> actions;
  std::string out;

  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return stop_.load() || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop requested and fully drained
      // Batching window: once the first request is in, wait briefly for
      // stragglers so concurrent sessions fuse into one forward pass, but
      // never hold a full batch back.
      if (static_cast<int>(shard.queue.size()) < opt_.batch_max &&
          opt_.batch_window_us > 0) {
        shard.cv.wait_for(
            lock, std::chrono::microseconds(opt_.batch_window_us), [&] {
              return stop_.load() ||
                     static_cast<int>(shard.queue.size()) >= opt_.batch_max;
            });
      }
      while (!shard.queue.empty() &&
             static_cast<int>(batch.size()) < opt_.batch_max) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
    }
    // One drain timestamp covers the whole batch: everything queued behind
    // it left the shard queue at this instant.
    const auto drained = std::chrono::steady_clock::now();

    // Refresh this shard's executable policy if a hot swap landed.
    const auto current = store_.current();
    if (policy == nullptr || policy_version != current->version) {
      policy = current->instantiate();
      policy_version = current->version;
    }
    const std::size_t obs_size = static_cast<std::size_t>(current->obs_size());

    acts.clear();
    rows.clear();
    for (Pending& item : batch) {
      if (item.close_session) {
        shard.sessions.erase(item.session_id);
        out.clear();
        encode_close_ok(out, item.session_id);
        send_all(*item.conn, out);
        continue;
      }
      if (item.obs.size() != obs_size) {
        // Semantic error: answer with a diagnostic but keep the connection
        // (the stream itself is fine).
        rejects.add();
        out.clear();
        encode_error(out, "act: expected " + std::to_string(obs_size) +
                              " observation values, got " +
                              std::to_string(item.obs.size()));
        send_all(*item.conn, out);
        continue;
      }
      rows.insert(rows.end(), item.obs.begin(), item.obs.end());
      acts.push_back(&item);
    }

    if (!acts.empty()) {
      const std::size_t n = acts.size();
      rngs.assign(n, &greedy_rng);
      actions.resize(n);
      const auto forward_start = std::chrono::steady_clock::now();
      policy->act_batch(rows.data(), n, rngs.data(), actions.data());
      const auto forward_end = std::chrono::steady_clock::now();
      batches.add();
      batch_size.record(static_cast<double>(n));
      const double forward_s =
          std::chrono::duration<double>(forward_end - forward_start).count();
      const double batch_s =
          std::chrono::duration<double>(forward_start - drained).count();

      for (std::size_t i = 0; i < n; ++i) {
        Pending& item = *acts[i];
        SessionState& session = shard.sessions[item.session_id];
        ++session.requests;
        session.last_action = actions[i];
        session.last_version = policy_version;

        ActResponse resp;
        resp.session_id = item.session_id;
        resp.action = actions[i];
        resp.policy_version = policy_version;
        out.clear();
        encode_act_ok(out, resp);
        send_all(*item.conn, out);

        const auto done = std::chrono::steady_clock::now();
        requests.add();
        latency.record(
            std::chrono::duration<double>(forward_end - item.arrival).count());
        phase_queue.record(
            std::chrono::duration<double>(drained - item.arrival).count());
        phase_batch.record(batch_s);
        phase_forward.record(forward_s);
        phase_write.record(
            std::chrono::duration<double>(done - forward_end).count());
        phase_total.record(
            std::chrono::duration<double>(done - item.arrival).count());
      }
    }
  }
}

void Server::watch_loop() {
  std::unique_lock<std::mutex> lock(tick_mu_);
  while (!stop_.load()) {
    tick_cv_.wait_for(lock, std::chrono::milliseconds(opt_.watch_poll_ms));
    if (stop_.load()) return;
    lock.unlock();
    store_.poll(opt_.watch_dir);
    lock.lock();
  }
}

void Server::export_loop() {
  // Puffer's log-reporter pattern: a sidecar loop that periodically posts
  // the process's metric snapshot to the structured sink, so a long-lived
  // daemon leaves a queryable time series rather than only an exit dump.
  const auto started = std::chrono::steady_clock::now();
  telemetry::Gauge& uptime = telemetry::Registry::instance().gauge(
      "serve.uptime_s");
  std::unique_lock<std::mutex> lock(tick_mu_);
  while (!stop_.load()) {
    tick_cv_.wait_for(lock, std::chrono::seconds(opt_.metrics_interval_s));
    if (stop_.load()) return;
    lock.unlock();
    uptime.set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             started)
                   .count());
    if (telemetry::logging_enabled()) {
      std::vector<telemetry::Field> fields;
      const auto policy = store_.current();
      fields.emplace_back("policy_version",
                          static_cast<std::int64_t>(policy->version));
      for (const auto& entry : telemetry::Registry::instance().snapshot()) {
        if (entry.kind == telemetry::Registry::Kind::kHistogram) {
          fields.emplace_back(entry.name + ".count", entry.hist.count);
          fields.emplace_back(entry.name + ".p50", entry.hist.p50);
          fields.emplace_back(entry.name + ".p90", entry.hist.p90);
          fields.emplace_back(entry.name + ".p99", entry.hist.p99);
          fields.emplace_back(entry.name + ".max", entry.hist.max);
        } else {
          fields.emplace_back(entry.name, entry.value);
        }
      }
      telemetry::log_event("serve_metrics", 0, fields);
    }
    lock.lock();
  }
}

void Server::send_all(Connection& conn, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!conn.open.load()) return;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that hung up mid-request yields EPIPE here
    // instead of a process-killing SIGPIPE.
    const ssize_t n = ::send(conn.fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn.open.store(false);
      telemetry::Registry::instance().counter("serve.dropped_responses").add();
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace serve
