#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/frame.hpp"
#include "serve/policy_store.hpp"

namespace serve {

// The serving daemon's engine (DESIGN.md S5g): a socket front end that
// coalesces concurrent action requests into batched policy inference.
//
// Thread shape:
//
//   accept thread --> one reader thread per connection
//                         | decode frames, route by hash(session_id)
//                         v
//                 N batching shards (one worker thread each)
//                         | drain up to batch_max requests, waiting at most
//                         | batch_window_us for stragglers, then one
//                         | rl::MlpPolicy::act_batch forward
//                         v
//                 responses written back on each request's own connection
//   + a watcher thread polling the checkpoint directory for hot swaps
//   + an optional telemetry exporter emitting periodic registry snapshots
//
// Each shard owns the per-session state of the sessions that hash to it and
// a private executable copy of the policy (the MLP's forward scratch is
// mutable, so sharing one network across shards would race); a hot swap just
// bumps the PolicyStore version and every shard rebuilds its copy before its
// next batch. Responses carry the version that computed them, which is how
// the load bench proves a mid-flight swap without dropped requests.

struct ServerOptions {
  /// Serve on this Unix socket path when non-empty; otherwise on
  /// 127.0.0.1:tcp_port (0 picks an ephemeral port, see Server::port()).
  std::string unix_path;
  int tcp_port = 0;

  int shards = 2;            ///< batching shards (worker threads)
  int batch_max = 64;        ///< max requests fused into one forward pass
  int batch_window_us = 200; ///< how long a shard waits for stragglers

  /// Checkpoint directory to watch for hot swaps ("" disables watching).
  std::string watch_dir;
  int watch_poll_ms = 500;

  /// Emit a "serve_metrics" telemetry event with the full registry snapshot
  /// every this many seconds (0 disables; events go to the global JSONL
  /// sink, so they are free when no --log-file is installed).
  int metrics_interval_s = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load checkpoints into this before start(); the watcher thread keeps
  /// refreshing it afterwards.
  PolicyStore& store() { return store_; }

  /// Bind, listen, and spawn all threads. Requires a loaded policy; throws
  /// std::runtime_error on socket failures.
  void start();

  /// Graceful shutdown: stop accepting, drain shard queues, join every
  /// thread. Idempotent; also run by the destructor.
  void stop();

  /// Actual TCP port (after an ephemeral bind); 0 when serving a Unix path.
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    ~Connection();  ///< closes the fd: destroyed only when no thread can write

    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  /// One queued act (or session-close) request, routed to its shard.
  struct Pending {
    std::shared_ptr<Connection> conn;
    std::uint64_t session_id = 0;
    std::vector<double> obs;
    bool close_session = false;
    std::chrono::steady_clock::time_point arrival;
  };

  struct SessionState {
    std::int64_t requests = 0;
    int last_action = 0;
    std::uint32_t last_version = 0;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    std::unordered_map<std::uint64_t, SessionState> sessions;
    std::thread worker;
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void shard_loop(Shard& shard);
  void watch_loop();
  void export_loop();

  /// Dispatch one decoded frame from `conn`; throws ProtocolError on a
  /// malformed body (the reader closes the connection).
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    std::string_view body);

  void enqueue(Pending&& item);

  /// Serialized write of `bytes` to a connection (MSG_NOSIGNAL, loops over
  /// short sends); marks the connection dead on any error instead of
  /// raising, so a client that disconnected mid-request is just dropped.
  static void send_all(Connection& conn, std::string_view bytes);

  ServerOptions opt_;
  PolicyStore store_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex stop_mu_;  ///< serializes stop() against concurrent callers
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  std::thread accept_thread_;
  std::thread watch_thread_;
  std::thread export_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Reader threads are detached and self-unregistering: a disconnecting
  // client frees its slot (and, once the last shard response drops its
  // shared_ptr, its fd) immediately, so a long-lived daemon does not
  // accumulate dead sockets. stop() waits for live_conns_ to reach zero.
  std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::atomic<int> live_conns_{0};

  // Sleep/wake for the watcher and exporter loops (fast shutdown).
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
};

}  // namespace serve
