#include "traces/tracesets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netgym/rng.hpp"

namespace traces {

namespace {

/// Signature of a trace family: a mean-reverting log-bandwidth walk with
/// regime switches and optional outage dips.
struct Signature {
  double mean_mbps;        ///< long-run geometric mean bandwidth
  double volatility;      ///< per-step stddev of the log-bandwidth walk
  double reversion;       ///< pull toward the regime mean per step
  double regime_switch_p; ///< per-step probability of jumping regimes
  double regime_spread;   ///< log-space half-width of regime means
  double outage_p;        ///< per-step probability of entering an outage
  double outage_depth;    ///< multiplier applied during an outage
  double step_s;          ///< sampling period
};

Signature signature_of(TraceSet set) {
  switch (set) {
    case TraceSet::kFcc:  // wired broadband: moderate mean, mild variation
      return {4.0, 0.06, 0.05, 0.01, 0.5, 0.002, 0.2, 1.0};
    case TraceSet::kNorway:  // commuter 3G: low mean, bursty, outages
      return {1.2, 0.25, 0.08, 0.05, 0.9, 0.02, 0.05, 1.0};
    case TraceSet::kCellular:  // Pantheon cellular: variable, deep fades
      return {3.0, 0.22, 0.10, 0.06, 0.7, 0.015, 0.15, 0.1};
    case TraceSet::kEthernet:  // Pantheon ethernet: high and stable
      return {20.0, 0.03, 0.10, 0.005, 0.25, 0.0, 1.0, 0.1};
  }
  throw std::invalid_argument("signature_of: unknown trace set");
}

std::uint64_t trace_seed(TraceSet set, bool test_split, int index) {
  // Distinct streams per (set, split, index); constants are arbitrary odd
  // multipliers for mixing.
  return 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(set) + 1) +
         0xbf58476d1ce4e5b9ULL * (test_split ? 2 : 1) +
         0x94d049bb133111ebULL * static_cast<std::uint64_t>(index + 1);
}

}  // namespace

const TraceSetInfo& info(TraceSet set) {
  // Counts follow Table 2's train/test proportions, scaled down ~4x to keep
  // full-corpus evaluations fast on one core.
  static const TraceSetInfo kFcc{"FCC", true, 21, 72, 320.0};
  static const TraceSetInfo kNorway{"Norway", true, 29, 77, 320.0};
  static const TraceSetInfo kCellular{"Cellular", false, 34, 30, 30.0};
  static const TraceSetInfo kEthernet{"Ethernet", false, 16, 28, 30.0};
  switch (set) {
    case TraceSet::kFcc:
      return kFcc;
    case TraceSet::kNorway:
      return kNorway;
    case TraceSet::kCellular:
      return kCellular;
    case TraceSet::kEthernet:
      return kEthernet;
  }
  throw std::invalid_argument("info: unknown trace set");
}

std::vector<TraceSet> all_sets() {
  return {TraceSet::kFcc, TraceSet::kNorway, TraceSet::kCellular,
          TraceSet::kEthernet};
}

netgym::Trace make_trace(TraceSet set, bool test_split, int index) {
  const TraceSetInfo& meta = info(set);
  const int count = test_split ? meta.test_count : meta.train_count;
  if (index < 0 || index >= count) {
    throw std::out_of_range("make_trace: index outside the split");
  }
  const Signature sig = signature_of(set);
  netgym::Rng rng(trace_seed(set, test_split, index));

  // Per-trace session mean: traces within a set differ in their base level.
  const double session_log_mean =
      std::log(sig.mean_mbps) + rng.gaussian(0.0, sig.regime_spread);
  double regime_log_mean = session_log_mean + rng.gaussian(0.0, 0.3);
  double log_bw = regime_log_mean + rng.gaussian(0.0, sig.volatility * 3);
  int outage_left = 0;

  netgym::Trace trace;
  const int steps =
      static_cast<int>(std::ceil(meta.duration_s / sig.step_s)) + 1;
  for (int i = 0; i < steps; ++i) {
    if (rng.bernoulli(sig.regime_switch_p)) {
      regime_log_mean =
          session_log_mean + rng.gaussian(0.0, sig.regime_spread);
    }
    if (outage_left == 0 && rng.bernoulli(sig.outage_p)) {
      outage_left = rng.uniform_int(1, std::max(2, static_cast<int>(3.0 / sig.step_s)));
    }
    log_bw += sig.reversion * (regime_log_mean - log_bw) +
              rng.gaussian(0.0, sig.volatility);
    double bw = std::exp(log_bw);
    if (outage_left > 0) {
      bw *= sig.outage_depth;
      --outage_left;
    }
    bw = std::clamp(bw, 0.05, 200.0);
    trace.timestamps_s.push_back(i * sig.step_s + 1e-4);
    trace.bandwidth_mbps.push_back(bw);
  }
  trace.validate();
  return trace;
}

std::vector<netgym::Trace> make_corpus(TraceSet set, bool test_split) {
  const TraceSetInfo& meta = info(set);
  const int count = test_split ? meta.test_count : meta.train_count;
  std::vector<netgym::Trace> corpus;
  corpus.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    corpus.push_back(make_trace(set, test_split, i));
  }
  return corpus;
}

}  // namespace traces
