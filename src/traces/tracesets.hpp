#pragma once

#include <string>
#include <vector>

#include "netgym/trace.hpp"

namespace traces {

/// The four recorded trace sets of Table 2. The originals (FCC broadband,
/// Norway 3G, Pantheon Cellular/Ethernet) are not redistributable, so this
/// module synthesizes stand-in corpora with per-set statistical signatures
/// (documented in DESIGN.md S4): the paper uses the sets only as bandwidth
/// processes with distribution shift between them, which these generators
/// reproduce. Traces are generated deterministically from (set, split,
/// index) so every experiment sees the same corpus.
enum class TraceSet { kFcc, kNorway, kCellular, kEthernet };

struct TraceSetInfo {
  std::string name;
  bool for_abr = false;   ///< FCC/Norway drive ABR; Cellular/Ethernet drive CC
  int train_count = 0;    ///< corpus sizes follow the proportions of Table 2
  int test_count = 0;
  double duration_s = 0;
};

const TraceSetInfo& info(TraceSet set);

/// All four sets, in declaration order.
std::vector<TraceSet> all_sets();

/// Generate the `index`-th trace of a set's train or test split. Index must
/// be within the split's count. Deterministic.
netgym::Trace make_trace(TraceSet set, bool test_split, int index);

/// Generate the whole split.
std::vector<netgym::Trace> make_corpus(TraceSet set, bool test_split);

}  // namespace traces
