#include "abr/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "abr/env.hpp"

namespace {

using abr::AbrEnv;
using abr::AbrEnvConfig;
using netgym::Observation;
using netgym::Rng;
using netgym::Trace;

Trace constant_trace(double mbps, double duration_s) {
  Trace t;
  for (double s = 0.0; s <= duration_s; s += 1.0) {
    t.timestamps_s.push_back(s + 1e-4);
    t.bandwidth_mbps.push_back(mbps);
  }
  return t;
}

/// Observation with a given buffer level and max-buffer capacity, other
/// fields at plausible defaults.
Observation obs_with_buffer(double buffer_s, double capacity_s,
                            double throughput_mbps = 3.0) {
  Observation obs(AbrEnv::kObsSize, 0.0);
  obs[AbrEnv::kObsBuffer] = buffer_s / 30.0;
  obs[AbrEnv::kObsMaxBuffer] = capacity_s / 100.0;
  obs[AbrEnv::kObsChunkLength] = 0.4;
  obs[AbrEnv::kObsMinRtt] = 0.08;
  obs[AbrEnv::kObsRemaining] = 0.5;
  for (int i = 0; i < AbrEnv::kThroughputHistory; ++i) {
    obs[AbrEnv::kObsThroughputHist + i] = std::log10(1.0 + throughput_mbps);
  }
  for (int b = 0; b < abr::kBitrateCount; ++b) {
    obs[AbrEnv::kObsNextSizes + b] =
        abr::kBitratesKbps[b] * 1000.0 * 4.0 / 8e6;
  }
  return obs;
}

TEST(Bba, LowBufferPicksLowestBitrate) {
  abr::BbaPolicy bba;
  Rng rng(1);
  EXPECT_EQ(bba.act(obs_with_buffer(0.5, 60.0), rng), 0);
}

TEST(Bba, HighBufferPicksHighestBitrate) {
  abr::BbaPolicy bba;
  Rng rng(1);
  EXPECT_EQ(bba.act(obs_with_buffer(58.0, 60.0), rng),
            abr::kBitrateCount - 1);
}

TEST(Bba, BitrateIsMonotoneInBuffer) {
  abr::BbaPolicy bba;
  Rng rng(1);
  int last = 0;
  for (double buf = 0.0; buf <= 60.0; buf += 2.0) {
    const int choice = bba.act(obs_with_buffer(buf, 60.0), rng);
    EXPECT_GE(choice, last);
    last = choice;
  }
  EXPECT_EQ(last, abr::kBitrateCount - 1);
}

TEST(Bba, TinyCapacityStaysConservative) {
  abr::BbaPolicy bba;
  Rng rng(1);
  // 2 s capacity: reservoir >= 1 s, so a sub-second buffer means lowest.
  EXPECT_EQ(bba.act(obs_with_buffer(0.5, 2.0), rng), 0);
}

TEST(Mpc, StarvedThroughputPicksLowest) {
  abr::RobustMpcPolicy mpc;
  mpc.begin_episode();
  Rng rng(1);
  EXPECT_EQ(mpc.act(obs_with_buffer(4.0, 60.0, 0.2), rng), 0);
}

TEST(Mpc, AbundantThroughputPicksHighest) {
  abr::RobustMpcPolicy mpc;
  mpc.begin_episode();
  Rng rng(1);
  EXPECT_EQ(mpc.act(obs_with_buffer(20.0, 60.0, 50.0), rng),
            abr::kBitrateCount - 1);
}

TEST(Mpc, ValidatesHorizon) {
  EXPECT_THROW(abr::RobustMpcPolicy(0), std::invalid_argument);
}

TEST(Mpc, BeatsConstantLowestOnGoodLink) {
  AbrEnvConfig cfg;
  cfg.video_length_s = 80.0;
  AbrEnv env_mpc(cfg, constant_trace(6.0, 400.0), 3);
  AbrEnv env_low(cfg, constant_trace(6.0, 400.0), 3);
  abr::RobustMpcPolicy mpc;
  abr::ConstantBitratePolicy lowest(0);
  Rng rng(1);
  const double r_mpc = netgym::run_episode(env_mpc, mpc, rng).mean_reward;
  const double r_low = netgym::run_episode(env_low, lowest, rng).mean_reward;
  EXPECT_GT(r_mpc, r_low);
}

TEST(Mpc, AvoidsRebufferOnSlowLink) {
  // On a 1 Mbps link MPC should hold a low bitrate and avoid the huge
  // rebuffering penalty that the constant-high policy incurs.
  AbrEnvConfig cfg;
  cfg.video_length_s = 80.0;
  AbrEnv env_mpc(cfg, constant_trace(1.0, 800.0), 3);
  AbrEnv env_high(cfg, constant_trace(1.0, 800.0), 3);
  abr::RobustMpcPolicy mpc;
  abr::ConstantBitratePolicy highest(abr::kBitrateCount - 1);
  Rng rng(1);
  const double r_mpc = netgym::run_episode(env_mpc, mpc, rng).mean_reward;
  const double r_high =
      netgym::run_episode(env_high, highest, rng).mean_reward;
  EXPECT_GT(r_mpc, 0.0);
  EXPECT_LT(r_high, 0.0);
}

TEST(Oboe, ValidatesHorizon) {
  EXPECT_THROW(abr::OboePolicy(0), std::invalid_argument);
}

TEST(Oboe, ConservativeWithoutSignalAndScalesWithThroughput) {
  abr::OboePolicy oboe;
  Rng rng(1);
  // No throughput history at all -> lowest bitrate.
  Observation cold = obs_with_buffer(10.0, 60.0, 0.0);
  for (int i = 0; i < AbrEnv::kThroughputHistory; ++i) {
    cold[AbrEnv::kObsThroughputHist + i] = 0.0;
  }
  EXPECT_EQ(oboe.act(cold, rng), 0);
  // Abundant stable throughput -> highest bitrate.
  EXPECT_EQ(oboe.act(obs_with_buffer(20.0, 60.0, 50.0), rng),
            abr::kBitrateCount - 1);
}

TEST(Oboe, VarianceMakesItMoreConservativeThanStableHistory) {
  // Same mean throughput, but a wildly varying history must not pick a
  // higher bitrate than a stable one.
  abr::OboePolicy oboe;
  Rng rng(1);
  Observation stable = obs_with_buffer(12.0, 60.0, 3.0);
  Observation wild = obs_with_buffer(12.0, 60.0, 3.0);
  for (int i = 0; i < AbrEnv::kThroughputHistory; ++i) {
    const double mbps = (i % 2 == 0) ? 0.5 : 5.5;  // mean 3.0, high variance
    wild[AbrEnv::kObsThroughputHist + i] = std::log10(1.0 + mbps);
  }
  EXPECT_LE(oboe.act(wild, rng), oboe.act(stable, rng));
}

TEST(NaiveAbr, InvertedBufferLogic) {
  abr::NaiveAbrPolicy naive;
  Rng rng(1);
  // Nearly empty buffer -> highest bitrate (the unreasonable move).
  EXPECT_EQ(naive.act(obs_with_buffer(0.2, 60.0), rng),
            abr::kBitrateCount - 1);
  EXPECT_EQ(naive.act(obs_with_buffer(30.0, 60.0), rng), 0);
}

TEST(ConstantBitrate, ReturnsFixedIndexAndValidates) {
  abr::ConstantBitratePolicy policy(3);
  Rng rng(1);
  EXPECT_EQ(policy.act(obs_with_buffer(5.0, 60.0), rng), 3);
  EXPECT_THROW(abr::ConstantBitratePolicy(-1), std::invalid_argument);
  EXPECT_THROW(abr::ConstantBitratePolicy(abr::kBitrateCount),
               std::invalid_argument);
}

}  // namespace
