#include "abr/env.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using abr::AbrEnv;
using abr::AbrEnvConfig;
using netgym::Rng;
using netgym::Trace;

Trace constant_trace(double mbps, double duration_s) {
  Trace t;
  for (double s = 0.0; s <= duration_s; s += 1.0) {
    t.timestamps_s.push_back(s + 1e-4);
    t.bandwidth_mbps.push_back(mbps);
  }
  return t;
}

AbrEnvConfig small_config() {
  AbrEnvConfig cfg;
  cfg.video_length_s = 40.0;
  cfg.chunk_length_s = 4.0;
  cfg.max_buffer_s = 20.0;
  cfg.min_rtt_ms = 80.0;
  return cfg;
}

TEST(AbrConfigSpace, MatchesTable3) {
  for (int which : {1, 2, 3}) {
    const netgym::ConfigSpace space = abr::abr_config_space(which);
    EXPECT_EQ(space.dims(), 6u);
  }
  // RL1 c RL2 c RL3 nesting.
  const auto rl1 = abr::abr_config_space(1);
  const auto rl3 = abr::abr_config_space(3);
  for (std::size_t d = 0; d < rl1.dims(); ++d) {
    EXPECT_GE(rl1.param(d).lo, rl3.param(d).lo);
    EXPECT_LE(rl1.param(d).hi, rl3.param(d).hi);
  }
  EXPECT_THROW(abr::abr_config_space(0), std::invalid_argument);
}

TEST(AbrConfigSpace, PointRoundTrip) {
  const auto space = abr::abr_config_space(3);
  Rng rng(1);
  const netgym::Config point = space.sample(rng);
  const AbrEnvConfig cfg = abr::abr_config_from_point(point);
  const netgym::Config back = abr::abr_point_from_config(cfg);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(back.values[i], point.values[i]);
  }
  EXPECT_THROW(abr::abr_config_from_point(netgym::Config{{1.0}}),
               std::invalid_argument);
}

TEST(AbrEnv, EpisodeCoversWholeVideo) {
  AbrEnv env(small_config(), constant_trace(5.0, 100.0), 1);
  env.reset();
  int steps = 0;
  bool done = false;
  while (!done) {
    const auto result = env.step(0);
    done = result.done;
    ++steps;
  }
  EXPECT_EQ(steps, env.video().num_chunks());
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(AbrEnv, FastLinkGivesNoRebufferAndFullReward) {
  // 50 Mbps link, 4.3 Mbps top bitrate: downloads are nearly instant.
  AbrEnvConfig cfg = small_config();
  AbrEnv env(cfg, constant_trace(50.0, 100.0), 1);
  env.reset();
  double second_reward = 0.0;
  env.step(abr::kBitrateCount - 1);
  second_reward = env.step(abr::kBitrateCount - 1).reward;
  // No rebuffering, no bitrate change: reward == top bitrate in Mbps.
  EXPECT_NEAR(second_reward, 4.3, 0.01);
}

TEST(AbrEnv, SlowLinkCausesRebufferPenalty) {
  // 0.2 Mbps link cannot sustain even the lowest 0.3 Mbps rendition.
  AbrEnv env(small_config(), constant_trace(0.2, 400.0), 1);
  env.reset();
  const double reward = env.step(0).reward;
  EXPECT_LT(reward, 0.0);  // dominated by the -10/s rebuffer penalty
}

TEST(AbrEnv, BitrateChangePenaltyApplied) {
  AbrEnv env(small_config(), constant_trace(50.0, 100.0), 1);
  env.reset();
  env.step(0);
  const double up_reward = env.step(5).reward;
  // reward = 4.3 - |4.3 - 0.3| = 0.3 (minus negligible rebuffer).
  EXPECT_NEAR(up_reward, 4.3 - 4.0, 0.02);
}

TEST(AbrEnv, FirstChunkHasNoChangePenalty) {
  // Identical transitions except for the `started` flag: the difference must
  // be exactly the |4.3 - 0.3| switching penalty (started_from last = 0).
  AbrEnv env(small_config(), constant_trace(50.0, 100.0), 1);
  env.reset();
  const auto unstarted =
      env.chunk_transition(0.0, 10.0, 0, /*started=*/false, 0, 5);
  const auto started =
      env.chunk_transition(0.0, 10.0, 0, /*started=*/true, 0, 5);
  EXPECT_NEAR(unstarted.reward - started.reward, 4.0, 1e-9);
}

TEST(AbrEnv, BufferIsCappedAtConfiguredMaximum) {
  AbrEnvConfig cfg = small_config();
  cfg.max_buffer_s = 8.0;
  AbrEnv env(cfg, constant_trace(50.0, 100.0), 1);
  env.reset();
  for (int i = 0; i < 5; ++i) env.step(0);
  EXPECT_LE(env.buffer_s(), 8.0 + 1e-9);
  EXPECT_GT(env.buffer_s(), 7.0);  // should be pinned near the cap
}

TEST(AbrEnv, ClockAdvancesMonotonically) {
  AbrEnv env(small_config(), constant_trace(3.0, 100.0), 1);
  env.reset();
  double last = env.clock_s();
  for (int i = 0; i < env.video().num_chunks(); ++i) {
    env.step(i % abr::kBitrateCount);
    EXPECT_GT(env.clock_s(), last);
    last = env.clock_s();
  }
}

TEST(AbrEnv, DownloadTimeMatchesBandwidthMath) {
  AbrEnvConfig cfg = small_config();
  cfg.min_rtt_ms = 100.0;
  AbrEnv env(cfg, constant_trace(2.0, 400.0), 1);
  // 1e6 bits at 2 Mbps = 0.5 s, plus 0.1 s RTT.
  EXPECT_NEAR(env.download_time_s(1e6, 0.0), 0.6, 0.01);
}

TEST(AbrEnv, ObservationLayoutIsConsistent) {
  AbrEnv env(small_config(), constant_trace(5.0, 100.0), 1);
  netgym::Observation obs = env.reset();
  ASSERT_EQ(obs.size(), static_cast<std::size_t>(AbrEnv::kObsSize));
  EXPECT_DOUBLE_EQ(obs[AbrEnv::kObsBuffer], 0.0);
  EXPECT_DOUBLE_EQ(obs[AbrEnv::kObsRemaining], 1.0);
  EXPECT_DOUBLE_EQ(obs[AbrEnv::kObsChunkLength], 0.4);
  EXPECT_DOUBLE_EQ(obs[AbrEnv::kObsMinRtt], 0.08);
  EXPECT_DOUBLE_EQ(obs[AbrEnv::kObsMaxBuffer], 0.2);
  // Next-chunk sizes increase along the ladder.
  for (int b = 1; b < abr::kBitrateCount; ++b) {
    EXPECT_GT(obs[AbrEnv::kObsNextSizes + b], obs[AbrEnv::kObsNextSizes + b - 1]);
  }

  const auto result = env.step(2);
  obs = result.observation;
  EXPECT_DOUBLE_EQ(obs[AbrEnv::kObsLastBitrate], 2.0 / 5.0);
  EXPECT_GT(obs[AbrEnv::kObsBuffer], 0.0);
  // Newest throughput-history slot holds the measured rate (~5 Mbps),
  // log10(1 + Mbps) encoded.
  const double newest =
      std::pow(10.0,
               obs[AbrEnv::kObsThroughputHist + AbrEnv::kThroughputHistory - 1]) -
      1.0;
  EXPECT_NEAR(newest, 5.0, 2.0);
}

TEST(AbrEnv, ChunkTransitionMatchesStep) {
  AbrEnvConfig cfg = small_config();
  AbrEnv env(cfg, constant_trace(3.0, 100.0), 9);
  env.reset();
  double clock = 0.0, buffer = 0.0;
  int last = 0;
  bool started = false;
  for (int chunk = 0; chunk < env.video().num_chunks(); ++chunk) {
    const int action = (chunk * 2) % abr::kBitrateCount;
    const auto predicted =
        env.chunk_transition(clock, buffer, last, started, chunk, action);
    const auto result = env.step(action);
    EXPECT_NEAR(result.reward, predicted.reward, 1e-9);
    EXPECT_NEAR(env.clock_s(), predicted.clock_s, 1e-9);
    EXPECT_NEAR(env.buffer_s(), predicted.buffer_s, 1e-9);
    clock = predicted.clock_s;
    buffer = predicted.buffer_s;
    last = action;
    started = true;
    if (result.done) break;
  }
}

TEST(AbrEnv, RejectsInvalidConstructionAndActions) {
  EXPECT_THROW(AbrEnv(small_config(), Trace{}, 1), std::invalid_argument);
  AbrEnv env(small_config(), constant_trace(5.0, 100.0), 1);
  env.reset();
  EXPECT_THROW(env.step(-1), std::invalid_argument);
  EXPECT_THROW(env.step(abr::kBitrateCount), std::invalid_argument);
}

TEST(MakeAbrEnv, SyntheticEnvRespectsConfig) {
  AbrEnvConfig cfg;
  cfg.max_bw_mbps = 10.0;
  cfg.bw_min_ratio = 0.5;
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    auto env = abr::make_abr_env(cfg, rng);
    EXPECT_LE(env->trace().max_bandwidth(), 10.0 + 1e-9);
    EXPECT_GE(env->trace().min_bandwidth(), 5.0 - 1e-9);
    EXPECT_GE(env->trace().duration_s(), cfg.video_length_s - 2.0);
  }
}

TEST(MakeAbrEnv, EnvsFromSameConfigDiffer) {
  AbrEnvConfig cfg;
  Rng rng(3);
  auto a = abr::make_abr_env(cfg, rng);
  auto b = abr::make_abr_env(cfg, rng);
  EXPECT_NE(a->trace().bandwidth_mbps, b->trace().bandwidth_mbps);
}

}  // namespace
