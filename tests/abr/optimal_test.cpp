#include "abr/optimal.hpp"

#include <gtest/gtest.h>

#include "abr/baselines.hpp"
#include "abr/env.hpp"

namespace {

using abr::AbrEnv;
using abr::AbrEnvConfig;
using netgym::Rng;

TEST(OfflineOptimal, ValidatesBeamWidth) {
  AbrEnvConfig cfg;
  cfg.video_length_s = 40.0;
  Rng rng(1);
  auto env = abr::make_abr_env(cfg, rng);
  EXPECT_THROW(abr::offline_optimal(*env, 0), std::invalid_argument);
}

TEST(OfflineOptimal, PlanCoversAllChunks) {
  AbrEnvConfig cfg;
  cfg.video_length_s = 60.0;
  Rng rng(2);
  auto env = abr::make_abr_env(cfg, rng);
  const abr::OptimalPlan plan = abr::offline_optimal(*env, 16);
  EXPECT_EQ(plan.bitrates.size(),
            static_cast<std::size_t>(env->video().num_chunks()));
  EXPECT_NEAR(plan.mean_reward,
              plan.total_reward / env->video().num_chunks(), 1e-9);
}

TEST(OfflineOptimal, PlanRewardIsAttainableByReplay) {
  AbrEnvConfig cfg;
  cfg.video_length_s = 60.0;
  Rng rng(5);
  auto env = abr::make_abr_env(cfg, rng);
  const abr::OptimalPlan plan = abr::offline_optimal(*env, 16);
  env->reset();
  double total = 0.0;
  for (int bitrate : plan.bitrates) total += env->step(bitrate).reward;
  EXPECT_NEAR(total, plan.total_reward, 1e-6);
}

/// Property: the offline plan is at least as good as every rule-based and
/// constant policy, across a sweep of environments.
class OptimalDominance : public ::testing::TestWithParam<int> {};

TEST_P(OptimalDominance, BeatsOnlinePolicies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  AbrEnvConfig cfg;
  cfg.video_length_s = 60.0;
  cfg.max_bw_mbps = rng.uniform(1.0, 20.0);
  cfg.bw_change_interval_s = rng.uniform(2.0, 30.0);
  auto env = abr::make_abr_env(cfg, rng);
  const double optimal = abr::offline_optimal(*env, 32).total_reward;

  std::vector<std::unique_ptr<netgym::Policy>> rivals;
  rivals.push_back(std::make_unique<abr::BbaPolicy>());
  rivals.push_back(std::make_unique<abr::RobustMpcPolicy>());
  for (int b = 0; b < abr::kBitrateCount; ++b) {
    rivals.push_back(std::make_unique<abr::ConstantBitratePolicy>(b));
  }
  for (auto& rival : rivals) {
    Rng eval_rng(7);
    const auto stats = netgym::run_episode(*env, *rival, eval_rng);
    EXPECT_GE(optimal, stats.total_reward - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Envs, OptimalDominance, ::testing::Range(0, 8));

TEST(OfflineOptimal, WiderBeamNeverHurts) {
  Rng rng(11);
  AbrEnvConfig cfg;
  cfg.video_length_s = 60.0;
  cfg.max_bw_mbps = 3.0;
  auto env = abr::make_abr_env(cfg, rng);
  const double narrow = abr::offline_optimal(*env, 1).total_reward;
  const double mid = abr::offline_optimal(*env, 8).total_reward;
  const double wide = abr::offline_optimal(*env, 64).total_reward;
  EXPECT_GE(mid, narrow - 1e-9);
  EXPECT_GE(wide, mid - 1e-9);
}

}  // namespace
