// Property tests for the ABR simulator: invariants that must hold for any
// configuration in the RL3 space and any action sequence.

#include <gtest/gtest.h>

#include <cmath>

#include "abr/env.hpp"

namespace {

using abr::AbrEnv;
using netgym::Rng;

class AbrEnvProperties : public ::testing::TestWithParam<int> {};

TEST_P(AbrEnvProperties, InvariantsHoldUnderRandomPlay) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const netgym::ConfigSpace space = abr::abr_config_space(3);
  const abr::AbrEnvConfig cfg = abr::abr_config_from_point(space.sample(rng));
  auto env = abr::make_abr_env(cfg, rng);

  netgym::Observation obs = env->reset();
  double last_clock = 0.0;
  int steps = 0;
  bool done = false;
  while (!done) {
    for (double v : obs) ASSERT_TRUE(std::isfinite(v));
    const int action = rng.uniform_int(0, abr::kBitrateCount - 1);
    const auto result = env->step(action);
    // Reward is bounded: at best the top bitrate, at worst a capped
    // download (kMaxDownloadS = 300 s) of rebuffering plus max change.
    ASSERT_LE(result.reward, 4.3 + 1e-9);
    ASSERT_GE(result.reward, -10.0 * 301.0);
    // Buffer stays within [0, capacity]; clock advances.
    ASSERT_GE(env->buffer_s(), 0.0);
    ASSERT_LE(env->buffer_s(), cfg.max_buffer_s + 1e-9);
    ASSERT_GT(env->clock_s(), last_clock);
    last_clock = env->clock_s();
    obs = result.observation;
    done = result.done;
    ++steps;
    ASSERT_LE(steps, env->video().num_chunks());
  }
  EXPECT_EQ(steps, env->video().num_chunks());
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, AbrEnvProperties,
                         ::testing::Range(0, 20));

class AbrTotalsProperties : public ::testing::TestWithParam<int> {};

TEST_P(AbrTotalsProperties, TotalsDecomposeTheReward) {
  // Sum of per-step rewards == beta*sum(bitrate) + alpha*sum(rebuffer)
  // + gamma*sum(change), reconstructed from the Totals accumulator.
  Rng rng(1000 + GetParam());
  const netgym::ConfigSpace space = abr::abr_config_space(3);
  const abr::AbrEnvConfig cfg = abr::abr_config_from_point(space.sample(rng));
  auto env = abr::make_abr_env(cfg, rng);
  env->reset();
  double total_reward = 0.0;
  bool done = false;
  while (!done) {
    const auto result = env->step(rng.uniform_int(0, abr::kBitrateCount - 1));
    total_reward += result.reward;
    done = result.done;
  }
  const auto& totals = env->totals();
  const double reconstructed = totals.bitrate_mbps_sum -
                               10.0 * totals.rebuffer_s_sum -
                               totals.change_mbps_sum;
  EXPECT_NEAR(total_reward, reconstructed,
              1e-6 * std::max(1.0, std::abs(total_reward)));
  EXPECT_EQ(totals.chunks, env->video().num_chunks());
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, AbrTotalsProperties,
                         ::testing::Range(0, 10));

}  // namespace
