#include "abr/video.hpp"

#include <gtest/gtest.h>

namespace {

using abr::Video;

TEST(Bitrates, LadderIsStrictlyIncreasing) {
  for (int i = 1; i < abr::kBitrateCount; ++i) {
    EXPECT_GT(abr::bitrate_kbps(i), abr::bitrate_kbps(i - 1));
  }
  EXPECT_DOUBLE_EQ(abr::bitrate_mbps(0), 0.3);
  EXPECT_THROW(abr::bitrate_kbps(-1), std::out_of_range);
  EXPECT_THROW(abr::bitrate_kbps(abr::kBitrateCount), std::out_of_range);
}

TEST(Video, ChunkCountCeils) {
  EXPECT_EQ(Video(10.0, 4.0, 1).num_chunks(), 3);
  EXPECT_EQ(Video(12.0, 4.0, 1).num_chunks(), 3);
  EXPECT_EQ(Video(12.1, 4.0, 1).num_chunks(), 4);
}

TEST(Video, ValidatesConstruction) {
  EXPECT_THROW(Video(0.0, 4.0, 1), std::invalid_argument);
  EXPECT_THROW(Video(10.0, 0.0, 1), std::invalid_argument);
}

TEST(Video, SizesScaleWithBitrateAndStayNearNominal) {
  const Video video(100.0, 4.0, 42);
  for (int c = 0; c < video.num_chunks(); ++c) {
    for (int b = 0; b < abr::kBitrateCount; ++b) {
      const double nominal = abr::kBitratesKbps[b] * 1000.0 * 4.0;
      const double actual = video.chunk_size_bits(c, b);
      EXPECT_GE(actual, nominal * 0.9 - 1e-6);
      EXPECT_LE(actual, nominal * 1.1 + 1e-6);
      if (b > 0) {
        EXPECT_GT(actual, video.chunk_size_bits(c, b - 1));
      }
    }
  }
}

TEST(Video, PerChunkNoiseIsSharedAcrossLadder) {
  // Encoder noise perturbs the chunk, not each rendition independently:
  // the size ratio between renditions must equal the bitrate ratio.
  const Video video(40.0, 2.0, 7);
  for (int c = 0; c < video.num_chunks(); ++c) {
    const double ratio =
        video.chunk_size_bits(c, 3) / video.chunk_size_bits(c, 1);
    EXPECT_NEAR(ratio, abr::kBitratesKbps[3] / abr::kBitratesKbps[1], 1e-9);
  }
}

TEST(Video, DeterministicGivenSeed) {
  const Video a(60.0, 4.0, 5);
  const Video b(60.0, 4.0, 5);
  const Video c(60.0, 4.0, 6);
  EXPECT_EQ(a.chunk_size_bits(3, 2), b.chunk_size_bits(3, 2));
  EXPECT_NE(a.chunk_size_bits(3, 2), c.chunk_size_bits(3, 2));
}

TEST(Video, BoundsChecked) {
  const Video video(20.0, 4.0, 1);
  EXPECT_THROW(video.chunk_size_bits(-1, 0), std::out_of_range);
  EXPECT_THROW(video.chunk_size_bits(99, 0), std::out_of_range);
  EXPECT_THROW(video.chunk_size_bits(0, 99), std::out_of_range);
}

}  // namespace
