#include "bo/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netgym/rng.hpp"

namespace {

using bo::GaussianProcess;

TEST(GaussianProcess, ValidatesOptionsAndInput) {
  GaussianProcess::Options bad;
  bad.length_scale = 0.0;
  EXPECT_THROW(GaussianProcess{bad}, std::invalid_argument);
  GaussianProcess gp;
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{0.1}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{0.1}, {0.2, 0.3}}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(GaussianProcess, PriorBeforeFit) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.fitted());
  const auto p = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
}

TEST(GaussianProcess, PriorIsExplicitZeroMeanWithSignalVariance) {
  // predict() before fit() must return the documented prior -- zero mean and
  // the kernel's signal variance -- and stay finite everywhere in the cube.
  GaussianProcess::Options opts;
  opts.signal_variance = 2.5;
  GaussianProcess gp(opts);
  for (double x : {0.0, 0.25, 0.75, 1.0}) {
    const auto p = gp.predict({x, 1.0 - x});
    EXPECT_DOUBLE_EQ(p.mean, 0.0) << x;
    EXPECT_DOUBLE_EQ(p.variance, 2.5) << x;
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.variance));
  }
}

TEST(GaussianProcess, ExactDuplicatesWithZeroNoiseHitTheJitterPath) {
  // With noise_variance = 0 and identical inputs the kernel matrix is
  // singular; the 1e-12 Cholesky jitter must keep the factorization and the
  // posterior finite, with the mean at the shared target.
  GaussianProcess::Options opts;
  opts.noise_variance = 0.0;
  GaussianProcess gp(opts);
  gp.fit({{0.4, 0.6}, {0.4, 0.6}, {0.4, 0.6}}, {1.0, 1.0, 1.0});
  for (const auto& x :
       {std::vector<double>{0.4, 0.6}, std::vector<double>{0.9, 0.1}}) {
    const auto p = gp.predict(x);
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.variance));
    EXPECT_GE(p.variance, 0.0);
  }
  EXPECT_NEAR(gp.predict({0.4, 0.6}).mean, 1.0, 1e-6);
}

TEST(GaussianProcess, NearDuplicatePointsStayFinite) {
  // Two points 1e-13 apart are numerically identical for the RBF kernel;
  // the jitter path must absorb the resulting near-singular matrix even
  // with conflicting targets.
  GaussianProcess::Options opts;
  opts.noise_variance = 0.0;
  GaussianProcess gp(opts);
  gp.fit({{0.5}, {0.5 + 1e-13}, {0.2}}, {1.0, 3.0, -1.0});
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    const auto p = gp.predict({x});
    EXPECT_TRUE(std::isfinite(p.mean)) << x;
    EXPECT_TRUE(std::isfinite(p.variance)) << x;
    EXPECT_GE(p.variance, 0.0) << x;
  }
  // Far from every observation the posterior relaxes toward the prior.
  const auto far = gp.predict({0.999});
  EXPECT_GT(far.variance, gp.predict({0.2}).variance);
}

TEST(GaussianProcess, ConstantTargetsDegenerateStandardizationStaysFinite) {
  // Identical targets make the target variance 0 (clamped to 1e-12); the
  // posterior must stay finite and reproduce the constant.
  GaussianProcess gp;
  gp.fit({{0.1}, {0.5}, {0.9}}, {4.0, 4.0, 4.0});
  const auto p = gp.predict({0.3});
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_TRUE(std::isfinite(p.variance));
  EXPECT_NEAR(p.mean, 4.0, 1e-3);
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  GaussianProcess::Options opts;
  opts.noise_variance = 1e-6;
  GaussianProcess gp(opts);
  const std::vector<std::vector<double>> xs{{0.1}, {0.5}, {0.9}};
  const std::vector<double> ys{1.0, -2.0, 3.0};
  gp.fit(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 0.05);
    EXPECT_LT(p.variance, 0.05);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  gp.fit({{0.5, 0.5}}, {1.0});
  const double near = gp.predict({0.5, 0.5}).variance;
  const double far = gp.predict({0.0, 1.0}).variance;
  EXPECT_GT(far, near * 5);
}

TEST(GaussianProcess, SmoothFunctionIsWellApproximated) {
  // Fit y = sin(2 pi x) on a grid; prediction error off-grid must be small.
  GaussianProcess::Options opts;
  opts.length_scale = 0.15;
  opts.noise_variance = 1e-6;
  GaussianProcess gp(opts);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = i / 10.0;
    xs.push_back({x});
    ys.push_back(std::sin(2 * M_PI * x));
  }
  gp.fit(xs, ys);
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_NEAR(gp.predict({x}).mean, std::sin(2 * M_PI * x), 0.1) << x;
  }
}

TEST(GaussianProcess, RefitReplacesData) {
  GaussianProcess gp;
  gp.fit({{0.2}}, {5.0});
  gp.fit({{0.2}}, {-5.0});
  EXPECT_LT(gp.predict({0.2}).mean, 0.0);
}

TEST(GaussianProcess, HandlesConstantTargets) {
  GaussianProcess gp;
  gp.fit({{0.1}, {0.9}}, {2.0, 2.0});
  EXPECT_NEAR(gp.predict({0.5}).mean, 2.0, 0.5);
}

TEST(GaussianProcess, HandlesDuplicatePoints) {
  // Duplicate inputs with different targets: the noise term must keep the
  // Cholesky factorization stable.
  GaussianProcess gp;
  gp.fit({{0.3}, {0.3}, {0.3}}, {1.0, 2.0, 3.0});
  const auto p = gp.predict({0.3});
  EXPECT_NEAR(p.mean, 2.0, 0.3);
}

}  // namespace
