#include "bo/search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using bo::BayesianOptimizer;
using bo::GridSearch;
using bo::RandomSearch;

/// Smooth 2-D test function with maximum 1.0 at (0.3, 0.7).
double hump(const std::vector<double>& x) {
  const double dx = x[0] - 0.3;
  const double dy = x[1] - 0.7;
  return std::exp(-8.0 * (dx * dx + dy * dy));
}

double run_maximizer(bo::Maximizer& maximizer, int budget) {
  for (int i = 0; i < budget; ++i) {
    const auto x = maximizer.propose();
    maximizer.update(x, hump(x));
  }
  return maximizer.best_value();
}

TEST(BayesianOptimizer, ValidatesDims) {
  EXPECT_THROW(BayesianOptimizer(0, 1), std::invalid_argument);
}

TEST(BayesianOptimizer, ProposalsStayInUnitCube) {
  BayesianOptimizer opt(3, 42);
  for (int i = 0; i < 10; ++i) {
    const auto x = opt.propose();
    ASSERT_EQ(x.size(), 3u);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    opt.update(x, hump({x[0], x[1]}));
  }
}

TEST(BayesianOptimizer, TracksBestObservation) {
  BayesianOptimizer opt(2, 1);
  opt.update({0.1, 0.1}, 0.5);
  opt.update({0.2, 0.2}, 0.9);
  opt.update({0.3, 0.3}, 0.2);
  EXPECT_DOUBLE_EQ(opt.best_value(), 0.9);
  EXPECT_EQ(opt.best_point(), (std::vector<double>{0.2, 0.2}));
  EXPECT_EQ(opt.num_evaluations(), 3);
}

TEST(BayesianOptimizer, FindsTheHumpWithinFifteenTrials) {
  // The paper runs 15 BO trials per round (S4.2); on this smooth function
  // BO should land close to the optimum within that budget.
  double total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    BayesianOptimizer opt(2, seed);
    total += run_maximizer(opt, 15);
  }
  EXPECT_GT(total / 5, 0.85);
}

TEST(BayesianOptimizer, BeatsRandomSearchAtEqualBudget) {
  // Fig. 20's headline claim, on the synthetic hump: average best-found
  // value after 15 evaluations is higher for BO than for random search.
  double bo_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BayesianOptimizer opt(2, seed);
    bo_total += run_maximizer(opt, 15);
    RandomSearch rs(2, seed);
    random_total += run_maximizer(rs, 15);
  }
  EXPECT_GT(bo_total, random_total);
}

TEST(BayesianOptimizer, UcbAcquisitionAlsoFindsTheHump) {
  BayesianOptimizer::Options options;
  options.acquisition = BayesianOptimizer::Acquisition::kUpperConfidenceBound;
  double total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    BayesianOptimizer opt(2, seed, options);
    total += run_maximizer(opt, 15);
  }
  EXPECT_GT(total / 5, 0.8);
}

TEST(RandomSearch, UniformCoverage) {
  RandomSearch rs(1, 7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto x = rs.propose();
    lo = std::min(lo, x[0]);
    hi = std::max(hi, x[0]);
    rs.update(x, 0.0);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(GridSearch, ValidatesArguments) {
  EXPECT_THROW(GridSearch(0, 5), std::invalid_argument);
  EXPECT_THROW(GridSearch(2, 1), std::invalid_argument);
}

TEST(GridSearch, StartsAtMidpointAndSweepsFirstDimension) {
  GridSearch grid(2, 5);
  const auto first = grid.propose();
  EXPECT_DOUBLE_EQ(first[0], 0.0);   // first grid point of dim 0
  EXPECT_DOUBLE_EQ(first[1], 0.5);   // other dims at midpoint
  grid.update(first, 0.1);
  const auto second = grid.propose();
  EXPECT_DOUBLE_EQ(second[0], 0.25);
  EXPECT_DOUBLE_EQ(second[1], 0.5);
}

TEST(GridSearch, FixesBestCoordinateBeforeNextDimension) {
  GridSearch grid(2, 3);  // grid {0, 0.5, 1}
  // Dim 0 sweep: values 0->0.2, 0.5->0.9, 1->0.1. Best is x0=0.5.
  grid.update(grid.propose(), 0.2);
  grid.update(grid.propose(), 0.9);
  grid.update(grid.propose(), 0.1);
  const auto next = grid.propose();  // now sweeping dim 1
  EXPECT_DOUBLE_EQ(next[0], 0.5);
  EXPECT_DOUBLE_EQ(next[1], 0.0);
}

TEST(GridSearch, EventuallyFindsGoodValueOnSeparableFunction) {
  GridSearch grid(2, 10);
  const double best = run_maximizer(grid, 20);  // two full dimension sweeps
  EXPECT_GT(best, 0.8);
}

}  // namespace
