#include "cc/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cc/env.hpp"

namespace {

using cc::CcEnv;
using cc::CcEnvConfig;
using netgym::Rng;
using netgym::Trace;

Trace constant_trace(double mbps, double duration_s) {
  Trace t;
  for (double s = 0.0; s <= duration_s + 0.1; s += 0.1) {
    t.timestamps_s.push_back(s + 1e-4);
    t.bandwidth_mbps.push_back(mbps);
  }
  return t;
}

CcEnvConfig stable_config(double bw_mbps) {
  CcEnvConfig cfg;
  cfg.max_bw_mbps = bw_mbps;
  cfg.min_rtt_ms = 100.0;
  cfg.queue_packets = 50.0;
  cfg.duration_s = 30.0;
  return cfg;
}

double run_controller(netgym::Policy& policy, double bw_mbps,
                      double loss_rate = 0.0, std::uint64_t seed = 1) {
  CcEnvConfig cfg = stable_config(bw_mbps);
  cfg.loss_rate = loss_rate;
  CcEnv env(cfg, constant_trace(bw_mbps, cfg.duration_s), seed);
  Rng rng(seed);
  return netgym::run_episode(env, policy, rng).mean_reward;
}

double utilization_of(netgym::Policy& policy, double bw_mbps,
                      std::uint64_t seed = 1) {
  CcEnvConfig cfg = stable_config(bw_mbps);
  CcEnv env(cfg, constant_trace(bw_mbps, cfg.duration_s), seed);
  Rng rng(seed);
  netgym::run_episode(env, policy, rng);
  return env.totals().mean_throughput_mbps(cfg.duration_s) / bw_mbps;
}

/// All rule-based controllers must reach reasonable utilization on a stable
/// link without melting down on latency/loss.
class ControllerUtilization
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {
 public:
  static std::unique_ptr<netgym::Policy> make(const std::string& name) {
    if (name == "cubic") return std::make_unique<cc::CubicPolicy>();
    if (name == "bbr") return std::make_unique<cc::BbrPolicy>();
    if (name == "vivace") return std::make_unique<cc::VivacePolicy>();
    if (name == "copa") return std::make_unique<cc::CopaPolicy>();
    throw std::invalid_argument("unknown controller");
  }
};

TEST_P(ControllerUtilization, ReachesDecentUtilization) {
  const auto& [name, bw] = GetParam();
  auto policy = make(name);
  const double util = utilization_of(*policy, bw);
  EXPECT_GT(util, 0.5) << name << " at " << bw << " Mbps";
  EXPECT_LT(util, 1.05) << name << " at " << bw << " Mbps";
}

INSTANTIATE_TEST_SUITE_P(
    Controllers, ControllerUtilization,
    ::testing::Combine(::testing::Values("cubic", "bbr", "vivace", "copa"),
                       ::testing::Values(2.0, 10.0, 40.0)));

TEST(Cubic, BacksOffOnLoss) {
  // Cubic's reward collapses under random loss relative to lossless
  // conditions on the same link (S4.2's observation about Cubic).
  cc::CubicPolicy cubic;
  const double clean = run_controller(cubic, 20.0, 0.0);
  const double lossy = run_controller(cubic, 20.0, 0.03);
  EXPECT_LT(lossy, clean);
  // And Cubic's utilization under loss is visibly degraded.
  cc::CubicPolicy cubic2;
  CcEnvConfig cfg = stable_config(20.0);
  cfg.loss_rate = 0.03;
  CcEnv env(cfg, constant_trace(20.0, cfg.duration_s), 1);
  Rng rng(1);
  netgym::run_episode(env, cubic2, rng);
  EXPECT_LT(env.totals().mean_throughput_mbps(cfg.duration_s) / 20.0, 0.7);
}

TEST(Bbr, ToleratesRandomLossBetterThanCubic) {
  cc::BbrPolicy bbr;
  cc::CubicPolicy cubic;
  CcEnvConfig cfg = stable_config(20.0);
  cfg.loss_rate = 0.03;
  CcEnv env_bbr(cfg, constant_trace(20.0, cfg.duration_s), 1);
  CcEnv env_cubic(cfg, constant_trace(20.0, cfg.duration_s), 1);
  Rng rng(1);
  netgym::run_episode(env_bbr, bbr, rng);
  netgym::run_episode(env_cubic, cubic, rng);
  EXPECT_GT(env_bbr.totals().mean_throughput_mbps(cfg.duration_s),
            env_cubic.totals().mean_throughput_mbps(cfg.duration_s));
}

TEST(Bbr, LossResponseBoundsLossOnFadingLink) {
  // Bandwidth halves abruptly mid-episode: BBR's stale bandwidth estimate
  // would overdrive the link for a full btlbw window; the v2-style loss
  // response must keep total loss bounded.
  Trace fading;
  for (double s = 0.0; s <= 30.0; s += 0.1) {
    fading.timestamps_s.push_back(s + 1e-4);
    fading.bandwidth_mbps.push_back(s < 15.0 ? 12.0 : 1.5);
  }
  CcEnvConfig cfg = stable_config(12.0);
  CcEnv env(cfg, fading, 1);
  cc::BbrPolicy bbr;
  Rng rng(1);
  netgym::run_episode(env, bbr, rng);
  EXPECT_LT(env.totals().loss_fraction(), 0.2);
}

TEST(Oracle, TracksCapacityAlmostPerfectly) {
  CcEnvConfig cfg = stable_config(10.0);
  CcEnv env(cfg, constant_trace(10.0, cfg.duration_s), 1);
  cc::OraclePolicy oracle(env);
  Rng rng(1);
  netgym::run_episode(env, oracle, rng);
  const double util = env.totals().mean_throughput_mbps(cfg.duration_s) / 10.0;
  EXPECT_GT(util, 0.85);
}

TEST(Oracle, OutperformsControllersOnVolatileLink) {
  // On a rapidly changing link the oracle (which reads the trace) should be
  // at least as good as the online controllers.
  CcEnvConfig cfg = stable_config(10.0);
  cfg.bw_change_interval_s = 0.5;
  Rng trace_rng(9);
  netgym::CcTraceParams params{10.0, 0.5, 30.0};
  const Trace trace = netgym::generate_cc_trace(params, trace_rng);

  auto run = [&](netgym::Policy& p) {
    CcEnv env(cfg, trace, 1);
    Rng rng(1);
    return netgym::run_episode(env, p, rng).mean_reward;
  };
  CcEnv oracle_env(cfg, trace, 1);
  cc::OraclePolicy oracle(oracle_env);
  Rng rng(1);
  const double r_oracle =
      netgym::run_episode(oracle_env, oracle, rng).mean_reward;
  cc::CubicPolicy cubic;
  cc::BbrPolicy bbr;
  EXPECT_GT(r_oracle, run(cubic) - 5.0);
  EXPECT_GT(r_oracle, run(bbr) - 5.0);
}

TEST(RateController, ActionMovesRateTowardTarget) {
  // A controller demanding a huge rate must emit the max-up action; one
  // demanding a tiny rate must emit the max-down action.
  class FixedTarget : public cc::RateController {
   public:
    explicit FixedTarget(double target) : target_(target) {}

   protected:
    double target_rate_pkts(const MiView&, netgym::Rng&) override {
      return target_;
    }

   private:
    double target_;
  };

  netgym::Observation obs(CcEnv::kObsSize, 0.0);
  obs[CcEnv::kObsRate] = std::log10(2.0);  // encodes 100 pkts/s
  obs[CcEnv::kObsMinRtt] = 0.1;
  Rng rng(1);
  FixedTarget up(1e6);
  FixedTarget down(1.0);
  FixedTarget hold(100.0);
  EXPECT_EQ(up.act(obs, rng), cc::kRateActionCount - 1);
  EXPECT_EQ(down.act(obs, rng), 0);
  EXPECT_EQ(hold.act(obs, rng), 4);  // factor 1.0
}

TEST(Controllers, BeginEpisodeResetsState) {
  // After a loss-heavy episode, a reset Cubic must start in slow-start and
  // behave exactly as a fresh instance.
  cc::CubicPolicy seasoned;
  run_controller(seasoned, 2.0, 0.05, 3);
  seasoned.begin_episode();
  cc::CubicPolicy fresh;
  fresh.begin_episode();
  netgym::Observation obs(CcEnv::kObsSize, 0.0);
  obs[CcEnv::kObsRate] = std::log10(1.5);  // encodes 50 pkts/s
  obs[CcEnv::kObsMinRtt] = 0.1;
  obs[CcEnv::kObsNewestMi + 0] = 0.1;
  obs[CcEnv::kObsMiDuration] = 0.1;
  Rng rng(1);
  EXPECT_EQ(seasoned.act(obs, rng), fresh.act(obs, rng));
}

}  // namespace
