#include "cc/env.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using cc::CcEnv;
using cc::CcEnvConfig;
using netgym::Rng;
using netgym::Trace;

Trace constant_trace(double mbps, double duration_s) {
  Trace t;
  for (double s = 0.0; s <= duration_s + 0.1; s += 0.1) {
    t.timestamps_s.push_back(s + 1e-4);
    t.bandwidth_mbps.push_back(mbps);
  }
  return t;
}

constexpr int kHold = 4;  // action index with factor 1.0

CcEnvConfig basic_config() {
  CcEnvConfig cfg;
  cfg.max_bw_mbps = 3.0;
  cfg.min_rtt_ms = 100.0;
  cfg.queue_packets = 20.0;
  cfg.duration_s = 10.0;
  return cfg;
}

TEST(CcConfigSpace, MatchesTable4) {
  for (int which : {1, 2, 3}) {
    EXPECT_EQ(cc::cc_config_space(which).dims(), 5u);
  }
  const auto rl1 = cc::cc_config_space(1);
  const auto rl3 = cc::cc_config_space(3);
  for (std::size_t d = 0; d < rl1.dims(); ++d) {
    EXPECT_GE(rl1.param(d).lo, rl3.param(d).lo);
    EXPECT_LE(rl1.param(d).hi, rl3.param(d).hi);
  }
  EXPECT_THROW(cc::cc_config_space(4), std::invalid_argument);
}

TEST(CcConfigSpace, PointRoundTrip) {
  Rng rng(1);
  const auto space = cc::cc_config_space(3);
  const netgym::Config point = space.sample(rng);
  const netgym::Config back =
      cc::cc_point_from_config(cc::cc_config_from_point(point));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(back.values[i], point.values[i]);
  }
}

TEST(CcEnv, RateFactorsAreSortedAroundHold) {
  EXPECT_DOUBLE_EQ(cc::kRateFactors[kHold], 1.0);
  for (int i = 1; i < cc::kRateActionCount; ++i) {
    EXPECT_GT(cc::kRateFactors[i], cc::kRateFactors[i - 1]);
  }
}

TEST(CcEnv, EpisodeEndsAtConfiguredDuration) {
  CcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  env.reset();
  bool done = false;
  int steps = 0;
  while (!done && steps < 10000) {
    done = env.step(kHold).done;
    ++steps;
  }
  EXPECT_TRUE(done);
  EXPECT_GE(env.clock_s(), 10.0);
  EXPECT_THROW(env.step(kHold), std::logic_error);
}

TEST(CcEnv, DeliveredNeverExceedsSent) {
  CcEnv env(basic_config(), constant_trace(2.0, 30.0), 2);
  env.reset();
  Rng rng(3);
  bool done = false;
  while (!done) {
    done = env.step(rng.uniform_int(0, cc::kRateActionCount - 1)).done;
  }
  const CcEnv::Totals& totals = env.totals();
  EXPECT_GT(totals.sent_pkts, 0.0);
  EXPECT_LE(totals.delivered_pkts, totals.sent_pkts + 1e-6);
  EXPECT_NEAR(totals.delivered_pkts + totals.lost_pkts, totals.sent_pkts,
              totals.sent_pkts * 0.2 + env.config().queue_packets + 1.0);
}

TEST(CcEnv, OverdrivingTheLinkCausesLossAndLatency) {
  CcEnvConfig cfg = basic_config();
  cfg.max_bw_mbps = 1.0;
  CcEnv env(cfg, constant_trace(1.0, 30.0), 1);
  netgym::Observation obs = env.reset();
  // Ramp the rate up hard: +50% every MI for 20 MIs (~57x).
  for (int i = 0; i < 20; ++i) obs = env.step(8).observation;
  const int base = CcEnv::kObsNewestMi;
  EXPECT_GT(obs[base + 3], 0.3);  // heavy loss
  EXPECT_GT(obs[base + 0], 0.5);  // latency well above propagation
}

TEST(CcEnv, ModestRateKeepsLatencyNearPropagation) {
  CcEnvConfig cfg = basic_config();
  cfg.max_bw_mbps = 10.0;
  CcEnv env(cfg, constant_trace(10.0, 30.0), 1);
  netgym::Observation obs = env.reset();
  // The starting rate (~1 Mbps) is far below 10 Mbps capacity.
  for (int i = 0; i < 10; ++i) obs = env.step(kHold).observation;
  const int base = CcEnv::kObsNewestMi;
  EXPECT_LT(obs[base + 0], 0.1);   // latency ratio ~1
  EXPECT_LT(obs[base + 3], 0.01);  // no loss
}

TEST(CcEnv, RandomLossRateIsReflectedInStats) {
  CcEnvConfig cfg = basic_config();
  cfg.loss_rate = 0.04;
  cfg.max_bw_mbps = 50.0;  // no congestion loss
  CcEnv env(cfg, constant_trace(50.0, 30.0), 3);
  env.reset();
  bool done = false;
  while (!done) done = env.step(kHold).done;
  EXPECT_NEAR(env.totals().loss_fraction(), 0.04, 0.01);
}

TEST(CcEnv, RewardMatchesTable1Formula) {
  CcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  env.reset();
  const auto result = env.step(kHold);
  const int base = CcEnv::kObsNewestMi;
  const double thr_mbps = std::pow(10.0, result.observation[base + 4]) - 1.0;
  const double lat_s =
      (result.observation[base + 0] + 1.0) * env.config().min_rtt_ms / 1000.0;
  const double loss = result.observation[base + 3];
  // Latency term uses one-way delay (RTT / 2); see CcRewardWeights.
  EXPECT_NEAR(result.reward,
              120.0 * thr_mbps - 1000.0 * lat_s / 2.0 - 2000.0 * loss, 1.0);
}

TEST(CcEnv, ActionScalesRateMultiplicatively) {
  CcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  env.reset();
  const double r0 = env.rate_pkts_per_s();
  env.step(8);  // x1.5
  EXPECT_NEAR(env.rate_pkts_per_s(), r0 * 1.5, 1e-9);
  env.step(0);  // x0.5
  EXPECT_NEAR(env.rate_pkts_per_s(), r0 * 0.75, 1e-9);
}

TEST(CcEnv, ValidatesConstructionAndActions) {
  EXPECT_THROW(CcEnv(basic_config(), Trace{}, 1), std::invalid_argument);
  CcEnvConfig bad = basic_config();
  bad.loss_rate = 1.5;
  EXPECT_THROW(CcEnv(bad, constant_trace(1.0, 30.0), 1),
               std::invalid_argument);
  CcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  env.reset();
  EXPECT_THROW(env.step(-1), std::invalid_argument);
  EXPECT_THROW(env.step(cc::kRateActionCount), std::invalid_argument);
}

TEST(CcEnv, DeterministicGivenSeed) {
  CcEnv a(basic_config(), constant_trace(3.0, 30.0), 7);
  CcEnv b(basic_config(), constant_trace(3.0, 30.0), 7);
  a.reset();
  b.reset();
  for (int i = 0; i < 20; ++i) {
    const auto ra = a.step(i % cc::kRateActionCount);
    const auto rb = b.step(i % cc::kRateActionCount);
    EXPECT_EQ(ra.reward, rb.reward);
    EXPECT_EQ(ra.observation, rb.observation);
  }
}

TEST(MakeCcEnv, SyntheticTraceRespectsConfig) {
  CcEnvConfig cfg = basic_config();
  cfg.max_bw_mbps = 8.0;
  Rng rng(5);
  auto env = cc::make_cc_env(cfg, rng);
  EXPECT_LE(env->trace().max_bandwidth(), 8.0 + 1e-9);
  EXPECT_GE(env->trace().duration_s(), cfg.duration_s - 0.2);
}

TEST(CcEnv, MiLatencyLogMatchesTotals) {
  CcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  env.reset();
  bool done = false;
  int steps = 0;
  while (!done) {
    done = env.step(kHold).done;
    ++steps;
  }
  EXPECT_EQ(env.totals().mi_latencies_s.size(),
            static_cast<std::size_t>(steps));
  EXPECT_GT(env.totals().mean_latency_s(),
            env.config().min_rtt_ms / 1000.0 - 1e-9);
}

}  // namespace
