// Tests for the per-packet CC backend, including cross-validation against
// the fluid backend on identical scenarios.

#include "cc/packet_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cc/baselines.hpp"

namespace {

using cc::CcEnv;
using cc::CcEnvConfig;
using cc::PacketCcEnv;
using netgym::Rng;
using netgym::Trace;

constexpr int kHold = 4;

Trace constant_trace(double mbps, double duration_s) {
  Trace t;
  for (double s = 0.0; s <= duration_s + 0.1; s += 0.1) {
    t.timestamps_s.push_back(s + 1e-4);
    t.bandwidth_mbps.push_back(mbps);
  }
  return t;
}

CcEnvConfig basic_config(double bw = 3.0) {
  CcEnvConfig cfg;
  cfg.max_bw_mbps = bw;
  cfg.min_rtt_ms = 100.0;
  cfg.queue_packets = 20.0;
  cfg.duration_s = 20.0;
  return cfg;
}

TEST(PacketCcEnv, SharesInterfaceWithFluidBackend) {
  PacketCcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  EXPECT_EQ(env.action_count(), cc::kRateActionCount);
  EXPECT_EQ(env.observation_size(), static_cast<std::size_t>(CcEnv::kObsSize));
  const auto obs = env.reset();
  EXPECT_EQ(obs.size(), static_cast<std::size_t>(CcEnv::kObsSize));
}

TEST(PacketCcEnv, ValidatesConstructionAndActions) {
  EXPECT_THROW(PacketCcEnv(basic_config(), Trace{}, 1),
               std::invalid_argument);
  PacketCcEnv env(basic_config(), constant_trace(3.0, 30.0), 1);
  env.reset();
  EXPECT_THROW(env.step(-1), std::invalid_argument);
  EXPECT_THROW(env.step(cc::kRateActionCount), std::invalid_argument);
}

TEST(PacketCcEnv, ConservationAndTermination) {
  PacketCcEnv env(basic_config(), constant_trace(3.0, 30.0), 2);
  env.reset();
  Rng rng(3);
  bool done = false;
  int steps = 0;
  while (!done && steps < 5000) {
    done = env.step(rng.uniform_int(0, cc::kRateActionCount - 1)).done;
    ++steps;
  }
  ASSERT_TRUE(done);
  const auto& totals = env.totals();
  EXPECT_GT(totals.sent_pkts, 0.0);
  EXPECT_LE(totals.delivered_pkts, totals.sent_pkts + 1e-6);
  // Per-packet accounting is exact: sent = delivered + lost + still queued.
  EXPECT_NEAR(totals.delivered_pkts + totals.lost_pkts, totals.sent_pkts,
              env.config().queue_packets + 1.0);
}

TEST(PacketCcEnv, RandomLossMatchesConfiguredRate) {
  CcEnvConfig cfg = basic_config(50.0);
  cfg.loss_rate = 0.05;
  PacketCcEnv env(cfg, constant_trace(50.0, 30.0), 3);
  env.reset();
  bool done = false;
  while (!done) done = env.step(kHold).done;
  EXPECT_NEAR(env.totals().loss_fraction(), 0.05, 0.02);
}

TEST(PacketCcEnv, OverdrivingCausesQueueingAndDrops) {
  CcEnvConfig cfg = basic_config(1.0);
  PacketCcEnv env(cfg, constant_trace(1.0, 30.0), 1);
  netgym::Observation obs = env.reset();
  for (int i = 0; i < 20; ++i) obs = env.step(8).observation;  // x1.5 per MI
  const int base = CcEnv::kObsNewestMi;
  EXPECT_GT(obs[base + 3], 0.3);  // drops
  EXPECT_GT(obs[base + 0], 0.5);  // latency inflation
}

/// Cross-validation: fluid and packet backends must agree on aggregate
/// behaviour for the same scenario and policy (within discretization slack).
class BackendAgreement : public ::testing::TestWithParam<double> {};

TEST_P(BackendAgreement, OracleThroughputMatchesAcrossBackends) {
  const double bw = GetParam();
  const CcEnvConfig cfg = basic_config(bw);
  const Trace trace = constant_trace(bw, 30.0);

  CcEnv fluid(cfg, trace, 1);
  cc::OraclePolicy fluid_oracle(fluid);
  Rng r1(1);
  netgym::run_episode(fluid, fluid_oracle, r1);
  const double fluid_thpt =
      fluid.totals().mean_throughput_mbps(cfg.duration_s);

  PacketCcEnv packet(cfg, trace, 1);
  // The oracle reads the trace via the env reference; reuse the fluid env's
  // trace through a fresh oracle bound to a fluid env on the same trace is
  // not possible here, so drive the packet env with a fixed near-capacity
  // rate instead: hold after ramping to ~bw.
  Rng r2(1);
  netgym::Observation obs = packet.reset();
  bool done = false;
  const double target = bw * 1e6 / CcEnv::kPacketBits;
  while (!done) {
    // Steer toward the capacity rate like the oracle controller would.
    const double current = packet.rate_pkts_per_s();
    int best = kHold;
    double best_dist = 1e18;
    for (int a = 0; a < cc::kRateActionCount; ++a) {
      const double next = current * cc::kRateFactors[a];
      const double dist = std::abs(std::log(next / target));
      if (dist < best_dist) {
        best_dist = dist;
        best = a;
      }
    }
    const auto result = packet.step(best);
    obs = result.observation;
    done = result.done;
  }
  const double packet_thpt =
      packet.totals().mean_throughput_mbps(cfg.duration_s);

  EXPECT_NEAR(packet_thpt, fluid_thpt, 0.2 * bw)
      << "fluid " << fluid_thpt << " vs packet " << packet_thpt;
  // Both backends should achieve solid utilization.
  EXPECT_GT(packet_thpt / bw, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BackendAgreement,
                         ::testing::Values(1.0, 3.0, 10.0, 30.0));

TEST(BackendAgreement, LatencyFloorsMatch) {
  const CcEnvConfig cfg = basic_config(10.0);
  const Trace trace = constant_trace(10.0, 20.0);
  CcEnv fluid(cfg, trace, 1);
  PacketCcEnv packet(cfg, trace, 1);
  fluid.reset();
  packet.reset();
  bool done = false;
  while (!done) done = fluid.step(kHold).done;  // low rate: empty queues
  done = false;
  while (!done) done = packet.step(kHold).done;
  EXPECT_NEAR(fluid.totals().mean_latency_s(),
              packet.totals().mean_latency_s(), 0.02);
}

TEST(PacketCcEnv, RuleBasedControllersRunOnPacketBackend) {
  // Same Policy objects drive either backend.
  for (const char* name : {"cubic", "bbr", "vivace", "copa"}) {
    CcEnvConfig cfg = basic_config(10.0);
    PacketCcEnv env(cfg, constant_trace(10.0, 20.0), 4);
    std::unique_ptr<netgym::Policy> policy;
    const std::string n = name;
    if (n == "cubic") policy = std::make_unique<cc::CubicPolicy>();
    if (n == "bbr") policy = std::make_unique<cc::BbrPolicy>();
    if (n == "vivace") policy = std::make_unique<cc::VivacePolicy>();
    if (n == "copa") policy = std::make_unique<cc::CopaPolicy>();
    Rng rng(2);
    const auto stats = netgym::run_episode(env, *policy, rng);
    EXPECT_GT(stats.steps, 5) << name;
    const double util =
        env.totals().mean_throughput_mbps(cfg.duration_s) / 10.0;
    EXPECT_GT(util, 0.4) << name;
    EXPECT_LT(util, 1.05) << name;
  }
}

TEST(PacketCcEnv, DeterministicGivenSeed) {
  PacketCcEnv a(basic_config(), constant_trace(3.0, 30.0), 7);
  PacketCcEnv b(basic_config(), constant_trace(3.0, 30.0), 7);
  a.reset();
  b.reset();
  for (int i = 0; i < 20; ++i) {
    const auto ra = a.step(i % cc::kRateActionCount);
    const auto rb = b.step(i % cc::kRateActionCount);
    ASSERT_EQ(ra.reward, rb.reward);
    ASSERT_EQ(ra.observation, rb.observation);
  }
}

TEST(PacketCcEnv, QueueBoundIsRespected) {
  // With a 5-packet queue and a grossly overdriven link, per-packet
  // accounting must never hold more than 5 packets in flight in the queue:
  // losses absorb the rest, so delivered <= capacity * time + queue.
  CcEnvConfig cfg = basic_config(1.0);
  cfg.queue_packets = 5.0;
  PacketCcEnv env(cfg, constant_trace(1.0, 30.0), 2);
  env.reset();
  bool done = false;
  while (!done) done = env.step(8).done;  // ramp x1.5 every MI
  // The final monitor interval may overshoot duration_s; bound by the
  // actually elapsed clock.
  const double capacity_pkts =
      1.0 * 1e6 / CcEnv::kPacketBits * env.clock_s();
  EXPECT_LE(env.totals().delivered_pkts, capacity_pkts + cfg.queue_packets + 2);
}

}  // namespace
