// Property tests for the CC simulator over random RL3 configurations and
// random action sequences.

#include <gtest/gtest.h>

#include <cmath>

#include "cc/env.hpp"

namespace {

using cc::CcEnv;
using netgym::Rng;

class CcEnvProperties : public ::testing::TestWithParam<int> {};

TEST_P(CcEnvProperties, InvariantsHoldUnderRandomPlay) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const netgym::ConfigSpace space = cc::cc_config_space(3);
  cc::CcEnvConfig cfg = cc::cc_config_from_point(space.sample(rng));
  cfg.duration_s = 10.0;  // keep the property sweep fast
  auto env = cc::make_cc_env(cfg, rng);

  netgym::Observation obs = env->reset();
  bool done = false;
  int steps = 0;
  while (!done && steps < 5000) {
    for (double v : obs) ASSERT_TRUE(std::isfinite(v));
    const auto result =
        env->step(rng.uniform_int(0, cc::kRateActionCount - 1));
    ASSERT_TRUE(std::isfinite(result.reward));
    obs = result.observation;
    done = result.done;
    ++steps;
  }
  ASSERT_TRUE(done) << "episode did not terminate";

  const CcEnv::Totals& totals = env->totals();
  // Conservation: delivered <= sent; delivered + lost <= sent + queue slack.
  EXPECT_LE(totals.delivered_pkts, totals.sent_pkts + 1e-6);
  EXPECT_GE(totals.lost_pkts, -1e-9);
  EXPECT_LE(totals.delivered_pkts + totals.lost_pkts,
            totals.sent_pkts + cfg.queue_packets + 1.0);
  // Loss fraction in [0, 1]; latency at least the propagation delay.
  EXPECT_GE(totals.loss_fraction(), 0.0);
  EXPECT_LE(totals.loss_fraction(), 1.0);
  if (totals.delivered_pkts > 0) {
    EXPECT_GE(totals.mean_latency_s(), cfg.min_rtt_ms / 1000.0 - 1e-9);
  }
  // Throughput cannot exceed the trace's maximum bandwidth.
  EXPECT_LE(totals.mean_throughput_mbps(cfg.duration_s),
            env->trace().max_bandwidth() * 1.05 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, CcEnvProperties,
                         ::testing::Range(0, 20));

TEST(CcEnvProperty, RateIsClampedAtBothEnds) {
  cc::CcEnvConfig cfg;
  cfg.duration_s = 60.0;
  netgym::Rng rng(3);
  auto env = cc::make_cc_env(cfg, rng);
  env->reset();
  // Slam the rate downward for many MIs: it must stay positive.
  for (int i = 0; i < 40; ++i) {
    if (env->step(0).done) break;
  }
  EXPECT_GT(env->rate_pkts_per_s(), 0.0);
}

}  // namespace
