// Cross-cutting properties that span modules: surrogate-model behaviour
// under growing evidence, planner lookahead value, trace wrap-around, and
// numeric robustness of the optimizer stack.

#include <gtest/gtest.h>

#include <cmath>

#include "abr/baselines.hpp"
#include "abr/env.hpp"
#include "bo/search.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace {

using netgym::Rng;

TEST(GpContraction, PosteriorVarianceShrinksWithEvidence) {
  // More observations near the probe tighten the posterior. Targets
  // alternate +-1 so the internal target standardization stays roughly
  // constant and does not mask the contraction (predict() reports variance
  // in original units, rescaled by the fitted target spread).
  bo::GaussianProcess gp;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  const std::vector<double> probe{0.5};
  double first_var = 0.0, last_var = 0.0;
  for (int n = 1; n <= 8; ++n) {
    xs.push_back({0.5 + 0.05 * (n % 2 == 0 ? n : -n) / 8.0});
    ys.push_back(n % 2 == 0 ? 1.0 : -1.0);
    gp.fit(xs, ys);
    const double var = gp.predict(probe).variance;
    if (n == 2) first_var = var;
    if (n >= 3) {
      EXPECT_LE(var, last_var * 1.15 + 1e-9) << "after " << n << " points";
    }
    last_var = var;
  }
  EXPECT_LT(last_var, 0.5 * first_var);
}

TEST(Maximizer, BestValueIsMonotoneNonDecreasing) {
  bo::BayesianOptimizer opt(2, 5);
  Rng rng(4);
  double last = -1e300;
  for (int i = 0; i < 25; ++i) {
    const auto x = opt.propose();
    opt.update(x, rng.uniform(-1.0, 1.0));
    EXPECT_GE(opt.best_value(), last);
    last = opt.best_value();
  }
}

TEST(AbrEnv, TraceWrapsWhenVideoOutlastsIt) {
  // A 30 s trace under a 120 s video: downloads beyond the trace span must
  // keep working (the trace wraps), and every chunk must download.
  netgym::Trace t;
  for (double s = 0.0; s <= 30.0; s += 1.0) {
    t.timestamps_s.push_back(s + 1e-4);
    t.bandwidth_mbps.push_back(s < 15 ? 1.0 : 4.0);
  }
  abr::AbrEnvConfig cfg;
  cfg.video_length_s = 120.0;
  abr::AbrEnv env(cfg, t, 1);
  env.reset();
  int steps = 0;
  bool done = false;
  while (!done) {
    done = env.step(1).done;
    ++steps;
  }
  EXPECT_EQ(steps, env.video().num_chunks());
  EXPECT_GT(env.clock_s(), 30.0);  // the session really outlasted the trace
}

TEST(Mpc, LongerHorizonDoesNotHurtOnAverage) {
  // Aggregate over several environments: 5-chunk lookahead should at least
  // match 1-chunk lookahead (it can see bitrate-switch costs coming).
  double short_total = 0.0, long_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    abr::AbrEnvConfig cfg;
    cfg.max_bw_mbps = 4.0;
    cfg.bw_min_ratio = 0.3;
    cfg.video_length_s = 80.0;
    Rng rng(seed);
    auto env1 = abr::make_abr_env(cfg, rng);
    Rng rng2(seed);
    auto env5 = abr::make_abr_env(cfg, rng2);
    abr::RobustMpcPolicy mpc1(1);
    abr::RobustMpcPolicy mpc5(5);
    Rng e1(1), e5(1);
    short_total += netgym::run_episode(*env1, mpc1, e1).total_reward;
    long_total += netgym::run_episode(*env5, mpc5, e5).total_reward;
  }
  EXPECT_GE(long_total, short_total - 1.0);
}

TEST(Adam, ZeroGradientsAreANoOpAndStayFinite) {
  nn::Adam opt(4);
  std::vector<double> params{1.0, -2.0, 3.0, 0.0};
  const std::vector<double> before = params;
  for (int i = 0; i < 50; ++i) opt.step(params, {0.0, 0.0, 0.0, 0.0});
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(std::isfinite(params[i]));
    EXPECT_NEAR(params[i], before[i], 1e-9);
  }
}

TEST(Mlp, HandlesExtremeInputsWithoutNaNs) {
  Rng rng(1);
  nn::Mlp net({4, 16, 3}, nn::Activation::kTanh, rng);
  const std::vector<double> extreme{1e6, -1e6, 0.0, 1e-12};
  const auto out = net.forward(extreme);
  for (double v : out) EXPECT_TRUE(std::isfinite(v));
  net.zero_grad();
  net.backward({1.0, -1.0, 0.5});
  for (double g : net.grads()) EXPECT_TRUE(std::isfinite(g));
}

TEST(Softmax, ExtremeLogitsRemainAProbability) {
  const auto p = nn::softmax({-1e9, 0.0, 1e9});
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(p[2], 1.0, 1e-9);
}

}  // namespace
