// Worker-count invariance of the distributed curriculum trainer
// (DESIGN.md S5i), the dist analogue of parallel_determinism_test: the
// coordinator forks every per-item RNG stream serially before shipping work,
// so round-by-round results are bit-identical between the in-process path
// (workers=0, no hooks) and any worker pool -- here 1 and 2 workers, the
// per-round comparison catching the first divergent round instead of only
// the final state.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/parallel.hpp"

namespace {

struct PoolGuard {
  ~PoolGuard() { netgym::set_num_threads(0); }
};

struct RoundTrace {
  std::vector<genet::CurriculumRound> rounds;
  std::vector<double> params;
};

RoundTrace run_rounds() {
  genet::LbAdapter adapter(1);
  genet::SearchOptions search;
  search.bo_trials = 3;
  search.envs_per_eval = 3;
  genet::CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 2;
  options.seed = 17;
  genet::CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
  RoundTrace trace;
  for (int r = 0; r < options.rounds; ++r) {
    trace.rounds.push_back(trainer.run_round());
  }
  trace.params = trainer.trainer().snapshot();
  return trace;
}

void expect_identical(const RoundTrace& got, const RoundTrace& expected,
                      const std::string& label) {
  ASSERT_EQ(got.rounds.size(), expected.rounds.size()) << label;
  for (std::size_t r = 0; r < expected.rounds.size(); ++r) {
    EXPECT_EQ(got.rounds[r].selection_score, expected.rounds[r].selection_score)
        << label << " round " << r;
    EXPECT_EQ(got.rounds[r].train_reward, expected.rounds[r].train_reward)
        << label << " round " << r;
    EXPECT_EQ(got.rounds[r].promoted.values,
              expected.rounds[r].promoted.values)
        << label << " round " << r;
  }
  EXPECT_EQ(got.params, expected.params) << label;
}

TEST(DistDeterminism, WorkerCountCannotChangeAnyRoundBit) {
  PoolGuard guard;
  netgym::set_num_threads(1);
  const RoundTrace expected = run_rounds();  // workers=0: no hooks

  for (int workers : {1, 2}) {
    dist::Options options;
    options.workers = workers;
    options.worker_exe = GENET_CLI_PATH;
    options.worker_args = {"dist-worker"};
    dist::Coordinator coordinator(options);
    coordinator.install_hooks();
    const RoundTrace distributed = run_rounds();
    expect_identical(distributed, expected,
                     std::to_string(workers) + " workers");
    EXPECT_EQ(coordinator.reassignments(), 0);
  }
}

TEST(DistDeterminism, HooksUninstallWithTheCoordinator) {
  // After the coordinator is gone the gap-eval hook must be gone too:
  // a fresh run takes the in-process path and still matches.
  PoolGuard guard;
  netgym::set_num_threads(1);
  {
    dist::Options options;
    options.workers = 1;
    options.worker_exe = GENET_CLI_PATH;
    options.worker_args = {"dist-worker"};
    dist::Coordinator coordinator(options);
    coordinator.install_hooks();
    EXPECT_TRUE(genet::gap_eval_hook_installed());
    EXPECT_TRUE(genet::train_model_hook_installed());
  }
  EXPECT_FALSE(genet::gap_eval_hook_installed());
  EXPECT_FALSE(genet::train_model_hook_installed());
}

}  // namespace
