// Kill-one-worker determinism suite (DESIGN.md S5i): a distributed
// curriculum run that loses a worker mid-round -- via the deterministic
// kill-injection hook or an asynchronous SIGKILL from outside -- must
// reassign the dead worker's in-flight work and finish with training state
// byte-identical to the uninterrupted single-process run. The coordinator
// spawns the real genet_cli binary (GENET_CLI_PATH) as its workers, so the
// whole fork/exec + socketpair + hello path is under test, not a mock.

#include <gtest/gtest.h>

#include <signal.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "genet/zoo.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/parallel.hpp"
#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"

namespace {

/// Restores the global pool to its default size when a test exits.
struct PoolGuard {
  ~PoolGuard() { netgym::set_num_threads(0); }
};

dist::Options worker_options(int workers) {
  dist::Options options;
  options.workers = workers;
  options.worker_exe = GENET_CLI_PATH;
  options.worker_args = {"dist-worker"};
  options.timeout_ms = 120000;
  return options;
}

/// One small Genet curriculum run; returns the final trainer checkpoint in
/// its canonical on-disk byte encoding (parameters, optimizer state, RNG
/// streams, scheme state -- everything), the strongest equality available.
std::string run_curriculum_bytes() {
  genet::LbAdapter adapter(1);
  genet::SearchOptions search;
  search.bo_trials = 3;
  search.envs_per_eval = 4;
  genet::CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 2;
  options.seed = 21;
  genet::CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
  trainer.run();
  // Pid-unique: every DistKillWorker test calls this, and ctest runs them
  // as concurrent processes sharing one temp dir.
  const std::string path = ::testing::TempDir() + "dist_kill_curriculum_" +
                           std::to_string(::getpid()) + ".ckpt";
  trainer.save_checkpoint(path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>{});
  std::remove(path.c_str());
  return bytes;
}

TEST(DistKillWorker, KilledWorkerIsReassignedAndResultBitIdentical) {
  // Baseline: fully in-process (no hooks installed).
  PoolGuard guard;
  netgym::set_num_threads(1);
  const std::string expected = run_curriculum_bytes();
  ASSERT_FALSE(expected.empty());

  // Distributed, 4 workers, worker 0 SIGKILLed right after its first
  // dispatched work unit -- guaranteeing a unit is in flight when it dies.
  dist::Options options = worker_options(4);
  options.kill_worker0_after_sends = 1;
  dist::Coordinator coordinator(options);
  ASSERT_EQ(coordinator.alive_workers(), 4);
  coordinator.install_hooks();
  const std::string distributed = run_curriculum_bytes();

  EXPECT_EQ(coordinator.alive_workers(), 3) << "worker 0 should be dead";
  EXPECT_GE(coordinator.reassignments(), 1)
      << "the killed worker's in-flight unit must have been reassigned";
  EXPECT_EQ(distributed, expected)
      << "kill-and-reassign must not change a single byte of training state";
}

TEST(DistKillWorker, AsyncExternalSigkillAlsoConvergesIdentically) {
  // Same contract with a kill the coordinator cannot anticipate: SIGKILL
  // sent from the test process between rounds, no injection hook involved.
  PoolGuard guard;
  netgym::set_num_threads(1);
  const std::string expected = run_curriculum_bytes();

  dist::Coordinator coordinator(worker_options(3));
  coordinator.install_hooks();
  const std::vector<pid_t> pids = coordinator.worker_pids();
  ASSERT_EQ(pids.size(), 3u);
  ASSERT_EQ(::kill(pids.back(), SIGKILL), 0);

  const std::string distributed = run_curriculum_bytes();
  EXPECT_EQ(coordinator.alive_workers(), 2);
  EXPECT_EQ(distributed, expected);
}

TEST(DistKillWorker, ZooBatchTrainingOnWorkersMatchesLocal) {
  // Model-zoo batch trainings shipped to workers return the same parameter
  // bits the local trainer produces, and land in the on-disk cache.
  PoolGuard guard;
  netgym::set_num_threads(1);
  genet::TrainModelRequest request;
  request.adapter_spec = "lb/1";
  request.iterations = 3;
  request.seed = 13;
  const std::vector<double> expected =
      genet::train_model_for_request(request);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("dist_zoo_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  {
    dist::Coordinator coordinator(worker_options(2));
    coordinator.install_hooks();
    genet::ModelZoo zoo(dir.string());
    genet::ModelZoo::TrainSpec spec;
    spec.key = "lb-rl1-seed13-it3";
    spec.adapter_spec = "lb/1";
    spec.iterations = 3;
    spec.seed = 13;
    const auto trained = zoo.get_or_train_batch({spec, spec});
    ASSERT_EQ(trained.size(), 2u);
    EXPECT_EQ(trained[0], expected);
    EXPECT_EQ(trained[1], expected);
    EXPECT_TRUE(zoo.contains(spec.key));
  }
  std::filesystem::remove_all(dir);
}

TEST(DistKillWorker, TracedRunWithKillIsByteIdenticalAndTraceStaysValid) {
  // Distributed trace propagation under worker death (DESIGN.md S5j): with
  // tracing on and worker 0 SIGKILLed mid-round, (a) training state is still
  // byte-identical to the untraced in-process run -- span shipping is purely
  // observational; (b) the surviving workers' spans land in the merged
  // registry; (c) the dead worker's unshipped spans are counted as a lost
  // batch, never written as a corrupt trace; (d) the merged Chrome trace
  // flushes and names the worker lanes.
  PoolGuard guard;
  netgym::set_num_threads(1);
  const std::string expected = run_curriculum_bytes();

  netgym::tracing::start();
  dist::Options options = worker_options(4);
  options.kill_worker0_after_sends = 1;
  std::string distributed;
  std::int64_t reassigned = 0;
  {
    dist::Coordinator coordinator(options);
    coordinator.install_hooks();
    distributed = run_curriculum_bytes();
    EXPECT_EQ(coordinator.alive_workers(), 3) << "worker 0 should be dead";
    reassigned = coordinator.reassignments();
  }
  EXPECT_EQ(distributed, expected)
      << "tracing + kill must not change a single byte of training state";
  EXPECT_GE(reassigned, 1);
  EXPECT_GT(netgym::tracing::remote_span_count(), 0u)
      << "surviving workers' spans must have shipped back";

  double batches_lost = 0.0;
  double spans_shipped = 0.0;
  for (const auto& entry :
       netgym::telemetry::Registry::instance().snapshot()) {
    if (entry.name == "dist.trace_batches_lost") batches_lost = entry.value;
    if (entry.name == "dist.trace_spans_shipped") spans_shipped = entry.value;
  }
  EXPECT_GE(batches_lost, 1.0)
      << "the killed worker's unshipped spans must be counted as lost";
  EXPECT_GE(spans_shipped, 1.0);

  const std::string path = ::testing::TempDir() + "dist_kill_trace.json";
  EXPECT_GT(netgym::tracing::write_chrome_trace(path), 0u);
  netgym::tracing::stop();
  std::ifstream in(path, std::ios::binary);
  const std::string trace(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>{});
  std::remove(path.c_str());
  EXPECT_NE(trace.find("\"worker-"), std::string::npos)
      << "merged trace must carry worker process lanes";
  EXPECT_NE(trace.find("dist.eval"), std::string::npos);
  EXPECT_NE(trace.find("worker.eval_item"), std::string::npos);
}

TEST(DistKillWorker, UnitFailingEveryAttemptIsFatalNotSilent) {
  // A unit that keeps killing its worker must eventually fail the run
  // loudly: losing every worker to the same work unit cannot loop forever
  // or quietly drop the unit. max_attempts=1 with a kill on the very first
  // send makes the first death fatal deterministically.
  PoolGuard guard;
  netgym::set_num_threads(1);
  dist::Options options = worker_options(1);
  options.kill_worker0_after_sends = 1;
  options.max_attempts = 1;
  dist::Coordinator coordinator(options);
  coordinator.install_hooks();
  EXPECT_THROW(run_curriculum_bytes(), std::runtime_error);
}

}  // namespace
