// Wire-format tests of the distributed-training protocol (DESIGN.md S5i):
// roundtrips preserve exact double bit patterns, the frame reader reassembles
// byte-dribbled and torn input, oversized and corrupt frames are rejected
// before any message object exists (decoders are pure: they either return a
// fully validated message or throw), and the committed golden fixture pins
// the bytes a v2 build wrote so future builds keep reading them.

#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"
#include "netgym/tracing.hpp"
#include "serve/frame.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Feed `bytes` one byte at a time and collect every completed frame body.
std::vector<std::string> reassemble_bytewise(const std::string& bytes,
                                             std::uint32_t max_frame) {
  serve::FrameReader reader(max_frame);
  std::vector<std::string> bodies;
  for (char c : bytes) {
    reader.feed(&c, 1);
    while (auto body = reader.next()) bodies.push_back(std::move(*body));
  }
  return bodies;
}

TEST(DistProtocol, HelloRoundtripsAllFields) {
  dist::Hello hello;
  hello.math_mode = "fast";
  hello.threads = 7;
  hello.trace_id = 0xFEDCBA9876543210ull;  // exercises the full u64 range
  hello.worker_ordinal = 3;
  hello.trace_enabled = 1;
  hello.trace_capacity = 8192;
  hello.trace_ship_max_bytes = 65536;
  std::string out;
  dist::encode_hello(out, hello);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(serve::type_of(*body), serve::MsgType::kDistHello);
  const dist::Hello back = dist::decode_hello(*body);
  EXPECT_EQ(back.version, dist::kDistProtocolVersion);
  EXPECT_EQ(back.math_mode, "fast");
  EXPECT_EQ(back.threads, 7);
  EXPECT_EQ(back.trace_id, 0xFEDCBA9876543210ull);
  EXPECT_EQ(back.worker_ordinal, 3);
  EXPECT_EQ(back.trace_enabled, 1);
  EXPECT_EQ(back.trace_capacity, 8192);
  EXPECT_EQ(back.trace_ship_max_bytes, 65536);
}

TEST(DistProtocol, EvalSetupPreservesExactDoubleBits) {
  dist::EvalSetup setup;
  setup.eval_id = 123456789012345ull;
  setup.adapter_spec = "abr/3";
  setup.kind = "optimum";
  setup.baseline = "";
  setup.config = {-0.0, std::numeric_limits<double>::denorm_min(),
                  0.1 + 0.2,  // not representable as 0.3: pins exactness
                  std::numeric_limits<double>::max()};
  setup.policy_params = {1.0 / 3.0, -2.5};
  setup.greedy = 0;
  std::string out;
  dist::encode_eval_setup(out, setup);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  const dist::EvalSetup back = dist::decode_eval_setup(*reader.next());
  EXPECT_EQ(back.eval_id, setup.eval_id);
  EXPECT_EQ(back.adapter_spec, "abr/3");
  EXPECT_EQ(back.kind, "optimum");
  EXPECT_EQ(back.greedy, 0);
  ASSERT_EQ(back.config.size(), setup.config.size());
  for (std::size_t i = 0; i < setup.config.size(); ++i) {
    EXPECT_TRUE(same_bits(back.config[i], setup.config[i])) << "config " << i;
  }
  ASSERT_EQ(back.policy_params.size(), setup.policy_params.size());
  for (std::size_t i = 0; i < setup.policy_params.size(); ++i) {
    EXPECT_TRUE(same_bits(back.policy_params[i], setup.policy_params[i]));
  }
}

TEST(DistProtocol, ItemsRequestCarriesUsableRngStreams) {
  // The stream states must survive the wire well enough that a worker's
  // reconstructed engine produces the coordinator's exact draw sequence.
  netgym::Rng source(99);
  source.engine()();  // advance mid-stream
  dist::ItemsRequest request;
  request.eval_id = 4;
  request.first = 10;
  request.streams = {source.fork().state(), source.fork().state()};
  netgym::Rng expect0, expect1;
  expect0.set_state(request.streams[0]);
  expect1.set_state(request.streams[1]);

  std::string out;
  dist::encode_items_request(out, request);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  const dist::ItemsRequest back = dist::decode_items_request(*reader.next());
  EXPECT_EQ(back.eval_id, 4u);
  EXPECT_EQ(back.first, 10);
  ASSERT_EQ(back.streams.size(), 2u);
  netgym::Rng got0, got1;
  got0.set_state(back.streams[0]);
  got1.set_state(back.streams[1]);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(got0.engine()(), expect0.engine()());
    EXPECT_EQ(got1.engine()(), expect1.engine()());
  }
}

TEST(DistProtocol, ResultAndTrainMessagesRoundtrip) {
  dist::ItemsResult values;
  values.eval_id = 8;
  values.first = 2;
  values.values = {-0.0, 0.125};
  // Piggybacked span with a steady-clock ns start above 2^53: the wire must
  // carry it exactly (a double encoding would truncate the low bits).
  netgym::tracing::RemoteSpan span;
  span.name = "worker.eval_item";
  span.cat = "dist";
  span.tid = 2;
  span.start_ns = (1ll << 53) + 1;
  span.dur_ns = 777;
  span.index = 2;
  // Ids above 2^63 pin the u64-as-i64-bit-pattern array encoding.
  span.span_id = 0xDEADBEEF00000042ull;
  span.parent_id = 0xFFFFFFFFFFFFFFFEull;
  values.spans.spans = {span};
  values.spans.dropped = 4;
  std::string out;
  dist::encode_items_result(out, values);

  dist::TrainRequest train;
  train.train_id = 3;
  train.adapter_spec = "cc/1";
  train.iterations = 77;
  train.seed = 5;
  train.parent_span = 0x8000000000000001ull;
  dist::encode_train_request(out, train);

  dist::TrainResult trained;
  trained.train_id = 3;
  trained.params = {9.5, -0.5};
  dist::encode_train_result(out, trained);
  dist::encode_shutdown(out);

  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  const dist::ItemsResult v = dist::decode_items_result(*reader.next());
  EXPECT_EQ(v.eval_id, 8u);
  EXPECT_EQ(v.first, 2);
  ASSERT_EQ(v.values.size(), 2u);
  EXPECT_TRUE(same_bits(v.values[0], -0.0));
  ASSERT_EQ(v.spans.spans.size(), 1u);
  EXPECT_EQ(v.spans.spans[0].name, "worker.eval_item");
  EXPECT_EQ(v.spans.spans[0].cat, "dist");
  EXPECT_EQ(v.spans.spans[0].tid, 2);
  EXPECT_EQ(v.spans.spans[0].start_ns, (1ll << 53) + 1);
  EXPECT_EQ(v.spans.spans[0].dur_ns, 777);
  EXPECT_EQ(v.spans.spans[0].index, 2);
  EXPECT_EQ(v.spans.spans[0].span_id, 0xDEADBEEF00000042ull);
  EXPECT_EQ(v.spans.spans[0].parent_id, 0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(v.spans.dropped, 4);
  const dist::TrainRequest t = dist::decode_train_request(*reader.next());
  EXPECT_EQ(t.train_id, 3u);
  EXPECT_EQ(t.adapter_spec, "cc/1");
  EXPECT_EQ(t.iterations, 77);
  EXPECT_EQ(t.seed, 5u);
  EXPECT_EQ(t.parent_span, 0x8000000000000001ull);
  const dist::TrainResult r = dist::decode_train_result(*reader.next());
  EXPECT_EQ(r.train_id, 3u);
  EXPECT_EQ(r.params, (std::vector<double>{9.5, -0.5}));
  EXPECT_TRUE(r.spans.empty());
  const auto shutdown = reader.next();
  ASSERT_TRUE(shutdown.has_value());
  EXPECT_EQ(serve::type_of(*shutdown), serve::MsgType::kDistShutdown);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(DistProtocol, SpanBatchArrayShapeMismatchRejected) {
  // A frame claiming 2 spans but shipping 1-element arrays must be rejected
  // as a whole: decoders never hand back a partially consistent batch.
  netgym::checkpoint::Snapshot snap;
  snap.put_u64("eval_id", 1);
  snap.put_i64("first", 0);
  snap.put_doubles("values", {1.0});
  snap.put_i64("spans/count", 2);
  snap.put_i64("spans/dropped", 0);
  snap.put_string("span/name/0", "a");
  snap.put_string("span/cat/0", "b");
  snap.put_string("span/name/1", "c");
  snap.put_string("span/cat/1", "d");
  snap.put_i64s("spans/tids", {0});  // 1 element, count says 2
  snap.put_i64s("spans/starts", {0, 0});
  snap.put_i64s("spans/durs", {0, 0});
  snap.put_i64s("spans/indexes", {0, 0});
  snap.put_i64s("spans/span_ids", {0, 0});
  snap.put_i64s("spans/parents", {0, 0});
  std::string out;
  serve::encode_payload_frame(out, serve::MsgType::kDistItemsOk,
                              netgym::checkpoint::encode_file_bytes(snap),
                              serve::kMaxDistFrameBytes);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  EXPECT_THROW(dist::decode_items_result(*reader.next()),
               serve::ProtocolError);
}

TEST(DistProtocol, ByteAtATimeReassemblyOfFrameBeyondServeCap) {
  // A policy-parameter frame is far larger than the serving daemon's 128 KiB
  // cap; the dist reader must reassemble it from single-byte reads.
  dist::EvalSetup setup;
  setup.eval_id = 1;
  setup.adapter_spec = "lb/2";
  setup.kind = "baseline";
  setup.baseline = "llf";
  setup.policy_params.resize(40000);  // > 128 KiB of doubles on the wire
  for (std::size_t i = 0; i < setup.policy_params.size(); ++i) {
    setup.policy_params[i] = static_cast<double>(i) * 0.5 - 3.0;
  }
  std::string out;
  dist::encode_eval_setup(out, setup);
  ASSERT_GT(out.size(), serve::kMaxFrameBytes);

  const auto bodies = reassemble_bytewise(out, serve::kMaxDistFrameBytes);
  ASSERT_EQ(bodies.size(), 1u);
  const dist::EvalSetup back = dist::decode_eval_setup(bodies.front());
  EXPECT_EQ(back.policy_params, setup.policy_params);

  // The serving daemon's reader must keep rejecting the same bytes: the
  // higher ceiling is per-endpoint, not a global loosening.
  serve::FrameReader serve_reader;
  serve_reader.feed(out.data(), out.size());
  EXPECT_THROW(serve_reader.next(), serve::ProtocolError);
}

TEST(DistProtocol, TornPrefixYieldsNothingUntilCompleted) {
  std::string out;
  dist::encode_shutdown(out);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), 3);  // mid-length-prefix
  EXPECT_FALSE(reader.next().has_value());
  reader.feed(out.data() + 3, out.size() - 3);
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(serve::type_of(*body), serve::MsgType::kDistShutdown);
}

TEST(DistProtocol, OversizedPrefixRejectedByDistCapToo) {
  const std::uint32_t bad = serve::kMaxDistFrameBytes + 1;
  char prefix[4];
  std::memcpy(prefix, &bad, 4);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(prefix, 4);
  EXPECT_THROW(reader.next(), serve::ProtocolError);
}

TEST(DistProtocol, EncoderRefusesPayloadBeyondCap) {
  std::string out;
  const std::string huge(serve::kMaxDistFrameBytes, 'x');
  EXPECT_THROW(serve::encode_payload_frame(out, serve::MsgType::kDistEval,
                                           huge, serve::kMaxDistFrameBytes),
               serve::ProtocolError);
  EXPECT_TRUE(out.empty());  // nothing half-written
}

TEST(DistProtocol, WrongTypeByteAndEmptyBodyRejected) {
  std::string out;
  dist::Hello hello;
  hello.math_mode = "strict";
  dist::encode_hello(out, hello);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  const std::string body = *reader.next();
  EXPECT_THROW(dist::decode_train_request(body), serve::ProtocolError);
  EXPECT_THROW(serve::payload_of("", serve::MsgType::kDistHello),
               serve::ProtocolError);
}

TEST(DistProtocol, TruncatedSnapshotPayloadRejected) {
  // Cut the checkpoint blob short inside a correctly framed body: the CRC /
  // length validation must throw before decode returns anything. Decoders
  // are pure functions, so a throw provably leaves caller state untouched.
  dist::TrainRequest train;
  train.train_id = 1;
  train.adapter_spec = "lb/1";
  train.iterations = 10;
  std::string out;
  dist::encode_train_request(out, train);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  const std::string body = *reader.next();
  const std::string truncated = body.substr(0, body.size() - 5);
  EXPECT_ANY_THROW(dist::decode_train_request(truncated));
}

TEST(DistProtocol, CorruptSnapshotCrcRejected) {
  dist::ItemsResult values;
  values.eval_id = 2;
  values.first = 0;
  values.values = {1.0, 2.0, 3.0};
  std::string out;
  dist::encode_items_result(out, values);
  serve::FrameReader reader(serve::kMaxDistFrameBytes);
  reader.feed(out.data(), out.size());
  std::string body = *reader.next();
  body.back() ^= 0x01;  // flip one payload bit; CRC must catch it
  EXPECT_THROW(dist::decode_items_result(body),
               netgym::checkpoint::CheckpointError);
}

TEST(DistProtocol, GoldenFixtureDecodesAndReencodesByteIdentically) {
  // The committed fixture was written by tools/make_golden_checkpoints with
  // these exact constants (keep in sync). Pinning decode AND re-encode means
  // neither the framing, the Snapshot field layout, nor the CRC computation
  // can drift without this test failing.
  const std::string bytes =
      read_file(std::string(GENET_TEST_DATA_DIR) + "/golden_dist_frames_v2.bin");
  ASSERT_FALSE(bytes.empty());
  const auto bodies = reassemble_bytewise(bytes, serve::kMaxDistFrameBytes);
  ASSERT_EQ(bodies.size(), 8u);

  const dist::Hello hello = dist::decode_hello(bodies[0]);
  EXPECT_EQ(hello.version, 2);
  EXPECT_EQ(hello.math_mode, "strict");
  EXPECT_EQ(hello.threads, 2);
  EXPECT_EQ(hello.trace_id, 987654321098765ull);
  EXPECT_EQ(hello.worker_ordinal, 1);
  EXPECT_EQ(hello.trace_enabled, 1);
  EXPECT_EQ(hello.trace_capacity, 4096);
  EXPECT_EQ(hello.trace_ship_max_bytes, 1048576);
  const dist::HelloOk hello_ok = dist::decode_hello_ok(bodies[1]);
  EXPECT_EQ(hello_ok.pid, 4242);
  const dist::EvalSetup setup = dist::decode_eval_setup(bodies[2]);
  EXPECT_EQ(setup.eval_id, 7u);
  EXPECT_EQ(setup.adapter_spec, "lb/1");
  EXPECT_EQ(setup.kind, "baseline");
  EXPECT_EQ(setup.baseline, "llf");
  EXPECT_EQ(setup.parent_span, 55u);
  ASSERT_EQ(setup.config.size(), 4u);
  EXPECT_TRUE(same_bits(setup.config[1], -0.0));
  EXPECT_TRUE(same_bits(setup.config[3],
                        std::numeric_limits<double>::denorm_min()));
  const dist::ItemsRequest items = dist::decode_items_request(bodies[3]);
  EXPECT_EQ(items.first, 3);
  ASSERT_EQ(items.streams.size(), 2u);
  netgym::Rng fixture_rng(42);
  EXPECT_EQ(items.streams[0], fixture_rng.state());
  EXPECT_EQ(items.streams[1], fixture_rng.fork().state());
  const dist::ItemsResult values = dist::decode_items_result(bodies[4]);
  ASSERT_EQ(values.values.size(), 2u);
  EXPECT_TRUE(same_bits(values.values[1], 3.141592653589793));
  ASSERT_EQ(values.spans.spans.size(), 2u);
  EXPECT_EQ(values.spans.spans[0].name, "worker.eval_item");
  EXPECT_EQ(values.spans.spans[0].start_ns, 9123456789012345678ll);
  EXPECT_EQ(values.spans.spans[0].dur_ns, 250000);
  EXPECT_EQ(values.spans.spans[0].index, 3);
  EXPECT_EQ(values.spans.spans[0].span_id, 0x8000000000000123ull);
  EXPECT_EQ(values.spans.spans[0].parent_id, 55u);
  EXPECT_EQ(values.spans.spans[1].tid, 1);
  EXPECT_EQ(values.spans.spans[1].start_ns, 9123456789012595678ll);
  EXPECT_EQ(values.spans.spans[1].parent_id, 55u);
  EXPECT_EQ(values.spans.dropped, 1);
  const dist::TrainRequest train = dist::decode_train_request(bodies[5]);
  EXPECT_EQ(train.adapter_spec, "cc/2");
  EXPECT_EQ(train.iterations, 120);
  EXPECT_EQ(train.seed, 11u);
  EXPECT_EQ(train.parent_span, 55u);
  const dist::TrainResult trained = dist::decode_train_result(bodies[6]);
  EXPECT_EQ(trained.params, (std::vector<double>{0.0, -0.5, 6.0}));
  EXPECT_TRUE(trained.spans.spans.empty());
  EXPECT_EQ(trained.spans.dropped, 2);
  EXPECT_EQ(serve::type_of(bodies[7]), serve::MsgType::kDistShutdown);

  std::string reencoded;
  dist::encode_hello(reencoded, hello);
  dist::encode_hello_ok(reencoded, hello_ok);
  dist::encode_eval_setup(reencoded, setup);
  dist::encode_items_request(reencoded, items);
  dist::encode_items_result(reencoded, values);
  dist::encode_train_request(reencoded, train);
  dist::encode_train_result(reencoded, trained);
  dist::encode_shutdown(reencoded);
  EXPECT_EQ(reencoded, bytes);
}

}  // namespace
