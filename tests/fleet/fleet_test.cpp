// Fleet simulator (DESIGN.md S5h): the determinism contract (bit-identical
// results at any thread count), SLO accounting, the default scenario mixes,
// up-front validation, and the committed worst-k flight fixture.

#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/report.hpp"
#include "netgym/parallel.hpp"
#include "netgym/rng.hpp"
#include "rl/policy.hpp"

namespace {

rl::MlpPolicy test_policy(const std::string& task, std::uint64_t seed = 11) {
  netgym::Rng rng(seed);
  rl::MlpPolicy policy(fleet::task_obs_size(task),
                       fleet::task_action_count(task), {16, 16}, rng);
  policy.set_greedy(true);
  return policy;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Restore the default-sized pool no matter how a test exits.
struct ThreadGuard {
  ~ThreadGuard() { netgym::set_num_threads(0); }
};

TEST(FleetMeta, MetricNamesAndShapesPerTask) {
  EXPECT_EQ(fleet::metric_names("abr"),
            (std::vector<std::string>{"episode_reward", "rebuffer_s",
                                      "bitrate_mbps"}));
  EXPECT_EQ(fleet::metric_names("cc"),
            (std::vector<std::string>{"episode_reward", "queue_delay_s",
                                      "throughput_mbps"}));
  EXPECT_EQ(fleet::metric_names("lb"),
            (std::vector<std::string>{"episode_reward", "job_slowdown",
                                      "job_delay_s"}));
  EXPECT_THROW(fleet::metric_names("dns"), std::invalid_argument);
  EXPECT_GT(fleet::task_obs_size("abr"), 0);
  EXPECT_GT(fleet::task_action_count("cc"), 0);
  EXPECT_THROW(fleet::task_obs_size("dns"), std::invalid_argument);
}

TEST(FleetMeta, SloOpNames) {
  EXPECT_STREQ(fleet::slo_op_name(fleet::SloOp::kAtMost), "<=");
  EXPECT_STREQ(fleet::slo_op_name(fleet::SloOp::kAtLeast), ">=");
}

TEST(FleetMeta, DefaultScenariosSplitEverySession) {
  for (const char* task : {"abr", "cc", "lb"}) {
    const auto scenarios = fleet::default_scenarios(task, 10'000, 0.5);
    ASSERT_GE(scenarios.size(), 2u) << task;
    std::int64_t total = 0;
    for (const auto& sc : scenarios) {
      EXPECT_EQ(sc.task, task);
      EXPECT_GT(sc.sessions, 0) << sc.name;
      EXPECT_FALSE(sc.slos.empty()) << sc.name;
      EXPECT_FALSE(sc.devices.empty()) << sc.name;
      total += sc.sessions;
    }
    EXPECT_EQ(total, 10'000) << task;
  }
  EXPECT_THROW(fleet::default_scenarios("dns", 100, 0.5),
               std::invalid_argument);
}

TEST(FleetRun, BitIdenticalDigestAcrossThreadCounts) {
  // The tentpole contract: fixed shard partition + serial RNG forks +
  // fixed-size lockstep groups + shard-ordered histogram merge make every
  // output float independent of the pool size. The pool here is
  // oversubscribed (the CI box may have a single core) which also shakes
  // out schedule dependence.
  ThreadGuard guard;
  const rl::MlpPolicy policy = test_policy("lb");
  const auto scenarios = fleet::default_scenarios("lb", 400, 0.0);
  fleet::FleetOptions opts;
  opts.seed = 5;
  opts.shards = 16;
  opts.out_dir = "";  // flight capture off: pure compute path
  std::string digests[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    netgym::set_num_threads(threads[i]);
    digests[i] = fleet::canonical_digest(run_fleet(policy, scenarios, opts));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_NE(digests[0].find("fleet-digest v1"), std::string::npos);
}

TEST(FleetRun, ShardCountIsPartOfTheContractNotATuningKnob) {
  // Different shard counts legitimately produce different streams; the
  // digest must change, proving shards are pinned inputs rather than an
  // invisible implementation detail.
  const rl::MlpPolicy policy = test_policy("lb");
  const auto scenarios = fleet::default_scenarios("lb", 200, 0.0);
  fleet::FleetOptions a;
  a.seed = 5;
  a.shards = 8;
  fleet::FleetOptions b = a;
  b.shards = 32;
  EXPECT_NE(fleet::canonical_digest(run_fleet(policy, scenarios, a)),
            fleet::canonical_digest(run_fleet(policy, scenarios, b)));
}

TEST(FleetRun, SloAccountingMatchesHistogramPopulation) {
  const rl::MlpPolicy policy = test_policy("lb");
  fleet::Scenario sc;
  sc.name = "slo_math";
  sc.task = "lb";
  sc.sessions = 300;
  sc.max_steps = 64;
  // One SLO that everything satisfies, one that nothing can.
  sc.slos.push_back({"job_slowdown", fleet::SloOp::kAtMost, 1e12, 0.5});
  sc.slos.push_back({"job_slowdown", fleet::SloOp::kAtLeast, 1e12, 0.5});
  const fleet::FleetResult result =
      fleet::run_fleet(policy, {sc}, fleet::FleetOptions{});
  ASSERT_EQ(result.scenarios.size(), 1u);
  const auto& got = result.scenarios[0];
  EXPECT_EQ(got.sessions, 300);
  ASSERT_EQ(got.slos.size(), 2u);
  EXPECT_EQ(got.slos[0].compliant, 300);
  EXPECT_DOUBLE_EQ(got.slos[0].fraction, 1.0);
  EXPECT_TRUE(got.slos[0].pass);
  EXPECT_EQ(got.slos[1].compliant, 0);
  EXPECT_DOUBLE_EQ(got.slos[1].fraction, 0.0);
  EXPECT_FALSE(got.slos[1].pass);
  // Histogram population equals the session count for every metric.
  ASSERT_EQ(got.metrics.size(), 3u);
  for (const auto& m : got.metrics) {
    EXPECT_EQ(m.stats.count, 300) << m.name;
    EXPECT_LE(m.stats.p50, m.stats.p99) << m.name;
    EXPECT_LE(m.stats.p99, m.stats.p999) << m.name;
    EXPECT_LE(m.stats.p999, m.stats.max) << m.name;
  }
  EXPECT_EQ(result.sessions, 300);
  EXPECT_GT(result.steps, 0);
}

TEST(FleetRun, ValidatesEverythingUpFront) {
  const rl::MlpPolicy lb_policy = test_policy("lb");
  const fleet::FleetOptions opts;

  fleet::Scenario sc;
  sc.name = "bad";
  sc.task = "lb";
  sc.sessions = 10;

  {  // policy shape vs task
    fleet::Scenario s = sc;
    s.task = "abr";
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts),
                 std::invalid_argument);
  }
  {  // lb has no recorded traces
    fleet::Scenario s = sc;
    s.use_traces = true;
    s.trace_prob = 0.5;
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts),
                 std::invalid_argument);
  }
  {  // an ABR trace set cannot drive a CC scenario
    fleet::Scenario s = sc;
    s.task = "cc";
    s.use_traces = true;
    s.trace_prob = 0.5;
    s.trace_set = traces::TraceSet::kFcc;
    const rl::MlpPolicy cc_policy = test_policy("cc");
    EXPECT_THROW(fleet::run_fleet(cc_policy, {s}, opts),
                 std::invalid_argument);
  }
  {  // device dim typo
    fleet::Scenario s = sc;
    s.devices.push_back({"phone", 1.0, {{"no_such_dim", 0.5}}});
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts), std::exception);
  }
  {  // device scale must be positive
    fleet::Scenario s = sc;
    s.devices.push_back({"phone", 1.0, {{"service_rate", -1.0}}});
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts),
                 std::invalid_argument);
  }
  {  // SLO on an unknown metric
    fleet::Scenario s = sc;
    s.slos.push_back({"rebuffer_s", fleet::SloOp::kAtMost, 1.0, 0.9});
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts),
                 std::invalid_argument);
  }
  {  // trace_prob out of range
    fleet::Scenario s = sc;
    s.trace_prob = 1.5;
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts),
                 std::invalid_argument);
  }
  {  // no sessions
    fleet::Scenario s = sc;
    s.sessions = 0;
    EXPECT_THROW(fleet::run_fleet(lb_policy, {s}, opts),
                 std::invalid_argument);
  }
  EXPECT_THROW(fleet::run_fleet(lb_policy, {}, opts), std::invalid_argument);
}

TEST(FleetFixture, RegeneratedWorstKMatchesCommittedBytes) {
  // write_regression_fixture replays the pinned 96-session ABR fleet and
  // dumps its worst-4 flight recordings; the committed copy under
  // tests/data/ pins the whole sampling -> device skew -> trace mix ->
  // lockstep replay -> flight capture pipeline. A mismatch means fleet
  // behavior changed: regenerate deliberately with tools/make_fleet_fixtures
  // and review the diff.
  const std::string dir = ::testing::TempDir() + "fleet_fixture";
  const std::string fresh = fleet::write_regression_fixture(dir);
  const std::string committed =
      std::string(GENET_TEST_DATA_DIR) + "/worst_fixture_abr.jsonl";
  const std::string fresh_bytes = read_file(fresh);
  ASSERT_FALSE(fresh_bytes.empty());
  EXPECT_EQ(fresh_bytes, read_file(committed));
}

TEST(FleetReport, JsonAndSummaryRenderEveryScenario) {
  const rl::MlpPolicy policy = test_policy("lb");
  const auto scenarios = fleet::default_scenarios("lb", 200, 0.0);
  fleet::FleetOptions opts;
  opts.seed = 9;
  const fleet::FleetResult result = run_fleet(policy, scenarios, opts);

  const std::string summary = fleet::format_fleet_summary(result);
  for (const auto& sc : result.scenarios) {
    EXPECT_NE(summary.find("[" + sc.name + "]"), std::string::npos);
  }
  EXPECT_NE(summary.find("SLO"), std::string::npos);

  const std::string path = ::testing::TempDir() + "fleet_report_test.json";
  fleet::BenchInfo info;
  info.determinism_checked = true;
  info.determinism_identical = true;
  fleet::write_fleet_json(path, result, info);
  const std::string json = read_file(path);
  EXPECT_NE(json.find("\"bench\": \"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"determinism\""), std::string::npos);
  for (const auto& sc : result.scenarios) {
    EXPECT_NE(json.find("\"" + sc.name + "\""), std::string::npos);
  }
}

}  // namespace
