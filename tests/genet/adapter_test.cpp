#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"

#include <gtest/gtest.h>

#include "abr/baselines.hpp"
#include "abr/env.hpp"
#include "cc/env.hpp"
#include "lb/env.hpp"
#include "traces/tracesets.hpp"

namespace {

using genet::AbrAdapter;
using genet::CcAdapter;
using genet::LbAdapter;
using netgym::Rng;

/// Trivial fixed-action policy for plumbing tests.
class FixedAction : public netgym::Policy {
 public:
  explicit FixedAction(int a) : a_(a) {}
  int act(const netgym::Observation&, Rng&) override { return a_; }

 private:
  int a_;
};

template <typename Adapter>
void check_basic_contract(const Adapter& adapter) {
  EXPECT_GT(adapter.obs_size(), 0);
  EXPECT_GT(adapter.action_count(), 0);
  EXPECT_GT(adapter.space().dims(), 0u);
  Rng rng(1);
  const netgym::Config config = adapter.space().sample(rng);
  auto env = adapter.make_env(config, rng);
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->observation_size(),
            static_cast<std::size_t>(adapter.obs_size()));
  EXPECT_EQ(env->action_count(), adapter.action_count());
  const netgym::Observation obs = env->reset();
  EXPECT_EQ(obs.size(), static_cast<std::size_t>(adapter.obs_size()));
  // Every advertised baseline must construct and act.
  for (const std::string& name : adapter.baseline_names()) {
    auto baseline = adapter.make_baseline(name, *env);
    ASSERT_NE(baseline, nullptr) << name;
    const int action = baseline->act(obs, rng);
    EXPECT_GE(action, 0) << name;
    EXPECT_LT(action, adapter.action_count()) << name;
  }
  EXPECT_THROW(adapter.make_baseline("definitely-not-a-baseline", *env),
               std::invalid_argument);
}

TEST(Adapters, AbrContract) { check_basic_contract(AbrAdapter(3)); }
TEST(Adapters, CcContract) { check_basic_contract(CcAdapter(3)); }
TEST(Adapters, LbContract) { check_basic_contract(LbAdapter(3)); }

TEST(Adapters, TrainersMatchTaskShapes) {
  for (const auto* adapter :
       std::initializer_list<const genet::TaskAdapter*>{
           new AbrAdapter(3), new CcAdapter(3), new LbAdapter(3)}) {
    auto trainer = adapter->make_trainer(1);
    EXPECT_EQ(trainer->policy().obs_size(), adapter->obs_size());
    EXPECT_EQ(trainer->policy().action_count(), adapter->action_count());
    delete adapter;
  }
}

TEST(TestOnConfig, IsDeterministicGivenSeed) {
  AbrAdapter adapter(1);
  FixedAction policy(0);
  Rng rng1(5), rng2(5);
  const netgym::Config config = adapter.space().midpoint();
  const double a = genet::test_on_config(adapter, policy, config, 3, rng1);
  const double b = genet::test_on_config(adapter, policy, config, 3, rng2);
  EXPECT_EQ(a, b);
  EXPECT_THROW(genet::test_on_config(adapter, policy, config, 0, rng1),
               std::invalid_argument);
}

TEST(GapToBaseline, PositiveForBadPolicyAgainstGoodBaseline) {
  // A policy that always requests the top bitrate on a low-bandwidth config
  // must fall far behind MPC.
  AbrAdapter adapter(1);
  FixedAction bad_policy(abr::kBitrateCount - 1);
  netgym::Config config = adapter.space().midpoint();
  config.values[adapter.space().index_of("max_bw_mbps")] = 2.0;
  Rng rng(7);
  const double gap =
      genet::gap_to_baseline(adapter, bad_policy, "mpc", config, 5, rng);
  EXPECT_GT(gap, 1.0);
}

TEST(GapToBaseline, NearZeroForBaselineAgainstItself) {
  // MPC-as-policy vs MPC-as-baseline on paired envs: the gap must be ~0.
  AbrAdapter adapter(1);
  abr::RobustMpcPolicy mpc;
  const netgym::Config config = adapter.space().midpoint();
  Rng rng(7);
  const double gap =
      genet::gap_to_baseline(adapter, mpc, "mpc", config, 5, rng);
  EXPECT_NEAR(gap, 0.0, 1e-9);
}

TEST(GapToOptimum, NonNegativeForAnyPolicy) {
  AbrAdapter adapter(1);
  FixedAction policy(2);
  const netgym::Config config = adapter.space().midpoint();
  Rng rng(3);
  const double gap =
      genet::gap_to_optimum(adapter, policy, config, 3, rng);
  EXPECT_GT(gap, -0.05);  // optimal beats any fixed policy (up to beam noise)
}

TEST(Adapters, LbHasNoTraceEnvironments) {
  LbAdapter adapter(3);
  Rng rng(1);
  const netgym::Trace trace = traces::make_trace(traces::TraceSet::kFcc, false, 0);
  EXPECT_THROW(adapter.make_env_from_trace(trace, rng), std::logic_error);
}

TEST(Adapters, TraceDrivenEnvsReplayTheTrace) {
  AbrAdapter adapter(3);
  Rng rng(1);
  const netgym::Trace trace =
      traces::make_trace(traces::TraceSet::kFcc, false, 2);
  auto env = adapter.make_env_from_trace(trace, rng);
  auto* abr_env = dynamic_cast<abr::AbrEnv*>(env.get());
  ASSERT_NE(abr_env, nullptr);
  EXPECT_EQ(abr_env->trace().bandwidth_mbps, trace.bandwidth_mbps);
}

TEST(Adapters, TraceMixUsesCorpusTraces) {
  genet::TraceMixOptions mix;
  mix.corpus = traces::make_corpus(traces::TraceSet::kCellular, false);
  mix.trace_prob = 1.0;  // always trace-driven
  CcAdapter adapter(3, std::move(mix));
  Rng rng(2);
  netgym::Config config = adapter.space().midpoint();
  auto env = adapter.make_env(config, rng);
  auto* cc_env = dynamic_cast<cc::CcEnv*>(env.get());
  ASSERT_NE(cc_env, nullptr);
  // The env's trace must be one of the corpus traces.
  bool found = false;
  for (const auto& t :
       traces::make_corpus(traces::TraceSet::kCellular, false)) {
    if (t.bandwidth_mbps == cc_env->trace().bandwidth_mbps) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Adapters, PacketBackendProducesPacketEnvs) {
  genet::CcAdapter fluid(3);
  genet::CcAdapter packet(3, {}, /*use_packet_sim=*/true);
  Rng rng(8);
  const netgym::Config config = fluid.space().midpoint();
  auto fluid_env = fluid.make_env(config, rng);
  auto packet_env = packet.make_env(config, rng);
  EXPECT_NE(dynamic_cast<cc::CcEnv*>(fluid_env.get()), nullptr);
  EXPECT_EQ(dynamic_cast<cc::CcEnv*>(packet_env.get()), nullptr);
  // Same interface shapes: a policy can run on either backend.
  EXPECT_EQ(fluid_env->observation_size(), packet_env->observation_size());
  EXPECT_EQ(fluid_env->action_count(), packet_env->action_count());
  // Gap-to-optimum requires the fluid backend.
  FixedAction policy(4);
  netgym::Rng grng(3);
  EXPECT_THROW(
      genet::gap_to_optimum(packet, policy, config, 1, grng),
      std::invalid_argument);
}

TEST(Adapters, FluidTrainedPolicyRunsOnPacketBackend) {
  // Cross-backend transfer: train briefly on the fluid simulator, evaluate
  // on the packet simulator without any shape changes.
  genet::CcAdapter fluid(1);
  genet::CcAdapter packet(1, {}, /*use_packet_sim=*/true);
  auto trainer = genet::train_traditional(fluid, 3, 5);
  trainer->policy().set_greedy(true);
  netgym::ConfigDistribution dist(packet.space());
  Rng rng(6);
  const double reward = genet::test_on_distribution(
      packet, trainer->policy(), dist, 3, rng);
  EXPECT_TRUE(std::isfinite(reward));
}

TEST(Adapters, TraceDrivenEnvsWorkForEveryMatchingSet) {
  genet::AbrAdapter abr_adapter(3);
  genet::CcAdapter cc_adapter(3);
  Rng rng(4);
  FixedAction policy(0);
  for (auto set : traces::all_sets()) {
    const netgym::Trace trace = traces::make_trace(set, true, 0);
    genet::TaskAdapter& adapter =
        traces::info(set).for_abr
            ? static_cast<genet::TaskAdapter&>(abr_adapter)
            : static_cast<genet::TaskAdapter&>(cc_adapter);
    auto env = adapter.make_env_from_trace(trace, rng);
    const auto stats = netgym::run_episode(*env, policy, rng);
    EXPECT_GT(stats.steps, 0) << traces::info(set).name;
  }
}

TEST(TestPerTrace, ReturnsOneRewardPerTrace) {
  AbrAdapter adapter(3);
  FixedAction policy(0);
  Rng rng(4);
  std::vector<netgym::Trace> corpus;
  for (int i = 0; i < 3; ++i) {
    corpus.push_back(traces::make_trace(traces::TraceSet::kNorway, true, i));
  }
  const auto rewards = genet::test_per_trace(adapter, policy, corpus, rng);
  EXPECT_EQ(rewards.size(), 3u);
}

netgym::Trace flat_trace(double bw_mbps) {
  netgym::Trace trace;
  trace.timestamps_s = {0.0, 1.0, 2.0};
  trace.bandwidth_mbps = {bw_mbps, bw_mbps, bw_mbps};
  return trace;
}

TEST(MatchingTrace, ThrowsOnEmptyCorpus) {
  const std::vector<netgym::Trace> empty;
  Rng rng(1);
  EXPECT_THROW(genet::matching_trace(empty, 5.0, rng),
               std::invalid_argument);
}

TEST(MatchingTrace, PicksACompatibleTraceWhenOneExists) {
  // Compatible means mean bandwidth within [0.02 * max_bw, max_bw]; only the
  // 3 Mbps trace qualifies for max_bw = 5.
  const std::vector<netgym::Trace> corpus{flat_trace(50.0), flat_trace(3.0),
                                          flat_trace(0.01)};
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const netgym::Trace& picked = genet::matching_trace(corpus, 5.0, rng);
    EXPECT_DOUBLE_EQ(picked.mean_bandwidth(), 3.0);
  }
}

TEST(MatchingTrace, FallsBackToClosestMeanBandwidth) {
  // No trace fits inside the window for max_bw = 5; the closest by mean
  // bandwidth (20 vs 40) must be returned rather than reading out of bounds.
  const std::vector<netgym::Trace> corpus{flat_trace(40.0), flat_trace(20.0)};
  Rng rng(3);
  const netgym::Trace& picked = genet::matching_trace(corpus, 5.0, rng);
  EXPECT_DOUBLE_EQ(picked.mean_bandwidth(), 20.0);
}

TEST(ConfigNonSmoothness, HigherForFasterChangingBandwidth) {
  AbrAdapter adapter(3);
  Rng rng(6);
  netgym::Config smooth = adapter.space().midpoint();
  netgym::Config rough = smooth;
  const std::size_t dim = adapter.space().index_of("bw_change_interval_s");
  smooth.values[dim] = 90.0;
  rough.values[dim] = 2.0;
  EXPECT_GT(adapter.config_non_smoothness(rough, rng),
            adapter.config_non_smoothness(smooth, rng));
}

}  // namespace
