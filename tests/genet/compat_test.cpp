// Cross-space compatibility invariants the experiment harnesses rely on: a
// policy trained on the RL1 ranges must be loadable and runnable on RL3
// environments of the same task (same observation/action shapes), and
// models snapshot/restore across trainer instances.

#include <gtest/gtest.h>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"

namespace {

template <typename Adapter>
void expect_spaces_share_shapes() {
  Adapter a1(1), a2(2), a3(3);
  EXPECT_EQ(a1.obs_size(), a3.obs_size());
  EXPECT_EQ(a2.obs_size(), a3.obs_size());
  EXPECT_EQ(a1.action_count(), a3.action_count());
  EXPECT_EQ(a2.action_count(), a3.action_count());
}

TEST(CrossSpace, AbrShapesMatch) {
  expect_spaces_share_shapes<genet::AbrAdapter>();
}
TEST(CrossSpace, CcShapesMatch) {
  expect_spaces_share_shapes<genet::CcAdapter>();
}
TEST(CrossSpace, LbShapesMatch) {
  expect_spaces_share_shapes<genet::LbAdapter>();
}

TEST(CrossSpace, Rl1PolicyRunsOnRl3Environments) {
  genet::LbAdapter narrow(1);
  genet::LbAdapter wide(3);
  auto trainer = genet::train_traditional(narrow, 5, 1);
  trainer->policy().set_greedy(true);
  netgym::ConfigDistribution target(wide.space());
  netgym::Rng rng(3);
  // Must evaluate without shape errors and return a finite reward.
  const double reward =
      genet::test_on_distribution(wide, trainer->policy(), target, 5, rng);
  EXPECT_TRUE(std::isfinite(reward));
}

TEST(CrossSpace, SnapshotTransfersBetweenTrainerInstances) {
  genet::CcAdapter adapter(1);
  auto a = adapter.make_trainer(7);
  auto b = adapter.make_trainer(8);  // different init
  a->train_iteration(adapter.factory_for(adapter.space().midpoint()));
  b->restore(a->snapshot());
  EXPECT_EQ(a->snapshot(), b->snapshot());
  // Both policies produce identical greedy decisions afterwards.
  a->policy().set_greedy(true);
  b->policy().set_greedy(true);
  netgym::Rng env_rng(4);
  auto env = adapter.make_env(adapter.space().midpoint(), env_rng);
  const netgym::Observation obs = env->reset();
  netgym::Rng act_rng(1);
  EXPECT_EQ(a->policy().act(obs, act_rng), b->policy().act(obs, act_rng));
}

TEST(CrossSpace, TrainingIsDeterministicAcrossProcessesInSpirit) {
  // Same seed, fresh adapter objects: byte-identical snapshots. This is the
  // property the ModelZoo's cold-cache reproducibility rests on.
  genet::LbAdapter adapter_a(1), adapter_b(1);
  const auto pa = genet::train_traditional(adapter_a, 10, 42)->snapshot();
  const auto pb = genet::train_traditional(adapter_b, 10, 42)->snapshot();
  EXPECT_EQ(pa, pb);
}

TEST(CrossSpace, GenetCurriculumIsDeterministicGivenSeed) {
  genet::SearchOptions search;
  search.bo_trials = 3;
  search.envs_per_eval = 2;
  genet::CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 3;
  options.seed = 9;
  auto run_once = [&] {
    genet::LbAdapter adapter(1);
    genet::CurriculumTrainer trainer(
        adapter, std::make_unique<genet::GenetScheme>("llf", search),
        options);
    trainer.run();
    return trainer.trainer().snapshot();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
