#include "genet/curriculum.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using genet::CurriculumOptions;
using genet::CurriculumTrainer;
using genet::LbAdapter;
using genet::SearchOptions;
using netgym::Rng;

SearchOptions tiny_search() {
  SearchOptions options;
  options.bo_trials = 4;
  options.envs_per_eval = 2;
  return options;
}

CurriculumOptions tiny_curriculum(int rounds = 2) {
  CurriculumOptions options;
  options.rounds = rounds;
  options.iters_per_round = 2;
  options.seed = 11;
  return options;
}

LbAdapter small_lb() { return LbAdapter(1); }  // fast episodes

TEST(CurriculumTrainer, ValidatesArguments) {
  LbAdapter adapter = small_lb();
  EXPECT_THROW(CurriculumTrainer(adapter, nullptr, tiny_curriculum()),
               std::invalid_argument);
  CurriculumOptions bad = tiny_curriculum();
  bad.rounds = 0;
  EXPECT_THROW(CurriculumTrainer(
                   adapter,
                   std::make_unique<genet::GenetScheme>("llf", tiny_search()),
                   bad),
               std::invalid_argument);
}

TEST(CurriculumTrainer, PromotesOneConfigPerRound) {
  LbAdapter adapter = small_lb();
  CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", tiny_search()),
      tiny_curriculum(3));
  const auto records = trainer.run();
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(trainer.distribution().num_promoted(), 3u);
  EXPECT_NEAR(trainer.distribution().uniform_weight(), std::pow(0.7, 3),
              1e-12);
  for (const auto& record : records) {
    EXPECT_TRUE(adapter.space().contains(record.promoted));
  }
}

TEST(CurriculumTrainer, RunRoundIsIncremental) {
  LbAdapter adapter = small_lb();
  CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", tiny_search()),
      tiny_curriculum(5));
  EXPECT_EQ(trainer.rounds_completed(), 0);
  trainer.run_round();
  EXPECT_EQ(trainer.rounds_completed(), 1);
  EXPECT_EQ(trainer.distribution().num_promoted(), 1u);
}

TEST(HandcraftedScheme, WalksFromEasyToHardEnd) {
  LbAdapter adapter = small_lb();
  // Shuffle probability: low is easy, high is hard.
  genet::HandcraftedScheme scheme("queue_shuffle_prob", /*hard_is_low=*/false,
                                  /*total_rounds=*/4);
  Rng rng(1);
  netgym::Rng policy_rng(1);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);
  const std::size_t dim = adapter.space().index_of("queue_shuffle_prob");
  double last = -1.0;
  for (int round = 0; round < 4; ++round) {
    const netgym::Config c = scheme.select(adapter, dummy, round, rng).config;
    EXPECT_TRUE(adapter.space().contains(c));
    EXPECT_GT(c.values[dim], last);
    last = c.values[dim];
  }
  EXPECT_NEAR(last, adapter.space().param(dim).hi, 1e-9);
}

TEST(HandcraftedScheme, HardIsLowReversesDirection) {
  LbAdapter adapter = small_lb();
  genet::HandcraftedScheme scheme("job_interval_s", /*hard_is_low=*/true, 3);
  Rng rng(1);
  netgym::Rng policy_rng(1);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);
  const std::size_t dim = adapter.space().index_of("job_interval_s");
  const netgym::Config first = scheme.select(adapter, dummy, 0, rng).config;
  const netgym::Config last = scheme.select(adapter, dummy, 2, rng).config;
  EXPECT_GT(first.values[dim], last.values[dim]);
  EXPECT_NEAR(first.values[dim], adapter.space().param(dim).hi, 1e-9);
  EXPECT_NEAR(last.values[dim], adapter.space().param(dim).lo, 1e-9);
}

TEST(HandcraftedScheme, LogScaleDimProgressesUniformlyInNormalizedSpace) {
  // Regression: the schedule used to interpolate in *raw* parameter space,
  // which front-loads log-scale dims absurdly (job_interval_s 0.01-1 spent
  // its first half of rounds above the geometric midpoint). The walk must be
  // uniform in the normalized (log) box and hit the hard end exactly at the
  // final round.
  genet::LbAdapter adapter(3);  // job_interval_s is log-scale 0.01..1
  const netgym::ConfigSpace& space = adapter.space();
  const std::size_t dim = space.index_of("job_interval_s");
  const int rounds = 5;
  genet::HandcraftedScheme scheme("job_interval_s", /*hard_is_low=*/true,
                                  rounds);
  Rng rng(1);
  netgym::Rng policy_rng(1);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);
  for (int round = 0; round < rounds; ++round) {
    const auto selection = scheme.select(adapter, dummy, round, rng);
    const double expected_unit =
        1.0 - static_cast<double>(round) / (rounds - 1);
    EXPECT_NEAR(space.normalize(selection.config)[dim], expected_unit, 1e-9)
        << "round " << round;
    // Non-swept dims sit at the center of the normalized box (integer dims
    // within rounding distance of it).
    const auto unit = space.normalize(selection.config);
    for (std::size_t d = 0; d < space.dims(); ++d) {
      if (d == dim) continue;
      EXPECT_NEAR(unit[d], 0.5, space.param(d).integer ? 0.01 : 1e-9)
          << space.param(d).name;
    }
  }
  const auto last = scheme.select(adapter, dummy, rounds - 1, rng);
  EXPECT_DOUBLE_EQ(last.config.values[dim], space.param(dim).lo);
  EXPECT_DOUBLE_EQ(last.score, 1.0);
}

TEST(HandcraftedScheme, SingleRoundScheduleLandsOnTheHardEnd) {
  // Regression: total_rounds == 1 used to stay at progress 0 (the easy end).
  LbAdapter adapter = small_lb();
  const netgym::ConfigSpace& space = adapter.space();
  Rng rng(1);
  netgym::Rng policy_rng(1);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);

  genet::HandcraftedScheme hard_high("queue_shuffle_prob",
                                     /*hard_is_low=*/false, 1);
  const auto sel_high = hard_high.select(adapter, dummy, 0, rng);
  const std::size_t shuffle = space.index_of("queue_shuffle_prob");
  EXPECT_DOUBLE_EQ(sel_high.config.values[shuffle], space.param(shuffle).hi);
  EXPECT_DOUBLE_EQ(sel_high.score, 1.0);

  genet::HandcraftedScheme hard_low("job_interval_s", /*hard_is_low=*/true, 1);
  const auto sel_low = hard_low.select(adapter, dummy, 0, rng);
  const std::size_t interval = space.index_of("job_interval_s");
  EXPECT_DOUBLE_EQ(sel_low.config.values[interval], space.param(interval).lo);
}

TEST(Schemes, AllReturnConfigsInsideTheSpace) {
  LbAdapter adapter = small_lb();
  Rng rng(3);
  netgym::Rng policy_rng(2);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);
  std::vector<std::unique_ptr<genet::CurriculumScheme>> schemes;
  schemes.push_back(
      std::make_unique<genet::GenetScheme>("llf", tiny_search()));
  schemes.push_back(std::make_unique<genet::BaselinePerformanceScheme>(
      "llf", tiny_search()));
  schemes.push_back(
      std::make_unique<genet::GapToOptimumScheme>(tiny_search()));
  schemes.push_back(std::make_unique<genet::HandcraftedScheme>(
      "queue_shuffle_prob", false, 3));
  for (auto& scheme : schemes) {
    const netgym::Config c = scheme->select(adapter, dummy, 0, rng).config;
    EXPECT_TRUE(adapter.space().contains(c)) << scheme->name();
    EXPECT_FALSE(scheme->name().empty());
  }
}

TEST(EnsembleGenetScheme, ValidatesAndSelectsInSpace) {
  LbAdapter adapter = small_lb();
  EXPECT_THROW(genet::EnsembleGenetScheme({}, tiny_search()),
               std::invalid_argument);
  genet::EnsembleGenetScheme scheme({"llf", "shortest"}, tiny_search());
  Rng rng(3);
  netgym::Rng policy_rng(2);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);
  const auto selection = scheme.select(adapter, dummy, 0, rng);
  EXPECT_TRUE(adapter.space().contains(selection.config));
  EXPECT_EQ(scheme.name(), "genet_ensemble");
}

TEST(EnsembleGenetScheme, ScoreIsAtLeastAnySingleBaselineGap) {
  // On the same config, the ensemble's criterion (max gap over baselines)
  // must be >= the gap to each individual baseline.
  LbAdapter adapter = small_lb();
  netgym::Rng policy_rng(2);
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(), {4},
                      policy_rng);
  const netgym::Config config = adapter.space().midpoint();
  double max_single = -1e300;
  for (const char* name : {"llf", "shortest"}) {
    netgym::Rng g(42);
    max_single = std::max(
        max_single,
        genet::gap_to_baseline(adapter, dummy, name, config, 4, g));
  }
  // Recompute the ensemble criterion with the same seeds.
  double ensemble = -1e300;
  for (const char* name : {"llf", "shortest"}) {
    netgym::Rng g(42);
    ensemble = std::max(
        ensemble, genet::gap_to_baseline(adapter, dummy, name, config, 4, g));
  }
  EXPECT_GE(ensemble, max_single - 1e-12);
}

TEST(SelfPlayScheme, KeepsBestReferenceAndSelectsInSpace) {
  LbAdapter adapter = small_lb();
  genet::SelfPlayScheme scheme(tiny_search());
  Rng rng(3);
  netgym::Rng policy_rng(2);
  rl::TrainerOptions defaults;
  rl::MlpPolicy dummy(adapter.obs_size(), adapter.action_count(),
                      defaults.hidden, policy_rng);
  dummy.set_greedy(true);
  const auto first = scheme.select(adapter, dummy, 0, rng);
  EXPECT_TRUE(adapter.space().contains(first.config));
  const double score_after_first = scheme.reference_score();
  // Same policy again: the reference stays (score can only move with a
  // better policy), and selection still works.
  const auto second = scheme.select(adapter, dummy, 1, rng);
  EXPECT_TRUE(adapter.space().contains(second.config));
  EXPECT_GE(scheme.reference_score(), score_after_first - 1e-9);
}

TEST(SelfPlayScheme, SelfGapIsNearZeroAgainstOwnSnapshot) {
  // The reference equals the current policy right after the first select,
  // so the paired gap at any config is ~0 (same greedy decisions).
  LbAdapter adapter = small_lb();
  Rng rng(3);
  netgym::Rng policy_rng(2);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, policy_rng);
  policy.set_greedy(true);
  rl::MlpPolicy clone(adapter.obs_size(), adapter.action_count(),
                      defaults.hidden, policy_rng);
  clone.restore(policy.snapshot());
  clone.set_greedy(true);
  const double gap = genet::gap_between(
      adapter, policy, clone, adapter.space().midpoint(), 4, rng);
  EXPECT_NEAR(gap, 0.0, 1e-9);
}

TEST(GapBetween, DetectsABetterReference) {
  // Reference = oracle-ish policy vs a policy that always picks the slowest
  // server: the paired gap must be clearly positive.
  LbAdapter adapter = small_lb();
  Rng rng(5);
  netgym::Config config = adapter.space().midpoint();
  class Fixed : public netgym::Policy {
   public:
    explicit Fixed(int a) : a_(a) {}
    int act(const netgym::Observation&, netgym::Rng&) override { return a_; }
   private:
    int a_;
  };
  Fixed slowest(0);   // slowest server (spread 0.5)
  Fixed fastest(7);   // fastest server (spread 2.2)
  const double gap =
      genet::gap_between(adapter, slowest, fastest, config, 6, rng);
  EXPECT_GT(gap, 0.0);
  EXPECT_THROW(genet::gap_between(adapter, slowest, fastest, config, 0, rng),
               std::invalid_argument);
}

TEST(TrainTraditional, ImprovesLbPolicyOverRandomInit) {
  LbAdapter adapter(1);
  auto trainer = genet::train_traditional(adapter, /*iterations=*/300, 3);
  // Evaluate greedy policy vs an untrained one on the same envs.
  auto fresh = adapter.make_trainer(1234);
  trainer->policy().set_greedy(true);
  fresh->policy().set_greedy(true);
  netgym::ConfigDistribution dist(adapter.space());
  Rng rng1(77), rng2(77);
  const double trained = genet::test_on_distribution(
      adapter, trainer->policy(), dist, 20, rng1);
  const double untrained =
      genet::test_on_distribution(adapter, fresh->policy(), dist, 20, rng2);
  EXPECT_GT(trained, untrained);
}

TEST(TrainTraditional, ValidatesIterations) {
  LbAdapter adapter = small_lb();
  EXPECT_THROW(genet::train_traditional(adapter, 0, 1),
               std::invalid_argument);
}

}  // namespace
